"""PropRate congestion control (paper §3–4, Figure 5(b)).

PropRate replaces loss-based congestion signalling with buffer-delay-based
detection, and the congestion window with direct rate control: the sending
rate oscillates around the estimated receive rate ρ, proportional to it in
each state (hence the name):

* **Slow Start** — burst 10 packets to obtain an initial ρ estimate from
  the receiver timestamps; if all arrivals share one timestamp tick the
  bottleneck is faster than measurable, so double the burst and repeat.
  Once *an* estimate exists it may still be a sliver of the link rate (a
  burst straddling a single tick boundary measures only its tail), so
  growth continues — paced at 2·ρ̂ rather than as ever-larger
  instantaneous bursts — until the estimate stops improving or a queue
  starts to form, then the regulated Fill/Drain oscillation takes over.
  (The paper's "repeated until a rate estimate is obtained" leaves the
  mechanism underspecified; pacing the growth bounds the queue the
  discovery phase can build in a shallow buffer.)
* **Buffer Fill** — send at σ_f = k_f·ρ (> ρ), filling the bottleneck
  buffer; switch to Drain when the estimated buffer delay exceeds T.
* **Buffer Drain** — send at σ_d = k_d·ρ (< ρ); switch back to Fill when
  the buffer delay falls below T.  If the state persists beyond
  RTT·ρ transmitted packets, something is off — enter Monitor.
* **Monitor** — send conservatively at σ_m = σ_d/2 while a fresh burst of
  10 packets re-measures ρ and the delay baseline; return to Fill if the
  network recovered (fresh ρ ≥ old ρ), else back to Drain.
* A retransmission timeout returns to Slow Start, mirroring conventional
  TCP (Figure 5).

The switching threshold T starts at the target average buffer delay
t̄_buff (§3.1) and is steered online by the negative-feedback loop of
§3.2 so the *achieved* average converges to the target.  k_f and k_d come
from the closed forms of Eqs. 7–8, in the buffer-full or buffer-emptied
regime depending on how aggressive the target is relative to the latency
budget L_max.

Packet losses need no special handling (§4.3): retransmissions simply
share the paced stream.  As a safety valve against measurement blackouts
(e.g. total outages, where ACKs stop and ρ cannot decay), the in-flight
data is capped at a small multiple of the target operating point — the
"window-capped" qualifier in the paper's Table 3.
"""

from __future__ import annotations

import enum
import math
from typing import Optional

from repro.core.estimators import (
    BufferDelayEstimator,
    MaxFilterRateEstimator,
    ReceiveRateEstimator,
    DEFAULT_RDMIN_WINDOW,
)
from repro.core.feedback import ThresholdFeedbackLoop
from repro.core.model import (
    DEFAULT_LMAX_HEADROOM,
    PropRateParams,
    params_for_threshold,
)
from repro.obs import CC_EPOCH, CC_ESTIMATOR, CC_STATE, current_tracer
from repro.tcp.congestion.base import AckSample, RateCongestionControl

#: Initial (and Monitor) probe burst size; the paper picks 10 following
#: the IW=10 argument and notes base-station buffers of 2,000+ packets
#: absorb it easily.
PROBE_BURST = 10

#: Upper bound on Slow-Start burst doubling (safety net only).
MAX_BURST = 1024

#: Decay time-constant of the held ρ estimate while deliberately sending
#: below capacity (Drain/Monitor).  Short self-limited phases (a normal
#: drain is a few hundred ms) keep ρ essentially intact, but a flow
#: pinned in Drain for many seconds by cross traffic must converge to
#: its *measured* share instead of ratcheting upward on every transient.
RHO_HOLD_TAU = 3.0


class PropRateState(enum.Enum):
    SLOW_START = "slow_start"
    FILL = "fill"
    DRAIN = "drain"
    MONITOR = "monitor"


class PropRate(RateCongestionControl):
    """The PropRate congestion-control module.

    Parameters
    ----------
    target_buffer_delay:
        t̄_buff — the target average bottleneck-buffer delay in seconds.
        The paper's configurations: PR(L)=0.020, PR(M)=0.040, PR(H)=0.080.
    lmax:
        Application latency budget L_max (seconds).  Defaults to the base
        RTT plus :data:`~repro.core.model.DEFAULT_LMAX_HEADROOM`, which
        reproduces the paper's regime split.
    enable_feedback:
        Run the §3.2 negative-feedback loop (Figure 9 compares on/off).
    rdmin_window:
        How far back the RD_min baseline looks (seconds).
    bandwidth_filter:
        "ewma" (the paper's choice) or "max" (BBR-style windowed max;
        exists for the §2 design-choice ablation).
    probe_burst:
        Slow-Start / Monitor probe burst size (the paper picks 10,
        following the IW=10 argument; ablatable).
    """

    name = "PropRate"
    sending_regulation = "Rate-based (+ window-capped)"
    congestion_trigger = "Buffer Delay"
    # on_tick is the in-flight safety cap: it can only zero the pacing
    # rate, so idle ticks (rate already zero) are unobservable.
    idle_tick_safe = True

    def __init__(
        self,
        target_buffer_delay: float = 0.040,
        lmax: Optional[float] = None,
        enable_feedback: bool = True,
        rdmin_window: float = DEFAULT_RDMIN_WINDOW,
        rate_window_timestamps: int = 50,
        bandwidth_filter: str = "ewma",
        probe_burst: int = PROBE_BURST,
    ) -> None:
        super().__init__()
        if target_buffer_delay <= 0:
            raise ValueError("target buffer delay must be positive")
        self.target_buffer_delay = target_buffer_delay
        self.lmax = lmax
        self.state = PropRateState.SLOW_START
        if bandwidth_filter == "ewma":
            self.rate_estimator = ReceiveRateEstimator(
                window_timestamps=rate_window_timestamps
            )
        elif bandwidth_filter == "max":
            self.rate_estimator = MaxFilterRateEstimator(
                window_timestamps=rate_window_timestamps
            )
        else:
            raise ValueError("bandwidth_filter must be 'ewma' or 'max'")
        if probe_burst < 2:
            raise ValueError("probe_burst must be at least 2")
        self.probe_burst = probe_burst
        self.delay_estimator = BufferDelayEstimator(window=rdmin_window)
        # The NFL corrects bias around the derived operating point; the
        # clamp band keeps it from replacing the model outright (and from
        # pushing T below the receiver's timestamp quantisation noise).
        # The band is asymmetric: measurement lag makes the achieved
        # delay overshoot the model, so T mostly needs room *below* the
        # target; raising it far above would let a startup transient
        # (queue not yet formed, achieved ~ 0) wind T up and destabilise
        # the whole loop.
        self.feedback = ThresholdFeedbackLoop(
            target=target_buffer_delay,
            min_threshold=max(0.005, target_buffer_delay / 2.0),
            max_threshold=min(1.0, target_buffer_delay * 1.5),
            min_update_interval=0.25,
            enabled=enable_feedback,
        )
        self._nfl_started_at: Optional[float] = None
        self.params: Optional[PropRateParams] = None

        self._burst_size = PROBE_BURST
        self._burst_target: Optional[int] = None
        self._ss_prev_estimate: Optional[float] = None
        self._ss_check_time: Optional[float] = None
        self._rho_hold: Optional[float] = None
        self._rho_hold_stamp = 0.0
        self._drain_sent = 0
        self._drain_entry_tbuff: Optional[float] = None
        self._monitor_rho_before: Optional[float] = None
        self._last_delivered = 0
        self._window_acked = 0
        self.state_transitions = 0
        self.monitor_entries = 0
        # Telemetry: captured at construction so the hot path pays a
        # single None check when tracing is off.
        self._tracer = current_tracer()
        self._state_entered = 0.0

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def threshold(self) -> float:
        """The current switching threshold T (NFL-adjusted)."""
        return self.feedback.threshold

    @property
    def rho(self) -> Optional[float]:
        """The receive-rate estimate used for pacing (bytes/second).

        While the buffer is kept non-empty (Fill), the measured receive
        rate *is* the bottleneck rate and is adopted directly.  While
        deliberately sending below capacity (Drain/Monitor), the measured
        rate only reflects our own sending rate, so the estimate is held
        and may only be revised upward; downward corrections happen on
        the next Fill.  Without the hold, every drain phase would decay
        ρ toward σ_d = k_d·ρ and the emptied regime would spiral down.
        """
        return self._rho_hold

    def _base_rtt(self) -> Optional[float]:
        host = self.host
        if host is None:
            return None
        rtt = host.min_rtt
        if rtt == float("inf"):
            rtt = host.srtt
        return rtt

    def _effective_lmax(self, rtt: float) -> float:
        if self.lmax is not None:
            return self.lmax
        # The default budget reproduces the paper's PR(L)/PR(M)/PR(H)
        # regime split (80 ms of headroom), but must scale up for larger
        # targets: §3.1 requires t̄_buff <= L_max − RTT, and the threshold
        # is capped by the headroom.
        headroom = max(DEFAULT_LMAX_HEADROOM, 1.5 * self.target_buffer_delay)
        return rtt + headroom

    def _derive(self) -> Optional[PropRateParams]:
        rtt = self._base_rtt()
        if rtt is None or rtt <= 0:
            return None
        lmax = self._effective_lmax(rtt)
        if lmax <= rtt:
            lmax = rtt + DEFAULT_LMAX_HEADROOM
        threshold = min(self.feedback.threshold, lmax - rtt)
        threshold = max(threshold, 1e-4)
        self.params = params_for_threshold(
            threshold, rtt, min(self.target_buffer_delay, lmax - rtt), lmax
        )
        return self.params

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_connection_start(self) -> None:
        tr = self._tracer
        host = self.host
        if tr is not None and host is not None:
            flow = getattr(host, "flow_id", None)
            self.feedback.tracer = tr
            self.feedback.flow = flow
            self.rate_estimator.on_epoch = (
                lambda what: tr.emit(CC_EPOCH, host.now, flow=flow,
                                     estimator="rate", what=what))
            self.delay_estimator.on_epoch = (
                lambda what: tr.emit(CC_EPOCH, host.now, flow=flow,
                                     estimator="rdmin", what=what))
            self._state_entered = host.now
        self._enter_slow_start()

    def _trace_state(self, prev: PropRateState) -> None:
        """Emit a ``cc.state`` event and record the dwell of ``prev``."""
        tr = self._tracer
        if tr is None:
            return
        host = self.host
        now = host.now if host is not None else 0.0
        flow = getattr(host, "flow_id", None)
        dwell = now - self._state_entered
        if dwell > 0:
            tr.metrics.histogram(
                f"flow{flow}.cc.dwell.{prev.value}").observe(dwell)
        self._state_entered = now
        tr.emit(CC_STATE, now, flow=flow, state=self.state.value,
                prev=prev.value, rho=self._rho_hold,
                tbuff=self.delay_estimator.tbuff_smooth,
                threshold=self.feedback.threshold)

    def telemetry_close(self, now: float) -> None:
        """Record the final state's dwell at run end (runner hook)."""
        tr = self._tracer
        if tr is None:
            return
        flow = getattr(self.host, "flow_id", None)
        dwell = now - self._state_entered
        if dwell > 0:
            tr.metrics.histogram(
                f"flow{flow}.cc.dwell.{self.state.value}").observe(dwell)
            self._state_entered = now

    def _enter_slow_start(self) -> None:
        prev = self.state
        self.state = PropRateState.SLOW_START
        self.pacing_rate = 0.0
        self.round_mode = "down"
        self._burst_size = self.probe_burst
        self._burst_target = self._last_delivered + self._burst_size
        self._ss_prev_estimate = None
        self._ss_check_time = None
        self._rho_hold = None
        self.rate_estimator.reset()
        self.feedback.reset()
        self.request_burst(self._burst_size)
        self._trace_state(prev)

    def on_rto(self) -> None:
        """Timeout ⇒ back to Slow Start (Figure 5(b))."""
        self._enter_slow_start()

    def on_congestion(self, sample: AckSample) -> None:
        """Packet loss needs no special congestion action (paper §4.3):
        the sender retransmits within the paced stream.

        The one exception is Slow Start's burst-doubling loop: a loss
        there means a probe burst overflowed a shallow bottleneck
        buffer, so doubling further is pointless — adopt the estimate
        gathered so far and start regulating."""
        if self.state is PropRateState.SLOW_START:
            if self.rate_estimator.has_estimate and self.params is not None:
                self._enter_fill()

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------
    def _enter_fill(self) -> None:
        prev = self.state
        self.state = PropRateState.FILL
        self.round_mode = "up"
        self.state_transitions += 1
        self._trace_state(prev)

    def _enter_drain(self) -> None:
        prev = self.state
        self.state = PropRateState.DRAIN
        self.round_mode = "down"
        self._drain_sent = 0
        self._drain_entry_tbuff = self.delay_estimator.tbuff_smooth
        self.state_transitions += 1
        self._trace_state(prev)

    def _enter_monitor(self) -> None:
        prev = self.state
        self.state = PropRateState.MONITOR
        self.round_mode = "down"
        self.monitor_entries += 1
        self.state_transitions += 1
        self._monitor_rho_before = self._rho_hold
        if self.params is not None and self._monitor_rho_before is not None:
            # σ_m = σ_d / 2: conservative while the probe re-measures ρ.
            self.pacing_rate = 0.5 * self.params.kd * self._monitor_rho_before
        self._burst_size = self.probe_burst
        self._burst_target = self._last_delivered + self._burst_size
        # Measure the receive rate afresh, but keep the EWMA warm so a
        # single burst refines rather than replaces it.
        self.rate_estimator.reset(keep_rate=False)
        self.request_burst(self._burst_size)
        self._trace_state(prev)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def on_packet_sent(self, seq: int, now: float, retransmit: bool) -> None:
        if self.state is PropRateState.DRAIN:
            self._drain_sent += 1

    def on_ack(self, sample: AckSample) -> None:
        host = self.host
        assert host is not None
        self._last_delivered = sample.delivered_total

        # Feed the sender-side estimators (paper Figure 6).
        self.rate_estimator.on_ack(
            sample.receiver_ts, sample.delivered_total * host.packet_bytes
        )
        measured = self.rate_estimator.rate
        if measured is not None:
            if (
                self.state in (PropRateState.FILL, PropRateState.SLOW_START)
                or self._rho_hold is None
            ):
                self._rho_hold = measured
            else:
                # Self-limited (Drain/Monitor): hold ρ, decaying slowly
                # toward the measured rate (see RHO_HOLD_TAU).
                dt = max(0.0, sample.now - self._rho_hold_stamp)
                decayed = self._rho_hold * math.exp(-dt / RHO_HOLD_TAU)
                self._rho_hold = max(measured, decayed)
        self._rho_hold_stamp = sample.now
        if sample.one_way_delay is not None:
            self.delay_estimator.on_ack(sample.now, sample.one_way_delay)

        params = self._derive()

        if self.state is PropRateState.SLOW_START:
            self._slow_start_step(sample, params)
        elif self.state is PropRateState.MONITOR:
            self._monitor_step(sample)
        else:
            self._fill_drain_step(sample)

        self._feedback_step(sample)
        self._apply_rate()

    def _slow_start_step(
        self, sample: AckSample, params: Optional[PropRateParams]
    ) -> None:
        burst_done = (
            self._burst_target is not None
            and sample.delivered_total >= self._burst_target
        )
        if not self.rate_estimator.has_estimate:
            if burst_done:
                # Whole burst landed in one receiver tick: the bottleneck
                # can take more — double the burst (paper §4).
                if self._burst_size < MAX_BURST:
                    self._burst_size *= 2
                self._burst_target = sample.delivered_total + self._burst_size
                self.request_burst(self._burst_size)
            return
        if params is None:
            return
        # An estimate exists, but a burst that merely straddled one
        # receiver tick boundary measures only a sliver of the link
        # rate — and the Fill state's k_f·ρ growth recovers from an
        # under-estimate very slowly on fat pipes.  Grow *paced* at 2·ρ̂
        # until the estimate stops improving, or until a queue starts to
        # form (the delay guard bounds the overshoot a shallow buffer
        # sees to roughly one feedback lag of 2x traffic).
        estimate = self.rate_estimator.rate or 0.0
        self.pacing_rate = 2.0 * estimate
        self.round_mode = "up"

        tbuff = self.delay_estimator.tbuff_smooth
        if tbuff is not None and tbuff > params.threshold:
            self._enter_fill()
            return
        # Growth checkpoints are time-based: the windowed/EWMA estimate
        # needs a couple of RTTs of 2x pacing before a genuine capacity
        # gap shows up as >25% growth; checking sooner would mistake
        # estimator lag for a plateau and exit at a sliver of the link
        # rate.
        host = self.host
        srtt = host.srtt if host is not None and host.srtt else 0.05
        interval = max(0.100, 2.0 * srtt)
        if self._ss_check_time is None:
            self._ss_check_time = sample.now + interval
            self._ss_prev_estimate = estimate
            return
        if sample.now < self._ss_check_time:
            return
        prev = self._ss_prev_estimate
        self._ss_prev_estimate = estimate
        self._ss_check_time = sample.now + interval
        if prev is not None and estimate <= 1.25 * prev:
            self._enter_fill()

    def _fill_drain_step(self, sample: AckSample) -> None:
        # Switch on the smoothed estimate: the receiver's 10 ms timestamp
        # granularity puts +/-granularity noise on each raw sample, which
        # would thrash the states when T is small.
        tbuff = self.delay_estimator.tbuff_smooth
        if tbuff is None:
            return
        threshold = self.params.threshold if self.params else self.threshold
        if self.state is PropRateState.FILL:
            if tbuff > threshold:
                self._enter_drain()
        elif self.state is PropRateState.DRAIN:
            if tbuff < threshold:
                self._enter_fill()
            elif self._drain_sent >= self._drain_packet_cap():
                # The cap is reached: decide whether draining is actually
                # working.  A deep overshoot legitimately takes several
                # cap-windows to drain; Monitor is for the case where the
                # buffer delay is NOT falling (wrong ρ or a stale
                # congestion signal, paper §4.1).
                entry = self._drain_entry_tbuff
                if entry is not None and tbuff < 0.8 * entry:
                    self._drain_sent = 0
                    self._drain_entry_tbuff = tbuff
                else:
                    self._enter_monitor()

    def _monitor_step(self, sample: AckSample) -> None:
        if self.rate_estimator.has_estimate:
            fresh = self.rate_estimator.rate or 0.0
            before = self._monitor_rho_before
            if before is None or fresh >= 0.9 * before:
                # Network is actually fine ("update congestion
                # information"): adopt the fresh rate and resume filling.
                # The RD_min baseline is deliberately NOT rebased here —
                # Monitor often fires with a standing queue, and
                # re-seeding the baseline then would make every
                # subsequent buffer-delay estimate read near zero; the
                # sliding window ages the baseline out on its own.
                self._rho_hold = max(fresh, before or 0.0)
                self._enter_fill()
            else:
                # The network really did slow down: adopt the fresh,
                # lower measurement and keep draining.
                self._rho_hold = fresh
                self._enter_drain()
        elif (
            self._burst_target is not None
            and sample.delivered_total >= self._burst_target
        ):
            # The probe burst collapsed into one receiver tick again.
            if self._burst_size < MAX_BURST:
                self._burst_size *= 2
            self._burst_target = sample.delivered_total + self._burst_size
            self.request_burst(self._burst_size)

    # ------------------------------------------------------------------
    # Feedback and pacing
    # ------------------------------------------------------------------
    def _bdp_packets(self) -> int:
        host = self.host
        rtt = self._base_rtt()
        rho = self._rho_hold
        if host is None or rtt is None or rho is None:
            return PROBE_BURST
        return max(PROBE_BURST, int(rtt * rho / host.packet_bytes))

    def _drain_packet_cap(self) -> int:
        """Packets transmitted in Drain before forcing Monitor.

        The paper caps the Drain state at RTT·ρ packets (§4.1); taken
        literally that is *less* than one healthy drain phase transmits
        (a symmetric cycle spends ≈ 2(T+RTT) per state at σ_d = k_d·ρ),
        so it would force Monitor every cycle.  The cap used here is a
        couple of healthy drain phases' worth of packets — it still
        fires quickly when draining makes no progress, without
        disturbing normal oscillation.
        """
        host = self.host
        rtt = self._base_rtt()
        rho = self._rho_hold
        if host is None or rtt is None or rho is None or self.params is None:
            return 10 * PROBE_BURST
        phase = 2.0 * (self.params.threshold + rtt)
        cap = 2.0 * phase * self.params.kd * rho / host.packet_bytes
        return max(4 * PROBE_BURST, int(cap))

    #: Settling time before the NFL may move T: the inner loop needs a
    #: few fill/drain cycles before the achieved delay reflects T at all.
    NFL_WARMUP = 1.5

    def _feedback_step(self, sample: AckSample) -> None:
        if self.state not in (PropRateState.FILL, PropRateState.DRAIN):
            return  # only steady-state operation reflects the threshold
        if self._nfl_started_at is None:
            self._nfl_started_at = sample.now
        self._window_acked += sample.newly_acked + sample.newly_sacked
        if self._window_acked < self._bdp_packets():
            return
        self._window_acked = 0
        tbuff = self.delay_estimator.tbuff_smooth
        if tbuff is None:
            return
        tr = self._tracer
        if tr is not None:
            tr.emit(CC_ESTIMATOR, sample.now,
                    flow=getattr(self.host, "flow_id", None),
                    rho=self._rho_hold, tbuff=tbuff,
                    threshold=self.feedback.threshold,
                    t_actual=self.feedback.t_actual,
                    state=self.state.value)
        if sample.now - self._nfl_started_at < self.NFL_WARMUP:
            return
        self.feedback.on_window_sample(
            tbuff,
            state_is_fill=self.state is PropRateState.FILL,
            now=sample.now,
        )

    def _apply_rate(self) -> None:
        if self.state is PropRateState.SLOW_START:
            # Discovery: bursts only until a first estimate exists, then
            # paced exponential growth at 2·ρ̂ (set by _slow_start_step).
            estimate = self.rate_estimator.rate
            self.pacing_rate = 2.0 * estimate if estimate else 0.0
            return
        rho = self._rho_hold
        if rho is None or self.params is None:
            return
        if self.state is PropRateState.FILL:
            self.pacing_rate = self.params.kf * rho
        elif self.state is PropRateState.DRAIN:
            self.pacing_rate = self.params.kd * rho
        elif self.state is PropRateState.MONITOR:
            before = self._monitor_rho_before or rho
            self.pacing_rate = 0.5 * self.params.kd * before

    # ------------------------------------------------------------------
    # Safety valve: cap in-flight data (Table 3 "window-capped")
    # ------------------------------------------------------------------
    def on_tick(self, now: float) -> None:
        host = self.host
        if host is None or self.params is None:
            return
        rho = self._rho_hold
        rtt = self._base_rtt()
        if rho is None or rtt is None:
            return
        # The cap must scale with the *smoothed* RTT, not the propagation
        # minimum: on a congested uplink (Figure 14) ACKs lag by whole
        # seconds, so un-ACKed data legitimately exceeds min-RTT BDPs
        # while the one-way data path stays healthy.
        srtt = host.srtt
        rtt_for_cap = max(rtt, srtt) if srtt is not None else rtt
        cap_seconds = rtt_for_cap + 4.0 * max(
            self.params.threshold, self.target_buffer_delay
        )
        cap_packets = max(4 * PROBE_BURST, int(cap_seconds * rho / host.packet_bytes))
        if host.inflight >= cap_packets:
            self.pacing_rate = 0.0
