"""Small shared utilities: interval sets, sliding windows, EWMA filters."""

from repro.util.intervals import IntervalSet
from repro.util.windows import Ewma, SlidingWindowMin, WindowedMax

__all__ = ["Ewma", "IntervalSet", "SlidingWindowMin", "WindowedMax"]
