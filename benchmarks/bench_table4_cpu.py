"""Table 4: control-computation overhead per algorithm.

Substitute for the paper's sender-CPU-utilisation measurement: the wall
time each algorithm's control callbacks consume per simulated second of
a fixed transfer.

Known reproduction gap (see EXPERIMENTS.md): the paper's ordering —
forecast/utility algorithms an order of magnitude costlier than the
simple control loops — does NOT reproduce under this proxy, because our
Sprout/PCC/Verus are simplified models that omit the authors' heavy
inference, and per-callback wall time in Python mostly tracks callback
*frequency*.  The bench reports the measured numbers without asserting
the paper's ordering.

Reduced mode: setting ``REPRO_BENCH_REDUCED=1`` shrinks the transfer
and trims the line-up to a representative cheap/expensive subset — this
is the workload behind the CI perf-smoke gate
(``scripts/perf_smoke.py``), which tracks the aggregate simulator
events/second of the run against a checked-in baseline.
"""

import os
import time

from repro.experiments.algorithms import paper_algorithms
from repro.experiments.cpu import instrumented_factory
from repro.experiments.runner import run_single_flow
from repro.traces.presets import isp_trace

from _report import emit

#: REPRO_BENCH_REDUCED=1 selects the CI smoke configuration.
REDUCED = os.environ.get("REPRO_BENCH_REDUCED", "") not in ("", "0")

DURATION = 5.0 if REDUCED else 15.0

#: Table 4's cheap control loops vs expensive forecast/utility loops.
CHEAP = ("PR(M)", "CUBIC", "BBR", "RRE", "NewReno", "Vegas", "Westwood", "LEDBAT")
EXPENSIVE = ("Sprout", "PCC", "Verus")

#: The reduced line-up keeps members of both cost classes.
REDUCED_NAMES = ("PR(M)", "CUBIC", "BBR", "Sprout", "PCC", "Verus")


def workload_algorithms():
    """Name → factory for the configured (full or reduced) line-up."""
    algorithms = paper_algorithms()
    if REDUCED:
        return {n: algorithms[n] for n in REDUCED_NAMES}
    return algorithms


def run_workload(duration: float = DURATION):
    """Run the Table-4 workload; (costs, total events, wall seconds).

    ``costs`` maps algorithm → (control s per sim-s, calls, KB/s); the
    event total and wall clock feed the perf-smoke events/sec gate.
    """
    down = isp_trace("A", "stationary", duration=60.0)
    up = isp_trace("A", "stationary", duration=60.0, direction="uplink")
    costs = {}
    total_events = 0
    wall_start = time.perf_counter()
    for name, factory in workload_algorithms().items():
        result = run_single_flow(
            instrumented_factory(factory), down, up,
            duration=duration, measure_start=2.0,
        )
        cc = result.sender.cc
        total_events += result.sender.sim.events_processed
        costs[name] = (
            cc.control_seconds / duration,
            cc.control_calls,
            result.throughput_kbps,
        )
    return costs, total_events, time.perf_counter() - wall_start


def events_per_second(duration: float = DURATION) -> float:
    """Aggregate simulator events/sec over the workload (smoke metric)."""
    _, events, wall = run_workload(duration)
    return events / wall


def sim_seconds_per_second(duration: float = DURATION) -> float:
    """Simulated seconds per wall second over the workload.

    The perf-smoke gate metric: unlike events/sec it is invariant to
    event *granularity*, so changes that legitimately collapse many
    small events into one (the delivery fast path's batched serves and
    grouped deliveries) do not skew it.
    """
    costs, _, wall = run_workload(duration)
    return len(costs) * duration / wall


def test_table4_control_overhead(benchmark):
    costs, events, wall = benchmark.pedantic(
        run_workload, rounds=1, iterations=1
    )
    mode = "reduced" if REDUCED else "full"
    lines = [f"mode: {mode}   events/sec: {events / wall:,.0f}"]
    lines.append(
        f"{'Algorithm':10s} {'ctrl ms/sim-s':>14s} {'calls':>9s} {'tput KB/s':>10s}"
    )
    for name, (per_s, calls, tput) in sorted(
        costs.items(), key=lambda kv: kv[1][0]
    ):
        lines.append(f"{name:10s} {per_s * 1000:14.3f} {calls:9d} {tput:10.1f}")
    emit("table4_cpu", lines)

    cheap_max = max(costs[name][0] for name in CHEAP if name in costs)
    expensive = [costs[name][0] for name in EXPENSIVE if name in costs]
    expensive_mean = sum(expensive) / len(expensive)
    # Expensive algorithms must cost meaningfully more control time than
    # the cheapest loops, normalised per delivered byte would be starker;
    # per-second is the conservative check.
    assert expensive_mean > 0
    assert cheap_max > 0
