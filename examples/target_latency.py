#!/usr/bin/env python3
"""Set a target latency and achieve it — the paper's unique capability.

PropRate is, per the paper, the first TCP algorithm that lets an
application *choose* its average latency (when network conditions allow).
This example emulates a real-time-communication app with a latency
budget: it sets L_max, lets the negative-feedback loop converge, and
reports the achieved one-way delay against the target for a range of
operating points on a volatile mobile trace.

Usage::

    python examples/target_latency.py
"""

from repro import PropRate, isp_trace, run_single_flow

DURATION = 30.0
WARMUP = 4.0
PROPAGATION_MS = 20.0


def main() -> None:
    downlink = isp_trace("A", "mobile", duration=60.0)
    uplink = isp_trace("A", "mobile", duration=60.0, direction="uplink")
    print(f"Trace: {downlink.name} (volatile, driving around campus)\n")

    print(f"{'Target buffer':>14s} {'Achieved':>9s} {'Error':>7s} "
          f"{'Throughput':>11s}")
    for target_ms in (20, 40, 60, 80, 100, 120):
        result = run_single_flow(
            lambda t=target_ms: PropRate(target_buffer_delay=t / 1000.0),
            downlink,
            uplink,
            duration=DURATION,
            measure_start=WARMUP,
        )
        achieved_ms = result.delay.mean_ms - PROPAGATION_MS
        print(
            f"{target_ms:11d} ms {achieved_ms:6.1f} ms "
            f"{achieved_ms - target_ms:+6.1f} {result.throughput_kbps:8.1f} KB/s"
        )

    print(
        "\nEach row is one flow with a different t̄_buff: the negative-"
        "\nfeedback loop (paper §3.2) steers the switching threshold until"
        "\nthe achieved average buffer delay sits on the target diagonal,"
        "\nwhile throughput rises with the allowed delay (Figure 9/10)."
    )


if __name__ == "__main__":
    main()
