"""End-to-end integration tests: the paper's headline behaviours.

These run full trace-driven simulations (shortened relative to the
benchmarks) and assert the qualitative results the paper reports.
"""

import pytest

from repro.core.proprate import PropRate, PropRateState
from repro.experiments.runner import run_single_flow
from repro.tcp.congestion import Bbr, Cubic, Sprout
from repro.traces.presets import isp_trace

DURATION = 18.0
WARMUP = 3.0


@pytest.fixture(scope="module")
def traces():
    return (
        isp_trace("A", "stationary", duration=60.0),
        isp_trace("A", "stationary", duration=60.0, direction="uplink"),
    )


@pytest.fixture(scope="module")
def results(traces):
    down, up = traces
    out = {}
    for name, factory in (
        ("PR(L)", lambda: PropRate(0.020)),
        ("PR(M)", lambda: PropRate(0.040)),
        ("PR(H)", lambda: PropRate(0.080)),
        ("CUBIC", Cubic),
        ("BBR", Bbr),
        ("Sprout", Sprout),
    ):
        out[name] = run_single_flow(
            factory, down, up, duration=DURATION, measure_start=WARMUP
        )
    return out


class TestHeadlineShapes:
    def test_proprate_frontier_is_monotone(self, results):
        assert (
            results["PR(L)"].delay.mean
            < results["PR(M)"].delay.mean
            < results["PR(H)"].delay.mean
        )
        assert results["PR(L)"].throughput < results["PR(H)"].throughput

    def test_proprate_beats_cubic_on_delay_at_comparable_throughput(self, results):
        pr_h, cubic = results["PR(H)"], results["CUBIC"]
        assert pr_h.delay.mean < cubic.delay.mean / 4
        assert pr_h.throughput > 0.6 * cubic.throughput

    def test_cubic_bufferbloat(self, results):
        """CUBIC saturates the 2,000-packet buffer: hundreds of ms."""
        assert results["CUBIC"].delay.mean > 0.400
        assert results["CUBIC"].bottleneck_drops > 0

    def test_sprout_low_delay_low_throughput(self, results):
        sprout = results["Sprout"]
        assert sprout.delay.mean < 0.120
        assert sprout.throughput < 0.7 * results["PR(H)"].throughput

    def test_pr_l_beats_sprout_throughput_at_low_delay(self, results):
        """The paper's headline: PropRate reaches forecast-class delays
        at higher throughput."""
        pr_l, sprout = results["PR(L)"], results["Sprout"]
        assert pr_l.throughput > sprout.throughput
        assert pr_l.delay.mean < 2.5 * sprout.delay.mean

    def test_bbr_high_throughput_moderate_delay(self, results):
        bbr, cubic = results["BBR"], results["CUBIC"]
        assert bbr.throughput > 0.8 * cubic.throughput
        assert bbr.delay.mean < 0.5 * cubic.delay.mean

    def test_no_losses_for_delay_targeting_flows(self, results):
        """With a 2,000-packet buffer, PropRate's delay targets keep it
        far from overflow."""
        for name in ("PR(L)", "PR(M)", "PR(H)"):
            assert results[name].bottleneck_drops == 0

    def test_delays_bounded_below_by_propagation(self, results):
        for result in results.values():
            if result.delay.count:
                assert result.delay.mean >= 0.0199


class TestTargetLatency:
    @pytest.mark.parametrize("target_ms", [20, 40, 80])
    def test_achieved_buffer_delay_tracks_target(self, traces, target_ms):
        """The paper's unique capability: set a target average latency
        and achieve it (within the volatility of the trace)."""
        down, up = traces
        result = run_single_flow(
            lambda: PropRate(target_ms / 1000.0), down, up,
            duration=DURATION, measure_start=WARMUP,
        )
        achieved_buffer_ms = result.delay.mean_ms - 20.0  # propagation
        assert achieved_buffer_ms == pytest.approx(target_ms, abs=max(15, 0.6 * target_ms))

    def test_proprate_reaches_steady_state(self, traces):
        down, up = traces
        result = run_single_flow(
            lambda: PropRate(0.040), down, up, duration=DURATION,
        )
        cc = result.sender.cc
        assert cc.state in (
            PropRateState.FILL, PropRateState.DRAIN, PropRateState.MONITOR
        )
        assert cc.state_transitions > 10
        assert cc.rho is not None and cc.rho > 100_000


class TestMobileTrace:
    def test_frontier_holds_on_mobile(self):
        down = isp_trace("A", "mobile", duration=60.0)
        up = isp_trace("A", "mobile", duration=60.0, direction="uplink")
        low = run_single_flow(
            lambda: PropRate(0.020), down, up, duration=DURATION, measure_start=WARMUP
        )
        high = run_single_flow(
            lambda: PropRate(0.080), down, up, duration=DURATION, measure_start=WARMUP
        )
        assert low.delay.mean < high.delay.mean
        assert low.throughput <= high.throughput * 1.05
