"""Retransmission-timeout estimation (RFC 6298).

Used by every sender regardless of congestion-control algorithm: both the
cwnd-based and the rate-based mechanisms fall back to Slow Start on a
retransmission timeout (paper Figure 5).
"""

from __future__ import annotations

from typing import Optional

#: Linux uses a 200 ms minimum RTO rather than RFC 6298's 1 s.
MIN_RTO = 0.2
MAX_RTO = 60.0
INITIAL_RTO = 1.0


class RtoEstimator:
    """Smoothed RTT / RTT-variance tracker with exponential backoff."""

    ALPHA = 1.0 / 8.0
    BETA = 1.0 / 4.0
    K = 4.0

    def __init__(
        self,
        min_rto: float = MIN_RTO,
        max_rto: float = MAX_RTO,
        initial_rto: float = INITIAL_RTO,
    ) -> None:
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self._base_rto = initial_rto
        self._backoff = 1.0
        self.min_rtt: float = float("inf")
        self.latest_rtt: Optional[float] = None

    def on_rtt_sample(self, rtt: float) -> None:
        """Fold in one RTT measurement (seconds)."""
        if rtt <= 0:
            return
        self.latest_rtt = rtt
        if rtt < self.min_rtt:
            self.min_rtt = rtt
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            assert self.rttvar is not None
            self.rttvar = (1 - self.BETA) * self.rttvar + self.BETA * abs(
                self.srtt - rtt
            )
            self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * rtt
        self._base_rto = self.srtt + self.K * max(self.rttvar, 1e-3)
        self._backoff = 1.0  # a valid sample clears any backoff

    def on_timeout(self) -> None:
        """Double the RTO (Karn's exponential backoff)."""
        self._backoff = min(self._backoff * 2.0, 64.0)

    @property
    def rto(self) -> float:
        """Current retransmission timeout in seconds.

        The base is floored at 1.5× the latest RTT sample: when a deep
        bottleneck buffer fills quickly the smoothed RTT lags the real
        RTT by many variance units, which would otherwise fire spurious
        timeouts in the middle of loss-free operation.
        """
        base = self._base_rto
        if self.latest_rtt is not None:
            base = max(base, 1.5 * self.latest_rtt)
        rto = base * self._backoff
        return min(self.max_rto, max(self.min_rto, rto))
