"""Tests for the Trace container."""

import numpy as np
import pytest

from repro.traces.trace import OPPORTUNITY_BYTES, Trace


def _uniform_trace(rate_pps=100, duration=10.0):
    times = (np.arange(int(rate_pps * duration)) + 0.5) / rate_pps
    return Trace(times, duration, name="uniform")


class TestValidation:
    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            Trace([2.0, 1.0], 5.0)

    def test_rejects_negative_times(self):
        with pytest.raises(ValueError):
            Trace([-1.0, 1.0], 5.0)

    def test_rejects_opportunity_beyond_duration(self):
        with pytest.raises(ValueError):
            Trace([1.0, 6.0], 5.0)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            Trace([], 0.0)

    def test_empty_trace_allowed(self):
        t = Trace([], 5.0)
        assert len(t) == 0
        assert t.mean_throughput() == 0.0


class TestStats:
    def test_mean_throughput(self):
        t = _uniform_trace(rate_pps=100, duration=10.0)
        assert t.mean_throughput() == pytest.approx(100 * OPPORTUNITY_BYTES)

    def test_throughput_series_shape(self):
        t = _uniform_trace(rate_pps=100, duration=10.0)
        starts, series = t.throughput_series(window=0.1)
        assert len(starts) == 100
        assert series.mean() == pytest.approx(100 * OPPORTUNITY_BYTES)

    def test_uniform_trace_has_zero_std(self):
        t = _uniform_trace(rate_pps=100, duration=10.0)
        stats = t.stats(window=0.1)
        assert stats.std == pytest.approx(0.0)
        assert stats.outage_fraction == 0.0

    def test_outage_fraction_counts_empty_windows(self):
        # Opportunities only in the first half of each second.
        times = np.concatenate(
            [np.linspace(i, i + 0.45, 50) for i in range(5)]
        )
        t = Trace(np.sort(times), 5.0)
        stats = t.stats(window=0.5)
        assert stats.outage_fraction == pytest.approx(0.5)

    def test_kbps_units(self):
        t = _uniform_trace(rate_pps=1000, duration=5.0)
        stats = t.stats()
        assert stats.mean_kbps == pytest.approx(1500.0)


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        t = _uniform_trace(rate_pps=50, duration=2.0)
        path = tmp_path / "trace.txt"
        t.save(path)
        loaded = Trace.load(path, duration=2.0)
        assert len(loaded) == len(t)
        np.testing.assert_allclose(
            loaded.opportunity_times, t.opportunity_times, atol=1e-6
        )

    def test_load_infers_duration(self, tmp_path):
        t = Trace([0.5, 1.5], 2.0)
        path = tmp_path / "trace.txt"
        t.save(path)
        loaded = Trace.load(path)
        assert loaded.duration >= 1.5

    def test_cellsim_format_is_ms_per_line(self, tmp_path):
        t = Trace([0.1, 0.25], 1.0)
        path = tmp_path / "trace.txt"
        t.save(path)
        lines = path.read_text().splitlines()
        assert lines == ["100.000", "250.000"]


class TestTransforms:
    def test_scaled_down_halves_capacity(self):
        t = _uniform_trace(rate_pps=100, duration=10.0)
        half = t.scaled(0.5)
        assert len(half) == pytest.approx(len(t) / 2, abs=1)
        assert half.duration == t.duration

    def test_scaled_up_doubles_capacity(self):
        t = _uniform_trace(rate_pps=100, duration=10.0)
        double = t.scaled(2.0)
        assert len(double) == 2 * len(t)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            _uniform_trace().scaled(0.0)

    def test_slice_rebases_to_zero(self):
        t = _uniform_trace(rate_pps=10, duration=10.0)
        part = t.slice(2.0, 4.0)
        assert part.duration == pytest.approx(2.0)
        assert part.opportunity_times[0] >= 0.0
        assert part.opportunity_times[-1] < 2.0
        assert len(part) == 20

    def test_slice_rejects_bad_bounds(self):
        t = _uniform_trace()
        with pytest.raises(ValueError):
            t.slice(4.0, 2.0)
        with pytest.raises(ValueError):
            t.slice(0.0, 99.0)


class TestCapacityBytes:
    def test_within_one_period(self):
        t = _uniform_trace(rate_pps=100, duration=10.0)
        assert t.capacity_bytes(0.0, 1.0) == 100 * 1500

    def test_loops_across_periods(self):
        t = _uniform_trace(rate_pps=100, duration=10.0)
        assert t.capacity_bytes(5.0, 25.0) == 2000 * 1500

    def test_no_loop_clips_at_duration(self):
        t = _uniform_trace(rate_pps=100, duration=10.0)
        assert t.capacity_bytes(5.0, 25.0, loop=False) == 500 * 1500

    def test_rejects_bad_window(self):
        t = _uniform_trace()
        with pytest.raises(ValueError):
            t.capacity_bytes(2.0, 1.0)
        with pytest.raises(ValueError):
            t.capacity_bytes(-1.0, 1.0)
