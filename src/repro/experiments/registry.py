"""Experiment registry: paper artifact → reproduction target.

A machine-readable version of the DESIGN.md experiment index: each
entry maps a table or figure of the paper to the modules that implement
its pieces and the benchmark file that regenerates it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artifact."""

    id: str
    artifact: str
    description: str
    modules: Tuple[str, ...]
    bench: str


_EXPERIMENTS = [
    Experiment(
        id="T2",
        artifact="Table 2",
        description="Trace statistics: mean and std of 100 ms throughput "
        "for the six ISP traces",
        modules=("repro.traces.generator", "repro.traces.presets"),
        bench="benchmarks/bench_table2_traces.py",
    ),
    Experiment(
        id="T3",
        artifact="Table 3",
        description="Algorithm taxonomy: sending regulation and congestion "
        "trigger of every evaluated algorithm",
        modules=("repro.tcp.congestion",),
        bench="benchmarks/bench_table3_taxonomy.py",
    ),
    Experiment(
        id="T4",
        artifact="Table 4",
        description="Control-computation overhead per algorithm "
        "(CPU-utilisation substitute)",
        modules=("repro.experiments.cpu", "repro.experiments.runner"),
        bench="benchmarks/bench_table4_cpu.py",
    ),
    Experiment(
        id="F1-3",
        artifact="Figures 1-3",
        description="Sawtooth waveforms of the fluid model in both regimes "
        "and across threshold placements",
        modules=("repro.core.fluid", "repro.core.model"),
        bench="benchmarks/bench_fig1_3_waveforms.py",
    ),
    Experiment(
        id="F7",
        artifact="Figure 7",
        description="Throughput vs mean/95th-pct one-way delay for all "
        "algorithms on stationary and mobile ISP traces",
        modules=("repro.experiments.runner", "repro.experiments.algorithms"),
        bench="benchmarks/bench_fig7_shootout.py",
    ),
    Experiment(
        id="F8",
        artifact="Figure 8",
        description="The same shootout on a Sprint-like trace with 54% "
        "outage time",
        modules=("repro.traces.presets",),
        bench="benchmarks/bench_fig8_sprint.py",
    ),
    Experiment(
        id="F9",
        artifact="Figure 9",
        description="Negative-feedback-loop effectiveness: target vs "
        "achieved buffer delay, with and without NFL",
        modules=("repro.core.feedback", "repro.experiments.frontier"),
        bench="benchmarks/bench_fig9_nfl.py",
    ),
    Experiment(
        id="F10",
        artifact="Figure 10",
        description="PropRate performance frontier over the t̄_buff grid "
        "plus CUBIC/BBR/Sprout/PCC reference points",
        modules=("repro.experiments.frontier",),
        bench="benchmarks/bench_fig10_frontier.py",
    ),
    Experiment(
        id="F11",
        artifact="Figure 11",
        description="Validation on the held-out LTE trace family",
        modules=("repro.traces.presets",),
        bench="benchmarks/bench_fig11_lte.py",
    ),
    Experiment(
        id="F12",
        artifact="Figure 12",
        description="Self-contention and contention against CUBIC",
        modules=("repro.experiments.scenarios",),
        bench="benchmarks/bench_fig12_contention.py",
    ),
    Experiment(
        id="F13",
        artifact="Figure 13",
        description="Inter-continental wired-path throughput for CUBIC, "
        "BBR, PR(L), PR(H), PR(max)",
        modules=("repro.experiments.scenarios",),
        bench="benchmarks/bench_fig13_wired.py",
    ),
    Experiment(
        id="F14",
        artifact="Figure 14",
        description="Downstream performance under a concurrent upstream "
        "CUBIC flow (congested uplink)",
        modules=("repro.experiments.scenarios",),
        bench="benchmarks/bench_fig14_uplink.py",
    ),
    Experiment(
        id="F12N",
        artifact="Figure 12 (N×M)",
        description="Systematic contention/fairness grid: algorithm "
        "mixes × flow counts {2,4,16,64} × start patterns × traces, "
        "reduced to Jain's index, goodput shares, and t_buff inflation",
        modules=(
            "repro.experiments.contention_grid",
            "repro.metrics.stats",
            "repro.report.heatmap",
        ),
        bench="benchmarks/bench_fairness_grid.py",
    ),
    Experiment(
        id="FL1",
        artifact="§3 fluid model (flow-level tier)",
        description="Multi-flow fluid engine: per-flow rate/t_buff "
        "trajectories on trace-driven capacity with cell-tower fan-in "
        "and handovers, cross-validated against the packet engine "
        "(scripts/check_fluid_xval.py)",
        modules=(
            "repro.fluid.engine",
            "repro.fluid.controllers",
            "repro.fluid.xval",
        ),
        bench="benchmarks/bench_fluid_scaling.py",
    ),
    Experiment(
        id="W1",
        artifact="Figures 1-2 (packet-level)",
        description="The buffer-delay sawtooth extracted from the full "
        "packet simulator and checked against the closed-form geometry",
        modules=("repro.metrics.telemetry", "repro.core.model"),
        bench="benchmarks/bench_waveform_packet.py",
    ),
    Experiment(
        id="R1",
        artifact="§5.3 replication",
        description="Headline Figure-7 claims replicated across 5 trace "
        "seeds with paired sign tests and bootstrap CIs",
        modules=("repro.experiments.replication", "repro.metrics.compare"),
        bench="benchmarks/bench_replication.py",
    ),
    Experiment(
        id="ABL",
        artifact="Ablations",
        description="Design-choice ablations: bandwidth filter, probe "
        "burst, timestamp granularity, delayed ACKs, adaptive target",
        modules=("repro.core.estimators", "repro.core.adaptive"),
        bench="benchmarks/bench_ablations.py",
    ),
    Experiment(
        id="D1",
        artifact="§6 discussion",
        description="Shallow buffers and CoDel AQM: PropRate vs CUBIC vs BBR",
        modules=("repro.sim.queues", "repro.experiments.scenarios"),
        bench="benchmarks/bench_disc_shallow_aqm.py",
    ),
    Experiment(
        id="ENV",
        artifact="§6 control-plane environment",
        description="step/observe/act policy interface over the packet "
        "engine: native replay through CcEnv is bit-identical "
        "(scripts/check_determinism.py --env) and PR(A) runs as an "
        "epoch-granular target policy",
        modules=(
            "repro.env",
            "repro.tcp.congestion.policy",
            "repro.core.adaptive",
        ),
        bench="benchmarks/bench_env_overhead.py",
    ),
    Experiment(
        id="PERF",
        artifact="Execution harness",
        description="Parallel batch execution over worker processes: "
        "engine events/sec and frontier wall-clock scaling at "
        "n_jobs ∈ {1, 2, 4}",
        modules=("repro.experiments.parallel", "repro.traces.cache"),
        bench="benchmarks/bench_parallel_scaling.py",
    ),
]

EXPERIMENTS: Dict[str, Experiment] = {e.id: e for e in _EXPERIMENTS}


def describe_all() -> str:
    """A printable index of every reproduced artifact."""
    lines = []
    for exp in _EXPERIMENTS:
        lines.append(f"{exp.id:6s} {exp.artifact:14s} {exp.bench}")
        lines.append(f"       {exp.description}")
    return "\n".join(lines)
