"""Flow-level fluid simulation tier (see docs/fluid.md).

The packet engine replays every delivery opportunity; this tier
integrates per-flow rate / buffer-delay trajectories on a fixed time
grid, scaling to thousands of flows fanned into cell towers.  Cross-
validated against the packet engine by scripts/check_fluid_xval.py.
"""

from repro.fluid.controllers import (
    AdaptivePropRateBank,
    ControllerBank,
    CubicBank,
    PolicyBank,
    PropRateBank,
)
from repro.fluid.engine import (
    FluidFlowResult,
    FluidFlowSpec,
    FluidReport,
    HandoverSpec,
    TowerSpec,
    TowerSummary,
    run_fluid,
)
from repro.fluid.scenarios import fan_in_scenario, tower_for_label

__all__ = [
    "AdaptivePropRateBank",
    "ControllerBank",
    "CubicBank",
    "PolicyBank",
    "PropRateBank",
    "FluidFlowResult",
    "FluidFlowSpec",
    "FluidReport",
    "HandoverSpec",
    "TowerSpec",
    "TowerSummary",
    "run_fluid",
    "fan_in_scenario",
    "tower_for_label",
]
