"""Figure 12: contention — self-contention and against CUBIC.

(a) Two flows of the same algorithm, the second starting 30 s late:
    PropRate and BBR share near-fairly (late/early ratio close to 1)
    while CUBIC's late flow gets roughly a quarter.
(b) Against CUBIC cross traffic: PR(H) contends reasonably, PR(L) keeps
    a smaller but non-zero share, BBR is less aggressive than CUBIC.
"""

from repro.core.proprate import PropRate
from repro.experiments.scenarios import contention_vs_cubic, self_contention
from repro.tcp.congestion import Bbr, Cubic
from repro.traces.presets import isp_trace

from _report import emit


def _traces():
    return (
        isp_trace("A", "stationary", duration=120.0),
        isp_trace("A", "stationary", duration=120.0, direction="uplink"),
    )


def _self_contention():
    down, up = _traces()
    ratios = {}
    for name, factory in (
        ("PropRate", lambda: PropRate(0.080)),
        ("CUBIC", Cubic),
        ("BBR", Bbr),
    ):
        first, second = self_contention(factory, down, up, name=name)
        ratios[name] = (first, second)
    return ratios


def _vs_cubic():
    down, up = _traces()
    out = {}
    for name, factory in (
        ("PR(H)", lambda: PropRate(0.080)),
        ("PR(L)", lambda: PropRate(0.020)),
        ("BBR", Bbr),
    ):
        out[name] = contention_vs_cubic(
            factory, down, up, cubic_first=True, name=name
        )
    return out


def test_fig12a_self_contention(benchmark):
    ratios = benchmark.pedantic(_self_contention, rounds=1, iterations=1)
    lines = [f"{'Algorithm':10s} {'flow1 KB/s':>11s} {'flow2 KB/s':>11s} {'ratio':>7s}"]
    computed = {}
    for name, (first, second) in ratios.items():
        ratio = second.throughput / max(1e-9, first.throughput)
        computed[name] = ratio
        lines.append(
            f"{name:10s} {first.throughput_kbps:11.1f} "
            f"{second.throughput_kbps:11.1f} {ratio:7.2f}"
        )
    emit("fig12a_self_contention", lines)

    # Paper: ~100% for PropRate and BBR, ~23% for CUBIC's late flow.
    assert computed["PropRate"] > 0.5
    assert computed["BBR"] > 0.5
    assert computed["CUBIC"] < computed["PropRate"]
    assert computed["CUBIC"] < 0.7


def test_fig12b_vs_cubic(benchmark):
    results = benchmark.pedantic(_vs_cubic, rounds=1, iterations=1)
    lines = [f"{'Algorithm':8s} {'algo KB/s':>10s} {'CUBIC KB/s':>11s} {'share':>7s}"]
    shares = {}
    for name, flows in results.items():
        algo, cubic = flows[name], flows["cubic"]
        share = algo.throughput / max(1e-9, algo.throughput + cubic.throughput)
        shares[name] = share
        lines.append(
            f"{name:8s} {algo.throughput_kbps:10.1f} "
            f"{cubic.throughput_kbps:11.1f} {share:7.2f}"
        )
    emit("fig12b_vs_cubic", lines)

    # PR(L) is not completely starved; PR(H) contends better than PR(L).
    assert shares["PR(L)"] > 0.02
    assert shares["PR(H)"] > shares["PR(L)"]
    assert shares["BBR"] > 0.15
