"""Tests for the live-run observatory: sampling budgets, pluggable
sinks, profiling hooks, the trace follower, and the ``repro watch``
dashboard.

The contracts under test:

* sampling only *thins the event trace* — results stay bit-identical,
  the sampled trace is a strict subset of the full one, and every
  rejected record is accounted for in ``run.telemetry.dropped.*``;
* profiling requires a tracer, attributes time to subsystem phases,
  and leaves the canonical summary untouched;
* the follower sees every record exactly once across file rotation and
  worker part files, so a dashboard on an in-progress run is exact.
"""

import io
import json
import os
import time

import pytest

import repro.obs as obs
from repro.experiments.parallel import RunSpec, proprate_spec, run_batch
from repro.experiments.runner import run_single_flow
from repro.core.proprate import PropRate
from repro.traces.cache import as_ref
from repro.traces.presets import isp_trace


def _down(duration=30.0):
    return isp_trace("A", "stationary", duration=duration)


def _read_jsonl(path):
    records = []
    for fpath in obs.iter_trace_files(path):
        with open(fpath, encoding="utf-8") as fh:
            records.extend(json.loads(line) for line in fh if line.strip())
    return records


# ----------------------------------------------------------------------
# Sampling policy
# ----------------------------------------------------------------------
class TestSamplingPolicy:
    def test_every_nth(self):
        budget = obs.KindBudget(every=3)
        admitted = [budget.admit(float(i)) for i in range(9)]
        assert admitted == [True, False, False] * 3

    def test_interval_keeps_first_of_burst(self):
        budget = obs.KindBudget(interval=1.0)
        assert budget.admit(0.0)
        assert not budget.admit(0.5)
        assert not budget.admit(0.99)
        assert budget.admit(1.0)

    def test_hard_cap(self):
        budget = obs.KindBudget(max_events=2)
        assert [budget.admit(float(i)) for i in range(4)] == \
            [True, True, False, False]

    def test_parse_grammar(self):
        policy = obs.SamplingPolicy.parse(
            "queue.sample:every=10,max=100;cc.nfl:interval=0.5;*:every=2"
        )
        assert policy.admit("queue.sample", 0.0)
        assert not policy.admit("queue.sample", 0.1)
        # bare-int shorthand == every=N
        short = obs.SamplingPolicy.parse("queue.sample:4")
        assert [short.admit("queue.sample", float(i)) for i in range(4)] == \
            [True, False, False, False]
        with pytest.raises(ValueError):
            obs.SamplingPolicy.parse("queue.sample:bogus=1")

    def test_protected_kinds_always_pass(self):
        policy = obs.SamplingPolicy.parse("*:every=1000")
        for kind in obs.PROTECTED_KINDS:
            for i in range(5):
                assert policy.admit(kind, float(i))
        assert policy.drain_dropped() == {}

    def test_drain_dropped_resets(self):
        policy = obs.SamplingPolicy.parse("x:every=2")
        for i in range(4):
            policy.admit("x", float(i))
        assert policy.drain_dropped() == {"x": 2}
        assert policy.drain_dropped() == {}

    def test_sampled_trace_strict_subset_with_exact_accounting(
            self, tmp_path):
        # The observatory's core honesty contract: the sampled run's
        # event stream is a strict subset of the full run's, and the
        # dropped counters account exactly for the difference.
        full_path = str(tmp_path / "full.jsonl")
        thin_path = str(tmp_path / "thin.jsonl")
        full_res = run_single_flow(
            PropRate, _down(), duration=4.0, measure_start=1.0,
            telemetry=full_path,
        )
        thin_res = run_single_flow(
            PropRate, _down(), duration=4.0, measure_start=1.0,
            telemetry=thin_path, sampling="queue.sample:every=7;*:every=3",
        )
        # Results are untouched by sampling.
        assert thin_res.summary()[:-1] == full_res.summary()[:-1]

        def keyed(path):
            # metrics/meta records legitimately differ (dropped
            # counters, wall-clock timings, pids) — exclude them.
            return [json.dumps(r, sort_keys=True)
                    for r in _read_jsonl(path)
                    if r["kind"] not in ("meta", "metrics")]

        full, thin = keyed(full_path), keyed(thin_path)
        assert set(thin) < set(full)
        (metrics_rec,) = [r for r in _read_jsonl(thin_path)
                          if r["kind"] == "metrics"]
        dropped_total = metrics_rec["metrics"]["run.telemetry.dropped_events"]
        assert dropped_total == len(full) - len(thin)
        by_kind = {k[len("run.telemetry.dropped."):]: v
                   for k, v in metrics_rec["metrics"].items()
                   if k.startswith("run.telemetry.dropped.")
                   and k != "run.telemetry.dropped_events"}
        assert sum(by_kind.values()) == dropped_total
        assert by_kind["queue.sample"] > 0

    def test_sampling_without_telemetry_rejected_by_batch(self):
        with pytest.raises(ValueError):
            run_batch([RunSpec(cc=proprate_spec(0.040),
                               downlink=as_ref(_down()), duration=2.0)],
                      sampling="*:every=2")

    def test_env_sampling_applies_to_env_tracer(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs.SAMPLE_ENV, "queue.sample:every=5")
        monkeypatch.setenv(obs.TELEMETRY_ENV,
                           str(tmp_path / "env-trace"))
        monkeypatch.chdir(tmp_path)
        run_single_flow(PropRate, _down(), duration=3.0, measure_start=1.0)
        (path,) = [str(tmp_path / p) for p in os.listdir(tmp_path)
                   if p.startswith("env-trace")]
        (metrics_rec,) = [r for r in _read_jsonl(path)
                          if r["kind"] == "metrics"]
        assert metrics_rec["metrics"]["run.telemetry.dropped.queue.sample"] > 0


# ----------------------------------------------------------------------
# Pluggable sinks
# ----------------------------------------------------------------------
class TestSinks:
    def test_ring_sink_bounds_and_counts(self):
        ring = obs.RingSink(max_records=3, header=False)
        for i in range(5):
            ring.write({"i": i})
        assert [r["i"] for r in ring.records()] == [2, 3, 4]
        assert ring.dropped_oldest == 2

    def test_ring_sink_as_tracer_target(self):
        ring = obs.RingSink(max_records=100)
        tracer = obs.Tracer(ring)
        tracer.emit("x", 1.0, flow=0, value=3)
        kinds = [r.get("kind") for r in ring.records()]
        assert kinds == ["meta", "x"]

    def test_stream_sink_callable_and_filelike(self):
        got = []
        stream = obs.StreamSink(got.append, header=False)
        stream.write({"i": 1})
        assert json.loads(got[0]) == {"i": 1}
        buf = io.StringIO()
        obs.StreamSink(buf, header=False).write({"i": 2})
        assert json.loads(buf.getvalue()) == {"i": 2}
        assert stream.lines == 1


# ----------------------------------------------------------------------
# Profiling hooks
# ----------------------------------------------------------------------
class TestProfiling:
    def _run(self, **kwargs):
        return run_single_flow(
            PropRate, _down(), duration=4.0, measure_start=1.0, **kwargs
        )

    def test_wrap_and_span_accumulate(self):
        prof = obs.PhaseProfiler()
        fn = prof.wrap("p", lambda x: x + 1)
        assert fn(1) == 2 and fn(2) == 3
        with prof.span("q"):
            pass
        reg = obs.MetricsRegistry()
        prof.flush_into(reg)
        snap = reg.snapshot()
        assert snap["run.timing.prof.p.calls"] == 2
        assert snap["run.timing.prof.q.calls"] == 1
        assert snap["run.timing.prof.p.wall_s"] >= 0.0
        # Flush resets: a second flush adds nothing.
        reg2 = obs.MetricsRegistry()
        prof.flush_into(reg2)
        assert reg2.snapshot() == {}

    def test_profile_without_tracer_raises(self):
        with pytest.raises(ValueError):
            self._run(profile=True)

    def test_env_profile_without_tracer_silently_off(self, monkeypatch):
        monkeypatch.setenv(obs.PROFILE_ENV, "1")
        result = self._run()
        assert result.metrics is None

    def test_profile_phases_in_trace(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        self._run(telemetry=path, profile=True)
        (metrics_rec,) = [r for r in _read_jsonl(path)
                          if r["kind"] == "metrics"]
        snap = metrics_rec["metrics"]
        for phase in ("ack.scoreboard", "link.serve", "delivery.pump"):
            assert snap[f"run.timing.prof.{phase}.calls"] > 0
            assert snap[f"run.timing.prof.{phase}.wall_s"] >= 0.0

    def test_profiled_summary_bit_identical(self, tmp_path):
        baseline = self._run()
        profiled = self._run(telemetry=str(tmp_path / "t.jsonl"),
                             profile=True)
        # prof keys carry "timing" and stay out of the canonical view.
        assert profiled.summary()[:-1] == baseline.summary()

    def test_profile_table_cli(self, tmp_path, capsys):
        from repro.__main__ import main

        path = str(tmp_path / "t.jsonl")
        self._run(telemetry=path, profile=True)
        main(["trace", path, "--profile"])
        out = capsys.readouterr().out
        assert "ack.scoreboard" in out and "wall s" in out

    def test_batch_profile_includes_dispatch(self, tmp_path):
        base = str(tmp_path / "batch.jsonl")
        specs = [RunSpec(cc=proprate_spec(0.040), downlink=as_ref(_down()),
                         duration=3.0, measure_start=1.0, name=f"r{i}")
                 for i in range(2)]
        run_batch(specs, n_jobs=2, telemetry=base, profile=True)
        (batch,) = [r for r in _read_jsonl(base)
                    if r["kind"] == "metrics" and r.get("scope") == "batch"]
        snap = batch["metrics"]
        assert snap["batch.timing.prof.sched.dispatch.calls"] == 2
        assert snap["run.timing.prof.ack.scoreboard.calls"] > 0


# ----------------------------------------------------------------------
# Trace follower
# ----------------------------------------------------------------------
class TestTraceFollower:
    def test_incremental_polls_across_rotation(self, tmp_path):
        from repro.obs.live import TraceFollower

        path = str(tmp_path / "t.jsonl")
        follower = TraceFollower(path)
        assert follower.poll() == []  # file may not exist yet
        sink = obs.JsonlSink(path, rotate_bytes=150, header=False)
        seen = []
        for i in range(30):
            sink.write({"t": float(i), "kind": "x", "i": i})
            sink.flush()
            if i % 7 == 0:
                seen.extend(follower.poll())
        sink.close()
        seen.extend(follower.poll())
        assert sink.rotations >= 1
        assert [r["i"] for r in seen] == list(range(30))
        assert follower.poll() == []  # nothing seen twice

    def test_partial_line_held_until_complete(self, tmp_path):
        from repro.obs.live import TraceFollower

        path = str(tmp_path / "t.jsonl")
        follower = TraceFollower(path)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"t":0.0,"kind":"x","i":0}\n{"t":1.0,"ki')
            fh.flush()
            assert [r["i"] for r in follower.poll()] == [0]
            fh.write('nd":"x","i":1}\n')
            fh.flush()
            assert [r["i"] for r in follower.poll()] == [1]

    def test_part_files_deduped_after_merge(self, tmp_path):
        # Records read live from a worker part file must not be seen
        # again when the coordinator copies them into the base trace.
        from repro.experiments.parallel import _BatchTelemetry
        from repro.obs.live import TraceFollower

        base = str(tmp_path / "batch.jsonl")
        follower = TraceFollower(base)
        bt = _BatchTelemetry(base)
        spec = bt.assign(0, RunSpec(cc=proprate_spec(0.040),
                                    downlink=as_ref(_down()), duration=2.0))
        part = obs.JsonlSink(spec.telemetry, header=False)
        for i in range(5):
            part.write({"t": float(i), "kind": "x", "i": i})
        part.flush()
        live = [r for r in follower.poll() if r.get("kind") == "x"]
        assert [r["i"] for r in live] == list(range(5))
        part.close()
        bt.finalize()
        merged = [r for r in follower.poll() if r.get("kind") == "x"]
        assert merged == []  # already seen via the part file


# ----------------------------------------------------------------------
# Dashboard + watch CLI
# ----------------------------------------------------------------------
class TestDashboard:
    @pytest.fixture(scope="class")
    def batch_trace(self, tmp_path_factory):
        base = str(tmp_path_factory.mktemp("live") / "batch.jsonl")
        down = as_ref(_down())
        specs = [RunSpec(cc=proprate_spec(t), downlink=down, duration=5.0,
                         measure_start=1.0, name=f"PR{i}")
                 for i, t in enumerate((0.020, 0.060))]
        run_batch(specs, n_jobs=2, telemetry=base,
                  sampling="queue.sample:every=2")
        return base

    def test_dashboard_renders_batch_panels(self, batch_trace):
        from repro.obs.live import DashboardState, TraceFollower

        state = DashboardState()
        state.ingest_all(TraceFollower(batch_trace).poll())
        assert state.complete
        frame = state.render(width=70, height=4)
        assert "sched" in frame and "2/2 done" in frame
        assert "buffering delay" in frame
        assert "state  |" in frame
        assert "sampling:" in frame and "queue.sample" in frame

    def test_watch_once_cli(self, batch_trace, capsys):
        from repro.__main__ import main

        main(["watch", batch_trace, "--once", "--width", "60"])
        out = capsys.readouterr().out
        assert "[complete]" in out
        assert "sched" in out and "buffering delay" in out

    def test_watch_frames_limit_no_clear(self, batch_trace):
        from repro.obs.live import watch

        buf = io.StringIO()
        frame = watch(batch_trace, interval=0.0, frames=2, width=60,
                      out=buf, clear=False)
        assert "sched" in frame
        assert "\x1b[2J" not in buf.getvalue()

    def test_watch_fluid_trace(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.fluid import fan_in_scenario, run_fluid

        path = str(tmp_path / "fluid.jsonl")
        flows, towers, handovers = fan_in_scenario(40, 2, 4.0)
        run_fluid(flows, towers, 4.0, measure_start=1.0,
                  handovers=handovers, telemetry=path, profile=True)
        main(["watch", path, "--once", "--width", "60"])
        out = capsys.readouterr().out
        assert "fluid towers" in out and "tbuff" in out
        (metrics_rec,) = [r for r in _read_jsonl(path)
                          if r["kind"] == "metrics"]
        assert metrics_rec["metrics"][
            "run.timing.prof.fluid.integrate.calls"] >= 1


# ----------------------------------------------------------------------
# Socket transport: tcp:// telemetry targets + watch --connect
# ----------------------------------------------------------------------
class TestSocketTransport:
    def _await_clients(self, server, n, deadline=5.0):
        import time as _time

        end = _time.monotonic() + deadline
        while server.client_count < n and _time.monotonic() < end:
            _time.sleep(0.005)
        assert server.client_count >= n

    def test_server_broadcasts_lines_and_drops_dead_clients(self):
        import socket as socketlib

        from repro.obs.net import TcpLineServer

        server = TcpLineServer()
        try:
            host, port = server.address
            a = socketlib.create_connection((host, port), timeout=5.0)
            b = socketlib.create_connection((host, port), timeout=5.0)
            self._await_clients(server, 2)
            server.broadcast('{"i":1}')
            for client in (a, b):
                assert client.makefile("rb").readline() == b'{"i":1}\n'
            b.close()
            # The dead client is discovered on a later broadcast and
            # silently dropped; the live one keeps receiving.
            for _ in range(20):
                server.broadcast('{"i":2}')
            assert a.makefile("rb").readline() == b'{"i":2}\n'
            a.close()
        finally:
            server.close()

    def test_stream_follower_round_trip_and_hangup(self):
        from repro.obs.live import StreamFollower
        from repro.obs.net import SocketStreamSink

        sink = SocketStreamSink()
        try:
            host, port = sink.address
            follower = StreamFollower(f"{host}:{port}")
            follower.poll()  # dials
            self._await_clients(sink.server, 1)
            for i in range(5):
                sink.write({"t": float(i), "kind": "x", "i": i})
            seen = []
            deadline = 50
            while len(seen) < 5 and deadline:
                seen.extend(r for r in follower.poll()
                            if r.get("kind") == "x")
                deadline -= 1
                time.sleep(0.01)
            assert [r["i"] for r in seen] == list(range(5))
        finally:
            sink.close()
        # Server gone: the follower notices and stops polling.
        deadline = 50
        while not follower.closed and deadline:
            follower.poll()
            deadline -= 1
            time.sleep(0.01)
        assert follower.closed
        assert follower.poll() == []

    def test_follower_rejects_bad_address(self):
        from repro.obs.live import StreamFollower

        with pytest.raises(ValueError, match="host:port"):
            StreamFollower("no-port-here")

    def test_parse_tcp_target(self):
        from repro.obs.net import parse_tcp_target

        assert parse_tcp_target("trace.jsonl") is None
        assert parse_tcp_target("tcp://0.0.0.0:9000") == ("0.0.0.0", 9000)
        assert parse_tcp_target("tcp://:9000") == ("127.0.0.1", 9000)
        with pytest.raises(ValueError, match="tcp://host:port"):
            parse_tcp_target("tcp://nope")

    def test_tcp_telemetry_target_streams_a_run(self):
        from repro.obs.live import StreamFollower
        from repro.obs.net import SocketStreamSink

        tracer, owned = obs.resolve_tracer("tcp://127.0.0.1:0")
        assert owned and isinstance(tracer.sink, SocketStreamSink)
        try:
            host, port = tracer.sink.address
            follower = StreamFollower(f"{host}:{port}")
            follower.poll()
            self._await_clients(tracer.sink.server, 1)
            run_single_flow(PropRate, _down(), duration=3.0,
                            measure_start=1.0, telemetry=tracer)
            records = []
            deadline = 100
            while deadline and not any(
                    r.get("kind") == "run.end" for r in records):
                records.extend(follower.poll())
                deadline -= 1
                time.sleep(0.01)
            kinds = {r.get("kind") for r in records}
            assert {"run.start", "queue.sample", "run.end"} <= kinds
        finally:
            tracer.close()

    def test_watch_connect_exits_on_completion(self):
        import threading

        from repro.obs.live import watch
        from repro.obs.net import TcpLineServer

        server = TcpLineServer()
        host, port = server.address

        def feed():
            self._await_clients(server, 1)
            for i in range(8):
                server.broadcast(obs.encode(
                    {"t": 0.1 * i, "kind": "queue.sample", "link": "down",
                     "len": i}))
            server.broadcast(obs.encode({"t": 1.0, "kind": "run.end"}))

        feeder = threading.Thread(target=feed, daemon=True)
        feeder.start()
        try:
            buf = io.StringIO()
            frame = watch(connect=f"{host}:{port}", interval=0.01,
                          width=60, out=buf, clear=False)
            assert "[complete]" in frame
            assert "buffering delay" in frame
        finally:
            server.close()
        feeder.join(timeout=5.0)

    def test_watch_connect_exits_on_hangup(self):
        import threading

        from repro.obs.live import watch
        from repro.obs.net import TcpLineServer

        server = TcpLineServer()
        host, port = server.address

        def hang_up():
            # No completion record ever: the server just goes away once
            # the watcher has connected, and watch must still exit.
            self._await_clients(server, 1)
            server.close()

        closer = threading.Thread(target=hang_up, daemon=True)
        closer.start()
        buf = io.StringIO()
        frame = watch(connect=f"{host}:{port}", interval=0.01, width=60,
                      out=buf, clear=False)
        assert "[disconnected]" in frame
        closer.join(timeout=5.0)

    def test_watch_cli_requires_exactly_one_source(self, tmp_path):
        from repro.__main__ import main

        with pytest.raises(SystemExit, match="exactly one"):
            main(["watch"])
        with pytest.raises(SystemExit, match="exactly one"):
            main(["watch", str(tmp_path / "t.jsonl"),
                  "--connect", "127.0.0.1:1"])
