"""Property-based end-to-end reliability tests.

Whatever the loss pattern, a finite transfer must complete with every
segment delivered exactly once to the application — the core TCP
invariant the SACK scoreboard, retransmission queue and RTO machinery
exist to uphold.
"""

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator
from repro.tcp.congestion.base import RateCongestionControl, WindowCongestionControl
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender


class _Window(WindowCongestionControl):
    name = "test-window"

    def __init__(self, cwnd=8.0):
        super().__init__()
        self.cwnd = cwnd

    def on_congestion(self, sample):
        self.cwnd = max(2.0, self.cwnd / 2)

    def on_ack(self, sample):
        self.cwnd = min(64.0, self.cwnd + sample.newly_acked / self.cwnd)

    def on_rto(self):
        self.cwnd = 2.0


class _Rate(RateCongestionControl):
    name = "test-rate"

    def __init__(self, rate=450_000.0):
        super().__init__()
        self.pacing_rate = rate


class _LossyWire:
    """Loopback wire dropping a given set of (seq, transmission#) pairs."""

    def __init__(self, sim, drop_plan, delay=0.01):
        self.sim = sim
        self.drop_plan = dict(drop_plan)  # seq -> number of drops left
        self.delay = delay
        self.receiver = None
        self.sender = None

    def send_data(self, pkt):
        remaining = self.drop_plan.get(pkt.seq, 0)
        if remaining > 0:
            self.drop_plan[pkt.seq] = remaining - 1
            return
        self.sim.schedule(self.delay, lambda p=pkt: self.receiver.receive(p))

    def send_ack(self, pkt):
        self.sim.schedule(self.delay, lambda p=pkt: self.sender.on_ack_packet(p))


def _run_transfer(cc, total, drop_plan, horizon=120.0):
    sim = Simulator()
    wire = _LossyWire(sim, drop_plan)
    delivered = []
    wire.receiver = TcpReceiver(
        sim, 0, send_ack=wire.send_ack, ts_granularity=0.0,
        on_data=lambda p, now: delivered.append(p.seq),
    )
    done = []
    sender = TcpSender(
        sim, 0, cc, send_packet=wire.send_data, total_segments=total,
        on_complete=lambda: done.append(sim.now),
    )
    wire.sender = sender
    sender.start()
    sim.run(until=horizon)
    return sender, delivered, done


@st.composite
def _drop_plans(draw):
    total = draw(st.integers(min_value=5, max_value=60))
    n_lossy = draw(st.integers(min_value=0, max_value=min(15, total)))
    seqs = draw(
        st.lists(
            st.integers(min_value=0, max_value=total - 1),
            min_size=n_lossy, max_size=n_lossy, unique=True,
        )
    )
    plan = {
        seq: draw(st.integers(min_value=1, max_value=3)) for seq in seqs
    }
    return total, plan


class TestReliableDelivery:
    @given(_drop_plans())
    @settings(max_examples=60, deadline=None)
    def test_window_cc_delivers_everything(self, plan):
        total, drops = plan
        sender, delivered, done = _run_transfer(_Window(), total, drops)
        assert done, f"transfer did not complete: snd_una={sender.snd_una}"
        assert set(delivered) == set(range(total))

    @given(_drop_plans())
    @settings(max_examples=40, deadline=None)
    def test_rate_cc_delivers_everything(self, plan):
        total, drops = plan
        sender, delivered, done = _run_transfer(_Rate(), total, drops)
        assert done, f"transfer did not complete: snd_una={sender.snd_una}"
        assert set(delivered) == set(range(total))

    @given(_drop_plans())
    @settings(max_examples=40, deadline=None)
    def test_application_sees_each_segment_once(self, plan):
        """The receiver's cumulative/OOO bookkeeping must count each
        unique segment exactly once even under duplication."""
        total, drops = plan
        sim = Simulator()
        wire = _LossyWire(sim, drops)
        unique = []
        seen = set()

        def on_data(p, now):
            if p.seq not in seen:
                seen.add(p.seq)
                unique.append(p.seq)

        wire.receiver = TcpReceiver(
            sim, 0, send_ack=wire.send_ack, ts_granularity=0.0, on_data=on_data
        )
        sender = TcpSender(sim, 0, _Window(), send_packet=wire.send_data,
                           total_segments=total)
        wire.sender = sender
        sender.start()
        sim.run(until=120.0)
        assert wire.receiver.unique_segments == total
        assert sorted(unique) == list(range(total))

    def test_every_segment_dropped_four_times_still_completes(self):
        total = 12
        drops = {seq: 3 for seq in range(total)}
        sender, delivered, done = _run_transfer(_Window(), total, drops, horizon=300.0)
        assert done
        assert set(delivered) == set(range(total))


class TestPipeInvariant:
    """The incremental pipe counter must equal the scoreboard truth at
    every step of any loss pattern."""

    @given(_drop_plans())
    @settings(max_examples=50, deadline=None)
    def test_pipe_matches_scoreboard_throughout(self, plan):
        total, drops = plan
        sim = Simulator()
        wire = _LossyWire(sim, drops)
        wire.receiver = TcpReceiver(
            sim, 0, send_ack=wire.send_ack, ts_granularity=0.0
        )
        sender = TcpSender(
            sim, 0, _Window(), send_packet=wire.send_data, total_segments=total
        )
        wire.sender = sender
        sender.start()
        steps = 0
        while sim.step() and steps < 20000:
            steps += 1
            assert sender.inflight == sender.debug_expected_pipe(), (
                f"pipe drift at t={sim.now}: "
                f"{sender.inflight} != {sender.debug_expected_pipe()}"
            )
        assert sender.complete or steps == 20000

    @given(_drop_plans())
    @settings(max_examples=30, deadline=None)
    def test_pipe_matches_for_rate_sender(self, plan):
        total, drops = plan
        sim = Simulator()
        wire = _LossyWire(sim, drops)
        wire.receiver = TcpReceiver(
            sim, 0, send_ack=wire.send_ack, ts_granularity=0.0
        )
        sender = TcpSender(
            sim, 0, _Rate(), send_packet=wire.send_data, total_segments=total
        )
        wire.sender = sender
        sender.start()
        steps = 0
        while sim.step() and steps < 60000:
            steps += 1
            if steps % 50 == 0:
                assert sender.inflight == sender.debug_expected_pipe()
