"""Runtime correctness instrumentation (invariant auditor + recorder).

Enable per call with ``audit=True`` on the experiment entry points, per
process with ``REPRO_AUDIT=1`` (the benchmarks and workers inherit it),
or from the CLI with ``--audit``.  See DESIGN.md, "The audit layer".
"""

from __future__ import annotations

import os

from repro.debug.auditor import InvariantAuditor, InvariantViolation
from repro.debug.recorder import FlightRecorder

__all__ = [
    "AUDIT_ENV",
    "FlightRecorder",
    "InvariantAuditor",
    "InvariantViolation",
    "audit_enabled",
]

#: Environment switch: any value but ""/"0"/"false" enables auditing in
#: every run whose ``audit`` argument is left at None.
AUDIT_ENV = "REPRO_AUDIT"


def audit_enabled(audit=None) -> bool:
    """Resolve an ``audit`` knob: explicit wins, else the environment."""
    if audit is not None:
        return bool(audit)
    return os.environ.get(AUDIT_ENV, "").strip().lower() not in (
        "",
        "0",
        "false",
    )
