"""Packets and TCP options used by the simulation.

The simulation models TCP segments at packet granularity: sequence numbers
count MSS-sized segments rather than bytes (``Packet.seq`` is a segment
index).  This keeps SACK scoreboards and retransmission bookkeeping simple
while preserving every signal the congestion-control algorithms consume:
cumulative ACK numbers, SACK blocks, and the TCP timestamp option
(TSval/TSecr) that PropRate's sender-side estimators rely on (paper §4.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: Maximum segment size: payload bytes carried by one data packet.
MSS = 1448

#: Wire size of a full data packet (payload + TCP/IP headers).
DATA_PACKET_BYTES = 1500

#: Wire size of a pure ACK (40 bytes of headers + options).
ACK_PACKET_BYTES = 60

_packet_ids = itertools.count()


@dataclass(frozen=True, slots=True)
class SackBlock:
    """A SACK block over segment indices: ``[start, end)`` received."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty SACK block [{self.start}, {self.end})")

    def __contains__(self, seq: int) -> bool:
        return self.start <= seq < self.end

    @property
    def count(self) -> int:
        return self.end - self.start


@dataclass(slots=True)
class Packet:
    """A simulated TCP packet (data segment or ACK).

    Attributes
    ----------
    flow_id:
        Identifies the flow the packet belongs to; used to demultiplex
        when several flows share a bottleneck.
    seq:
        Segment index for data packets; meaningless for pure ACKs.
    ack:
        Cumulative ACK: the next segment index expected by the receiver.
    is_ack:
        True for pure ACK packets travelling on the return path.
    tsval / tsecr:
        TCP timestamp option.  On data packets ``tsval`` is the sender's
        clock when the packet was queued for delivery; on ACKs ``tsval``
        is the *receiver's* clock (quantised to its timestamp granularity)
        and ``tsecr`` echoes the data packet's ``tsval`` per RFC 7323.
    sacks:
        SACK blocks (on ACKs).
    size:
        Wire size in bytes, used by links for byte accounting.
    sent_time:
        Simulation time the packet was handed to the network by its
        origin host (set by the sender; used by metrics).
    retransmit:
        True if this data packet is a retransmission.
    """

    flow_id: int
    seq: int = 0
    ack: int = 0
    is_ack: bool = False
    tsval: float = 0.0
    tsecr: float = -1.0
    sacks: List[SackBlock] = field(default_factory=list)
    size: int = DATA_PACKET_BYTES
    sent_time: float = 0.0
    retransmit: bool = False
    uid: int = field(default_factory=lambda: next(_packet_ids))
    #: Time the packet entered the bottleneck queue (set by the queue).
    enqueue_time: Optional[float] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_ack:
            return f"<ACK flow={self.flow_id} ack={self.ack} ts={self.tsval:.3f}>"
        kind = "RTX" if self.retransmit else "DATA"
        return f"<{kind} flow={self.flow_id} seq={self.seq}>"


def make_data_packet(
    flow_id: int,
    seq: int,
    now: float,
    tsecr: float = -1.0,
    retransmit: bool = False,
    size: int = DATA_PACKET_BYTES,
) -> Packet:
    """Build a data segment stamped with the sender clock."""
    return Packet(
        flow_id=flow_id,
        seq=seq,
        tsval=now,
        tsecr=tsecr,
        size=size,
        sent_time=now,
        retransmit=retransmit,
    )


def make_ack_packet(
    flow_id: int,
    ack: int,
    receiver_ts: float,
    echoed_tsval: float,
    sacks: Optional[List[SackBlock]] = None,
) -> Packet:
    """Build a pure ACK carrying the receiver timestamp and SACK blocks."""
    return Packet(
        flow_id=flow_id,
        ack=ack,
        is_ack=True,
        tsval=receiver_ts,
        tsecr=echoed_tsval,
        sacks=list(sacks) if sacks else [],
        size=ACK_PACKET_BYTES,
    )


def merge_sack_ranges(ranges: List[Tuple[int, int]]) -> List[SackBlock]:
    """Coalesce ``(start, end)`` half-open ranges into sorted SACK blocks."""
    if not ranges:
        return []
    ordered = sorted(ranges)
    merged: List[Tuple[int, int]] = [ordered[0]]
    for start, end in ordered[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return [SackBlock(s, e) for s, e in merged if e > s]
