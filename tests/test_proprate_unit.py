"""Unit tests for PropRate's state machine (Figure 5(b)) via a fake host."""

import pytest

from repro.core.proprate import PROBE_BURST, PropRate, PropRateState
from repro.core.model import Regime

from tests.helpers import AckFeeder, FakeHost


def _proprate(target=0.040, **kwargs):
    cc = PropRate(target_buffer_delay=target, **kwargs)
    host = FakeHost(srtt=0.05, min_rtt=0.04)
    feeder = AckFeeder(cc, host)
    return cc, feeder


def _warm_to_fill(cc, feeder, max_acks=400):
    """Feed steady ACKs until Slow Start's burst-doubling loop settles."""
    for _ in range(max_acks):
        feeder.ack(dt=0.004)
        if cc.state is PropRateState.FILL:
            return
    raise AssertionError(f"never left slow start: {cc.state}")


class TestSlowStart:
    def test_starts_in_slow_start_with_probe_burst(self):
        cc, feeder = _proprate()
        assert cc.state is PropRateState.SLOW_START
        assert cc.take_burst() == PROBE_BURST
        assert cc.pacing_rate == 0.0

    def test_exits_to_fill_once_rate_stabilises(self):
        cc, feeder = _proprate()
        feeder.run(5, dt=0.001)   # all inside one 10 ms receiver tick
        assert cc.state is PropRateState.SLOW_START
        _warm_to_fill(cc, feeder)
        assert cc.pacing_rate > 0.0

    def test_single_tick_burst_doubles(self):
        cc, feeder = _proprate()
        cc.take_burst()
        # All 10 segments acked within one receiver timestamp tick.
        for _ in range(10):
            feeder.ack(dt=0.0005)
        assert cc._burst_size == 2 * PROBE_BURST
        assert cc.take_burst() == 2 * PROBE_BURST

    def test_derives_params_from_rtt(self):
        cc, feeder = _proprate(target=0.080)
        feeder.run(20, dt=0.004)
        assert cc.params is not None
        assert cc.params.regime is Regime.BUFFER_FULL
        assert cc.params.kf > 1.0 > cc.params.kd


class TestFillDrainSwitching:
    def _warm(self, target=0.040):
        cc, feeder = _proprate(target=target)
        _warm_to_fill(cc, feeder)
        return cc, feeder

    def test_fill_until_threshold_crossed(self):
        cc, feeder = self._warm()
        feeder.run(10, dt=0.01, queue_delay=0.0)
        assert cc.state is PropRateState.FILL

    def test_switch_to_drain_above_threshold(self):
        cc, feeder = self._warm()
        feeder.run(20, dt=0.01, queue_delay=cc.threshold + 0.06)
        assert cc.state is PropRateState.DRAIN

    def test_drain_back_to_fill_below_threshold(self):
        cc, feeder = self._warm()
        feeder.run(20, dt=0.01, queue_delay=cc.threshold + 0.06)
        assert cc.state is PropRateState.DRAIN
        feeder.run(20, dt=0.01, queue_delay=0.0)
        assert cc.state is PropRateState.FILL

    def test_fill_rate_is_kf_rho(self):
        cc, feeder = self._warm()
        assert cc.state is PropRateState.FILL
        assert cc.pacing_rate == pytest.approx(cc.params.kf * cc.rho, rel=1e-6)

    def test_drain_rate_is_kd_rho(self):
        cc, feeder = self._warm()
        feeder.run(20, dt=0.01, queue_delay=cc.threshold + 0.06)
        assert cc.pacing_rate == pytest.approx(cc.params.kd * cc.rho, rel=1e-6)

    def test_round_modes_follow_state(self):
        """Paper §4.3: round up in Fill, down in Drain."""
        cc, feeder = self._warm()
        assert cc.round_mode == "up"
        feeder.run(20, dt=0.01, queue_delay=cc.threshold + 0.06)
        assert cc.round_mode == "down"


class TestMonitorState:
    def _drained(self):
        cc, feeder = _proprate()
        _warm_to_fill(cc, feeder)
        feeder.run(20, dt=0.01, queue_delay=cc.threshold + 0.08)
        assert cc.state is PropRateState.DRAIN
        return cc, feeder

    def test_long_drain_enters_monitor(self):
        cc, feeder = self._drained()
        cap = cc._drain_packet_cap()
        for _ in range(cap + 1):
            cc.on_packet_sent(0, feeder.host.now, retransmit=False)
        feeder.ack(dt=0.01, queue_delay=cc.threshold + 0.08)
        assert cc.state is PropRateState.MONITOR
        assert cc.monitor_entries == 1

    def test_monitor_requests_probe_burst(self):
        cc, feeder = self._drained()
        cc.take_burst()
        cap = cc._drain_packet_cap()
        for _ in range(cap + 1):
            cc.on_packet_sent(0, feeder.host.now, retransmit=False)
        feeder.ack(dt=0.01, queue_delay=cc.threshold + 0.08)
        assert cc.take_burst() == PROBE_BURST

    def test_monitor_rate_is_half_drain_rate(self):
        cc, feeder = self._drained()
        rho_before = cc.rho
        kd = cc.params.kd
        cap = cc._drain_packet_cap()
        for _ in range(cap + 1):
            cc.on_packet_sent(0, feeder.host.now, retransmit=False)
        feeder.ack(dt=0.01, queue_delay=cc.threshold + 0.08)
        assert cc.pacing_rate == pytest.approx(0.5 * kd * rho_before, rel=0.2)

    def test_monitor_returns_to_fill_when_rate_recovered(self):
        cc, feeder = self._drained()
        cap = cc._drain_packet_cap()
        for _ in range(cap + 1):
            cc.on_packet_sent(0, feeder.host.now, retransmit=False)
        feeder.ack(dt=0.01, queue_delay=cc.threshold + 0.08)
        assert cc.state is PropRateState.MONITOR
        # Burst ACKs arrive at full link speed across several ticks.
        feeder.run(30, dt=0.01, queue_delay=0.0)
        assert cc.state in (PropRateState.FILL, PropRateState.DRAIN)


class TestRtoHandling:
    def test_rto_returns_to_slow_start(self):
        cc, feeder = _proprate()
        _warm_to_fill(cc, feeder)
        cc.take_burst()
        cc.on_rto()
        assert cc.state is PropRateState.SLOW_START
        assert cc.pacing_rate == 0.0
        assert cc.take_burst() == PROBE_BURST

    def test_congestion_event_is_ignored(self):
        """Paper §4.3: loss needs no special handling."""
        cc, feeder = _proprate()
        _warm_to_fill(cc, feeder)
        state = cc.state
        feeder.ack(dt=0.01, in_recovery=True, newly_lost=3)
        sample = feeder.ack(dt=0.01)
        cc.on_congestion(sample)
        assert cc.state is state


class TestWindowCap:
    def test_inflight_cap_zeroes_pacing(self):
        cc, feeder = _proprate()
        _warm_to_fill(cc, feeder)
        assert cc.pacing_rate > 0
        feeder.host.inflight = 100_000
        cc.on_tick(feeder.host.now)
        assert cc.pacing_rate == 0.0

    def test_normal_inflight_keeps_pacing(self):
        cc, feeder = _proprate()
        _warm_to_fill(cc, feeder)
        feeder.host.inflight = 1
        rate = cc.pacing_rate
        cc.on_tick(feeder.host.now)
        assert cc.pacing_rate == rate


class TestRhoHold:
    def test_rho_held_through_a_normal_drain_phase(self):
        cc, feeder = _proprate()
        _warm_to_fill(cc, feeder)
        # Enter Drain (the transition ACK itself still updates rho in
        # Fill), then verify the hold keeps rho essentially intact over
        # a normal drain phase (a few hundred ms of self-limited ACKs).
        feeder.run(3, dt=0.05, queue_delay=cc.threshold + 0.06)
        assert cc.state is PropRateState.DRAIN
        rho_at_entry = cc.rho
        feeder.run(6, dt=0.05, queue_delay=cc.threshold + 0.06)  # ~300 ms
        assert cc.state is PropRateState.DRAIN
        assert cc.rho >= 0.85 * rho_at_entry

    def test_rho_hold_decays_under_prolonged_drain(self):
        """Pinned in Drain for many seconds (e.g. by cross traffic), the
        held estimate must converge to the measured share instead of
        ratcheting upward forever."""
        cc, feeder = _proprate()
        _warm_to_fill(cc, feeder)
        feeder.run(3, dt=0.05, queue_delay=cc.threshold + 0.06)
        assert cc.state is PropRateState.DRAIN
        rho_at_entry = cc.rho
        # 10+ seconds of slow, self-limited ACKs.
        feeder.run(250, dt=0.05, queue_delay=cc.threshold + 0.06)
        assert cc.state is not PropRateState.FILL
        assert cc.rho < 0.7 * rho_at_entry

    def test_rho_tracks_down_in_fill(self):
        cc, feeder = _proprate()
        _warm_to_fill(cc, feeder)
        rho_before = cc.rho
        # Fill-state ACKs arrive much slower: capacity genuinely dropped.
        feeder.run(60, dt=0.08, queue_delay=0.0)
        assert cc.state is PropRateState.FILL
        assert cc.rho < rho_before


class TestConfiguration:
    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            PropRate(target_buffer_delay=0.0)

    def test_feedback_disabled_keeps_threshold_fixed(self):
        cc, feeder = _proprate(enable_feedback=False)
        _warm_to_fill(cc, feeder)
        t0 = cc.threshold
        feeder.run(200, dt=0.01, queue_delay=0.15)
        assert cc.threshold == t0

    def test_table3_metadata(self):
        cc = PropRate()
        assert cc.is_rate_based
        assert "Rate-based" in cc.sending_regulation
        assert cc.congestion_trigger == "Buffer Delay"
