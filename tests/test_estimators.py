"""Tests for the sender-side receive-rate and buffer-delay estimators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.estimators import (
    BufferDelayEstimator,
    MaxFilterRateEstimator,
    ReceiveRateEstimator,
)


class TestReceiveRateEstimator:
    def test_no_estimate_before_two_timestamps(self):
        est = ReceiveRateEstimator()
        est.on_ack(0.00, 1500)
        assert not est.has_estimate
        est.on_ack(0.00, 3000)  # same receiver tick: still one sample
        assert not est.has_estimate
        est.on_ack(0.01, 4500)
        assert est.has_estimate

    def test_rate_from_two_ticks(self):
        est = ReceiveRateEstimator()
        est.on_ack(0.00, 0)
        est.on_ack(0.01, 3000)
        assert est.rate == pytest.approx(300_000.0)

    def test_same_tick_keeps_latest_cumulative(self):
        est = ReceiveRateEstimator()
        est.on_ack(0.00, 0)
        est.on_ack(0.01, 1500)
        est.on_ack(0.01, 3000)
        assert est.instantaneous_rate == pytest.approx(300_000.0)

    def test_stale_timestamps_ignored(self):
        est = ReceiveRateEstimator()
        est.on_ack(0.02, 3000)
        est.on_ack(0.01, 6000)  # receiver clock went backwards: drop
        assert est.distinct_timestamps == 1

    def test_window_limited_to_n_timestamps(self):
        est = ReceiveRateEstimator(window_timestamps=5, max_span=100.0, min_span=0.0)
        for i in range(20):
            est.on_ack(i * 0.01, i * 1500)
        assert est.distinct_timestamps == 5

    def test_min_span_keeps_extra_timestamps(self):
        """With a fine receiver clock, 50 ticks span almost no time; the
        window is floored in seconds so the rate stays measurable."""
        est = ReceiveRateEstimator(window_timestamps=5, max_span=100.0, min_span=0.2)
        for i in range(100):
            est.on_ack(i * 0.01, i * 1500)
        first_ts = est._samples[0][0]
        last_ts = est._samples[-1][0]
        assert last_ts - first_ts >= 0.19

    def test_rejects_bad_min_span(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            ReceiveRateEstimator(min_span=1.0, max_span=0.5)

    def test_window_limited_to_max_span(self):
        est = ReceiveRateEstimator(window_timestamps=50, max_span=0.5)
        for i in range(100):
            est.on_ack(i * 0.1, i * 1500)
        first_ts = est._samples[0][0]
        assert first_ts >= 9.9 - 0.5 - 1e-9

    def test_idle_gap_expires_whole_window(self):
        est = ReceiveRateEstimator()  # max_span=0.5
        est.on_ack(0.0, 0)
        est.on_ack(0.1, 50_000)
        assert est.instantaneous_rate == pytest.approx(500_000.0)
        # A 3 s idle gap: a rate formed across it would average over the
        # silence (10 kB/s here) instead of the true burst rate.
        est.on_ack(3.1, 80_000)
        assert est.instantaneous_rate is None
        assert est.distinct_timestamps == 1
        assert est.rate == pytest.approx(500_000.0)  # EWMA carries over
        # The next ACK pairs with the post-gap sample only.
        est.on_ack(3.2, 130_000)
        assert est.instantaneous_rate == pytest.approx(500_000.0)

    def test_idle_gap_on_cold_estimator(self):
        est = ReceiveRateEstimator()
        est.on_ack(0.0, 0)
        est.on_ack(3.0, 1500)  # gap > max_span before any rate formed
        assert not est.has_estimate
        assert est.distinct_timestamps == 1

    def test_constant_rate_estimated_exactly(self):
        est = ReceiveRateEstimator()
        for i in range(100):
            est.on_ack(i * 0.01, i * 1500)
        assert est.rate == pytest.approx(150_000.0, rel=1e-6)

    def test_ewma_smooths_rate_changes(self):
        est = ReceiveRateEstimator(window_timestamps=3, max_span=10.0)
        for i in range(50):
            est.on_ack(i * 0.01, i * 1500)
        rate_before = est.rate
        # Rate doubles; the EWMA must move toward it gradually.
        for j in range(3):
            est.on_ack(0.5 + j * 0.01, 75_000 + j * 3000)
        assert rate_before < est.rate < 300_000.0

    def test_reset_clears_samples(self):
        est = ReceiveRateEstimator()
        est.on_ack(0.0, 0)
        est.on_ack(0.01, 1500)
        est.reset()
        assert not est.has_estimate
        assert est.distinct_timestamps == 0

    def test_reset_keep_rate_preserves_ewma(self):
        est = ReceiveRateEstimator()
        est.on_ack(0.0, 0)
        est.on_ack(0.01, 1500)
        rate = est.rate
        est.reset(keep_rate=True)
        assert est.rate == rate
        assert est.distinct_timestamps == 0

    def test_rejects_tiny_window(self):
        with pytest.raises(ValueError):
            ReceiveRateEstimator(window_timestamps=1)

    @given(
        rate=st.floats(min_value=1e4, max_value=1e7),
        granularity=st.sampled_from([0.001, 0.01, 0.05]),
    )
    @settings(max_examples=50, deadline=None)
    def test_recovers_any_constant_rate(self, rate, granularity):
        est = ReceiveRateEstimator()
        for i in range(200):
            t = i * granularity
            est.on_ack(t, int(rate * t))
        assert est.rate == pytest.approx(rate, rel=0.05)


class TestBufferDelayEstimator:
    def test_first_sample_is_baseline(self):
        est = BufferDelayEstimator()
        assert est.on_ack(0.0, 0.020) == 0.0

    def test_tbuff_is_rd_minus_rdmin(self):
        est = BufferDelayEstimator()
        est.on_ack(0.0, 0.020)
        assert est.on_ack(0.1, 0.055) == pytest.approx(0.035)

    def test_lower_rd_rebaselines(self):
        est = BufferDelayEstimator()
        est.on_ack(0.0, 0.030)
        est.on_ack(0.1, 0.020)
        assert est.tbuff == 0.0
        assert est.rd_min == pytest.approx(0.020)

    def test_baseline_expires_with_window(self):
        est = BufferDelayEstimator(window=1.0)
        est.on_ack(0.0, 0.020)
        est.on_ack(5.0, 0.050)  # the 0.020 baseline is long gone
        assert est.tbuff == 0.0

    def test_smooth_tracks_raw(self):
        est = BufferDelayEstimator()
        est.on_ack(0.0, 0.020)
        for i in range(50):
            est.on_ack(0.01 * (i + 1), 0.060)
        assert est.tbuff_smooth == pytest.approx(0.040, rel=0.01)

    def test_smooth_damps_single_spike(self):
        est = BufferDelayEstimator()
        est.on_ack(0.0, 0.020)
        for i in range(20):
            est.on_ack(0.01 * (i + 1), 0.020)
        est.on_ack(0.3, 0.120)  # one 100 ms outlier
        assert est.tbuff == pytest.approx(0.100)
        assert est.tbuff_smooth < 0.05

    def test_rebase_forgets_history(self):
        est = BufferDelayEstimator()
        est.on_ack(0.0, 0.020)
        est.on_ack(0.1, 0.060)
        est.rebase()
        # After the rebase the next sample defines a fresh baseline.
        assert est.on_ack(0.2, 0.060) == 0.0

    def test_rebase_seeds_baseline_from_last_sample(self):
        est = BufferDelayEstimator()
        est.on_ack(0.0, 0.020)
        est.on_ack(0.1, 0.060)
        est.rebase()
        # The latest RD becomes the new baseline immediately — t_buff
        # must read 0 now, not stay undefined until the next ACK.
        assert est.rd_min == pytest.approx(0.060)
        assert est.tbuff == 0.0
        assert est.on_ack(0.2, 0.070) == pytest.approx(0.010)

    def test_rebase_before_any_sample_is_noop(self):
        est = BufferDelayEstimator()
        est.rebase()
        assert est.rd_min is None
        assert est.tbuff is None

    def test_reset_clears_everything(self):
        est = BufferDelayEstimator()
        est.on_ack(0.0, 0.020)
        est.reset()
        assert est.tbuff is None
        assert est.tbuff_smooth is None
        assert est.last_rd is None
        assert est.samples == 0

    def test_negative_excursions_clamped(self):
        est = BufferDelayEstimator()
        est.on_ack(0.0, 0.020)
        assert est.on_ack(0.1, 0.015) >= 0.0


class TestMaxFilterRateEstimator:
    def test_windowed_max_of_instantaneous_rates(self):
        est = MaxFilterRateEstimator(filter_window=2.0)
        est.on_ack(0.0, 0)
        est.on_ack(0.1, 50_000)  # 500 kB/s
        est.on_ack(0.2, 80_000)  # window rate drops
        assert est.rate == pytest.approx(500_000.0)

    def test_reset_clears_filter_epoch(self):
        est = MaxFilterRateEstimator(filter_window=2.0)
        est.on_ack(10.0, 0)
        est.on_ack(10.1, 50_000)
        est.reset()
        assert est.rate is None
        assert est._last_ts is None
        # A fresh measurement epoch with an earlier clock must rebuild
        # cleanly — a stale _last_ts would expire the new samples
        # against the previous epoch's timebase.
        est.on_ack(0.0, 0)
        est.on_ack(0.1, 30_000)
        assert est.rate == pytest.approx(300_000.0)

    def test_reset_keep_rate_preserves_filter(self):
        est = MaxFilterRateEstimator(filter_window=2.0)
        est.on_ack(0.0, 0)
        est.on_ack(0.1, 50_000)
        rate = est.rate
        est.reset(keep_rate=True)
        assert est.rate == rate
