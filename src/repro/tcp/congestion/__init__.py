"""Pluggable congestion-control algorithms.

Every algorithm the paper evaluates (Table 3) is implemented here behind
the common API of :mod:`repro.tcp.congestion.base`:

==========  =================  ==========================
Algorithm   Regulation         Congestion trigger
==========  =================  ==========================
PropRate    rate-based         buffer delay
RRE         rate-based         buffer delay
BBR         rate-based         (none)
PCC         rate-based         utility function
PROTEUS     rate-based         rate forecast
Sprout      window-based       rate forecast
Verus       window-based       utility function
LEDBAT      window-based       buffer delay + packet loss
CUBIC       cwnd-based         packet loss
NewReno     cwnd-based         packet loss
Vegas       cwnd-based         delay (loss fallback)
Westwood    cwnd-based         packet loss
==========  =================  ==========================

PropRate itself lives in :mod:`repro.core.proprate`; it subclasses the
same :class:`~repro.tcp.congestion.base.RateCongestionControl` base.
"""

from repro.tcp.congestion.base import (
    AckSample,
    CongestionControl,
    RateCongestionControl,
    WindowCongestionControl,
)
from repro.tcp.congestion.bbr import Bbr
from repro.tcp.congestion.policy import (
    PolicyDriven,
    WindowPolicyDriven,
    policy_adapter,
)
from repro.tcp.congestion.cubic import Cubic
from repro.tcp.congestion.ledbat import Ledbat
from repro.tcp.congestion.pcc import Pcc
from repro.tcp.congestion.proteus import Proteus
from repro.tcp.congestion.reno import NewReno
from repro.tcp.congestion.rre import Rre
from repro.tcp.congestion.sprout import Sprout
from repro.tcp.congestion.vegas import Vegas
from repro.tcp.congestion.verus import Verus
from repro.tcp.congestion.westwood import Westwood

__all__ = [
    "AckSample",
    "Bbr",
    "CongestionControl",
    "Cubic",
    "Ledbat",
    "NewReno",
    "Pcc",
    "PolicyDriven",
    "Proteus",
    "RateCongestionControl",
    "Rre",
    "Sprout",
    "Vegas",
    "Verus",
    "WindowCongestionControl",
    "WindowPolicyDriven",
    "Westwood",
    "policy_adapter",
]
