"""Packet capture: a tcpdump-lite for the simulator.

The paper's measurements were taken with tcpdump; debugging a
congestion-control loop in simulation needs the same visibility.  A
:class:`PacketCapture` tees a link's (or path's) packet stream into an
in-memory log that can be filtered, summarised, and written out in a
one-line-per-packet text format.

Typical use::

    capture = PacketCapture()
    path = DuplexPath(sim, config)
    capture.tap_path(path)
    ... run ...
    capture.save("flow.pcaplite")
    print(capture.summary())
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Union

from repro.sim.packet import Packet


@dataclass(frozen=True)
class CaptureRecord:
    """One packet observation at a named tap point."""

    time: float
    point: str
    flow_id: int
    kind: str          # "data", "rtx" or "ack"
    seq: int
    ack: int
    size: int
    tsval: float
    tsecr: float
    sack_blocks: int

    def format(self) -> str:
        if self.kind == "ack":
            extra = f"ack={self.ack} sacks={self.sack_blocks}"
        else:
            extra = f"seq={self.seq}"
        return (
            f"{self.time:12.6f} {self.point:12s} flow={self.flow_id} "
            f"{self.kind:4s} {extra} len={self.size} "
            f"tsval={self.tsval:.3f} tsecr={self.tsecr:.3f}"
        )


def _record(time: float, point: str, packet: Packet) -> CaptureRecord:
    if packet.is_ack:
        kind = "ack"
    elif packet.retransmit:
        kind = "rtx"
    else:
        kind = "data"
    return CaptureRecord(
        time=time,
        point=point,
        flow_id=packet.flow_id,
        kind=kind,
        seq=packet.seq,
        ack=packet.ack,
        size=packet.size,
        tsval=packet.tsval,
        tsecr=packet.tsecr,
        sack_blocks=len(packet.sacks),
    )


class PacketCapture:
    """Accumulates :class:`CaptureRecord` objects from tap points."""

    def __init__(self, limit: Optional[int] = None) -> None:
        self.records: List[CaptureRecord] = []
        self.limit = limit
        self.dropped_records = 0

    # ------------------------------------------------------------------
    # Tapping
    # ------------------------------------------------------------------
    def tap(
        self, sink: Callable[[Packet], None], point: str, clock
    ) -> Callable[[Packet], None]:
        """Wrap a packet sink so traversals are recorded.

        ``clock`` is any object with a ``now`` attribute (the simulator).
        """

        def tapped(packet: Packet) -> None:
            self._add(_record(clock.now, point, packet))
            sink(packet)

        return tapped

    def tap_path(self, path) -> None:
        """Record every delivery out of a DuplexPath's two links."""
        sim = path.sim
        for link, point in (
            (path.forward_link, "downlink"),
            (path.reverse_link, "uplink"),
        ):
            original = link.on_deliver
            if original is None:
                continue
            link.on_deliver = self.tap(original, point, sim)

    def _add(self, record: CaptureRecord) -> None:
        if self.limit is not None and len(self.records) >= self.limit:
            self.dropped_records += 1
            return
        self.records.append(record)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def filter(
        self,
        flow_id: Optional[int] = None,
        kind: Optional[str] = None,
        point: Optional[str] = None,
    ) -> List[CaptureRecord]:
        out = self.records
        if flow_id is not None:
            out = [r for r in out if r.flow_id == flow_id]
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        if point is not None:
            out = [r for r in out if r.point == point]
        return list(out)

    def summary(self) -> str:
        counts = {}
        for r in self.records:
            key = (r.point, r.kind)
            counts[key] = counts.get(key, 0) + 1
        lines = [f"{len(self.records)} packets captured"]
        for (point, kind), n in sorted(counts.items()):
            lines.append(f"  {point:12s} {kind:4s} {n}")
        if self.dropped_records:
            lines.append(f"  ({self.dropped_records} over capture limit)")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        with open(path, "w", encoding="ascii") as fh:
            self.write(fh)

    def write(self, fh: io.TextIOBase) -> None:
        for record in self.records:
            fh.write(record.format() + "\n")
