"""Drive an env with a policy to completion."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.env.core import CcEnv, Observation
from repro.env.policies import Policy
from repro.experiments.runner import FlowResult

__all__ = ["RolloutResult", "rollout"]


@dataclass
class RolloutResult:
    """Outcome of one complete episode."""

    steps: int
    total_reward: float
    result: FlowResult
    final_obs: Observation


def rollout(env: CcEnv, policy: Optional[Policy] = None,
            close: bool = True) -> RolloutResult:
    """Reset ``env`` and run it to the episode horizon.

    ``policy`` (None = pure native replay) chooses an action each
    epoch.  The env is closed afterwards unless ``close=False`` (for
    repeated episodes on one env).
    """
    try:
        obs = env.reset()
        if policy is not None:
            policy.reset(env, obs)
        steps = 0
        total_reward = 0.0
        done = env.done
        while not done:
            action = policy.action(obs) if policy is not None else None
            obs, reward, done, _info = env.step(action)
            steps += 1
            total_reward += reward
        result = env.result()
    finally:
        if close:
            env.close()
    return RolloutResult(
        steps=steps,
        total_reward=total_reward,
        result=result,
        final_obs=obs,
    )
