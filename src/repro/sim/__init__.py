"""Discrete-event network simulation substrate (Cellsim equivalent).

This subpackage provides the network substrate the paper's evaluation runs
on: an event loop (:mod:`repro.sim.engine`), packets with TCP options
(:mod:`repro.sim.packet`), finite drop-tail and CoDel queues
(:mod:`repro.sim.queues`), trace-driven cellular links and constant-rate
wired links (:mod:`repro.sim.link`), and duplex path wiring
(:mod:`repro.sim.network`).
"""

from repro.sim.engine import Event, Simulator
from repro.sim.link import CellularLink, WiredLink
from repro.sim.network import DuplexPath, PathConfig
from repro.sim.packet import Packet, SackBlock
from repro.sim.queues import CoDelQueue, DropTailQueue

__all__ = [
    "CellularLink",
    "CoDelQueue",
    "DropTailQueue",
    "DuplexPath",
    "Event",
    "Packet",
    "PathConfig",
    "SackBlock",
    "Simulator",
    "WiredLink",
]
