"""Tests for the algorithm line-up, CPU probes and experiment registry."""

import pathlib

import pytest

from repro.experiments.algorithms import (
    PR_TARGETS,
    baseline_names,
    paper_algorithms,
    proprate_factory,
)
from repro.experiments.cpu import instrument, instrumented_factory
from repro.experiments.registry import EXPERIMENTS, describe_all
from repro.core.proprate import PropRate
from repro.tcp.congestion import Cubic
from repro.tcp.congestion.base import CongestionControl

from tests.helpers import AckFeeder, FakeHost


class TestAlgorithms:
    def test_lineup_covers_table3(self):
        algos = paper_algorithms()
        for name in ("PR(L)", "PR(M)", "PR(H)", "CUBIC", "BBR", "Sprout",
                     "PCC", "Verus", "LEDBAT", "Vegas", "Westwood",
                     "PROTEUS", "RRE", "NewReno"):
            assert name in algos

    def test_factories_produce_fresh_instances(self):
        factory = paper_algorithms()["CUBIC"]
        assert factory() is not factory()

    def test_proprate_factories_use_paper_targets(self):
        algos = paper_algorithms()
        for name, target in PR_TARGETS.items():
            cc = algos[name]()
            assert isinstance(cc, PropRate)
            assert cc.target_buffer_delay == target

    def test_proprate_factory_kwargs(self):
        cc = proprate_factory(0.030, enable_feedback=False)()
        assert cc.target_buffer_delay == 0.030
        assert not cc.feedback.enabled

    def test_baseline_names_exclude_proprate(self):
        names = baseline_names()
        assert "PR(L)" not in names
        assert "CUBIC" in names

    def test_every_factory_builds_a_cc(self):
        for name, factory in paper_algorithms().items():
            assert isinstance(factory(), CongestionControl), name


class TestCpuInstrumentation:
    def test_control_time_accumulates(self):
        cc = instrument(Cubic())
        feeder = AckFeeder(cc, FakeHost())
        feeder.run(100)
        assert cc.control_seconds > 0.0
        assert cc.control_calls >= 100

    def test_behaviour_unchanged(self):
        plain, timed = Cubic(), instrument(Cubic())
        f1, f2 = AckFeeder(plain, FakeHost()), AckFeeder(timed, FakeHost())
        f1.run(50)
        f2.run(50)
        assert plain.cwnd == pytest.approx(timed.cwnd)

    def test_instrumented_factory(self):
        factory = instrumented_factory(Cubic)
        cc = factory()
        assert hasattr(cc, "control_seconds")
        assert isinstance(cc, Cubic)

    def test_rate_cc_keeps_class(self):
        cc = instrument(PropRate(0.040))
        assert cc.is_rate_based
        assert isinstance(cc, PropRate)


class TestRegistry:
    def test_every_paper_artifact_present(self):
        for exp_id in ("T2", "T3", "T4", "F1-3", "F7", "F8", "F9", "F10",
                       "F11", "F12", "F13", "F14", "D1"):
            assert exp_id in EXPERIMENTS

    def test_bench_files_exist(self):
        root = pathlib.Path(__file__).resolve().parent.parent
        for exp in EXPERIMENTS.values():
            assert (root / exp.bench).exists(), exp.bench

    def test_modules_importable(self):
        import importlib

        for exp in EXPERIMENTS.values():
            for module in exp.modules:
                importlib.import_module(module)

    def test_describe_all_lists_everything(self):
        text = describe_all()
        for exp in EXPERIMENTS.values():
            assert exp.id in text
