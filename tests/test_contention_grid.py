"""The N×M contention/fairness grid (repro.experiments.contention_grid)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.contention_grid import (
    FULL_GRID,
    MIXES,
    REDUCED_GRID,
    CellResult,
    GridCellSpec,
    GridConfig,
    build_contention_flows,
    expand_grid,
    goodput_shares,
    grid_size,
    reduce_cell,
    run_grid,
)
from repro.experiments.runner import DEFAULT_PROP_DELAY
from repro.metrics.stats import DelaySummary, jain_fairness
from repro.report.export import grid_to_json
from repro.report.heatmap import render_grid_heatmap, render_grid_heatmaps

#: A one-cell grid small enough to run inside a unit test.
TINY_GRID = GridConfig(
    mixes=("pr-vs-cubic",),
    flow_counts=(2,),
    patterns=("staggered",),
    traces=("wired:4mbps",),
    stagger=0.25,
    settle=1.0,
    overlap=3.0,
)


class _FakeDelay:
    def __init__(self, mean):
        self.mean = mean


class _FakeResult:
    """The slice of FlowResult the reducer reads."""

    def __init__(self, name, throughput, delay_mean):
        self.name = name
        self.throughput = throughput
        self.delay = _FakeDelay(delay_mean)


def _fake_spec(**overrides):
    fields = dict(
        mix="pr-vs-cubic",
        n_flows=2,
        pattern="staggered",
        trace_label="wired:4mbps",
        entries=MIXES["pr-vs-cubic"],
        downlink=None,
        stagger=0.25,
        settle=1.0,
        overlap=3.0,
    )
    fields.update(overrides)
    return GridCellSpec(**fields)


class TestBuilder:
    def test_cyclic_mix_and_window(self):
        flows, duration = build_contention_flows(
            MIXES["pr-vs-cubic"], 4, "staggered",
            stagger=0.5, settle=2.0, overlap=10.0,
        )
        assert [f.name for f in flows] == [
            "pr-00", "cubic-01", "pr-02", "cubic-03"
        ]
        assert [f.start for f in flows] == [0.0, 0.5, 1.0, 1.5]
        # Common overlap: from the last start + settle, for `overlap`.
        assert all(f.measure_start == 1.5 + 2.0 for f in flows)
        assert all(f.measure_end == 3.5 + 10.0 for f in flows)
        assert duration == 13.5

    def test_simultaneous_and_late_half_patterns(self):
        flows, _ = build_contention_flows(
            MIXES["pr-self"], 3, "simultaneous",
            stagger=0.5, settle=1.0, overlap=5.0,
        )
        assert [f.start for f in flows] == [0.0, 0.0, 0.0]

        flows, _ = build_contention_flows(
            MIXES["pr-self"], 4, "late-half",
            stagger=0.5, settle=1.0, overlap=5.0,
        )
        starts = [f.start for f in flows]
        assert starts == [0.0, 0.0, 1.0, 1.0]

    def test_flows_sorted_by_start_then_name(self):
        flows, _ = build_contention_flows(
            MIXES["bbr-vs-cubic"], 4, "simultaneous",
            stagger=0.5, settle=1.0, overlap=5.0,
        )
        keys = [(f.start, f.name) for f in flows]
        assert keys == sorted(keys)

    def test_name_width_scales_past_hundred_flows(self):
        flows, _ = build_contention_flows(
            MIXES["pr-self"], 101, "simultaneous",
            stagger=0.5, settle=1.0, overlap=5.0,
        )
        assert flows[0].name == "pr-000"
        assert len({f.name for f in flows}) == 101

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            build_contention_flows(
                MIXES["pr-self"], 0, "simultaneous", 0.5, 1.0, 5.0
            )
        with pytest.raises(ValueError, match="start pattern"):
            build_contention_flows(
                MIXES["pr-self"], 2, "reverse", 0.5, 1.0, 5.0
            )


class TestConfig:
    def test_validates_axes(self):
        with pytest.raises(ValueError, match="unknown mix"):
            GridConfig(("nope",), (2,), ("staggered",), ("wired:4mbps",))
        with pytest.raises(ValueError, match="start pattern"):
            GridConfig(("pr-self",), (2,), ("sideways",), ("wired:4mbps",))
        with pytest.raises(ValueError, match="flow counts"):
            GridConfig(("pr-self",), (0,), ("staggered",), ("wired:4mbps",))

    def test_expand_matches_grid_size(self):
        for config in (TINY_GRID, REDUCED_GRID, FULL_GRID):
            baselines, cells = expand_grid(config)
            assert len(baselines) + len(cells) == grid_size(config)

    def test_expand_shares_trace_refs(self):
        baselines, cells = expand_grid(TINY_GRID)
        refs = {id(s.downlink) for s in baselines + cells}
        assert len(refs) == 1    # one trace label → one shared object

    def test_unknown_trace_label_raises(self):
        config = GridConfig(
            ("pr-self",), (2,), ("staggered",), ("satellite:geo",)
        )
        with pytest.raises(ValueError, match="trace label"):
            expand_grid(config)


class TestShares:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            goodput_shares([])

    def test_all_zero_is_all_zero(self):
        assert goodput_shares([0.0, 0.0, 0.0]) == [0.0, 0.0, 0.0]

    def test_normalizes(self):
        assert goodput_shares([3.0, 1.0]) == [0.75, 0.25]

    # -- satellite: property tests against the per-flow reference ------

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
            min_size=1,
            max_size=64,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_shares_property(self, allocations):
        shares = goodput_shares(allocations)
        assert len(shares) == len(allocations)
        total = sum(allocations)
        if total == 0.0:
            assert shares == [0.0] * len(allocations)
        else:
            assert abs(sum(shares) - 1.0) < 1e-9
            for alloc, share in zip(allocations, shares):
                assert share == pytest.approx(alloc / total)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
            min_size=1,
            max_size=64,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_jain_property(self, allocations):
        jain = jain_fairness(allocations)
        total = sum(allocations)
        if total == 0.0:
            # All-zero allocation is vacuously fair.
            assert jain == 1.0
            return
        # Reference formula, computed independently of numpy.  Subnormal
        # allocations can underflow v*v to zero — the library reports
        # such a sample as vacuously fair, and so does the reference.
        n = len(allocations)
        denom = n * sum(v * v for v in allocations)
        reference = 1.0 if denom == 0.0 else total ** 2 / denom
        assert jain == pytest.approx(reference, rel=1e-12)
        assert 1.0 / n - 1e-12 <= jain <= 1.0 + 1e-12

    def test_jain_single_flow_is_fair(self):
        assert jain_fairness([123.0]) == pytest.approx(1.0)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
            min_size=1,
            max_size=16,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_reducer_agrees_with_reference(self, throughputs):
        """The grid reducer's jain/shares match the standalone helpers."""
        spec = _fake_spec(n_flows=len(throughputs))
        results = [
            _FakeResult(f"pr-{i:02d}", t, DEFAULT_PROP_DELAY + 0.01)
            for i, t in enumerate(throughputs)
        ]
        cell = reduce_cell(spec, results, baselines={})
        assert cell.jain == pytest.approx(jain_fairness(throughputs))
        assert cell.shares == goodput_shares(throughputs)
        assert cell.throughputs == [float(t) for t in throughputs]


class TestReducer:
    def test_inflation_against_per_label_baselines(self):
        spec = _fake_spec()
        results = [
            _FakeResult("pr-00", 1000.0, DEFAULT_PROP_DELAY + 0.040),
            _FakeResult("cubic-01", 3000.0, DEFAULT_PROP_DELAY + 0.080),
        ]
        baselines = {
            ("pr", "wired:4mbps"): 0.020,
            ("cubic", "wired:4mbps"): 0.040,
        }
        cell = reduce_cell(spec, results, baselines)
        assert cell.per_flow_inflation == [
            pytest.approx(2.0), pytest.approx(2.0)
        ]
        assert cell.tbuff_inflation == pytest.approx(2.0)
        assert cell.queueing_delay == pytest.approx(0.060)

    def test_starved_flow_contributes_nothing(self):
        spec = _fake_spec()
        results = [
            _FakeResult("pr-00", 1000.0, DEFAULT_PROP_DELAY + 0.040),
            _FakeResult("cubic-01", 0.0, float("nan")),
        ]
        baselines = {("pr", "wired:4mbps"): 0.020}
        cell = reduce_cell(spec, results, baselines)
        assert cell.per_flow_inflation == [pytest.approx(2.0), None]
        assert cell.tbuff_inflation == pytest.approx(2.0)
        # NaN never leaks into the JSON rendering.
        data = cell.to_dict()
        assert data["per_flow_inflation"] == [pytest.approx(2.0), None]
        json.dumps(data, allow_nan=False)

    def test_all_starved_cell_is_well_defined(self):
        spec = _fake_spec()
        results = [
            _FakeResult("pr-00", 0.0, float("nan")),
            _FakeResult("cubic-01", 0.0, float("nan")),
        ]
        cell = reduce_cell(spec, results, baselines={})
        assert cell.jain == 1.0
        assert cell.shares == [0.0, 0.0]
        assert cell.queueing_delay is None
        assert cell.tbuff_inflation is None
        json.dumps(cell.to_dict(), allow_nan=False)

    def test_missing_or_zero_baseline_yields_none(self):
        spec = _fake_spec()
        results = [
            _FakeResult("pr-00", 1000.0, DEFAULT_PROP_DELAY + 0.040),
            _FakeResult("cubic-01", 500.0, DEFAULT_PROP_DELAY + 0.040),
        ]
        baselines = {("pr", "wired:4mbps"): 0.0}   # cubic absent entirely
        cell = reduce_cell(spec, results, baselines)
        assert cell.per_flow_inflation == [None, None]
        assert cell.tbuff_inflation is None


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def report(self):
        return run_grid(TINY_GRID, n_jobs=1, audit=True)

    def test_cells_reduced(self, report):
        assert len(report.cells) == 1
        cell = report.cells[0]
        assert cell.mix == "pr-vs-cubic"
        assert cell.n_flows == 2
        assert cell.flow_names == ["pr-00", "cubic-01"]
        assert 0.5 - 1e-9 <= cell.jain <= 1.0 + 1e-9
        assert abs(sum(cell.shares) - 1.0) < 1e-6

    def test_baselines_cover_mix_entries(self, report):
        assert set(report.baselines) == {
            ("pr", "wired:4mbps"), ("cubic", "wired:4mbps")
        }

    def test_json_round_trip(self, report, tmp_path):
        path = grid_to_json(report.to_dict(), tmp_path / "grid.json")
        data = json.loads(path.read_text(encoding="ascii"))
        assert data["format"] == "repro.grid/1"
        assert data["config"]["mixes"] == ["pr-vs-cubic"]
        assert len(data["cells"]) == 1
        assert "pr@wired:4mbps" in data["baselines"]

    def test_serial_parallel_byte_identical(self, report):
        parallel = run_grid(TINY_GRID, n_jobs=2, audit=True)
        a = json.dumps(report.to_dict(), sort_keys=True)
        b = json.dumps(parallel.to_dict(), sort_keys=True)
        assert a == b

    def test_heatmap_renders(self, report):
        text = render_grid_heatmap(report, "jain")
        assert "Jain's fairness index" in text
        assert "wired:4mbps" in text
        assert "pr-vs-cubic" in text
        both = render_grid_heatmaps(report)
        assert "t_buff inflation" in both

    def test_heatmap_handles_empty_and_missing(self):
        assert render_grid_heatmap({"cells": []}) == "(empty grid)"
        cells = [
            CellResult(
                mix="pr-self", n_flows=2, pattern="staggered",
                trace="wired:4mbps", flow_names=[], throughputs=[],
                shares=[], jain=1.0, queueing_delay=None,
                tbuff_inflation=None,
            ).to_dict()
        ]
        text = render_grid_heatmap({"cells": cells}, "tbuff_inflation")
        assert "--" in text


class TestTelemetry:
    def test_cell_trace_carries_grid_tags(self, tmp_path):
        import repro.obs as obs
        from repro.obs.analyze import read_trace

        baselines, cells = expand_grid(TINY_GRID)
        spec = cells[0]
        path = str(tmp_path / "cell.jsonl")
        tagged = GridCellSpec(
            **{**spec.__dict__, "telemetry": path}
        )
        tagged.execute()
        records = read_trace(path)
        headers = [r for r in records if r["kind"] == obs.GRID_CELL]
        assert len(headers) == 1
        head = headers[0]
        assert head["mix"] == "pr-vs-cubic"
        assert head["flows"] == 2
        assert head["pattern"] == "staggered"
        assert head["trace"] == "wired:4mbps"
        assert head["baseline"] is False
        # The run's own events follow the header in the same trace.
        assert len(records) > 1
