"""Bottleneck queues: finite drop-tail FIFO and CoDel AQM.

The paper's evaluation uses a 2,000-packet drop-tail buffer (the authors'
enhancement of Cellsim, sized per the base-station measurement study the
paper cites).  The CoDel queue implements the §6 discussion experiment on
shallow buffers and active queue management.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.sim.packet import Packet

#: Default bottleneck buffer size used throughout the evaluation (packets).
DEFAULT_BUFFER_PACKETS = 2000

DropCallback = Callable[[Packet], None]


class DropTailQueue:
    """A FIFO queue that drops arriving packets when full.

    ``capacity`` is in packets, matching how Cellsim and base-station
    buffers are sized in the paper.  A drop callback can be registered to
    feed loss metrics.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_BUFFER_PACKETS,
        on_drop: Optional[DropCallback] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self.on_drop = on_drop
        self._queue: Deque[Packet] = deque()
        self.drops = 0
        self.enqueued = 0
        #: Incremental byte accounting (kept exact for the auditor's
        #: byte-conservation invariant): bytes currently queued and
        #: total bytes ever accepted.
        self.bytes = 0
        self.enqueued_bytes = 0

    def push(self, packet: Packet, now: float) -> bool:
        """Enqueue ``packet``; returns False (and drops) if the queue is full."""
        if len(self._queue) >= self.capacity:
            self.drops += 1
            if self.on_drop is not None:
                self.on_drop(packet)
            return False
        packet.enqueue_time = now
        self._queue.append(packet)
        self.enqueued += 1
        self.bytes += packet.size
        self.enqueued_bytes += packet.size
        return True

    def pop(self, now: float) -> Optional[Packet]:
        """Dequeue the head packet, or None if empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self.bytes -= packet.size
        return packet

    def drain_opportunity(self, now: float, budget: int) -> List[Packet]:
        """Dequeue the head packets fitting one delivery opportunity.

        Exactly the scalar serve loop — pop while the head fits the
        remaining byte ``budget`` — collapsed into one call so the link's
        fast path pays a single method dispatch per opportunity.  For a
        plain drop-tail queue this bypasses :meth:`peek`/:meth:`pop`
        entirely (the auditor taps this method too, so accounting still
        sees every dequeue).
        """
        q = self._queue
        out: List[Packet] = []
        while q:
            head = q[0]
            size = head.size
            if size > budget:
                break
            q.popleft()
            self.bytes -= size
            budget -= size
            out.append(head)
        return out

    def peek(self) -> Optional[Packet]:
        return self._queue[0] if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def byte_length(self) -> int:
        return self.bytes


class CoDelQueue(DropTailQueue):
    """Controlled-Delay AQM (Nichols & Jacobson, 2012) on top of drop-tail.

    Implements the standard CoDel dequeue-side control law: when the
    sojourn time of dequeued packets has exceeded ``target`` continuously
    for at least ``interval``, enter the dropping state and drop packets
    at times spaced by ``interval / sqrt(count)``.

    Used only for the §6 discussion experiment; the main evaluation uses
    plain :class:`DropTailQueue`.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_BUFFER_PACKETS,
        target: float = 0.005,
        interval: float = 0.100,
        on_drop: Optional[DropCallback] = None,
    ) -> None:
        super().__init__(capacity=capacity, on_drop=on_drop)
        self.target = target
        self.interval = interval
        self._first_above_time = 0.0
        self._dropping = False
        self._drop_next = 0.0
        self._count = 0
        self._last_count = 0
        self.codel_drops = 0
        self.codel_dropped_bytes = 0

    # ------------------------------------------------------------------
    def _control_law(self, t: float) -> float:
        return t + self.interval / (self._count ** 0.5)

    def _should_drop(self, packet: Packet, now: float) -> bool:
        """Update the 'sojourn above target' tracking for one dequeue."""
        sojourn = now - (packet.enqueue_time or now)
        if sojourn < self.target or len(self._queue) == 0:
            self._first_above_time = 0.0
            return False
        if self._first_above_time == 0.0:
            self._first_above_time = now + self.interval
            return False
        return now >= self._first_above_time

    def pop(self, now: float) -> Optional[Packet]:
        packet = super().pop(now)
        if packet is None:
            self._dropping = False
            return None

        ok_to_drop = self._should_drop(packet, now)
        if self._dropping:
            if not ok_to_drop:
                self._dropping = False
            else:
                while self._dropping and now >= self._drop_next:
                    self._drop_packet(packet)
                    self._count += 1
                    packet = super().pop(now)
                    if packet is None or not self._should_drop(packet, now):
                        self._dropping = False
                        return packet
                    self._drop_next = self._control_law(self._drop_next)
        elif ok_to_drop:
            self._drop_packet(packet)
            packet = super().pop(now)
            self._dropping = True
            # Start with a count related to the last dropping interval so
            # repeated congestion ramps the drop rate (per the CoDel paper).
            delta = self._count - self._last_count
            if delta > 1 and now - self._drop_next < 16 * self.interval:
                self._count = delta
            else:
                self._count = 1
            self._last_count = self._count
            self._drop_next = self._control_law(now)
        return packet

    def drain_opportunity(self, now: float, budget: int) -> List[Packet]:
        """CoDel must keep its dequeue-side control law: mirror the
        scalar serve loop shape exactly (peek for the budget check, then
        a stateful :meth:`pop` that may drop and substitute packets)."""
        out: List[Packet] = []
        while True:
            head = self.peek()
            if head is None or head.size > budget:
                break
            packet = self.pop(now)
            if packet is None:
                break
            budget -= packet.size
            out.append(packet)
        return out

    def _drop_packet(self, packet: Packet) -> None:
        self.codel_drops += 1
        self.codel_dropped_bytes += packet.size
        self.drops += 1
        if self.on_drop is not None:
            self.on_drop(packet)
