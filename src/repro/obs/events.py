"""Event schema for the telemetry spine.

Every record written to a trace is a flat JSON object with at least:

* ``t`` -- simulated seconds (scheduler records use wall seconds since
  batch start; the ``kind`` disambiguates).
* ``kind`` -- one of the constants below.

plus kind-specific fields documented in ``docs/observability.md``.
Records from merged parallel traces additionally carry ``run`` (the
spec index within the batch).  The first record of every file is a
``meta`` header naming :data:`FORMAT`.
"""

#: Format tag written in the ``meta`` header of every trace file.
FORMAT = "repro.obs/1"

#: Header record at the top of each trace file.
META = "meta"

# -- congestion control ------------------------------------------------
#: State machine transition (SLOW_START/FILL/DRAIN/MONITOR).
CC_STATE = "cc.state"
#: NFL threshold update applied (threshold, t_actual, target).
CC_NFL = "cc.nfl"
#: Estimator snapshot at each BDP-window boundary (rho, t_buff, T).
CC_ESTIMATOR = "cc.estimator"
#: Estimator epoch: rate reset or RD_min rebase/reset.
CC_EPOCH = "cc.epoch"
#: New losses detected (entering recovery).
CC_LOSS = "cc.loss"
#: Run-granular loss marks: the scoreboard runs newly marked lost.
CC_LOSS_RUNS = "cc.loss-runs"
#: Retransmission timeout fired.
CC_RTO = "cc.rto"
#: Recovery point passed; loss episode over.
CC_RECOVERY = "cc.recovery"

# -- link layer --------------------------------------------------------
#: Service-opportunity gap exceeding OUTAGE_GAP with packets queued.
LINK_OUTAGE = "link.outage"
#: First delivery after an outage edge.
LINK_RECOVER = "link.recover"
#: Propagation delay changed mid-run (handover model).
LINK_HANDOVER = "link.handover"
#: Fast path served several opportunities in one quiescent batch
#: (opportunities, packets, bytes, span).
LINK_BATCH = "link.batch"

# -- periodic sampling -------------------------------------------------
#: Bottleneck queue occupancy sample (link, len).
QUEUE_SAMPLE = "queue.sample"

# -- invariant auditor -------------------------------------------------
#: Auditor invariant violation (check, message, context).
AUDIT_VIOLATION = "audit.violation"
#: Flight-recorder dump written to disk (path, violations).
AUDIT_DUMP = "audit.dump"

# -- run / batch lifecycle ---------------------------------------------
#: Experiment run started (duration, links, flows).
RUN_START = "run.start"
#: Experiment run finished (events processed).
RUN_END = "run.end"
#: Metrics registry snapshot (scope: run | batch).
METRICS = "metrics"

# -- contention grid ---------------------------------------------------
#: Grid-cell header written at the top of a cell's trace: the cell
#: coordinates (mix, flows, pattern, trace, baseline) tag every record
#: that follows in the per-cell part file.
GRID_CELL = "grid.cell"

# -- fluid tier --------------------------------------------------------
#: Fluid run header (duration, dt, flows, towers, handovers).
FLUID_RUN = "fluid.run"
#: Periodic per-tower sample (tower, tbuff, capacity, arrival, flows).
FLUID_TOWER = "fluid.tower"
#: A handover migrated a flow between towers (flow, src, dst).
FLUID_HANDOVER = "fluid.handover"
#: Tower buffer overflow registered as a loss epoch (family, flows).
FLUID_LOSS = "fluid.loss"
#: Fluid run finished (flows, jfi).
FLUID_END = "fluid.end"

# -- control-plane environment -----------------------------------------
#: One env epoch: action applied, simulated interval integrated
#: (step, action, reward, obs).
ENV_STEP = "env.step"
#: Episode finalized (episode, steps, obs_version, throughput).
ENV_EPISODE = "env.episode"

# -- parallel scheduler (wall-clock t, seconds since batch start) ------
SCHED_DISPATCH = "sched.dispatch"
SCHED_RETRY = "sched.retry"
SCHED_TIMEOUT = "sched.timeout"
SCHED_WORKER_DEATH = "sched.worker-death"
SCHED_OUTCOME = "sched.outcome"

#: Every kind above, for validation and analysis tooling.
ALL_KINDS = frozenset({
    META, CC_STATE, CC_NFL, CC_ESTIMATOR, CC_EPOCH, CC_LOSS, CC_LOSS_RUNS,
    CC_RTO, CC_RECOVERY, LINK_OUTAGE, LINK_RECOVER, LINK_HANDOVER,
    LINK_BATCH, QUEUE_SAMPLE,
    AUDIT_VIOLATION, AUDIT_DUMP, RUN_START, RUN_END, METRICS, GRID_CELL,
    FLUID_RUN, FLUID_TOWER, FLUID_HANDOVER, FLUID_LOSS, FLUID_END,
    ENV_STEP, ENV_EPISODE,
    SCHED_DISPATCH, SCHED_RETRY, SCHED_TIMEOUT, SCHED_WORKER_DEATH,
    SCHED_OUTCOME,
})
