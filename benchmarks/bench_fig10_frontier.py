"""Figure 10: the PropRate performance frontier.

Sweeps t̄_buff over the paper's grid (12-30 ms step 1, 30-120 ms step 4)
on the ISP-A mobile trace and overlays the CUBIC / BBR / Sprout / PCC
reference points.  The paper's claims: the frontier is smooth and
monotone-ish (more target delay buys more throughput), and it dominates
the fixed operating points of the other algorithms.
"""

import numpy as np

from repro.experiments.algorithms import run_shootout
from repro.experiments.frontier import sweep_frontier
from repro.traces.presets import isp_trace

from _report import JOBS, MEASURE_START, emit, emit_flow_csv, emit_frontier_csv

#: A thinned version of the paper grid keeps the bench under a minute;
#: the full grid is available through sweep_frontier(targets=None).
TARGETS = [t / 1000.0 for t in list(range(12, 31, 3)) + list(range(34, 121, 12))]
SWEEP_DURATION = 20.0


def _run():
    down = isp_trace("A", "mobile", duration=60.0)
    up = isp_trace("A", "mobile", duration=60.0, direction="uplink")
    points = sweep_frontier(
        down, up, targets=TARGETS,
        duration=SWEEP_DURATION, measure_start=MEASURE_START,
        n_jobs=JOBS,
    )
    references = run_shootout(
        down, up, names=("CUBIC", "BBR", "Sprout", "PCC"),
        duration=SWEEP_DURATION, measure_start=MEASURE_START,
        n_jobs=JOBS,
    )
    return points, references


def test_fig10_frontier(benchmark):
    points, references = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [f"{'target ms':>9s} {'tput KB/s':>10s} {'mean ms':>8s} {'p95 ms':>8s}"]
    for p in points:
        lines.append(
            f"{p.target_tbuff * 1000:9.0f} {p.throughput_kbps:10.1f} "
            f"{p.mean_delay_ms:8.1f} {p.p95_delay_ms:8.1f}"
        )
    lines.append("-- reference points --")
    for name, r in references.items():
        lines.append(
            f"{name:>9s} {r.throughput_kbps:10.1f} {r.delay.mean_ms:8.1f} "
            f"{r.delay.p95_ms:8.1f}"
        )
    emit("fig10_frontier", lines)
    emit_frontier_csv("fig10_frontier", points)
    emit_flow_csv("fig10_references", references)

    tputs = np.array([p.throughput_kbps for p in points])
    delays = np.array([p.mean_delay_ms for p in points])
    targets = np.array([p.target_tbuff for p in points])

    # The frontier trades delay for throughput: both rise with the target
    # (allowing simulation noise: check the rank correlation).
    def _rank_corr(a, b):
        ra, rb = np.argsort(np.argsort(a)), np.argsort(np.argsort(b))
        return float(np.corrcoef(ra, rb)[0, 1])

    assert _rank_corr(targets, delays) > 0.7
    assert _rank_corr(targets, tputs) > 0.4

    # The frontier dominates the forecast-based fixed points: some sweep
    # point beats Sprout and PCC on *both* axes.
    for name in ("Sprout", "PCC"):
        ref = references[name]
        assert any(
            p.throughput_kbps >= ref.throughput_kbps
            and p.mean_delay_ms <= ref.delay.mean_ms * 1.6
            for p in points
        ), name
