"""Vectorized fluid controller banks for the flow-level tier.

The packet tier steps one event at a time; the fluid tier steps *time*
and needs every flow's control decision as an array operation.  Each
bank holds the state of all flows of one controller family as numpy
arrays and answers two questions per step:

* :meth:`rates` — the send rate (bytes/s) each flow demands right now,
  given its *lagged* observation of the bottleneck buffer delay;
* :meth:`on_overflow` — which flows register a loss epoch when their
  tower's buffer overflows (loss-based controllers only).

Two families are modelled:

* :class:`PropRateBank` — the paper's two-state fill/drain oscillator
  (§3) with the feedback lag applied by the engine: fill at k_f·ρ̂,
  drain at k_d·ρ̂, switching when the observed buffer delay crosses the
  threshold T from :func:`repro.core.model.derive_parameters`.  The ρ̂
  estimate is an RTT-time-constant EWMA of the flow's delivered rate,
  held with the packet implementation's slow decay while deliberately
  under-sending (``RHO_HOLD_TAU``), and floored at one segment per RTT
  so a starved flow keeps a self-clock (the fluid stand-in for the
  Monitor state's probe).
* :class:`CubicBank` — CUBIC's real-time window curve (RFC 8312):
  continuous slow-start doubling until the first loss epoch, then
  w(t) = C·(t − t_epoch − K)³ + W_max, converted to a rate through the
  current RTT + buffer delay (the fluid form of ACK self-clocking).
  A tower buffer overflow is the loss signal; every cubic flow with
  traffic at the tower multiplies down together (fluid models drop-tail
  loss as synchronized — see docs/fluid.md for why that is a known,
  tolerated divergence from the packet tier).

Two control-plane extensions ride on those families:

* :class:`AdaptivePropRateBank` — the §6 adaptive-target rule
  (:class:`repro.core.adaptive.TargetAdjuster`) vectorized over the
  fleet: tower overflows count as loss episodes, consecutive episodes
  within :data:`~repro.core.adaptive.EPISODE_MEMORY` shrink each flow's
  target (floored at its ``min_target``), sustained quiet recovers it
  additively, and the fill/drain parameters are re-derived whenever a
  flow's target moves.
* :class:`PolicyBank` — externally driven rates, the fluid face of the
  :mod:`repro.env` control-plane split: a callable policy receives the
  fleet's observation arrays once per step and returns the per-flow
  send-rate action array.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.core.adaptive import (
    EPISODE_MEMORY,
    LOSS_EPISODES_TO_SHRINK,
    RECOVERY_QUIET_TIME,
    RECOVERY_STEP,
    SHRINK_FACTOR,
)
from repro.core.model import derive_parameters
from repro.core.proprate import RHO_HOLD_TAU
from repro.tcp.congestion.cubic import Cubic

__all__ = [
    "ControllerBank",
    "PropRateBank",
    "AdaptivePropRateBank",
    "CubicBank",
    "PolicyBank",
    "MSS",
]

#: Segment size shared with the packet tier (bytes).
MSS = 1500.0

#: Slow-start / startup probe window, segments (IW=10, as the packet
#: tier's PROBE_BURST).
INITIAL_WINDOW = 10.0

#: Floor on the PropRate rate estimate: one segment per RTT keeps a
#: starved flow's self-clock alive (the Monitor-probe stand-in).
RHO_FLOOR_SEGMENTS = 1.0

#: PropRate fill/drain modes (int8 state array values).
STARTUP, FILL, DRAIN = 0, 1, 2


class ControllerBank:
    """State for all flows of one controller family.

    ``index`` maps the bank's local order to engine flow indices; all
    per-flow arrays below are in local order.  Subclasses fill in the
    family-specific state and the two step hooks.
    """

    #: Report label for flows of this bank.
    kind = "base"
    #: Whether tower buffer overflow is a congestion signal.
    loss_based = False

    def __init__(self, index: Sequence[int], rtts: Sequence[float],
                 starts: Sequence[float], dt: float) -> None:
        self.index = np.asarray(index, dtype=np.intp)
        self.n = int(self.index.size)
        self.rtt = np.asarray(rtts, dtype=np.float64)
        self.start = np.asarray(starts, dtype=np.float64)
        self.dt = float(dt)
        #: Loss epochs registered per flow (report statistic).
        self.loss_epochs = np.zeros(self.n, dtype=np.int64)

    def rates(self, t: float, observed: np.ndarray, tbuff_now: np.ndarray,
              delivered: np.ndarray, active: np.ndarray) -> np.ndarray:
        """Send rates (bytes/s, local order) for simulated time ``t``.

        ``observed`` is the feedback-lagged buffer delay each flow sees,
        ``tbuff_now`` the current delay at the flow's tower (for rate
        conversion — self-clocking sees the real queue), ``delivered``
        the flow's delivered rate last step, ``active`` whether the flow
        has started.
        """
        raise NotImplementedError

    def on_overflow(self, t: float, hit: np.ndarray) -> int:
        """Register a loss epoch for flows in ``hit`` (local bool mask).

        Returns how many flows actually reacted (after per-flow loss
        hold-off); rate-based families ignore the signal entirely.
        """
        return 0


class PropRateBank(ControllerBank):
    """Fluid PropRate: the §3 two-state oscillator, vectorized."""

    kind = "proprate"
    loss_based = False

    def __init__(self, index: Sequence[int], rtts: Sequence[float],
                 starts: Sequence[float], dt: float,
                 targets: Sequence[float]) -> None:
        super().__init__(index, rtts, starts, dt)
        self.target = np.asarray(targets, dtype=np.float64)
        threshold = np.empty(self.n)
        kf = np.empty(self.n)
        kd = np.empty(self.n)
        for i in range(self.n):
            params = derive_parameters(float(self.target[i]),
                                       float(self.rtt[i]))
            threshold[i] = params.threshold
            kf[i] = params.kf
            kd[i] = params.kd
        self.threshold = threshold
        self.kf = kf
        self.kd = kd
        self.mode = np.full(self.n, STARTUP, dtype=np.int8)
        #: ρ̂ bootstrap: the IW=10 probe burst's implied rate.
        self.rho = INITIAL_WINDOW * MSS / self.rtt
        self._rho_floor = RHO_FLOOR_SEGMENTS * MSS / self.rtt
        #: EWMA gains: RTT time constant while measuring, RHO_HOLD_TAU
        #: while deliberately under-sending in Drain.
        self._alpha_fast = 1.0 - np.exp(-dt / self.rtt)
        self._alpha_hold = 1.0 - float(np.exp(-dt / RHO_HOLD_TAU))

    def rates(self, t: float, observed: np.ndarray, tbuff_now: np.ndarray,
              delivered: np.ndarray, active: np.ndarray) -> np.ndarray:
        # ρ̂ update — only once the first feedback has returned, so the
        # bootstrap survives the initial silent RTT.
        feedback = active & (t >= self.start + self.rtt)
        holding = (self.mode == DRAIN) & (delivered < self.rho)
        alpha = np.where(holding, self._alpha_hold, self._alpha_fast)
        self.rho = np.where(
            feedback,
            np.maximum(self.rho + alpha * (delivered - self.rho),
                       self._rho_floor),
            self.rho,
        )

        # State transitions on the *observed* (lagged) delay: the
        # overshoot past T on both sides is the paper's sawtooth.
        above = observed > self.threshold
        below = observed < self.threshold
        startup = self.mode == STARTUP
        fill = self.mode == FILL
        drain = self.mode == DRAIN
        self.mode = np.where((startup | fill) & above, DRAIN, self.mode)
        self.mode = np.where(drain & below, FILL, self.mode)

        # Startup paces at 2·ρ̂ (the packet tier's paced slow start);
        # Fill/Drain are the proportional-rate states.
        gain = np.where(self.mode == STARTUP, 2.0,
                        np.where(self.mode == FILL, self.kf, self.kd))
        return np.where(active, gain * self.rho, 0.0)


class AdaptivePropRateBank(PropRateBank):
    """Fluid PR(A): PropRate with the §6 target-adjustment rule.

    The scalar :class:`~repro.core.adaptive.TargetAdjuster` semantics,
    applied per flow as array operations: a tower buffer overflow is
    this bank's loss-episode signal (with the same per-RTT hold-off as
    :class:`CubicBank`), ``LOSS_EPISODES_TO_SHRINK`` consecutive
    episodes within ``EPISODE_MEMORY`` cut the flow's target by
    ``SHRINK_FACTOR`` (floored at ``min_target``), and after
    ``RECOVERY_QUIET_TIME`` without a loss the target recovers by
    ``RECOVERY_STEP`` per quiet interval, capped at the configured
    target.  Every target move re-derives the flow's threshold/k_f/k_d
    from :func:`repro.core.model.derive_parameters`, exactly as the
    packet tier's ``retarget`` re-centres the feedback band.
    """

    kind = "adaptive-proprate"
    loss_based = True

    def __init__(self, index: Sequence[int], rtts: Sequence[float],
                 starts: Sequence[float], dt: float,
                 targets: Sequence[float],
                 min_targets: Sequence[float]) -> None:
        super().__init__(index, rtts, starts, dt, targets)
        self.configured_target = self.target.copy()
        self.min_target = np.asarray(min_targets, dtype=np.float64)
        if bool((self.min_target <= 0).any()) or bool(
            (self.min_target > self.configured_target).any()
        ):
            raise ValueError("min_target must be in (0, target]")
        #: §6 episode bookkeeping (TargetAdjuster state, vectorized).
        self.consecutive = np.zeros(self.n, dtype=np.int64)
        self.last_episode_at = np.full(self.n, -np.inf)
        self.last_loss_at = np.zeros(self.n)
        self.last_recovery_at = np.full(self.n, -np.inf)
        self.last_loss = np.full(self.n, -np.inf)
        self.target_adjustments = np.zeros(self.n, dtype=np.int64)

    def _apply_targets(self, mask: np.ndarray,
                       proposed: np.ndarray) -> None:
        """Move targets for ``mask`` flows (1 ns dead-band, re-derive)."""
        clamped = np.minimum(self.configured_target,
                             np.maximum(self.min_target, proposed))
        changed = mask & (np.abs(clamped - self.target) >= 1e-9)
        if not bool(changed.any()):
            return
        self.target = np.where(changed, clamped, self.target)
        for i in np.nonzero(changed)[0]:
            params = derive_parameters(float(self.target[i]),
                                       float(self.rtt[i]))
            self.threshold[i] = params.threshold
            self.kf[i] = params.kf
            self.kd[i] = params.kd
        self.target_adjustments += changed

    def rates(self, t: float, observed: np.ndarray, tbuff_now: np.ndarray,
              delivered: np.ndarray, active: np.ndarray) -> np.ndarray:
        # Quiet-time recovery first (the per-ACK on_quiet probe): one
        # additive step per RECOVERY_QUIET_TIME of loss-free progress.
        quiet = (
            active
            & (t - self.last_loss_at >= RECOVERY_QUIET_TIME)
            & (t - self.last_recovery_at >= RECOVERY_QUIET_TIME)
            & (self.target < self.configured_target)
        )
        if bool(quiet.any()):
            self.last_recovery_at = np.where(quiet, t, self.last_recovery_at)
            self._apply_targets(quiet, self.target + RECOVERY_STEP)
        return super().rates(t, observed, tbuff_now, delivered, active)

    def on_overflow(self, t: float, hit: np.ndarray) -> int:
        react = hit & (t - self.last_loss > self.rtt)
        if not bool(react.any()):
            return 0
        self.last_loss = np.where(react, t, self.last_loss)
        self.last_loss_at = np.where(react, t, self.last_loss_at)
        # Consecutive-episode counting: an episode within EPISODE_MEMORY
        # of the previous one (inclusive boundary) extends the streak.
        linked = react & (t - self.last_episode_at <= EPISODE_MEMORY)
        self.consecutive = np.where(
            react, np.where(linked, self.consecutive + 1, 1),
            self.consecutive,
        )
        self.last_episode_at = np.where(react, t, self.last_episode_at)
        shrink = react & (self.consecutive >= LOSS_EPISODES_TO_SHRINK)
        if bool(shrink.any()):
            self.consecutive = np.where(shrink, 0, self.consecutive)
            self._apply_targets(shrink, self.target * SHRINK_FACTOR)
        self.loss_epochs += react
        return int(react.sum())


class CubicBank(ControllerBank):
    """Fluid CUBIC: the real-time window curve driven by loss epochs."""

    kind = "cubic"
    loss_based = True

    #: RFC 8312 constants, shared with the packet implementation.
    C = Cubic.C
    BETA = Cubic.BETA
    MIN_CWND = Cubic.MIN_CWND

    def __init__(self, index: Sequence[int], rtts: Sequence[float],
                 starts: Sequence[float], dt: float) -> None:
        super().__init__(index, rtts, starts, dt)
        self.w = np.full(self.n, INITIAL_WINDOW)
        self.w_max = np.full(self.n, INITIAL_WINDOW)
        self.k = np.zeros(self.n)
        self.epoch = self.start.copy()
        self.slow_start = np.ones(self.n, dtype=bool)
        self.last_loss = np.full(self.n, -np.inf)
        #: Continuous doubling per RTT.
        self._ss_growth = 2.0 ** (dt / self.rtt)

    def rates(self, t: float, observed: np.ndarray, tbuff_now: np.ndarray,
              delivered: np.ndarray, active: np.ndarray) -> np.ndarray:
        grow = active & self.slow_start
        self.w = np.where(grow, self.w * self._ss_growth, self.w)
        tau = t - self.epoch
        w_cubic = self.C * (tau - self.k) ** 3 + self.w_max
        self.w = np.where(active & ~self.slow_start, w_cubic, self.w)
        self.w = np.maximum(self.w, self.MIN_CWND)
        # Window → rate through the *current* delay: self-clocking slows
        # the send rate as the standing queue grows.
        rate = self.w * MSS / (self.rtt + tbuff_now)
        return np.where(active, rate, 0.0)

    def on_overflow(self, t: float, hit: np.ndarray) -> int:
        # One loss epoch per RTT per flow: a multi-step overflow burst is
        # one congestion event, as the packet scoreboard treats it.
        react = hit & (t - self.last_loss > self.rtt)
        if not bool(react.any()):
            return 0
        self.w_max = np.where(react, self.w, self.w_max)
        self.k = np.where(
            react,
            np.cbrt(self.w_max * (1.0 - self.BETA) / self.C),
            self.k,
        )
        self.w = np.where(react, np.maximum(self.BETA * self.w,
                                            self.MIN_CWND), self.w)
        self.epoch = np.where(react, t, self.epoch)
        self.slow_start = self.slow_start & ~react
        self.last_loss = np.where(react, t, self.last_loss)
        self.loss_epochs += react
        return int(react.sum())


class PolicyBank(ControllerBank):
    """Externally driven rates: the fluid face of :mod:`repro.env`.

    ``policy`` is called once per engine step with the simulated time
    and the fleet's observation arrays (local order) and returns the
    per-flow send-rate action array (bytes/s) — one vectorized
    step/observe/act round for the whole bank, mirroring
    :meth:`repro.env.CcEnv.step` at fleet scale.  The observation dict
    carries ``observed_tbuff`` (feedback-lagged buffer delay),
    ``tbuff`` (current delay at the flow's tower), ``delivered``
    (delivered rate last step), ``active``, ``rtt``, and
    ``loss_epochs`` (overflow episodes registered so far, per-RTT
    hold-off applied).  Returned rates are floored at zero and masked
    to active flows.
    """

    kind = "policy"
    loss_based = True

    def __init__(self, index: Sequence[int], rtts: Sequence[float],
                 starts: Sequence[float], dt: float,
                 policy: Callable[[float, Dict[str, np.ndarray]],
                                  np.ndarray]) -> None:
        super().__init__(index, rtts, starts, dt)
        self.policy = policy
        self.last_loss = np.full(self.n, -np.inf)

    def rates(self, t: float, observed: np.ndarray, tbuff_now: np.ndarray,
              delivered: np.ndarray, active: np.ndarray) -> np.ndarray:
        actions = np.asarray(
            self.policy(t, {
                "observed_tbuff": observed,
                "tbuff": tbuff_now,
                "delivered": delivered,
                "active": active,
                "rtt": self.rtt,
                "loss_epochs": self.loss_epochs,
            }),
            dtype=np.float64,
        )
        if actions.shape != (self.n,):
            raise ValueError(
                f"policy returned shape {actions.shape}; "
                f"expected ({self.n},)"
            )
        return np.where(active, np.maximum(actions, 0.0), 0.0)

    def on_overflow(self, t: float, hit: np.ndarray) -> int:
        react = hit & (t - self.last_loss > self.rtt)
        if not bool(react.any()):
            return 0
        self.last_loss = np.where(react, t, self.last_loss)
        self.loss_epochs += react
        return int(react.sum())


def build_banks(specs: Sequence, dt: float) -> List[ControllerBank]:
    """Group :class:`FluidFlowSpec`s into controller banks.

    ``specs`` is the engine's flow list; flows keep their global index
    through each bank's ``index`` array, so engine arrays scatter and
    gather with plain fancy indexing.  ``"policy"`` flows are grouped
    per distinct policy callable, each group its own
    :class:`PolicyBank`.
    """
    pr_idx, pr_rtt, pr_start, pr_target = [], [], [], []
    ad_idx, ad_rtt, ad_start, ad_target, ad_floor = [], [], [], [], []
    cu_idx, cu_rtt, cu_start = [], [], []
    po_groups: Dict[int, list] = {}
    for i, spec in enumerate(specs):
        if spec.controller == "proprate":
            pr_idx.append(i)
            pr_rtt.append(spec.rtt)
            pr_start.append(spec.start)
            pr_target.append(spec.target_tbuff)
        elif spec.controller == "adaptive-proprate":
            ad_idx.append(i)
            ad_rtt.append(spec.rtt)
            ad_start.append(spec.start)
            ad_target.append(spec.target_tbuff)
            ad_floor.append(spec.min_target)
        elif spec.controller == "cubic":
            cu_idx.append(i)
            cu_rtt.append(spec.rtt)
            cu_start.append(spec.start)
        elif spec.controller == "policy":
            if spec.policy is None:
                raise ValueError(
                    "controller 'policy' needs a policy= callable"
                )
            group = po_groups.setdefault(id(spec.policy),
                                         [spec.policy, [], [], []])
            group[1].append(i)
            group[2].append(spec.rtt)
            group[3].append(spec.start)
        else:
            raise ValueError(
                f"unknown fluid controller {spec.controller!r}; "
                "have 'proprate', 'adaptive-proprate', 'cubic', and "
                "'policy'"
            )
    banks: List[ControllerBank] = []
    if pr_idx:
        banks.append(PropRateBank(pr_idx, pr_rtt, pr_start, dt, pr_target))
    if ad_idx:
        banks.append(
            AdaptivePropRateBank(ad_idx, ad_rtt, ad_start, dt,
                                 ad_target, ad_floor)
        )
    if cu_idx:
        banks.append(CubicBank(cu_idx, cu_rtt, cu_start, dt))
    for policy, idx, rtts, starts in po_groups.values():
        banks.append(PolicyBank(idx, rtts, starts, dt, policy))
    return banks
