#!/usr/bin/env python3
"""A real-time-communication workload with a latency budget.

The paper's motivation is RTC — video calls and gaming, where "end-to-end
latency is often the dominant component of the overall response time"
and budgets are ~100 ms.  This example runs a 1 Mbit/s CBR media stream
(instead of a bulk transfer) over a volatile mobile trace, once under
PropRate with a matching latency budget and once under CUBIC, and
reports the fraction of media segments that met the budget.

Usage::

    python examples/rtc_latency.py
"""

from repro.experiments.runner import FlowSpec, cellular_path_config, run_experiment
from repro.core.proprate import PropRate
from repro.tcp.application import ConstantBitrateApplication
from repro.tcp.congestion import Cubic
from repro.traces.presets import isp_trace

DURATION = 30.0
WARMUP = 4.0
MEDIA_RATE = 125_000.0          # 1 Mbit/s media stream
ONE_WAY_BUDGET = 0.080          # seconds, ~RTC-grade


def main() -> None:
    downlink = isp_trace("A", "mobile", duration=60.0)
    uplink = isp_trace("A", "mobile", duration=60.0, direction="uplink")
    config = cellular_path_config(downlink, uplink)

    print(
        f"Media: {MEDIA_RATE * 8 / 1e6:.1f} Mbit/s CBR, one-way budget "
        f"{ONE_WAY_BUDGET * 1000:.0f} ms, trace {downlink.name}.\n"
    )
    print(f"{'Transport':14s} {'in-budget':>10s} {'mean delay':>11s} "
          f"{'p95 delay':>10s}")

    for name, factory in (
        ("PropRate", lambda: PropRate(target_buffer_delay=0.030)),
        ("CUBIC", Cubic),
    ):
        # A *competing* bulk download shares the path, as real RTC must
        # survive next to other traffic on the same device.
        flows = [
            FlowSpec(
                cc_factory=factory,
                name="media",
                application=ConstantBitrateApplication(rate=MEDIA_RATE),
                measure_start=WARMUP,
            ),
            FlowSpec(cc_factory=factory, name="bulk", measure_start=WARMUP),
        ]
        results = run_experiment(config, flows, duration=DURATION)
        media = next(r for r in results if r.name == "media")
        delays = media.collector.delays(WARMUP, DURATION)
        in_budget = float((delays <= ONE_WAY_BUDGET).mean()) if delays.size else 0.0
        print(
            f"{name:14s} {in_budget:9.0%} {media.delay.mean_ms:8.1f} ms "
            f"{media.delay.p95_ms:7.1f} ms"
        )

    print(
        "\nUnder CUBIC the co-located bulk flow fills the bottleneck buffer"
        "\nand the media stream inherits seconds of queueing; PropRate keeps"
        "\nthe shared buffer at its target and most segments meet the budget."
    )


if __name__ == "__main__":
    main()
