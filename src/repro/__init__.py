"""PropRate reproduction: rate-based TCP congestion control beyond the
bandwidth-delay product for mobile cellular networks (CoNEXT 2017).

Quickstart::

    from repro import PropRate, isp_trace, run_single_flow

    trace = isp_trace("A", "mobile")
    result = run_single_flow(
        lambda: PropRate(target_buffer_delay=0.040),
        downlink_trace=trace,
        uplink_trace=isp_trace("A", "mobile", direction="uplink"),
    )
    print(result.throughput_kbps, result.delay.mean_ms)

Package map (details in DESIGN.md):

* :mod:`repro.core` -- PropRate and its analytical model.
* :mod:`repro.sim` -- the discrete-event network substrate (Cellsim).
* :mod:`repro.tcp` -- TCP endpoints and all baseline algorithms.
* :mod:`repro.traces` -- synthetic cellular traces (Table 2 presets).
* :mod:`repro.metrics` -- delivery records and summary statistics.
* :mod:`repro.experiments` -- scenario harnesses for every figure/table.
"""

from repro.core.adaptive import AdaptivePropRate
from repro.core.proprate import PropRate
from repro.tcp.application import (
    BulkApplication,
    ConstantBitrateApplication,
    OnOffApplication,
)
from repro.experiments.runner import (
    FlowResult,
    FlowSpec,
    cellular_path_config,
    run_experiment,
    run_single_flow,
)
from repro.traces.presets import isp_trace, lte_validation_trace, sprint_like_trace

__version__ = "1.0.0"

__all__ = [
    "AdaptivePropRate",
    "BulkApplication",
    "ConstantBitrateApplication",
    "FlowResult",
    "FlowSpec",
    "OnOffApplication",
    "PropRate",
    "cellular_path_config",
    "isp_trace",
    "lte_validation_trace",
    "run_experiment",
    "run_single_flow",
    "sprint_like_trace",
    "__version__",
]
