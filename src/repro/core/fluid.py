"""Deterministic fluid model of the PropRate sawtooth (Figures 1–3).

The packet-level simulator in :mod:`repro.sim` carries all the noise of a
real stack (timestamp quantisation, ACK spacing, bursts).  This module
instead integrates the idealised two-state fluid system of §3:

* the bottleneck drains the buffer at a constant rate ρ;
* the sender fills at σ_f = k_f·ρ or drains at σ_d = k_d·ρ;
* the controller sees the buffer delay only after the feedback lag — a
  packet sent at s is observed at ``s + t_buff(s) + RTT`` — and switches
  state when the *observed* delay crosses the threshold T.

Because observation lags reality, the actual delay overshoots T on both
sides, producing the sawtooth of Figure 1 (buffer full) or Figure 2
(buffer emptied, with an empty period t_e).  Running this model against
:func:`repro.core.model.derive_parameters` validates Equations 1–8: the
measured D_max, D_min, utilisation and average buffer delay match the
closed forms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class FluidResult:
    """Steady-state summary of a fluid run.

    ``times``/``tbuff`` hold the full waveform; the scalar summaries are
    measured over the final ``measure_fraction`` of the run (transients
    discarded).
    """

    times: np.ndarray
    tbuff: np.ndarray
    states: np.ndarray            # +1 fill, -1 drain
    dmax: float
    dmin: float
    avg_tbuff: float
    utilization: float            # fraction of time the buffer is non-empty,
                                  # plus fill time (Eq. 1)
    period: float                 # mean cycle duration (fill->fill)
    empty_fraction: float         # t_e / cycle


def simulate_sawtooth(
    rho: float,
    rtt: float,
    threshold: float,
    kf: float,
    kd: float,
    duration: float = 20.0,
    dt: float = 1e-4,
    initial_tbuff: float = 0.0,
    measure_fraction: float = 0.5,
) -> FluidResult:
    """Integrate the fluid system and summarise its steady state.

    Parameters
    ----------
    rho:
        Bottleneck (receive) rate, any consistent unit — it cancels out
        of the delay dynamics, which evolve at (k−1) seconds/second.
    rtt:
        Feedback round-trip time excluding buffer delay.
    threshold:
        State-switch threshold T on the *observed* buffer delay.
    kf, kd:
        Fill and drain rate multipliers (k_f > 1 > k_d ≥ 0).
    duration, dt:
        Integration horizon and step.
    initial_tbuff:
        Starting buffer delay.
    measure_fraction:
        Trailing fraction of the run used for steady-state statistics.
    """
    if kf <= 1.0:
        raise ValueError("kf must exceed 1")
    if not 0.0 <= kd < 1.0:
        raise ValueError("kd must be in [0, 1)")
    if rho <= 0 or rtt <= 0:
        raise ValueError("rho and rtt must be positive")
    # threshold == 0 is a legal degenerate placement: the controller
    # drains as soon as any queueing is observed and never re-fills
    # (observed delay cannot go *below* zero), so the queue empties and
    # stays empty — the T→0 limit of Eq. 5's trade-off.
    if threshold < 0:
        raise ValueError("threshold must be non-negative")

    n = int(round(duration / dt))
    times = np.arange(n) * dt
    tbuff = np.empty(n)
    states = np.empty(n, dtype=np.int8)

    fill = True  # start filling an empty buffer
    q = initial_tbuff  # buffer delay is queue/rho; integrate delay directly
    obs_ptr = 0  # index s such that s*dt + tbuff[s] + rtt ~ now
    rise = kf - 1.0
    fall = kd - 1.0

    for i in range(n):
        tbuff[i] = q
        states[i] = 1 if fill else -1

        # Advance the observation pointer: the controller at time t sees
        # the buffer delay experienced by the newest packet whose ACK has
        # returned, i.e. the largest s with s + tbuff(s) + rtt <= t.
        t_now = times[i]
        while (
            obs_ptr < i
            and times[obs_ptr + 1] + tbuff[obs_ptr + 1] + rtt <= t_now
        ):
            obs_ptr += 1
        observed = tbuff[obs_ptr] if times[obs_ptr] + tbuff[obs_ptr] + rtt <= t_now else 0.0

        if fill and observed > threshold:
            fill = False
        elif not fill and observed < threshold:
            fill = True

        rate = rise if fill else fall
        q = max(0.0, q + rate * dt)

    start = int(n * (1.0 - measure_fraction))
    tail = tbuff[start:]
    tail_states = states[start:]
    dmax = float(tail.max())
    dmin = _steady_trough(tail)
    avg = float(tail.mean())
    empty = float(np.mean(tail <= dt))  # numerically-zero buffer
    util = 1.0 - empty
    period = _mean_period(times[start:], tail_states)
    return FluidResult(
        times=times,
        tbuff=tbuff,
        states=states,
        dmax=dmax,
        dmin=dmin,
        avg_tbuff=avg,
        utilization=util,
        period=period,
        empty_fraction=empty,
    )


def _steady_trough(tail: np.ndarray) -> float:
    """Mean of the local minima of the waveform (the troughs)."""
    interior = tail[1:-1]
    minima = (interior <= tail[:-2]) & (interior <= tail[2:]) & (
        (interior < tail[:-2]) | (interior < tail[2:])
    )
    values = interior[minima]
    if values.size == 0:
        return float(tail.min())
    return float(values.mean())


def _mean_period(times: np.ndarray, states: np.ndarray) -> float:
    """Mean time between successive drain→fill transitions."""
    flips = np.where((states[1:] == 1) & (states[:-1] == -1))[0]
    if flips.size < 2:
        return float("nan")
    return float(np.diff(times[flips + 1]).mean())


def waveform_phases(result: FluidResult) -> List[Tuple[str, float]]:
    """Decompose a run into (phase, duration) pairs: fill / drain / empty.

    Useful for checking Eq. 1 directly: U = (t_f + t_d)/(t_f + t_d + t_e).
    """
    dt = float(result.times[1] - result.times[0]) if result.times.size > 1 else 0.0
    phases: List[Tuple[str, float]] = []
    current = None
    count = 0
    for state, delay in zip(result.states, result.tbuff):
        if state == 1:
            label = "fill"
        elif delay <= dt:
            label = "empty"
        else:
            label = "drain"
        if label == current:
            count += 1
        else:
            if current is not None:
                phases.append((current, count * dt))
            current = label
            count = 1
    if current is not None:
        phases.append((current, count * dt))
    return phases
