"""Smoke tests for the runnable examples.

Each example is a long-running demo; these tests verify they compile,
expose a ``main`` entry point, and that their core calls work at reduced
scale (full runs happen manually / in benchmarks).
"""

import importlib.util
import pathlib
import py_compile

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {p.name for p in EXAMPLES}
        assert {"quickstart.py", "target_latency.py", "algorithm_shootout.py",
                "uplink_congestion.py", "frontier_sweep.py"} <= names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_has_main(self, path):
        module = _load(path)
        assert callable(getattr(module, "main", None))

    def test_quickstart_pipeline_at_reduced_scale(self, capsys):
        """The quickstart's exact call pattern, shrunk to seconds."""
        module = _load(EXAMPLES_DIR / "quickstart.py")
        module.DURATION = 4.0
        module.WARMUP = 1.0
        module.main()
        out = capsys.readouterr().out
        assert "PropRate(M)" in out
        assert "CUBIC" in out

    def test_shootout_rejects_unknown_trace(self):
        module = _load(EXAMPLES_DIR / "algorithm_shootout.py")
        import sys

        argv = sys.argv
        sys.argv = ["algorithm_shootout.py", "marsnet"]
        try:
            with pytest.raises(SystemExit):
                module.main()
        finally:
            sys.argv = argv

    def test_frontier_ascii_scatter_renders(self):
        module = _load(EXAMPLES_DIR / "frontier_sweep.py")

        class _Point:
            def __init__(self, d, t):
                self.mean_delay_ms = d
                self.throughput_kbps = t

        class _Ref:
            class delay:
                mean_ms = 300.0
            throughput_kbps = 900.0

        art = module._ascii_scatter(
            [_Point(40, 800), _Point(80, 1100), _Point(120, 1300)],
            {"CUBIC": _Ref()},
        )
        assert "o" in art
        assert "C" in art
