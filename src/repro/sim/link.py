"""Link models: trace-driven cellular links and constant-rate wired links.

:class:`CellularLink` is the Cellsim substrate: it replays a
:class:`~repro.traces.trace.Trace` of delivery opportunities through a
finite queue.  Each opportunity can carry up to 1500 bytes; several small
packets (e.g. ACKs) may share one opportunity, and an opportunity that
finds the queue empty is wasted — exactly the semantics of the emulator
used in the paper.

:class:`WiredLink` is a conventional store-and-forward link with a fixed
service rate, used for the Figure-13 inter-continental experiments.

Delivery fast path
------------------
Serving one opportunity per heap event costs a pop, a serve callback, an
arm, and one delivery event *per packet*.  The fast path (on by default;
``REPRO_FAST_PATH=0`` or ``fast=False`` selects the scalar reference
implementation) batches that work under a *quiescence* condition: while
no event foreign to this link can run, consecutive opportunities are
served in one callback, draining the queue in slices
(:meth:`~repro.sim.queues.DropTailQueue.drain_opportunity`) and handing
groups of packets to a single self-re-arming delivery *pump* event.  The
soundness condition and the bit-identical bar are documented in
DESIGN.md §9.
"""

from __future__ import annotations

import os
from functools import partial
from typing import Callable, List, Optional

from repro.obs import (
    LINK_BATCH,
    LINK_HANDOVER,
    LINK_OUTAGE,
    LINK_RECOVER,
    current_profiler,
    current_tracer,
)
from repro.sim.engine import Event, Simulator
from repro.sim.packet import Packet, PacketBatch
from repro.sim.queues import DropTailQueue
from repro.traces.trace import OPPORTUNITY_BYTES, Trace

DeliverCallback = Callable[[Packet], None]
DeliverBatchCallback = Callable[[PacketBatch], None]

#: A service gap at least this long with packets queued is reported as a
#: ``link.outage`` telemetry event (normal inter-opportunity gaps on the
#: paper's traces are milliseconds).
OUTAGE_GAP = 0.100

#: Batches draining at least this many opportunities get a discrete
#: ``link.batch`` telemetry event.  Smaller batches (the steady drizzle
#: of 2-3-opportunity ACK coalesces — tens of thousands per run) are
#: aggregated into the ``run.link.<name>.batches``/``.batched_packets``
#: metrics counters instead, keeping the tracer-on overhead bounded.
LINK_BATCH_EVENT_MIN = 8

_INF = float("inf")


def fast_path_default() -> bool:
    """The process-wide default for the delivery fast path.

    ``REPRO_FAST_PATH=0`` selects the scalar reference implementation;
    anything else (including unset) keeps the batched path on.  Read per
    link construction so tests can flip the environment between runs.
    """
    return os.environ.get("REPRO_FAST_PATH", "1") != "0"


class Link:
    """Common interface: ``enqueue`` a packet, ``on_deliver`` fires later."""

    def enqueue(self, packet: Packet) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


class CellularLink(Link):
    """A trace-driven bottleneck: finite queue drained by trace opportunities.

    Parameters
    ----------
    sim:
        The event loop.
    trace:
        Delivery-opportunity schedule; replayed cyclically when ``loop``.
    queue:
        The bottleneck buffer (drop-tail by default, CoDel for the AQM
        discussion experiment).
    prop_delay:
        Fixed one-way propagation delay applied after service.
    on_deliver:
        Called with each packet when it exits the link.
    fast:
        Force the batched fast path on/off; None uses
        :func:`fast_path_default` (the ``REPRO_FAST_PATH`` env toggle).
    """

    def __init__(
        self,
        sim: Simulator,
        trace: Trace,
        queue: DropTailQueue,
        prop_delay: float = 0.020,
        on_deliver: Optional[DeliverCallback] = None,
        loop: bool = True,
        name: str = "cell",
        fast: Optional[bool] = None,
    ) -> None:
        if len(trace) == 0:
            raise ValueError("trace has no delivery opportunities")
        self.sim = sim
        self.trace = trace
        self.queue = queue
        self._prop_delay = prop_delay
        self.on_deliver = on_deliver
        #: Optional batch delivery sink.  When set, the fast path hands
        #: multi-packet delivery groups over as one :class:`PacketBatch`
        #: instead of N ``on_deliver`` calls.
        self.on_deliver_batch: Optional[DeliverBatchCallback] = None
        self.loop = loop
        self.name = name
        self.fast_path = fast_path_default() if fast is None else bool(fast)
        self._tracer = current_tracer()
        #: Multi-opportunity batches drained and the packets they
        #: carried; folded into ``run.link.<name>.batches`` /
        #: ``.batched_packets`` metrics by the runner at run end.
        self.batches_drained = 0
        self.batched_packets = 0
        self._outage_open = False
        schedule = trace.compiled()
        self._schedule = schedule
        self._times = schedule.times
        # Plain-float copy: scalar indexing and bisect on a Python list
        # beat numpy scalar extraction on this per-packet path.  Shared
        # across every link replaying the same trace.
        self._times_list: List[float] = schedule.times_list
        self._tsize = schedule.size
        self._period = schedule.period
        self._cycle = 0  # how many whole trace periods have elapsed
        self._index = 0  # next opportunity index within the current cycle
        self._service_event: Optional[Event] = None
        self._serve_cb = self._serve_fast if self.fast_path else self._serve
        # Profiling: time the service loop and the delivery pump by
        # shadowing the callables the event loop invokes (both are
        # always referenced through ``self``, so instance-attribute
        # wrappers cover every call; off = no wrapper, no cost).
        prof = current_profiler()
        if prof is not None:
            self._serve_cb = prof.wrap("link.serve", self._serve_cb)
            self._pump_fire = prof.wrap(  # type: ignore[method-assign]
                "delivery.pump", self._pump_fire)
        #: Bound on how soon an effect of one of this link's *own*
        #: deliveries can loop back into its queue (see DESIGN.md §9).
        #: 0.0 is fully conservative; :class:`~repro.sim.network
        #: .DuplexPath` points ``cascade_partner`` at the reverse link so
        #: the bound tracks that link's propagation delay.
        self.cascade_guard = 0.0
        self.cascade_partner: Optional[Link] = None
        # Delivery pump: pending [time, packets] groups (time-ascending
        # from _phead) drained by one self-re-arming event.
        self._pending: List[Optional[list]] = []
        self._phead = 0
        self._pump_event: Optional[Event] = None
        self.delivered_packets = 0
        self.delivered_bytes = 0
        self.wasted_opportunities = 0

    @property
    def prop_delay(self) -> float:
        return self._prop_delay

    @prop_delay.setter
    def prop_delay(self, value: float) -> None:
        """Mid-run changes model a handover / signal-path shift; traced."""
        old = self._prop_delay
        self._prop_delay = value
        tr = self._tracer
        if tr is not None and value != old:
            tr.emit(LINK_HANDOVER, self.sim.now, link=self.name,
                    prop_delay=value, delta=value - old)

    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> bool:
        """Offer a packet to the bottleneck buffer.

        Returns False if the buffer dropped it.
        """
        accepted = self.queue.push(packet, self.sim.now)
        if accepted and self._service_event is None:
            self._arm_service()
        return accepted

    # ------------------------------------------------------------------
    def _next_opportunity_time(self) -> float:
        """Absolute time of the next unused delivery opportunity >= now.

        Fast-forwards over opportunities that elapsed while the queue was
        empty (they are wasted by definition; we count them lazily).
        """
        now = self.sim.now
        times = self._times_list
        size = self._tsize
        schedule = self._schedule
        while True:
            base = self._cycle * self._period
            local = now - base
            idx = self._index
            # Busy-link fast path: the pending opportunity is still ahead.
            if idx < size and times[idx] >= local:
                return base + times[idx]
            # Jump the index to the first opportunity at/after now
            # (vectorized searchsorted over the compiled schedule).
            idx = schedule.first_at_or_after(local, idx)
            if idx > self._index:
                self.wasted_opportunities += idx - self._index
                self._index = idx
            if idx < size:
                return base + times[idx]
            if not self.loop:
                return _INF
            self._cycle += 1  # end of cycle: roll over
            self._index = 0

    def _arm_service(self, reuse: Optional[Event] = None) -> None:
        t = self._next_opportunity_time()
        tr = self._tracer
        if tr is not None and not self._outage_open:
            gap = t - self.sim.now
            if gap >= OUTAGE_GAP:
                self._outage_open = True
                tr.emit(LINK_OUTAGE, self.sim.now, link=self.name,
                        gap=(gap if t != _INF else None),
                        queued=len(self.queue))
        if t == _INF:
            self._service_event = None
            return
        if reuse is not None:
            # Re-arm the just-fired serve entry in place: same ordering
            # as a fresh schedule_at, no allocation.
            self._service_event = self.sim.reschedule_at(reuse, t)
        else:
            self._service_event = self.sim.schedule_at(t, self._serve_cb)

    # ------------------------------------------------------------------
    # Scalar reference path
    # ------------------------------------------------------------------
    def _serve(self) -> None:
        """Consume one delivery opportunity: up to 1500 bytes of packets."""
        fired = self._service_event
        self._service_event = None
        if self._outage_open:
            self._outage_open = False
            tr = self._tracer
            if tr is not None:
                tr.emit(LINK_RECOVER, self.sim.now, link=self.name,
                        queued=len(self.queue))
        self._index += 1
        budget = OPPORTUNITY_BYTES
        served_any = False
        while True:
            head = self.queue.peek()
            if head is None or head.size > budget:
                break
            packet = self.queue.pop(self.sim.now)
            if packet is None:
                break
            budget -= packet.size
            served_any = True
            self.delivered_packets += 1
            self.delivered_bytes += packet.size
            self._deliver_later(packet)
        if not served_any:
            # CoDel may drop everything it dequeues; a truly empty queue
            # simply wastes the opportunity.
            self.wasted_opportunities += 1
        if len(self.queue) > 0:
            self._arm_service(reuse=fired)

    def _deliver_later(self, packet: Packet) -> None:
        callback = self.on_deliver
        if callback is None:
            return
        self.sim.schedule(self._prop_delay, partial(callback, packet))

    # ------------------------------------------------------------------
    # Batched fast path
    # ------------------------------------------------------------------
    def _effective_guard(self) -> float:
        partner = self.cascade_partner
        if partner is not None:
            return partner.prop_delay  # type: ignore[attr-defined]
        return self.cascade_guard

    def _serve_fast(self) -> None:
        """Serve the opportunity at ``now`` plus every later one that is
        provably unobservable: strictly before the quiescence horizon
        (no foreign event, no loop-back from our own pending or newly
        scheduled deliveries) and within the ``run(until)`` bound."""
        sim = self.sim
        fired = self._service_event
        self._service_event = None
        tr = self._tracer
        queue = self.queue
        if self._outage_open:
            self._outage_open = False
            if tr is not None:
                tr.emit(LINK_RECOVER, sim.now, link=self.name,
                        queued=len(queue))

        # Snapshot the pump head *before* serving: the horizon must be
        # bounded by deliveries already in flight, not the groups this
        # batch is about to schedule (those are covered by the t + prop
        # cap).  Computed lazily — a batch that ends at its first
        # opportunity (queue drained) never pays for the heap scan.
        pump = self._pump_event
        pump_head = pump[0] if pump is not None else _INF
        horizon = -_INF
        t = sim.now
        # The run(until) boundary is inclusive (events AT `until` fire),
        # unlike the strictly-exclusive quiescence horizon; keep it as a
        # separate `nt <= limit` test in the loop.
        limit = sim.run_until
        drain = queue.drain_opportunity
        q_deque = queue._queue
        times = self._times_list
        size = self._tsize
        period = self._period
        prop = self._prop_delay
        loop_trace = self.loop
        deliver = self.on_deliver is not None
        index = self._index
        cycle = self._cycle
        delivered_p = 0
        delivered_b = 0
        wasted = 0
        opportunities = 0
        first_t = t
        while True:
            opportunities += 1
            index += 1
            pkts = drain(t, OPPORTUNITY_BYTES)
            if pkts:
                nbytes = 0
                for p in pkts:
                    nbytes += p.size
                delivered_p += len(pkts)
                delivered_b += nbytes
                if deliver:
                    self._push_group(t + prop, pkts)
            else:
                wasted += 1
            if not q_deque:
                # Idle: leave the service disarmed, exactly like the
                # scalar path; the next enqueue re-arms and the lazy
                # fast-forward accounts wasted opportunities.
                break
            # Replicate the scalar re-arm's float round-trip: its
            # `local = now - base` carries the error of `base + times[i]`
            # upward once cycle > 0, so any remaining *same-instant*
            # duplicate opportunities compare below `local` and are
            # wasted, not served.  Bit-identity means wasting them too.
            local = t - cycle * period
            while index < size and times[index] < local:
                index += 1
                wasted += 1
            if index < size:
                nt = cycle * period + times[index]
            elif loop_trace:
                cycle += 1
                index = 0
                nt = period * cycle + times[0]
            else:
                nt = _INF
            if horizon == -_INF:
                horizon = sim.horizon_excluding(pump)
                bound = pump_head + self._effective_guard()
                if bound < horizon:
                    horizon = bound
                bound = first_t + self._prop_delay
                if bound < horizon:
                    horizon = bound
            if nt < horizon and (limit is None or nt <= limit):
                t = nt
                continue
            # Horizon reached: arm a plain service event at nt.
            self._index = index
            self._cycle = cycle
            if tr is not None and not self._outage_open:
                # Gap measured from the last opportunity actually served,
                # which is where the scalar path would have emitted it.
                gap = nt - t
                if gap >= OUTAGE_GAP:
                    self._outage_open = True
                    tr.emit(LINK_OUTAGE, sim.now, link=self.name,
                            gap=(gap if nt != _INF else None),
                            queued=len(queue))
            if nt != _INF:
                self._service_event = sim.reschedule_at(fired, nt) \
                    if fired is not None else sim.schedule_at(nt, self._serve_cb)
            self._finish_batch(tr, opportunities, delivered_p, delivered_b,
                               wasted, t - first_t)
            return
        self._index = index
        self._cycle = cycle
        self._finish_batch(tr, opportunities, delivered_p, delivered_b,
                           wasted, t - first_t)

    def _finish_batch(self, tr, opportunities: int, delivered_p: int,
                      delivered_b: int, wasted: int, span: float) -> None:
        self.delivered_packets += delivered_p
        self.delivered_bytes += delivered_b
        self.wasted_opportunities += wasted
        if opportunities > 1:
            self.batches_drained += 1
            self.batched_packets += delivered_p
            if tr is not None and opportunities >= LINK_BATCH_EVENT_MIN:
                tr.emit(LINK_BATCH, self.sim.now, link=self.name,
                        opportunities=opportunities, packets=delivered_p,
                        bytes=delivered_b, span=span)

    def _push_group(self, time: float, pkts: List[Packet]) -> None:
        """Append a delivery group, keeping ``_pending`` time-sorted and
        the pump armed at the head group's time.

        Each group claims its heap seq *at creation* — the instant the
        scalar path would have created the per-packet delivery events —
        so exact-time ties against foreign events break in the same
        order on both paths (see DESIGN.md §9).
        """
        sim = self.sim
        pending = self._pending
        phead = self._phead
        if len(pending) > phead:
            last = pending[-1]
            lt = last[0]
            if lt == time:
                # Same delivery instant: extend the group; its existing
                # (earlier) seq matches the scalar path, whose first
                # delivery event for this instant carries the older seq.
                last[1] += pkts
                return
            if time >= lt:
                pending.append([time, pkts, sim.claim_seq()])
                return
            # Rare: a handover shrank prop_delay while deliveries were
            # in flight; insert in time order (merging an equal slot).
            i = len(pending) - 1
            while i > phead and pending[i - 1][0] > time:
                i -= 1
            if i > phead and pending[i - 1][0] == time:
                pending[i - 1][1] += pkts
                return
            seq = sim.claim_seq()
            pending.insert(i, [time, pkts, seq])
            if i == phead:
                self._pump_event.cancel()
                self._pump_event = sim.schedule_claimed(
                    time, seq, self._pump_fire)
            return
        if pending:
            pending.clear()
        self._phead = 0
        seq = sim.claim_seq()
        pending.append([time, pkts, seq])
        self._pump_event = sim.schedule_claimed(time, seq, self._pump_fire)

    def _pump_fire(self) -> None:
        """Deliver the head group; re-arm for the next one."""
        pending = self._pending
        phead = self._phead
        group = pending[phead]
        pending[phead] = None
        phead += 1
        if phead >= len(pending):
            pending.clear()
            self._phead = 0
            self._pump_event = None
        else:
            if phead >= 64 and phead * 2 >= len(pending):
                del pending[:phead]
                phead = 0
            self._phead = phead
            nxt = pending[phead]
            self._pump_event = self.sim.requeue_claimed(
                self._pump_event, nxt[0], nxt[2])
        pkts = group[1]
        if len(pkts) > 1:
            batch_cb = self.on_deliver_batch
            if batch_cb is not None:
                batch_cb(PacketBatch(pkts))
                return
        callback = self.on_deliver
        if callback is not None:
            for p in pkts:
                callback(p)

    # ------------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        return len(self.queue)


class WiredLink(Link):
    """A fixed-rate store-and-forward link with a finite drop-tail buffer."""

    def __init__(
        self,
        sim: Simulator,
        rate: float,
        queue: DropTailQueue,
        prop_delay: float = 0.010,
        on_deliver: Optional[DeliverCallback] = None,
        name: str = "wired",
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.rate = rate
        self.queue = queue
        self.prop_delay = prop_delay
        self.on_deliver = on_deliver
        self.name = name
        self._busy = False
        self.delivered_packets = 0
        self.delivered_bytes = 0
        #: Bytes of the packet currently in service (the auditor's byte
        #: conservation check needs it: a popped-but-undelivered packet
        #: is neither queued nor delivered).
        self._in_service_bytes = 0

    def enqueue(self, packet: Packet) -> bool:
        accepted = self.queue.push(packet, self.sim.now)
        if accepted and not self._busy:
            self._start_service()
        return accepted

    def _start_service(self) -> None:
        packet = self.queue.pop(self.sim.now)
        if packet is None:
            self._busy = False
            return
        self._busy = True
        self._in_service_bytes = packet.size
        service_time = packet.size / self.rate
        self.sim.schedule(service_time, partial(self._finish, packet))

    def _finish(self, packet: Packet) -> None:
        self._in_service_bytes = 0
        self.delivered_packets += 1
        self.delivered_bytes += packet.size
        if self.on_deliver is not None:
            self.sim.schedule(self.prop_delay, partial(self.on_deliver, packet))
        if len(self.queue) > 0:
            self._start_service()
        else:
            self._busy = False
