"""Ring-buffer flight recorder for the invariant auditor.

The recorder keeps the last N engine events and the last N auditor
observations in preallocated rings, and serialises them to a structured
JSON trace when something goes wrong — an invariant violation or an
unhandled exception escaping the event loop.  Traces are written per
process, so parallel batches (``n_jobs > 1``) produce one file per
worker without coordination.

Two rings, for a reason.  Engine events arrive once per simulated event
and are written *inline by the event loop* (see ``Simulator.audit_ring``)
as two list-slot stores and an integer increment — zero allocation and
zero Python calls per event.  An earlier deque-of-tuples design
allocated a tuple per event, and the churn (eviction plus GC pressure
from tuples holding callback references) dominated the auditor's
overhead.  Auditor observations (sender snapshots at sweep cadence) are
far rarer and go through :meth:`record` into a separate ring that also
keeps a ``kind`` tag.  :meth:`snapshot` merges both by timestamp.
"""

from __future__ import annotations

import itertools
import json
import os
import pathlib
from typing import Any, Dict, List, Optional, Sequence

#: Default number of entries retained per ring.
DEFAULT_CAPACITY = 512

#: Environment variable overriding where traces are dumped.
TRACE_DIR_ENV = "REPRO_AUDIT_DIR"

#: Default dump directory (relative to the working directory).
DEFAULT_TRACE_DIR = "audit-traces"

#: Per-process dump counter, so one worker writing several traces never
#: clobbers its own files.
_DUMP_COUNTER = itertools.count()


class FlightRecorder:
    """Bounded in-memory log of recent simulation observations.

    ``detail`` entries may be any value — live objects (e.g. event
    callbacks) are rendered to a JSON-friendly form only when a trace
    is written.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        # Engine-event ring, written inline by the event loop.  Its
        # size is the capacity rounded up to a power of two so the loop
        # can mask instead of dividing.
        self.ring_capacity = 1 << (capacity - 1).bit_length()
        self.ring_times: List[float] = [0.0] * self.ring_capacity
        self.ring_details: List[Any] = [None] * self.ring_capacity
        #: Engine events ever recorded; slot ``count & (ring_capacity-1)``
        #: is the next write.  A one-element list so the event loop can
        #: share it without attribute lookups.
        self.ring_count: List[int] = [0]
        # Auditor-observation ring (:meth:`record`).
        self._times: List[float] = [0.0] * capacity
        self._kinds: List[Optional[str]] = [None] * capacity
        self._details: List[Any] = [None] * capacity
        self._count: List[int] = [0]

    @property
    def recorded(self) -> int:
        """Total observations ever recorded across both rings."""
        return self.ring_count[0] + self._count[0]

    def record(self, time: float, kind: str, detail: Any) -> None:
        """Append one observation, overwriting the oldest when full."""
        count = self._count
        i = count[0] % self.capacity
        self._times[i] = time
        self._kinds[i] = kind
        self._details[i] = detail
        count[0] += 1

    def __len__(self) -> int:
        return min(self.ring_count[0], self.ring_capacity) + min(
            self._count[0], self.capacity
        )

    @staticmethod
    def _render(detail: Any) -> Any:
        if detail is None or isinstance(detail, (str, int, float, bool, dict)):
            return detail
        return getattr(detail, "__qualname__", None) or repr(detail)

    def snapshot(self) -> List[Dict[str, Any]]:
        """The retained events, oldest first, as JSON-ready dicts.

        Engine events and auditor observations are merged by timestamp;
        at equal times engine events sort first (an observation is made
        *after* the event that triggered the sweep).
        """
        engine = []
        total, cap = self.ring_count[0], self.ring_capacity
        for j in range(max(0, total - cap), total):
            i = j & (cap - 1)
            engine.append(
                {
                    "t": self.ring_times[i],
                    "kind": "event",
                    "detail": self._render(self.ring_details[i]),
                }
            )
        recorded = []
        total, cap = self._count[0], self.capacity
        for j in range(max(0, total - cap), total):
            i = j % cap
            recorded.append(
                {
                    "t": self._times[i],
                    "kind": self._kinds[i],
                    "detail": self._render(self._details[i]),
                }
            )
        # Stable sort on the concatenation keeps engine entries ahead of
        # equal-time observations.
        return sorted(engine + recorded, key=lambda e: e["t"])

    def dump(
        self,
        violations: Sequence[Dict[str, Any]] = (),
        context: Optional[Dict[str, Any]] = None,
        path: Optional[str] = None,
    ) -> str:
        """Write the trace as JSON; returns the file path.

        Without an explicit ``path`` the trace goes to
        ``$REPRO_AUDIT_DIR`` (or ``./audit-traces``) as
        ``audit-<pid>-<n>.json`` — distinct per worker process and per
        dump, so parallel batches never collide.
        """
        if path is None:
            directory = pathlib.Path(
                os.environ.get(TRACE_DIR_ENV) or DEFAULT_TRACE_DIR
            )
            directory.mkdir(parents=True, exist_ok=True)
            name = f"audit-{os.getpid()}-{next(_DUMP_COUNTER)}.json"
            path = str(directory / name)
        payload = {
            "format": "repro.debug.flight-recorder/1",
            "pid": os.getpid(),
            "capacity": self.capacity,
            "recorded_total": self.recorded,
            "context": context or {},
            "violations": list(violations),
            "events": self.snapshot(),
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, default=repr)
        # Cross-reference the dump in the telemetry trace so one file
        # tells the whole story of a failed run.
        from repro.obs import AUDIT_DUMP, current_tracer

        tr = current_tracer()
        if tr is not None:
            t = violations[-1]["time"] if violations else 0.0
            tr.emit(AUDIT_DUMP, t, path=path, violations=len(violations))
        return path
