"""Multi-flow and non-cellular scenarios from the paper's evaluation.

* :func:`self_contention` / :func:`contention_vs_cubic` — Figure 12:
  two flows share the bottleneck, the second starting 30 s after the
  first, both measured over the following 60 s.
* :func:`uplink_congestion` — Figure 14: a downlink flow races a
  concurrent CUBIC upload that saturates the uplink, delaying ACKs.
* :func:`wired_path` — Figure 13: inter-continental wired bottlenecks.
* :func:`shallow_buffer` — the §6 discussion experiment: small buffers
  and CoDel AQM.
* :func:`baseline_shift` — a handover/signal change (§4.1): the
  underlying one-way delay jumps mid-flow, stressing the RD_min
  baseline of delay-based algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.experiments.parallel import CcSpec, RefOrKey

from repro.debug import AuditArg
from repro.experiments.runner import (
    CcFactory,
    FlowResult,
    FlowSpec,
    cellular_path_config,
    run_experiment,
    wired_path_config,
)
from repro.tcp.congestion.cubic import Cubic
from repro.traces.presets import WIRED_PATHS
from repro.traces.trace import Trace

#: Figure-12 timing: flow 1 at t=0, flow 2 at t=30 s, measure 30–90 s.
CONTENTION_SECOND_START = 30.0
CONTENTION_OVERLAP = 60.0


def self_contention(
    cc_factory: CcFactory,
    downlink_trace: Trace,
    uplink_trace: Optional[Trace] = None,
    name: str = "",
    audit: AuditArg = None,
) -> Tuple[FlowResult, FlowResult]:
    """Two flows of the same algorithm share the path (Figure 12(a)).

    Returns (first flow, second flow) results, both measured over the
    60 s the flows overlap.
    """
    start2 = CONTENTION_SECOND_START
    end = start2 + CONTENTION_OVERLAP
    flows = [
        FlowSpec(
            cc_factory=cc_factory,
            name=f"{name or 'flow'}-1",
            start=0.0,
            measure_start=start2,
            measure_end=end,
        ),
        FlowSpec(
            cc_factory=cc_factory,
            name=f"{name or 'flow'}-2",
            start=start2,
            measure_start=start2,
            measure_end=end,
        ),
    ]
    results = run_experiment(
        cellular_path_config(downlink_trace, uplink_trace),
        flows,
        duration=end,
        audit=audit,
    )
    return results[0], results[1]


def contention_vs_cubic(
    cc_factory: CcFactory,
    downlink_trace: Trace,
    uplink_trace: Optional[Trace] = None,
    cubic_first: bool = True,
    name: str = "algo",
    audit: AuditArg = None,
) -> Dict[str, FlowResult]:
    """One algorithm against CUBIC cross traffic (Figure 12(b)).

    ``cubic_first`` selects the start order; the late flow starts 30 s
    in, and both are measured over the 60 s overlap.  Returns results
    keyed "cubic" and ``name``.
    """
    start2 = CONTENTION_SECOND_START
    end = start2 + CONTENTION_OVERLAP
    specs = {
        "cubic": FlowSpec(
            cc_factory=Cubic,
            name="cubic",
            start=0.0 if cubic_first else start2,
            measure_start=start2,
            measure_end=end,
        ),
        name: FlowSpec(
            cc_factory=cc_factory,
            name=name,
            start=start2 if cubic_first else 0.0,
            measure_start=start2,
            measure_end=end,
        ),
    }
    # (start, name) — start alone leaves tie-start ordering (and with it
    # flow-id assignment, hence event tie-breaks) to dict-insertion
    # accident, which is invisible here but breaks byte-identity when a
    # grid cell launches both flows at t=0.
    ordered = sorted(specs.values(), key=lambda f: (f.start, f.name))
    results = run_experiment(
        cellular_path_config(downlink_trace, uplink_trace),
        ordered,
        duration=end,
        audit=audit,
    )
    return {r.name: r for r in results}


def uplink_congestion(
    cc_factory: CcFactory,
    downlink_trace: Trace,
    uplink_trace: Trace,
    duration: float = 40.0,
    measure_start: float = 5.0,
    name: str = "down",
    audit: AuditArg = None,
) -> Dict[str, FlowResult]:
    """Figure 14: a download races a CUBIC upload saturating the uplink.

    The upload's data packets share the uplink bottleneck with the
    download's ACK stream; cwnd-based downloads stall because their ACK
    clock is delayed, while one-way-delay-driven rate-based senders keep
    the downlink busy.
    """
    flows = [
        FlowSpec(cc_factory=cc_factory, name=name, direction="down"),
        FlowSpec(cc_factory=Cubic, name="cubic-upload", direction="up"),
    ]
    results = run_experiment(
        cellular_path_config(downlink_trace, uplink_trace),
        flows,
        duration=duration,
        measure_start=measure_start,
        audit=audit,
    )
    return {r.name: r for r in results}


def wired_path(
    cc_factory: CcFactory,
    region: str = "US",
    duration: float = 30.0,
    measure_start: float = 3.0,
    name: str = "",
    audit: AuditArg = None,
) -> FlowResult:
    """Figure 13: a single flow over an inter-continental wired path.

    Regions and their (rate, RTT, buffer) come from
    :data:`repro.traces.presets.WIRED_PATHS`.
    """
    if region not in WIRED_PATHS:
        raise ValueError(f"unknown region {region!r}; have {sorted(WIRED_PATHS)}")
    rate, rtt, buffer_packets = WIRED_PATHS[region]
    config = wired_path_config(rate, rtt, buffer_packets)
    results = run_experiment(
        config,
        [FlowSpec(cc_factory=cc_factory, name=name or region)],
        duration=duration,
        measure_start=measure_start,
        audit=audit,
    )
    return results[0]


def shallow_buffer(
    cc_factory: CcFactory,
    downlink_trace: Trace,
    buffer_packets: int = 60,
    aqm: str = "droptail",
    duration: float = 30.0,
    measure_start: float = 3.0,
    name: str = "",
    audit: AuditArg = None,
) -> FlowResult:
    """§6 discussion: shallow bottleneck buffers and CoDel AQM."""
    config = cellular_path_config(
        downlink_trace, buffer_packets=buffer_packets, aqm=aqm
    )
    results = run_experiment(
        config,
        [FlowSpec(cc_factory=cc_factory, name=name or "flow")],
        duration=duration,
        measure_start=measure_start,
        audit=audit,
    )
    return results[0]


def baseline_shift(
    cc_factory: CcFactory,
    downlink_trace: Trace,
    shift_delta: float,
    shift_at: float = 8.0,
    duration: float = 30.0,
    measure_start: float = 4.0,
    name: str = "",
    audit: AuditArg = None,
) -> FlowResult:
    """§4.1: shift the underlying one-way delay mid-flow (handover).

    ``shift_delta`` is added to the downlink propagation delay at
    ``shift_at`` seconds.  A positive shift makes every buffer-delay
    estimate read too high until the old RD minimum ages out of the
    estimator's window; a negative one self-heals immediately.
    """
    from repro.debug import InvariantViolation, make_auditor
    from repro.sim.engine import Simulator
    from repro.sim.network import DuplexPath
    from repro.metrics.collector import DeliveryCollector
    from repro.metrics.stats import delay_summary
    from repro.tcp.receiver import TcpReceiver
    from repro.tcp.sender import TcpSender

    sim = Simulator()
    config = cellular_path_config(downlink_trace)
    path = DuplexPath(sim, config)

    forward_audit = None
    auditor = make_auditor(sim, audit)
    if auditor is not None:
        forward_audit, _ = auditor.attach_path(path)

    collector = DeliveryCollector()
    receiver = TcpReceiver(
        sim, 0, send_ack=path.send_reverse, on_data=collector.on_data
    )
    sender = TcpSender(sim, 0, cc_factory(), send_packet=path.send_forward)
    path.attach_flow(0, receiver.receive, sender.on_ack_packet)
    if auditor is not None:
        auditor.attach_flow(sender, receiver, data_link=forward_audit)
    sender.start()

    def shift() -> None:
        path.forward_link.prop_delay += shift_delta

    sim.schedule_at(shift_at, shift)
    try:
        sim.run(until=duration)
        if auditor is not None:
            auditor.final_check()
    except InvariantViolation:
        raise
    except Exception as exc:
        if auditor is not None:
            auditor.record_exception(exc)
        raise

    delays = collector.delays(measure_start, duration)
    window = max(1e-9, duration - measure_start)
    return FlowResult(
        name=name or "shifted",
        throughput=collector.delivered_bytes(measure_start, duration) / window,
        delay=delay_summary(delays),
        delivered_bytes=collector.delivered_bytes(measure_start, duration),
        bottleneck_drops=path.forward_drops.get(0, 0),
        retransmissions=sender.retransmissions,
        rto_count=sender.rto_count,
        measure_start=measure_start,
        measure_end=duration,
        collector=collector,
        sender=sender,
        capacity=downlink_trace.capacity_bytes(measure_start, duration) / window,
    )


def throughput_share(results: List[FlowResult]) -> List[float]:
    """Each flow's fraction of the summed throughput."""
    total = sum(r.throughput for r in results)
    if total <= 0:
        return [0.0 for _ in results]
    return [r.throughput / total for r in results]


# ----------------------------------------------------------------------
# Batch execution over worker processes
# ----------------------------------------------------------------------
#: Name → driver, for picklable scenario references.
SCENARIOS = {
    "self_contention": self_contention,
    "contention_vs_cubic": contention_vs_cubic,
    "uplink_congestion": uplink_congestion,
    "wired_path": wired_path,
    "shallow_buffer": shallow_buffer,
    "baseline_shift": baseline_shift,
}


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario × algorithm cell, picklable for process pools.

    ``scenario`` names an entry of :data:`SCENARIOS`; ``cc`` rebuilds
    the algorithm in the worker; traces travel as references.
    ``wired_path`` takes no traces — leave ``downlink`` as ``None`` and
    pass ``region`` through ``options``.
    """

    scenario: str
    cc: "CcSpec"
    downlink: Optional["RefOrKey"] = None
    uplink: Optional["RefOrKey"] = None
    options: Tuple[Tuple[str, object], ...] = ()
    #: Invariant auditing (:mod:`repro.debug`): None defers to the
    #: REPRO_AUDIT environment switch, which worker processes inherit.
    audit: AuditArg = None
    #: Telemetry trace path (:mod:`repro.obs`); assigned by the batch
    #: layer when a batch-level target is given.
    telemetry: Optional[str] = None
    #: Per-kind sampling budget spec (``repro.obs.SamplingPolicy``
    #: grammar); only meaningful with ``telemetry``.
    sampling: Optional[str] = None
    #: Enable phase profiling (``repro.obs.PhaseProfiler``) for the
    #: scenario's simulations; only meaningful with ``telemetry``.
    profile: Optional[bool] = None

    def execute(self):
        from repro.experiments.parallel import detach_results, resolve_trace

        driver = SCENARIOS[self.scenario]
        args = [self.cc.build]
        if self.downlink is not None:
            args.append(resolve_trace(self.downlink))
            if self.uplink is not None:
                args.append(resolve_trace(self.uplink))
        kwargs = dict(self.options)
        if self.audit is not None:
            kwargs["audit"] = self.audit
        if self.telemetry is not None:
            import repro.obs as obs

            # Scenario drivers build their simulations internally, and
            # instrumented components bind the ambient tracer (and
            # profiler) at construction — activate both around the
            # whole driver call.  The inner run_experiment finds them
            # ambient and flushes metrics/timings per run.
            with obs.tracing(self.telemetry, sampling=self.sampling):
                profiler = obs.resolve_profiler(self.profile, True)
                if profiler is not None:
                    obs.activate_profiler(profiler)
                try:
                    outcome = driver(*args, **kwargs)
                finally:
                    if profiler is not None:
                        obs.deactivate_profiler()
        else:
            outcome = driver(*args, **kwargs)
        return detach_results(outcome)


def run_scenario_grid(
    scenario: str,
    algorithms: Dict[str, "CcSpec"],
    downlink_trace: Optional[Trace] = None,
    uplink_trace: Optional[Trace] = None,
    n_jobs: int = 1,
    audit: AuditArg = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    on_outcome=None,
    telemetry: Optional[str] = None,
    sampling: Optional[str] = None,
    profile: Optional[bool] = None,
    **options: object,
) -> Dict[str, object]:
    """Run one scenario for several algorithms, optionally in parallel.

    ``algorithms`` maps a label to the :class:`~repro.experiments.
    parallel.CcSpec` to run; the return maps each label to whatever the
    scenario driver returns (detached of simulation handles).  ``audit``
    enables invariant auditing per cell (None defers to REPRO_AUDIT,
    which worker processes inherit).  ``timeout`` (per-cell wall
    clock), ``retries`` (bounded re-dispatch after a timeout or worker
    death), ``on_outcome`` (streaming progress callback), ``telemetry``
    (merged batch trace, :mod:`repro.obs`), ``sampling`` (per-kind
    event budgets), and ``profile`` (phase timers) forward to
    :func:`repro.experiments.parallel.run_batch`.
    """
    from repro.experiments.parallel import collect, run_batch

    if scenario not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {scenario!r}; have {sorted(SCENARIOS)}"
        )
    labels = list(algorithms)
    specs = [
        ScenarioSpec(
            scenario=scenario,
            cc=algorithms[label],
            downlink=downlink_trace,
            uplink=uplink_trace,
            options=tuple(sorted(options.items())),
            audit=audit,
        )
        for label in labels
    ]
    results = collect(
        run_batch(
            specs,
            n_jobs=n_jobs,
            timeout=timeout,
            retries=retries,
            on_outcome=on_outcome,
            telemetry=telemetry,
            sampling=sampling,
            profile=profile,
        )
    )
    return dict(zip(labels, results))
