"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``        one flow of a chosen algorithm over a chosen trace
``shootout``   the full Figure-7 line-up over a chosen trace
``frontier``   sweep PropRate's target buffer delay (Figure 10)
``grid``       the N×M contention/fairness grid (Figure 12
               generalized; see docs/contention_grid.md)
``traces``     print Table-2 statistics for the synthetic traces
``experiments`` list the paper-artifact → benchmark registry
``trace``      summarize (or diff) telemetry traces written with
               ``--telemetry`` (see docs/observability.md)
``watch``      auto-refreshing ASCII dashboard following a live
               ``--telemetry`` trace (queue sawtooth, CC state lane,
               scheduler progress, fluid tower occupancy)
``env``        control-plane environment (docs/env.md):
               ``env rollout`` drives one episode with a policy
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Optional

from repro.core.adaptive import AdaptivePropRate
from repro.core.proprate import PropRate
from repro.experiments.algorithms import paper_algorithms, run_shootout
from repro.experiments.frontier import sweep_frontier
from repro.experiments.registry import describe_all
from repro.experiments.runner import run_single_flow
from repro.traces.presets import (
    TABLE2_TARGETS,
    isp_trace,
    lte_validation_trace,
    sprint_like_trace,
)

TRACE_CHOICES = [
    f"{isp}-{mode}" for isp, mode in sorted(TABLE2_TARGETS)
] + ["sprint", "lte-validation"]


def _load_traces(label: str):
    if label == "sprint":
        return sprint_like_trace(duration=120.0), None
    if label == "lte-validation":
        return (
            lte_validation_trace(duration=60.0),
            lte_validation_trace(duration=60.0, direction="uplink"),
        )
    isp, mode = label.split("-", 1)
    return (
        isp_trace(isp, mode, duration=60.0),
        isp_trace(isp, mode, duration=60.0, direction="uplink"),
    )


def _algorithm_factory(name: str, target_ms: Optional[float]):
    if name.lower() == "proprate":
        target = (target_ms or 40.0) / 1000.0
        return lambda: PropRate(target_buffer_delay=target)
    if name.lower() in ("proprate-a", "adaptive", "adaptive-proprate"):
        target = (target_ms or 40.0) / 1000.0
        return lambda: AdaptivePropRate(target_buffer_delay=target)
    algorithms = paper_algorithms()
    if name in algorithms:
        return algorithms[name]
    raise SystemExit(
        f"unknown algorithm {name!r}; choose one of "
        f"{sorted(algorithms)} or 'PropRate [--target MS]'"
    )


def _progress_printer(total: int, stream=None) -> Callable:
    """A ``done/total + ETA`` line, redrawn as each outcome lands.

    The returned callback plugs into the batch layer's ``on_outcome``
    hook; the ETA extrapolates from the mean completion rate so far,
    which is what a work-stealing queue makes meaningful (completions
    arrive roughly uniformly even on long-tailed grids).
    """
    stream = stream if stream is not None else sys.stderr
    start = time.monotonic()
    done = [0]

    def on_outcome(outcome) -> None:
        done[0] += 1
        elapsed = time.monotonic() - start
        eta = elapsed / done[0] * (total - done[0])
        state = "ok" if outcome.ok else "FAILED"
        stream.write(
            f"\r[{done[0]}/{total}] {state} #{outcome.index}"
            f"  elapsed {elapsed:6.1f}s  eta {eta:6.1f}s "
        )
        if done[0] == total:
            stream.write("\n")
        stream.flush()

    return on_outcome


def _batch_kwargs(args: argparse.Namespace, total: int) -> dict:
    """The scheduler knobs shared by every batch command."""
    return dict(
        n_jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        on_outcome=_progress_printer(total) if args.progress else None,
        telemetry=args.telemetry,
        sampling=args.sample,
        profile=True if args.profile else None,
    )


def _cmd_run(args: argparse.Namespace) -> None:
    downlink, uplink = _load_traces(args.trace)
    factory = _algorithm_factory(args.algorithm, args.target)
    result = run_single_flow(
        factory, downlink, uplink,
        duration=args.duration, measure_start=args.warmup,
        audit=True if args.audit else None,
        telemetry=args.telemetry,
        sampling=args.sample,
        profile=True if args.profile else None,
    )
    print(
        f"{args.algorithm} on {args.trace}: "
        f"{result.throughput_kbps:.1f} KB/s, "
        f"mean {result.delay.mean_ms:.1f} ms, "
        f"p95 {result.delay.p95_ms:.1f} ms, "
        f"{result.bottleneck_drops} drops, {result.rto_count} RTOs"
    )


def _cmd_shootout(args: argparse.Namespace) -> None:
    downlink, uplink = _load_traces(args.trace)
    lineup = list(paper_algorithms())
    results = run_shootout(
        downlink, uplink,
        duration=args.duration, measure_start=args.warmup,
        audit=True if args.audit else None,
        **_batch_kwargs(args, len(lineup)),
    )
    print(f"{'Algorithm':10s} {'tput KB/s':>10s} {'mean ms':>8s} {'p95 ms':>8s}")
    for name, result in results.items():
        print(
            f"{name:10s} {result.throughput_kbps:10.1f} "
            f"{result.delay.mean_ms:8.1f} {result.delay.p95_ms:8.1f}"
        )


def _cmd_frontier(args: argparse.Namespace) -> None:
    downlink, uplink = _load_traces(args.trace)
    targets = [t / 1000.0 for t in range(args.low, args.high + 1, args.step)]
    points = sweep_frontier(
        downlink, uplink, targets=targets,
        duration=args.duration, measure_start=args.warmup,
        audit=True if args.audit else None,
        **_batch_kwargs(args, len(targets)),
    )
    print(f"{'target ms':>9s} {'tput KB/s':>10s} {'mean ms':>8s} {'p95 ms':>8s}")
    for p in points:
        print(
            f"{p.target_tbuff * 1000:9.0f} {p.throughput_kbps:10.1f} "
            f"{p.mean_delay_ms:8.1f} {p.p95_delay_ms:8.1f}"
        )


def _cmd_grid(args: argparse.Namespace) -> None:
    # Lazy: the grid layer drags in the scheduler and report stack.
    from repro.experiments.contention_grid import (
        FULL_GRID,
        REDUCED_GRID,
        grid_size,
        run_grid,
    )
    from repro.report import grid_to_json, render_grid_heatmaps

    config = REDUCED_GRID if args.reduced else FULL_GRID
    report = run_grid(
        config,
        audit=True if args.audit else None,
        **_batch_kwargs(args, grid_size(config)),
    )
    print(render_grid_heatmaps(report))
    if args.out is not None:
        path = grid_to_json(report.to_dict(), args.out)
        print(f"\nwrote {path}")


def _cmd_fluid(args: argparse.Namespace) -> None:
    # Lazy: the fluid tier drags in numpy.
    from repro.fluid import fan_in_scenario, run_fluid
    from repro.report import fluid_to_json, render_fluid_towers

    flows, towers, handovers = fan_in_scenario(
        args.flows, args.towers, args.duration, mix=args.mix,
        handover_count=args.handovers,
        tower_labels=tuple(args.tower_trace or ()),
        seed=args.seed,
    )
    report = run_fluid(
        flows, towers, args.duration, dt=args.dt,
        measure_start=args.warmup, handovers=handovers,
        telemetry=args.telemetry,
        sampling=args.sample,
        profile=True if args.profile else None,
    )
    print(render_fluid_towers(report))
    if args.out is not None:
        path = fluid_to_json(report.to_dict(), args.out)
        print(f"\nwrote {path}")


def _build_env_policy(spec: str):
    # Lazy: keep repro.env off the import path of the other commands.
    from repro.env import AdaptiveTargetPolicy, ConstantRatePolicy, NativePolicy

    if spec == "native":
        return NativePolicy()
    if spec == "adaptive":
        return AdaptiveTargetPolicy()
    if spec.startswith("rate:"):
        return ConstantRatePolicy(float(spec[len("rate:"):]))
    raise SystemExit(
        f"unknown policy {spec!r}; choose 'native', 'adaptive' "
        "(needs a PropRate-family --algorithm), or 'rate:<bytes/s>'"
    )


def _cmd_env_rollout(args: argparse.Namespace) -> None:
    import repro.obs as obs
    from repro.env import CcEnv, rollout

    downlink, uplink = _load_traces(args.trace)
    inner = (
        None if args.algorithm.lower() == "none"
        else _algorithm_factory(args.algorithm, args.target)
    )
    policy = _build_env_policy(args.policy)
    env = CcEnv(
        downlink, uplink,
        inner_cc=inner,
        duration=args.duration,
        measure_start=args.warmup,
        step_interval=args.step_interval,
        audit=True if args.audit else None,
        telemetry=args.telemetry,
        sampling=args.sample,
        name=args.algorithm,
    )
    profiler = obs.resolve_profiler(
        True if args.profile else None, args.telemetry is not None
    )
    if profiler is not None:
        obs.activate_profiler(profiler)
    try:
        out = rollout(env, policy)
    finally:
        if profiler is not None:
            obs.deactivate_profiler()
    result = out.result
    print(
        f"{args.algorithm}/{args.policy} on {args.trace}: "
        f"{out.steps} steps, reward {out.total_reward:.2f}, "
        f"{result.throughput_kbps:.1f} KB/s, "
        f"mean {result.delay.mean_ms:.1f} ms, "
        f"p95 {result.delay.p95_ms:.1f} ms, "
        f"{result.bottleneck_drops} drops, {result.rto_count} RTOs"
    )
    final = out.final_obs
    print(
        f"final obs (v{final.version}): "
        + ", ".join(f"{k}={v:.4g}" for k, v in final.as_dict().items())
    )


def _cmd_traces(args: argparse.Namespace) -> None:
    print(f"{'Trace':22s} {'mean KB/s':>10s} {'target':>8s} {'std KB/s':>9s} {'target':>8s}")
    for (isp, mode), (mean_t, std_t) in sorted(TABLE2_TARGETS.items()):
        stats = isp_trace(isp, mode, duration=120.0).stats()
        print(
            f"ISP {isp}-{mode:11s} {stats.mean_kbps:10.1f} {mean_t:8.1f} "
            f"{stats.std_kbps:9.1f} {std_t:8.1f}"
        )
    sprint = sprint_like_trace(duration=120.0).stats()
    print(
        f"{'Sprint-like':22s} {sprint.mean_kbps:10.1f} {'—':>8s} "
        f"{sprint.std_kbps:9.1f} {'—':>8s}  (outage {sprint.outage_fraction:.0%})"
    )


def _cmd_experiments(args: argparse.Namespace) -> None:
    print(describe_all())


def _cmd_trace(args: argparse.Namespace) -> None:
    # Lazy: the analyzer drags in numpy, which the tracer hot path and
    # the other commands should not pay for at import time.
    from repro.obs import analyze

    events = analyze.read_trace(args.path)
    if args.profile:
        table = analyze.profile_table(events)
        print(table if table
              else "no profiling data in trace (run with --profile "
                   "or REPRO_PROFILE=1)")
    elif args.plot:
        print(analyze.render_plot(events, width=args.plot_width))
    elif args.diff is not None:
        other = analyze.read_trace(args.diff)
        print(analyze.diff_traces(events, other,
                                  label_a=args.path, label_b=args.diff))
    else:
        print(analyze.summarize_trace(events, label=args.path))


def _cmd_watch(args: argparse.Namespace) -> None:
    # Lazy: the dashboard reuses the analyzer's render helpers (numpy).
    from repro.obs.live import watch

    if (args.path is None) == (args.connect is None):
        raise SystemExit(
            "repro watch: give a trace PATH or --connect host:port "
            "(exactly one)")
    watch(
        args.path,
        interval=args.interval,
        frames=args.frames,
        width=args.width,
        height=args.height,
        once=args.once,
        clear=args.clear,
        connect=args.connect,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PropRate (CoNEXT 2017) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _common(p):
        p.add_argument("--trace", choices=TRACE_CHOICES, default="A-stationary")
        p.add_argument("--duration", type=float, default=30.0)
        p.add_argument("--warmup", type=float, default=4.0)
        p.add_argument(
            "--audit", action="store_true",
            help="run the repro.debug invariant auditor alongside the "
            "simulation (results are unchanged; violations abort with a "
            "JSON flight-recorder trace)",
        )
        p.add_argument(
            "--telemetry", metavar="PATH", default=None,
            help="write a repro.obs JSONL telemetry trace to PATH "
            "(CC state/NFL/estimator events, queue samples, metrics; "
            "batch commands merge worker traces into one file); "
            "inspect it with 'repro trace PATH' or follow it live "
            "with 'repro watch PATH'",
        )
        _obs_knobs(p)

    def _obs_knobs(p):
        p.add_argument(
            "--sample", metavar="SPEC", default=None,
            help="per-event-kind sampling budgets for the telemetry "
            "trace, e.g. 'queue.sample:every=10;cc.nfl:interval=0.5;"
            "*:max=100000' (';'-separated kind:rule items, '*' is the "
            "default; drops are counted in run.telemetry.dropped.*)",
        )
        p.add_argument(
            "--profile", action="store_true",
            help="attribute run time to subsystem phases (ACK path, "
            "link serve, delivery pump, scheduler dispatch, fluid "
            "integration); requires --telemetry; read the table with "
            "'repro trace PATH --profile'",
        )

    p_run = sub.add_parser("run", help="run one flow")
    _common(p_run)
    p_run.add_argument("algorithm", help="PropRate, CUBIC, BBR, Sprout, ...")
    p_run.add_argument("--target", type=float, default=None,
                       help="PropRate target buffer delay (ms)")
    p_run.set_defaults(func=_cmd_run)

    def _jobs(p):
        p.add_argument(
            "--jobs", type=int, default=1,
            help="worker processes (1 = serial, 0 = all cores); results "
            "are identical at any job count",
        )
        p.add_argument(
            "--timeout", type=float, default=None, metavar="SECONDS",
            help="per-run wall-clock budget; a run that exceeds it has "
            "its worker killed (--jobs >= 2) or is cut short by the "
            "engine's run deadline (serial) and reports a timeout",
        )
        p.add_argument(
            "--retries", type=int, default=0, metavar="N",
            help="re-dispatch a run lost to a timeout or worker crash "
            "up to N times before reporting the failure",
        )
        p.add_argument(
            "--no-progress", dest="progress", action="store_false",
            default=True,
            help="suppress the live done/total + ETA line on stderr",
        )

    p_shoot = sub.add_parser("shootout", help="Figure-7 line-up")
    _common(p_shoot)
    _jobs(p_shoot)
    p_shoot.set_defaults(func=_cmd_shootout)

    p_front = sub.add_parser("frontier", help="Figure-10 sweep")
    _common(p_front)
    _jobs(p_front)
    p_front.add_argument("--low", type=int, default=12, help="lowest target (ms)")
    p_front.add_argument("--high", type=int, default=120, help="highest target (ms)")
    p_front.add_argument("--step", type=int, default=12, help="grid step (ms)")
    p_front.set_defaults(func=_cmd_frontier)

    p_grid = sub.add_parser(
        "grid", help="N×M contention/fairness grid (Figure 12 generalized)"
    )
    _jobs(p_grid)
    p_grid.add_argument(
        "--reduced", action="store_true",
        help="run the CI-sized subset (2 mixes × {2,4} flows × 1 wired "
        "trace) instead of the full grid",
    )
    p_grid.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the deterministic JSON artifact to PATH "
        "(cell schema: docs/contention_grid.md)",
    )
    p_grid.add_argument(
        "--audit", action="store_true",
        help="run the repro.debug invariant auditor in every cell "
        "(flow-scaled t_buff bands; results are unchanged)",
    )
    p_grid.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="write a merged repro.obs JSONL trace to PATH; each cell's "
        "records are tagged with a grid.cell header",
    )
    _obs_knobs(p_grid)
    p_grid.set_defaults(func=_cmd_grid)

    p_fluid = sub.add_parser(
        "fluid",
        help="flow-level fluid tier: cell-tower fan-in at thousands of "
        "flows (docs/fluid.md)",
    )
    p_fluid.add_argument(
        "--flows", type=int, default=1000,
        help="number of flows fanned into the towers (default 1000)",
    )
    p_fluid.add_argument(
        "--towers", type=int, default=8,
        help="number of cell towers (default 8)",
    )
    p_fluid.add_argument("--duration", type=float, default=30.0)
    p_fluid.add_argument("--warmup", type=float, default=5.0)
    p_fluid.add_argument(
        # Keep in sync with repro.fluid.scenarios.FAN_IN_MIXES (listed
        # literally so the parser builds without importing numpy).
        "--mix", choices=("cubic-self", "pr-adaptive", "pr-heavy",
                          "pr-self", "pr-vs-cubic"),
        default="pr-vs-cubic",
        help="controller rotation across flows (default pr-vs-cubic)",
    )
    p_fluid.add_argument(
        "--handovers", type=int, default=0,
        help="handovers spread over the run, migrating flows between "
        "towers (default 0)",
    )
    p_fluid.add_argument(
        "--tower-trace", action="append", metavar="LABEL",
        help="tower capacity label ('wired:<N>mbps' or "
        "'cellular:<ISP>-<mode>'); repeat to cycle over towers "
        "(default: constant 12.5e6 B/s towers)",
    )
    p_fluid.add_argument(
        "--dt", type=float, default=0.005,
        help="integration step in seconds (default 0.005)",
    )
    p_fluid.add_argument(
        "--seed", type=int, default=0,
        help="deterministic scenario rotation seed (default 0)",
    )
    p_fluid.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the deterministic JSON artifact to PATH",
    )
    p_fluid.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="write a repro.obs JSONL trace to PATH (fluid.run/"
        "fluid.tower/fluid.handover/fluid.loss events)",
    )
    _obs_knobs(p_fluid)
    p_fluid.set_defaults(func=_cmd_fluid)

    p_env = sub.add_parser(
        "env",
        help="control-plane environment: step/observe/act over the "
        "packet tier (docs/env.md)",
    )
    env_sub = p_env.add_subparsers(dest="env_command", required=True)
    p_roll = env_sub.add_parser(
        "rollout", help="drive one episode of CcEnv with a policy"
    )
    _common(p_roll)
    p_roll.add_argument(
        "--algorithm", default="proprate",
        help="inner algorithm the policy adapter wraps (PropRate, "
        "adaptive-proprate, CUBIC, ...; 'none' = externally driven "
        "rate, pair with --policy rate:<bytes/s>)",
    )
    p_roll.add_argument(
        "--target", type=float, default=None,
        help="PropRate target buffer delay (ms)",
    )
    p_roll.add_argument(
        "--policy", default="native",
        help="'native' (pure replay, bit-identical to the native run), "
        "'adaptive' (epoch-granular PR(A) target shrink/recovery), or "
        "'rate:<bytes/s>' (constant pacing override)",
    )
    p_roll.add_argument(
        "--step-interval", type=float, default=0.25, metavar="SECONDS",
        help="simulated seconds per env step (default 0.25, PropRate's "
        "feedback epoch)",
    )
    p_roll.set_defaults(func=_cmd_env_rollout)

    p_traces = sub.add_parser("traces", help="Table-2 trace statistics")
    p_traces.set_defaults(func=_cmd_traces)

    p_exp = sub.add_parser("experiments", help="paper-artifact registry")
    p_exp.set_defaults(func=_cmd_experiments)

    p_trace = sub.add_parser(
        "trace", help="summarize or diff --telemetry JSONL traces"
    )
    p_trace.add_argument("path", help="trace file written with --telemetry")
    p_trace.add_argument(
        "--diff", metavar="OTHER", default=None,
        help="compare against a second trace instead of summarizing",
    )
    p_trace.add_argument(
        "--plot", action="store_true",
        help="ASCII waveform view: buffer-delay sawtooth + state dwell",
    )
    p_trace.add_argument(
        "--plot-width", type=int, default=100, metavar="COLS",
        help="plot width in columns (default 100)",
    )
    p_trace.add_argument(
        "--profile", action="store_true",
        help="print the per-phase timing table recorded by --profile/"
        "REPRO_PROFILE runs instead of the summary",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_watch = sub.add_parser(
        "watch",
        help="auto-refreshing ASCII dashboard following a live "
        "--telemetry trace (works on in-progress parallel/grid/fluid "
        "runs and across file rotation)",
    )
    p_watch.add_argument("path", nargs="?", default=None,
                         help="trace file a run is writing with "
                         "--telemetry (may not exist yet)")
    p_watch.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="follow a run serving its trace over TCP "
        "(--telemetry tcp://host:port) instead of tailing a file",
    )
    p_watch.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="refresh interval (default 1.0)",
    )
    p_watch.add_argument(
        "--once", action="store_true",
        help="drain what is on disk, render one frame, and exit "
        "(CI smoke mode)",
    )
    p_watch.add_argument(
        "--frames", type=int, default=None, metavar="N",
        help="exit after N refreshes (default: until the run completes)",
    )
    p_watch.add_argument("--width", type=int, default=100, metavar="COLS")
    p_watch.add_argument("--height", type=int, default=6, metavar="ROWS")
    p_watch.add_argument(
        "--no-clear", dest="clear", action="store_false", default=True,
        help="append frames instead of clearing the screen between "
        "refreshes",
    )
    p_watch.set_defaults(func=_cmd_watch)
    return parser


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    try:
        args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-report; not an error.
        sys.stderr.close()
        raise SystemExit(0)


if __name__ == "__main__":
    main(sys.argv[1:])
