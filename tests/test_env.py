"""Tests for the control-plane environment (repro.env, docs/env.md)."""

import math

import pytest

from repro.core.proprate import PropRate
from repro.env import (
    DEFAULT_STEP_INTERVAL,
    OBS_FIELDS,
    OBS_VERSION,
    AdaptiveTargetPolicy,
    CcEnv,
    ConstantRatePolicy,
    NativePolicy,
    Observation,
    rollout,
)
from repro.experiments.algorithms import paper_algorithms
from repro.experiments.runner import canonical_summary, run_single_flow
from repro.tcp.congestion.policy import (
    PolicyDriven,
    WindowPolicyDriven,
    policy_adapter,
)
from repro.traces.generator import constant_rate_trace
from repro.traces.presets import isp_trace


def _down(duration=12.0, rate=1.5e6):
    return constant_rate_trace(rate, duration)


def _env(duration=6.0, **kwargs):
    kwargs.setdefault("inner_cc", lambda: PropRate(0.040))
    return CcEnv(_down(), duration=duration, measure_start=1.0, **kwargs)


class TestObservationSchema:
    def test_vector_matches_fields_in_order(self):
        env = _env()
        try:
            obs = env.reset()
            vec = obs.vector()
            assert len(vec) == len(OBS_FIELDS)
            assert vec == [getattr(obs, name) for name in OBS_FIELDS]
            assert list(obs.as_dict()) == list(OBS_FIELDS)
        finally:
            env.close()

    def test_version_pinned(self):
        # Bumping the schema must be a deliberate act: docs/env.md and
        # this pin move together.
        assert OBS_VERSION == 1
        assert Observation.version == OBS_VERSION
        assert Observation.fields == OBS_FIELDS

    def test_proprate_inner_exposes_knobs(self):
        env = _env()
        try:
            obs = env.reset()
            assert obs.target == pytest.approx(0.040)
            assert not math.isnan(obs.threshold)
            assert not math.isnan(obs.pacing_rate)
            assert math.isnan(obs.cwnd)  # rate-based adapter
        finally:
            env.close()

    def test_window_inner_exposes_cwnd(self):
        env = _env(inner_cc=paper_algorithms()["CUBIC"])
        try:
            obs = env.reset()
            assert math.isnan(obs.target)  # no PropRate knobs
            assert not math.isnan(obs.cwnd)
            assert math.isnan(obs.pacing_rate)
        finally:
            env.close()


class TestStepLoop:
    def test_step_advances_one_epoch(self):
        env = _env()
        try:
            obs = env.reset()
            assert obs.t == 0.0
            obs, reward, done, info = env.step(None)
            assert obs.t == pytest.approx(DEFAULT_STEP_INTERVAL)
            assert not done
            assert math.isfinite(reward)
            assert info["step"] == 1
        finally:
            env.close()

    def test_episode_terminates_at_horizon(self):
        env = _env(duration=2.0, step_interval=0.5)
        try:
            env.reset()
            steps = 0
            done = False
            while not done:
                _, _, done, _ = env.step(None)
                steps += 1
            assert steps == 4
            with pytest.raises(RuntimeError, match="reset"):
                env.step(None)
        finally:
            env.close()

    def test_step_before_reset_raises(self):
        env = _env()
        try:
            with pytest.raises(RuntimeError, match="reset"):
                env.step(None)
        finally:
            env.close()

    def test_reset_starts_a_fresh_identical_episode(self):
        env = _env(duration=3.0)
        try:
            first = rollout(env, NativePolicy(), close=False)
            second = rollout(env, NativePolicy(), close=False)
            assert (canonical_summary(first.result.summary())
                    == canonical_summary(second.result.summary()))
        finally:
            env.close()

    def test_closed_env_rejects_reset(self):
        env = _env()
        env.close()
        with pytest.raises(RuntimeError, match="closed"):
            env.reset()


class TestReplayIdentity:
    @pytest.mark.parametrize("name", ["PR(M)", "CUBIC"])
    def test_native_replay_bit_identical(self, name):
        # The determinism contract (enforced at scale by
        # scripts/check_determinism.py --env); pinned here on the
        # loss-heavy mobile trace so plain pytest catches a break.
        down = isp_trace("A", "mobile", duration=10.0)
        factory = paper_algorithms()[name]
        native = run_single_flow(factory, down, duration=5.0,
                                 measure_start=1.0)
        env = CcEnv(down, inner_cc=factory, duration=5.0, measure_start=1.0)
        replay = rollout(env).result
        assert (canonical_summary(replay.summary())
                == canonical_summary(native.summary()))

    def test_step_interval_does_not_change_the_run(self):
        # Incremental stepping composes: the epoch length is a control
        # granularity, not a simulation parameter.
        down = _down()
        results = []
        for interval in (0.1, 0.25, 1.0):
            env = CcEnv(down, inner_cc=lambda: PropRate(0.040),
                        duration=5.0, measure_start=1.0,
                        step_interval=interval)
            results.append(canonical_summary(
                rollout(env).result.summary()))
        assert results[0] == results[1] == results[2]


class TestActions:
    def test_unknown_action_key_rejected(self):
        env = _env()
        try:
            env.reset()
            with pytest.raises(ValueError, match="unknown action"):
                env.step({"warp": 9})
        finally:
            env.close()

    def test_rate_action_drives_externally(self):
        env = CcEnv(_down(), duration=4.0, measure_start=1.0)
        try:
            obs = env.reset()
            assert isinstance(env.adapter, PolicyDriven)
            for _ in range(8):
                obs, _, _, _ = env.step({"rate": 100_000.0})
            assert obs.pacing_rate == pytest.approx(100_000.0)
            assert obs.delivered > 0
        finally:
            env.close()

    def test_cwnd_action_needs_window_adapter(self):
        env = CcEnv(_down(), duration=4.0, measure_start=1.0, window=True)
        try:
            obs = env.reset()
            assert isinstance(env.adapter, WindowPolicyDriven)
            obs, _, _, _ = env.step({"cwnd": 12.0})
            assert obs.cwnd == pytest.approx(12.0)
            with pytest.raises(ValueError, match="rate-based"):
                env.step({"rate": 1e6})
        finally:
            env.close()

    def test_target_action_retunes_proprate(self):
        env = _env()
        try:
            env.reset()
            obs, _, _, _ = env.step({"target": 0.020})
            assert obs.target == pytest.approx(0.020)
            inner = env.adapter.inner
            assert inner.feedback.target == pytest.approx(0.020)
            assert (inner.feedback.min_threshold <= inner.feedback.threshold
                    <= inner.feedback.max_threshold)
            with pytest.raises(ValueError, match="positive"):
                env.step({"target": -1.0})
        finally:
            env.close()

    def test_target_action_needs_proprate_inner(self):
        env = _env(inner_cc=paper_algorithms()["CUBIC"])
        try:
            env.reset()
            with pytest.raises(ValueError, match="PropRate"):
                env.step({"target": 0.020})
        finally:
            env.close()

    def test_threshold_action_clamped_to_band(self):
        env = _env()
        try:
            env.reset()
            env.step({"threshold": 99.0})
            feedback = env.adapter.inner.feedback
            assert feedback.threshold == feedback.max_threshold
        finally:
            env.close()


class TestPolicies:
    def test_constant_rate_policy_delivers(self):
        env = CcEnv(_down(), duration=4.0, measure_start=1.0)
        out = rollout(env, ConstantRatePolicy(150_000.0))
        assert out.result.throughput == pytest.approx(150_000.0, rel=0.2)
        assert out.steps == 16

    def test_adaptive_policy_detunes_on_shallow_buffer(self):
        # The §6 story told through the env face: on a shallow buffer
        # the out-of-path adaptive policy walks the target down and
        # sheds nearly all of fixed PropRate's drops.
        down = _down(duration=16.0)
        fixed = run_single_flow(lambda: PropRate(0.080), down,
                                duration=15.0, measure_start=3.0,
                                buffer_packets=40)
        env = CcEnv(down, inner_cc=lambda: PropRate(0.080),
                    duration=15.0, measure_start=3.0, buffer_packets=40)
        out = rollout(env, AdaptiveTargetPolicy(configured_target=0.080))
        assert out.final_obs.target < 0.080
        assert out.result.bottleneck_drops < 0.2 * max(
            1, fixed.bottleneck_drops)
        assert out.result.throughput > 0.3 * fixed.throughput

    def test_adaptive_policy_requires_proprate_inner(self):
        env = _env(inner_cc=paper_algorithms()["CUBIC"], duration=2.0)
        out = rollout(env, AdaptiveTargetPolicy())
        # No PropRate knobs to steer: the policy no-ops rather than
        # crashing, and the run completes as a plain CUBIC replay.
        assert out.result.throughput > 0

    def test_unreset_adaptive_policy_raises(self):
        policy = AdaptiveTargetPolicy()
        with pytest.raises(RuntimeError, match="reset"):
            policy.action(None)


class TestTelemetryEvents:
    def test_env_step_and_episode_events(self, tmp_path):
        import json

        path = str(tmp_path / "env.jsonl")
        env = CcEnv(_down(), inner_cc=lambda: PropRate(0.040),
                    duration=2.0, measure_start=0.5, step_interval=0.5,
                    telemetry=path)
        rollout(env)
        with open(path, encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh if line.strip()]
        steps = [r for r in records if r["kind"] == "env.step"]
        (episode,) = [r for r in records if r["kind"] == "env.episode"]
        assert len(steps) == 4
        assert steps[0]["obs"]["t"] == pytest.approx(0.5)
        assert list(steps[0]["obs"]) == list(OBS_FIELDS)
        assert episode["obs_version"] == OBS_VERSION
        assert episode["steps"] == 4


class TestAdapterUnits:
    def test_policy_adapter_picks_the_matching_face(self):
        assert isinstance(policy_adapter(PropRate(0.040)), PolicyDriven)
        assert isinstance(policy_adapter(paper_algorithms()["CUBIC"]()),
                          WindowPolicyDriven)
        assert isinstance(policy_adapter(None), PolicyDriven)

    def test_rate_override_wins_over_inner(self):
        adapter = policy_adapter(PropRate(0.040))
        adapter.set_rate(42_000.0)
        assert adapter.pacing_rate == pytest.approx(42_000.0)
        adapter.set_rate(None)  # back to the inner's decision


class TestCliEnvRollout:
    def test_env_rollout_native(self, capsys):
        from repro.__main__ import main

        main(["env", "rollout", "--duration", "4", "--warmup", "1",
              "--step-interval", "0.5"])
        out = capsys.readouterr().out
        assert "steps" in out and "reward" in out

    def test_env_rollout_adaptive_policy(self, capsys):
        from repro.__main__ import main

        main(["env", "rollout", "--duration", "4", "--warmup", "1",
              "--policy", "adaptive"])
        out = capsys.readouterr().out
        assert "steps" in out

    def test_env_rollout_bad_policy_rejected(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["env", "rollout", "--policy", "nope"])
