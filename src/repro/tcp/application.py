"""Application traffic models feeding the TCP sender.

The paper's evaluation uses iperf-style bulk transfers (an infinite
backlog), but its motivation is real-time communication — video
conferencing and gaming — whose sources are rate-limited.  These models
generalise the sender's data supply:

* :class:`BulkApplication` — unlimited backlog (the default, iperf).
* :class:`ConstantBitrateApplication` — an RTC-like source producing
  segments at a fixed rate; the transport is frequently app-limited, so
  estimators must cope with self-limited measurement (exactly the regime
  PropRate's ρ-hold logic handles).
* :class:`OnOffApplication` — bursty request/response-style traffic:
  alternating talk-spurts and silences.

An application answers one question for the sender: *how many segments
have been produced by time t?*  The sender may transmit segment ``i``
once ``produced(t) > i``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional


def _floor_segments(seconds: float, rate: float, segment_bytes: int) -> int:
    """Exact ``floor(seconds · rate / segment_bytes)``.

    The float product drifts at large ``seconds``: once
    ``seconds * rate`` needs more than 53 bits, rounding can land just
    below an integer boundary and the truncation loses (or gains) a
    segment, so a long-running CBR source's cumulative count diverges
    from the closed form — and can even step backwards between two
    nearby ``now`` values.  Rational arithmetic over the exact binary
    values of the inputs keeps the count closed-form and monotone for
    arbitrarily large ``now``.
    """
    return int(Fraction(seconds) * Fraction(rate) / segment_bytes)


class Application:
    """Interface: cumulative segment production over time."""

    def produced(self, now: float) -> Optional[int]:
        """Segments produced by ``now``; None means unlimited."""
        raise NotImplementedError

    def total(self) -> Optional[int]:
        """Total segments this application will ever produce, if finite."""
        return None


class BulkApplication(Application):
    """An iperf-style unlimited backlog, optionally size-capped."""

    def __init__(self, total_segments: Optional[int] = None) -> None:
        if total_segments is not None and total_segments < 0:
            raise ValueError("total_segments must be non-negative")
        self._total = total_segments

    def produced(self, now: float) -> Optional[int]:
        return self._total

    def total(self) -> Optional[int]:
        return self._total


class ConstantBitrateApplication(Application):
    """Segments produced at a constant rate from a start time.

    Parameters
    ----------
    rate:
        Application data rate in bytes/second.
    segment_bytes:
        Bytes per produced segment (one TCP segment each).
    start / duration:
        Production window; ``duration=None`` produces forever.
    """

    def __init__(
        self,
        rate: float,
        segment_bytes: int = 1500,
        start: float = 0.0,
        duration: Optional[float] = None,
    ) -> None:
        if rate <= 0 or segment_bytes <= 0:
            raise ValueError("rate and segment_bytes must be positive")
        if duration is not None and duration < 0:
            raise ValueError("duration must be non-negative")
        self.rate = rate
        self.segment_bytes = segment_bytes
        self.start = start
        self.duration = duration

    def produced(self, now: float) -> Optional[int]:
        if now <= self.start:
            return 0
        horizon = now - self.start
        if self.duration is not None:
            horizon = min(horizon, self.duration)
        return _floor_segments(horizon, self.rate, self.segment_bytes)

    def total(self) -> Optional[int]:
        if self.duration is None:
            return None
        return _floor_segments(self.duration, self.rate, self.segment_bytes)


class OnOffApplication(Application):
    """Alternating talk-spurts (CBR at ``rate``) and silences.

    Deterministic periods keep experiments reproducible; the pattern
    starts with an ON period at ``start``.
    """

    def __init__(
        self,
        rate: float,
        on_seconds: float,
        off_seconds: float,
        segment_bytes: int = 1500,
        start: float = 0.0,
    ) -> None:
        if rate <= 0 or segment_bytes <= 0:
            raise ValueError("rate and segment_bytes must be positive")
        if on_seconds <= 0 or off_seconds < 0:
            raise ValueError("on_seconds must be positive, off_seconds >= 0")
        self.rate = rate
        self.on_seconds = on_seconds
        self.off_seconds = off_seconds
        self.segment_bytes = segment_bytes
        self.start = start

    def _on_time_elapsed(self, now: float) -> float:
        """Cumulative ON time in [start, now]."""
        if now <= self.start:
            return 0.0
        elapsed = now - self.start
        period = self.on_seconds + self.off_seconds
        if period <= 0:
            return elapsed
        whole, within = divmod(elapsed, period)
        return whole * self.on_seconds + min(within, self.on_seconds)

    def produced(self, now: float) -> Optional[int]:
        return _floor_segments(
            self._on_time_elapsed(now), self.rate, self.segment_bytes
        )


class TraceApplication(Application):
    """Segments produced at explicit timestamps (e.g. a video encoder's
    frame schedule)."""

    def __init__(self, production_times) -> None:
        times = sorted(float(t) for t in production_times)
        if times and times[0] < 0:
            raise ValueError("production times must be non-negative")
        self._times = times

    def produced(self, now: float) -> Optional[int]:
        import bisect

        return bisect.bisect_right(self._times, now)

    def total(self) -> Optional[int]:
        return len(self._times)
