"""Control-plane environment: the simulator as step/observe/act.

See ``docs/env.md`` for the observation/action schema and the
determinism contract (native replay through :class:`CcEnv` is
bit-identical to the native run).
"""

from repro.env.core import (
    CcEnv,
    DEFAULT_STEP_INTERVAL,
    OBS_FIELDS,
    OBS_VERSION,
    Observation,
)
from repro.env.policies import (
    AdaptiveTargetPolicy,
    ConstantRatePolicy,
    NativePolicy,
    Policy,
)
from repro.env.rollout import RolloutResult, rollout

__all__ = [
    "AdaptiveTargetPolicy",
    "CcEnv",
    "ConstantRatePolicy",
    "DEFAULT_STEP_INTERVAL",
    "NativePolicy",
    "OBS_FIELDS",
    "OBS_VERSION",
    "Observation",
    "Policy",
    "RolloutResult",
    "rollout",
]
