"""Content-keyed trace references and a per-process materialization cache.

The parallel experiment layer (:mod:`repro.experiments.parallel`) ships
*references* to traces across process boundaries instead of the traces
themselves, and each worker materializes every distinct trace exactly
once, however many runs in the batch use it:

* :class:`SpecTraceRef` — a seeded :class:`~repro.traces.generator.
  TraceSpec`.  Generation is deterministic, so the few dataclass fields
  are a complete stand-in for the opportunity array; workers regenerate
  the identical trace locally.  Every preset in
  :mod:`repro.traces.presets` resolves to one of these.
* :class:`DataTraceRef` — the raw opportunity array, for traces with no
  generation recipe (loaded from a Cellsim file, sliced, or scaled).
  Bulky to pickle, but the batch dispatcher deduplicates by content key
  so each distinct payload crosses the boundary once.

Both carry a **content key** (a digest of the generating spec or of the
raw samples), so two references to the same data — however constructed —
share one cache slot.  :func:`get` is the per-process memo; it is what
both the serial and the parallel execution paths use, which is how the
two paths end up simulating bit-identical inputs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Union

import numpy as np

from repro.traces.generator import TraceSpec, generate_cellular_trace
from repro.traces.trace import Trace

__all__ = [
    "TraceRef",
    "SpecTraceRef",
    "DataTraceRef",
    "as_ref",
    "get",
    "cache_len",
    "clear_cache",
]


@dataclass(frozen=True)
class SpecTraceRef:
    """A trace identified by its (deterministic) generation recipe."""

    spec: TraceSpec

    @property
    def key(self) -> str:
        digest = hashlib.sha1(repr(self.spec).encode()).hexdigest()
        return f"spec:{digest}"

    def materialize(self) -> Trace:
        return generate_cellular_trace(self.spec)


@dataclass(frozen=True)
class DataTraceRef:
    """A trace carried by value: the raw opportunity times themselves."""

    payload: bytes          # float64 opportunity times, C order
    duration: float
    name: str = "trace"

    @property
    def key(self) -> str:
        digest = hashlib.sha1(self.payload).hexdigest()
        return f"data:{digest}:{self.duration!r}"

    def materialize(self) -> Trace:
        times = np.frombuffer(self.payload, dtype=np.float64)
        return Trace(times, self.duration, name=self.name)


TraceRef = Union[SpecTraceRef, DataTraceRef]


def as_ref(source: Union[Trace, TraceSpec, TraceRef]) -> TraceRef:
    """Coerce a trace, spec, or existing reference into a reference.

    A :class:`Trace` produced by the generator remembers its spec
    (``source_spec``) and becomes a compact :class:`SpecTraceRef`; any
    other trace is carried by value.
    """
    if isinstance(source, (SpecTraceRef, DataTraceRef)):
        return source
    if isinstance(source, TraceSpec):
        return SpecTraceRef(source)
    if isinstance(source, Trace):
        if source.source_spec is not None:
            return SpecTraceRef(source.source_spec)
        payload = np.ascontiguousarray(
            source.opportunity_times, dtype=np.float64
        ).tobytes()
        return DataTraceRef(payload, source.duration, name=source.name)
    raise TypeError(f"cannot reference a {type(source).__name__}")


#: Per-process materialized traces, by content key.
_CACHE: Dict[str, Trace] = {}


def get(source: Union[Trace, TraceSpec, TraceRef]) -> Trace:
    """Materialize (once per process) the trace a reference points to."""
    ref = as_ref(source)
    key = ref.key
    trace = _CACHE.get(key)
    if trace is None:
        trace = ref.materialize()
        _CACHE[key] = trace
    return trace


def cache_len() -> int:
    """Number of distinct traces materialized in this process."""
    return len(_CACHE)


def clear_cache() -> None:
    """Drop all materialized traces (tests and memory-pressure relief)."""
    _CACHE.clear()


def table_for(refs: Dict[str, TraceRef]) -> Dict[str, Trace]:
    """Materialize a whole reference table (worker initialization aid)."""
    return {key: get(ref) for key, ref in refs.items()}
