"""Per-flow delivery records.

A :class:`DeliveryCollector` hangs off a receiver's ``on_data`` hook and
records the *first* delivery of each segment: its arrival time and its
true one-way delay (arrival time minus the sender's transmission
timestamp — ground truth, unaffected by the receiver's quantised TCP
timestamps).  Duplicate arrivals (spurious retransmissions) are counted
but excluded from delay statistics and throughput, mirroring how the
paper measures goodput and per-packet delay with tcpdump.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

import numpy as np

from repro.sim.packet import Packet


@dataclass(frozen=True, slots=True)
class DeliveryRecord:
    """One unique segment delivery."""

    time: float
    seq: int
    one_way_delay: float
    size: int
    was_retransmit: bool


class DeliveryCollector:
    """Accumulates delivery records for one flow."""

    def __init__(self) -> None:
        self._seen: Set[int] = set()
        self.records: List[DeliveryRecord] = []
        self.duplicates = 0

    def on_data(self, packet: Packet, now: float) -> None:
        """Receiver hook: called for every arriving data packet."""
        if packet.seq in self._seen:
            self.duplicates += 1
            return
        self._seen.add(packet.seq)
        self.records.append(
            DeliveryRecord(
                time=now,
                seq=packet.seq,
                one_way_delay=now - packet.sent_time,
                size=packet.size,
                was_retransmit=packet.retransmit,
            )
        )

    # ------------------------------------------------------------------
    def delays(
        self, start: float = 0.0, end: Optional[float] = None
    ) -> np.ndarray:
        """One-way delays of unique deliveries within ``[start, end)``."""
        return np.asarray(
            [
                r.one_way_delay
                for r in self.records
                if r.time >= start and (end is None or r.time < end)
            ]
        )

    def delivered_bytes(
        self, start: float = 0.0, end: Optional[float] = None
    ) -> int:
        return sum(
            r.size
            for r in self.records
            if r.time >= start and (end is None or r.time < end)
        )

    def throughput(self, start: float, end: float) -> float:
        """Goodput in bytes/second over ``[start, end)``."""
        if end <= start:
            raise ValueError("end must exceed start")
        return self.delivered_bytes(start, end) / (end - start)

    def arrival_times(self) -> np.ndarray:
        return np.asarray([r.time for r in self.records])

    def __len__(self) -> int:
        return len(self.records)
