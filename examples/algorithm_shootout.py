#!/usr/bin/env python3
"""The Figure-7 shootout: every algorithm over one cellular trace.

Runs the paper's full line-up (Table 3 plus PR(L)/PR(M)/PR(H)) over a
chosen trace and prints the throughput-vs-delay table those figures
scatter-plot.

Usage::

    python examples/algorithm_shootout.py [stationary|mobile|sprint]
"""

import sys

from repro.experiments.algorithms import paper_algorithms
from repro.experiments.runner import run_single_flow
from repro.traces.presets import isp_trace, sprint_like_trace

DURATION = 25.0
WARMUP = 4.0


def _traces(kind: str):
    if kind == "sprint":
        return sprint_like_trace(duration=120.0), None
    return (
        isp_trace("A", kind, duration=60.0),
        isp_trace("A", kind, duration=60.0, direction="uplink"),
    )


def main() -> None:
    kind = sys.argv[1] if len(sys.argv) > 1 else "stationary"
    if kind not in ("stationary", "mobile", "sprint"):
        raise SystemExit(f"unknown trace kind {kind!r}")
    downlink, uplink = _traces(kind)
    print(f"Trace: {downlink.name} "
          f"({downlink.mean_throughput() / 1000:.0f} KB/s capacity)\n")

    print(f"{'Algorithm':10s} {'Throughput':>12s} {'Mean delay':>11s} "
          f"{'95% delay':>10s} {'Drops':>6s} {'RTOs':>5s}")
    rows = []
    for name, factory in paper_algorithms().items():
        result = run_single_flow(
            factory, downlink, uplink, duration=DURATION, measure_start=WARMUP
        )
        rows.append((name, result))
        print(
            f"{name:10s} {result.throughput_kbps:9.1f} KB/s "
            f"{result.delay.mean_ms:8.1f} ms {result.delay.p95_ms:7.1f} ms "
            f"{result.bottleneck_drops:6d} {result.rto_count:5d}"
        )

    best_delay = min(
        (r for _, r in rows if r.delay.count), key=lambda r: r.delay.mean
    )
    best_tput = max((r for _, r in rows), key=lambda r: r.throughput)
    print(
        f"\nLowest mean delay: {best_delay.delay.mean_ms:.1f} ms; "
        f"highest throughput: {best_tput.throughput_kbps:.1f} KB/s."
        "\nPropRate's three configurations trace the efficient frontier"
        "\nbetween those corners (paper Figures 7 and 10)."
    )


if __name__ == "__main__":
    main()
