"""TCP receiver: cumulative + SACK acknowledgements with timestamp echo.

The receiver is deliberately *unmodified* TCP — a design requirement of
the paper (§4.2): PropRate must work against stock receivers, relying
only on the TCP timestamp option (enabled by default on Android and iOS)
and SACK.  Timestamps are quantised to the receiver's tick (10 ms on most
mobile devices), which is exactly the measurement noise the sender-side
estimators must live with.

Echo rules follow RFC 7323: an in-order segment (including one that fills
a hole) has its own TSval echoed; an out-of-order segment elicits a
duplicate ACK echoing the TSval of the last in-sequence segment — the
behaviour the paper's §4.1 loss handling describes.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.sim.engine import Simulator
from repro.sim.packet import Packet, PacketBatch, SackBlock, make_ack_packet
from repro.tcp.scoreboard import ReceiverScoreboard

#: Default receiver timestamp granularity (10 ms, paper §4.2).
DEFAULT_TS_GRANULARITY = 0.010

#: Maximum SACK blocks per ACK (TCP option space).
MAX_SACK_BLOCKS = 3

#: RFC 1122 delayed-ACK timer.
DELAYED_ACK_TIMEOUT = 0.040

DataCallback = Callable[[Packet, float], None]
AckSender = Callable[[Packet], None]


class TcpReceiver:
    """One flow's receiving endpoint.

    Parameters
    ----------
    sim:
        Event loop (for the clock).
    flow_id:
        Flow identifier copied onto generated ACKs.
    send_ack:
        Callable injecting an ACK into the reverse path.
    ts_granularity:
        Receiver timestamp clock tick in seconds.
    on_data:
        Optional metrics hook, called for every arriving data packet
        (including duplicates) with ``(packet, now)``.
    sack_enabled:
        Generate SACK blocks (on by default, as in the paper's setup).
    delayed_ack:
        RFC 1122 delayed ACKs: acknowledge every second in-order segment
        or after 40 ms, whichever first; out-of-order data is ACKed
        immediately (quickack).  Off by default — the paper's receivers
        ACK per packet during bulk transfers — but exercised by the
        robustness ablation, since sender-side rate estimation must
        survive coarser ACK streams.
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        send_ack: AckSender,
        ts_granularity: float = DEFAULT_TS_GRANULARITY,
        on_data: Optional[DataCallback] = None,
        sack_enabled: bool = True,
        delayed_ack: bool = False,
    ) -> None:
        self.sim = sim
        self.flow_id = flow_id
        self.send_ack = send_ack
        self.ts_granularity = ts_granularity
        self.on_data = on_data
        self.sack_enabled = sack_enabled
        self.delayed_ack = delayed_ack
        self._unacked_segments = 0
        self._delack_event = None

        self.rcv_nxt = 0
        # Out-of-order store on the shared run representation — the
        # same interval runs as the sender's scoreboard, so generated
        # SACK blocks and the sender's SACKED runs are directly
        # comparable (and the auditor cross-checks them).
        self._ooo = ReceiverScoreboard()
        self._ts_recent = -1.0  # TSval of the last in-sequence segment (-1: none)
        self._last_ooo_seq: Optional[int] = None
        self.data_packets_received = 0
        self.duplicate_packets = 0
        self.unique_segments = 0

    # ------------------------------------------------------------------
    def receiver_timestamp(self) -> float:
        """The receiver's clock, quantised to its timestamp granularity."""
        g = self.ts_granularity
        if g <= 0:
            return self.sim.now
        return int(self.sim.now / g) * g

    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Process an arriving data segment and emit an ACK."""
        if packet.is_ack:
            raise ValueError("receiver got an ACK packet")
        self.data_packets_received += 1
        now = self.sim.now
        if self.on_data is not None:
            self.on_data(packet, now)

        seq = packet.seq
        if seq == self.rcv_nxt:
            # In-order (possibly filling a hole): advance through the
            # out-of-order store and echo this segment's timestamp.
            self.unique_segments += 1
            nxt = seq + 1
            if self._ooo:
                nxt = self._ooo.first_gap_at_or_after(nxt)
                self._ooo.remove_below(nxt)
            self.rcv_nxt = nxt
            self._ts_recent = packet.tsval
            echo = packet.tsval
        elif seq > self.rcv_nxt:
            if self._ooo.add(seq):
                self.unique_segments += 1
            else:
                self.duplicate_packets += 1
            self._last_ooo_seq = seq
            echo = self._ts_recent
        else:
            # Below rcv_nxt: a duplicate (e.g. spurious retransmission).
            self.duplicate_packets += 1
            echo = self._ts_recent

        in_order = seq < self.rcv_nxt and seq >= self.rcv_nxt - 1
        if self.delayed_ack and in_order and not self._ooo:
            self._unacked_segments += 1
            if self._unacked_segments < 2:
                self._arm_delack(echo)
                return
        self._emit_ack(echo)

    def receive_batch(self, batch: PacketBatch) -> None:
        """Process a same-instant delivery batch from the fast path.

        The common bulk-transfer case — no reordering in progress, no
        delayed ACKs, and the batch is a contiguous in-order run starting
        at ``rcv_nxt`` — coalesces into one cumulative advance: a single
        column scan replaces N per-packet scoreboard probes, and the N
        ACKs (one per segment, exactly as the scalar path emits with
        ``delayed_ack`` off) are built in one loop with the bookkeeping
        (timestamp quantisation, SACK check) hoisted out.  Anything else
        falls back to per-packet :meth:`receive`, which is bit-identical
        by construction.
        """
        packets = batch.packets
        if (
            len(packets) > 1
            and not self.delayed_ack
            and not self._ooo
            and not packets[0].is_ack
            and batch.contiguous_from(self.rcv_nxt)
        ):
            now = self.sim.now
            n = len(packets)
            on_data = self.on_data
            if on_data is not None:
                for p in packets:
                    on_data(p, now)
            self.data_packets_received += n
            self.unique_segments += n
            base = self.rcv_nxt
            self.rcv_nxt = base + n
            self._ts_recent = packets[-1].tsval
            receiver_ts = self.receiver_timestamp()
            flow_id = self.flow_id
            send_ack = self.send_ack
            ack_no = base
            for p in packets:
                ack_no += 1
                ack = make_ack_packet(
                    flow_id=flow_id,
                    ack=ack_no,
                    receiver_ts=receiver_ts,
                    echoed_tsval=p.tsval,
                    sacks=None,
                )
                ack.sent_time = now
                send_ack(ack)
            return
        for p in packets:
            self.receive(p)

    def _arm_delack(self, echo: float) -> None:
        if self._delack_event is not None:
            self._delack_event.cancel()
        self._delack_event = self.sim.schedule(
            DELAYED_ACK_TIMEOUT, lambda e=echo: self._emit_ack(e)
        )

    def _emit_ack(self, echo: float) -> None:
        if self._delack_event is not None:
            self._delack_event.cancel()
            self._delack_event = None
        self._unacked_segments = 0
        ack = make_ack_packet(
            flow_id=self.flow_id,
            ack=self.rcv_nxt,
            receiver_ts=self.receiver_timestamp(),
            echoed_tsval=echo,
            sacks=self._sack_blocks(),
        )
        ack.sent_time = self.sim.now
        self.send_ack(ack)

    # ------------------------------------------------------------------
    def _sack_blocks(self) -> List[SackBlock]:
        """Up to 3 SACK blocks, the one with the latest arrival first.

        Only the run holding the newest arrival plus the highest few
        runs can appear, so the store is never fully materialised.
        """
        if not self.sack_enabled or not self._ooo:
            return []
        blocks: List[SackBlock] = []
        first: Optional[tuple] = None
        if self._last_ooo_seq is not None:
            first = self._ooo.interval_containing(self._last_ooo_seq)
            if first is not None:
                blocks.append(SackBlock(*first))
        for s, e in self._ooo.tail_intervals(MAX_SACK_BLOCKS + 1):
            if len(blocks) >= MAX_SACK_BLOCKS:
                break
            if first is not None and s == first[0]:
                continue
            blocks.append(SackBlock(s, e))
        return blocks
