"""Sender-side estimation from TCP timestamps (paper §4.1–4.2, Figure 6).

Congestion control is strictly a sender-side initiative in PropRate: the
receiver runs a stock TCP stack with the timestamp option enabled.  Two
quantities are recovered from the ACK stream:

* the **buffer delay** — the relative one-way delay ``RD = tr − ts``
  (receiver TSval minus echoed sender TSval) minus the minimum relative
  one-way delay seen in the recent past, ``t_buff = RD − RD_min``;
* the **receive rate ρ** — from (receiver TSval, cumulative bytes
  delivered) pairs: the receiver's timestamps embed packet arrival times
  in the ACKs.  The instantaneous throughput is measured over a sliding
  window of 50 distinct receiver timestamps, capped at 500 ms, and
  smoothed with an EWMA.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.util.windows import Ewma, SlidingWindowMin

#: Sliding-window sizing for the rate estimator (paper §4.2, following
#: the measurement study it cites: 50 bursts, at most 500 ms).
RATE_WINDOW_TIMESTAMPS = 50
RATE_WINDOW_MAX_SPAN = 0.500
#: Minimum window span (seconds).  Zero by default — the paper's window
#: is purely "50 distinct timestamps, at most 500 ms", which lets a
#: Slow-Start probe burst measure the *link* rate from two adjacent
#: receiver ticks before paced (self-limited) traffic dilutes the
#: window.  A non-zero floor trades that responsiveness for less noise
#: with sub-10ms receiver clocks; the timestamp-granularity ablation
#: explores the trade-off.
RATE_WINDOW_MIN_SPAN = 0.0

#: How far back the RD_min baseline looks.  The paper says "the recent
#: past"; the Monitor state resets it explicitly when conditions change.
#: The window must comfortably exceed buffer-full occupancy periods —
#: with a short window the baseline absorbs the standing queue (RD_min
#: drifts up to RD_min + D_min) and the buffer delay is systematically
#: under-estimated, destabilising the feedback loop.
DEFAULT_RDMIN_WINDOW = 60.0

#: EWMA gain for smoothing the instantaneous receive rate.
DEFAULT_RATE_EWMA_ALPHA = 1.0 / 8.0


class ReceiveRateEstimator:
    """Estimate the receive rate ρ from receiver timestamps (Fig. 6(b)).

    Feed :meth:`on_ack` with each ACK's receiver TSval and the running
    count of delivered bytes.  ACKs sharing a TSval collapse into one
    sample at that timestamp (the receiver's clock granularity limits
    resolution — this is why Slow Start may need to double its burst).
    """

    #: Optional epoch callback (set by telemetry when tracing is
    #: active): called with a label ("rate-reset" / "rate-reset-keep")
    #: whenever the measurement window restarts.
    on_epoch = None

    def __init__(
        self,
        window_timestamps: int = RATE_WINDOW_TIMESTAMPS,
        max_span: float = RATE_WINDOW_MAX_SPAN,
        min_span: float = RATE_WINDOW_MIN_SPAN,
        ewma_alpha: float = DEFAULT_RATE_EWMA_ALPHA,
    ) -> None:
        if window_timestamps < 2:
            raise ValueError("need at least two timestamps to form a rate")
        if not 0 <= min_span <= max_span:
            raise ValueError("need 0 <= min_span <= max_span")
        self.window_timestamps = window_timestamps
        self.max_span = max_span
        self.min_span = min_span
        self._samples: Deque[Tuple[float, int]] = deque()  # (tsval, delivered)
        self._ewma = Ewma(ewma_alpha)
        self.instantaneous_rate: Optional[float] = None

    def on_ack(self, receiver_ts: float, delivered_bytes: int) -> None:
        """Fold one ACK into the estimator."""
        if self._samples:
            last_ts = self._samples[-1][0]
            if receiver_ts < last_ts:
                return  # receiver clock should be monotone; ignore stragglers
            if receiver_ts == last_ts:
                # Same receiver tick: keep the latest cumulative count.
                self._samples[-1] = (
                    receiver_ts,
                    max(self._samples[-1][1], delivered_bytes),
                )
                self._trim(receiver_ts)
                self._update_rate()
                return
            if receiver_ts - last_ts > self.max_span:
                # The whole window predates the cap: a rate formed
                # across the gap would average over the idle period.
                # Expire it and rebuild from fresh timestamps; the EWMA
                # (if primed) carries the estimate across the gap.
                self._samples.clear()
                self.instantaneous_rate = None
        self._samples.append((receiver_ts, delivered_bytes))
        self._trim(receiver_ts)
        self._update_rate()

    def _trim(self, latest_ts: float) -> None:
        while (
            len(self._samples) > self.window_timestamps
            and latest_ts - self._samples[1][0] >= self.min_span
        ):
            self._samples.popleft()
        while (
            len(self._samples) > 2
            and self._samples[0][0] < latest_ts - self.max_span
        ):
            self._samples.popleft()

    def _update_rate(self) -> None:
        if len(self._samples) < 2:
            return
        first_ts, first_bytes = self._samples[0]
        last_ts, last_bytes = self._samples[-1]
        span = last_ts - first_ts
        if span <= 0 or last_bytes <= first_bytes:
            return
        self.instantaneous_rate = (last_bytes - first_bytes) / span
        self._ewma.update(self.instantaneous_rate)

    @property
    def rate(self) -> Optional[float]:
        """Smoothed receive-rate estimate ρ in bytes/second, or None."""
        return self._ewma.value

    @property
    def has_estimate(self) -> bool:
        return self._ewma.value is not None

    @property
    def distinct_timestamps(self) -> int:
        return len(self._samples)

    def reset(self, keep_rate: bool = False) -> None:
        """Start a fresh measurement (Monitor state / Slow Start).

        ``keep_rate`` preserves the EWMA so the fresh window refines it
        rather than starting cold.
        """
        self._samples.clear()
        self.instantaneous_rate = None
        if not keep_rate:
            self._ewma.reset()
        cb = self.on_epoch
        if cb is not None:
            cb("rate-reset-keep" if keep_rate else "rate-reset")


class BufferDelayEstimator:
    """Estimate the instantaneous buffer delay t_buff (Fig. 6(a)).

    ``RD = tr − ts`` mixes the (unknown) clock offset with propagation
    delay; both cancel in ``t_buff = RD − RD_min`` as long as the
    baseline ``RD_min`` reflects an empty buffer sometime in the recent
    past.  The Monitor state calls :meth:`rebase` when the underlying
    one-way delay shifts (handover, signal change).

    The receiver's 10 ms timestamp quantisation puts ±granularity noise
    on every RD sample; ``tbuff_smooth`` (a light EWMA of the raw
    estimate) is the signal the state machine switches on, while
    ``tbuff`` exposes the raw per-ACK value.
    """

    SMOOTH_ALPHA = 0.25

    #: Optional epoch callback (set by telemetry when tracing is
    #: active): called with "rdmin-rebase" / "rdmin-reset".
    on_epoch = None

    def __init__(self, window: float = DEFAULT_RDMIN_WINDOW) -> None:
        self._min_filter = SlidingWindowMin(window)
        self._smooth = Ewma(self.SMOOTH_ALPHA)
        self.last_rd: Optional[float] = None
        self.last_time: Optional[float] = None
        self.tbuff: Optional[float] = None
        self.samples = 0

    @property
    def tbuff_smooth(self) -> Optional[float]:
        return self._smooth.value

    def on_ack(self, now: float, relative_one_way_delay: float) -> float:
        """Fold one RD sample; returns the updated t_buff estimate."""
        self.samples += 1
        self.last_rd = relative_one_way_delay
        self.last_time = now
        rd_min = self._min_filter.update(now, relative_one_way_delay)
        self.tbuff = max(0.0, relative_one_way_delay - rd_min)
        self._smooth.update(self.tbuff)
        return self.tbuff

    @property
    def rd_min(self) -> Optional[float]:
        return self._min_filter.current()

    def rebase(self) -> None:
        """Forget the RD_min history (network conditions changed)."""
        self._min_filter.reset()
        self._smooth.reset()
        if self.last_rd is not None:
            # Seed with the latest observation so rd_min is defined
            # immediately and the current t_buff reads 0 relative to
            # the new baseline until better (lower-RD) data arrives.
            self._min_filter.update(self.last_time, self.last_rd)
            self.tbuff = 0.0
        cb = self.on_epoch
        if cb is not None:
            cb("rdmin-rebase")

    def reset(self) -> None:
        self._min_filter.reset()
        self._smooth.reset()
        self.last_rd = None
        self.last_time = None
        self.tbuff = None
        self.samples = 0
        cb = self.on_epoch
        if cb is not None:
            cb("rdmin-reset")


class MaxFilterRateEstimator(ReceiveRateEstimator):
    """BBR-style variant: ρ = *maximum* recent instantaneous throughput.

    The paper argues (§2) that estimating the bottleneck bandwidth as the
    windowed maximum "is too aggressive and tends to over-estimate the
    available bandwidth because cellular networks are highly volatile",
    which is why PropRate smooths with an EWMA instead.  This estimator
    exists to ablate that design choice: drop it into PropRate via
    ``bandwidth_filter="max"`` and compare (benchmarks/bench_ablations).
    """

    def __init__(
        self,
        window_timestamps: int = RATE_WINDOW_TIMESTAMPS,
        max_span: float = RATE_WINDOW_MAX_SPAN,
        filter_window: float = 2.0,
    ) -> None:
        super().__init__(window_timestamps=window_timestamps, max_span=max_span)
        from repro.util.windows import WindowedMax

        self._max_filter = WindowedMax(filter_window)
        self._last_ts: Optional[float] = None

    def _update_rate(self) -> None:
        super()._update_rate()
        if self.instantaneous_rate is not None and self._samples:
            self._last_ts = self._samples[-1][0]
            self._max_filter.update(self._last_ts, self.instantaneous_rate)

    @property
    def rate(self) -> Optional[float]:
        return self._max_filter.current(self._last_ts)

    @property
    def has_estimate(self) -> bool:
        return self.rate is not None

    def reset(self, keep_rate: bool = False) -> None:
        super().reset(keep_rate=keep_rate)
        if not keep_rate:
            self._max_filter.reset()
            # The timestamp must fall with the filter: a stale _last_ts
            # would expire fresh post-reset samples against the previous
            # measurement epoch's clock.
            self._last_ts = None
