"""Named counters, gauges, and histograms aggregated per flow/run/batch.

A :class:`MetricsRegistry` is owned by a :class:`~repro.obs.tracer.Tracer`
and populated by the instrumented components at run end (plus sampled
hot-path timings during the run).  ``snapshot()`` renders it to a plain
JSON-able dict whose value shapes are self-describing so snapshots from
different runs can be merged without a side schema:

* ``int``/``float`` -- counter, merged by summing;
* ``{"gauge": x}`` -- gauge, merged by ``max``;
* ``{"count", "sum", "min", "max"}`` -- histogram, merged field-wise.

Keys containing ``"timing"`` hold wall-clock measurements and are
excluded from the deterministic view used by ``FlowResult.summary()``.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Optional, Tuple


class Counter:
    """Monotonic sum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last/peak value; snapshots merge gauges by ``max``."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = v

    def track_max(self, v: float) -> None:
        if v > self.value:
            self.value = v


class Histogram:
    """Count/sum/min/max summary of observed values."""

    __slots__ = ("count", "sum", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, v: float) -> None:
        self.count += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v


class MetricsRegistry:
    """Registry of named metrics with lazy instrument creation."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter()
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge()
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram()
        return inst

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict rendering with self-describing value shapes."""
        out: Dict[str, Any] = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, g in self._gauges.items():
            out[name] = {"gauge": g.value}
        for name, h in self._histograms.items():
            if h.count:
                out[name] = {"count": h.count, "sum": h.sum,
                             "min": h.min, "max": h.max}
        return out


def merge_value(a: Any, b: Any) -> Any:
    """Merge two snapshot values of the same key (see module doc).

    Deterministic semantics for the shape conflicts that arise when
    heterogeneous runs are folded together:

    * **gauge × gauge — peak wins.**  Gauges merge by ``max`` whether
      they were written with ``set`` or ``track_max``: a merged
      snapshot answers "what was the highest value any run saw", which
      is the useful batch-level reading for queue peaks and the only
      order-independent choice (``set``'s last-writer-wins has no
      stable meaning across concurrently-merged runs).
    * **gauge × histogram — gauge shape wins.**  The result is
      ``{"gauge": max(gauge value, histogram max)}``; the observation
      peak is the only field the two shapes share meaningfully.
    * **histogram × empty histogram — identity.**  A count-0 side
      contributes nothing, so the other side is returned unchanged
      rather than letting its ``inf``/``-inf`` sentinels poison the
      merged min/max.
    """
    if isinstance(a, dict) and isinstance(b, dict):
        if "gauge" in a or "gauge" in b:
            peaks = []
            for side in (a, b):
                if "gauge" in side:
                    peaks.append(side["gauge"])
                elif side.get("count", 0):
                    peaks.append(side.get("max", float("-inf")))
            return {"gauge": max(peaks)}
        if not b.get("count", 0):
            return dict(a)
        if not a.get("count", 0):
            return dict(b)
        return {
            "count": a.get("count", 0) + b.get("count", 0),
            "sum": a.get("sum", 0.0) + b.get("sum", 0.0),
            "min": min(a.get("min", float("inf")), b.get("min", float("inf"))),
            "max": max(a.get("max", float("-inf")), b.get("max", float("-inf"))),
        }
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return a + b
    return b


_FLOW_PREFIX = re.compile(r"^flow\d+\.")


def merge_snapshots(total: Dict[str, Any], snap: Dict[str, Any]) -> None:
    """Fold ``snap`` into the batch aggregate ``total`` in place.

    Per-flow keys (``flowN.x``) are normalised to ``flows.x`` so that
    flows from different runs aggregate together.
    """
    for key, value in snap.items():
        norm = _FLOW_PREFIX.sub("flows.", key)
        if norm in total:
            total[norm] = merge_value(total[norm], value)
        else:
            total[norm] = value


def flow_metrics_view(snapshot: Dict[str, Any], flow_id: int) -> Dict[str, Any]:
    """The slice of a run snapshot relevant to one flow.

    ``flow<id>.*`` keys are returned with the prefix stripped; run-level
    ``run.*`` keys are kept verbatim (shared by every flow in the run).
    """
    prefix = f"flow{flow_id}."
    view: Dict[str, Any] = {}
    for key, value in snapshot.items():
        if key.startswith(prefix):
            view[key[len(prefix):]] = value
        elif key.startswith("run."):
            view[key] = value
    return view


def canonical_metrics(metrics: Optional[Dict[str, Any]]) -> Tuple:
    """Deterministic hashable rendering for ``FlowResult.summary()``.

    Wall-clock keys (containing ``"timing"``) are dropped so summaries
    stay bit-identical across hosts and job counts.
    """
    if not metrics:
        return ()
    items = []
    for key in sorted(metrics):
        if "timing" in key:
            continue
        value = metrics[key]
        if isinstance(value, dict):
            if "gauge" in value:
                items.append((key, ("gauge", value["gauge"])))
            else:
                items.append((key, ("hist", value["count"], value["sum"],
                                    value["min"], value["max"])))
        else:
            items.append((key, value))
    return tuple(items)
