"""Target-buffer-delay sweeps (Figures 9 and 10).

PropRate's distinguishing property is a *tunable* operating point: one
parameter, the target average buffer delay t̄_buff, moves the flow along
a smooth throughput/latency frontier.  :func:`sweep_frontier` reproduces
the Figure-10 grid; :func:`nfl_convergence` reproduces Figure 9's
target-vs-achieved comparison with and without the negative-feedback
loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.debug import AuditArg
from repro.experiments.parallel import (
    OutcomeCallback,
    RunSpec,
    collect,
    iter_batch,
    proprate_spec,
    run_batch,
)
from repro.experiments.runner import FlowResult
from repro.traces.trace import Trace


def paper_frontier_targets() -> List[float]:
    """The Figure-10 grid: 12–30 ms step 1 ms, then 30–120 ms step 4 ms."""
    fine = [t / 1000.0 for t in range(12, 30)]
    coarse = [t / 1000.0 for t in range(30, 121, 4)]
    return fine + coarse


@dataclass(frozen=True)
class FrontierPoint:
    """One sweep point: the configuration and its measured outcome."""

    target_tbuff: float
    result: FlowResult

    @property
    def throughput_kbps(self) -> float:
        return self.result.throughput_kbps

    @property
    def mean_delay_ms(self) -> float:
        return self.result.delay.mean_ms

    @property
    def p95_delay_ms(self) -> float:
        return self.result.delay.p95_ms


def _frontier_specs(
    downlink_trace: Trace,
    uplink_trace: Optional[Trace],
    grid: Sequence[float],
    duration: float,
    measure_start: float,
    enable_feedback: bool,
    audit: AuditArg,
) -> List[RunSpec]:
    return [
        RunSpec(
            cc=proprate_spec(target, enable_feedback=enable_feedback),
            downlink=downlink_trace,
            uplink=uplink_trace,
            duration=duration,
            measure_start=measure_start,
            name=f"PR({target * 1000:.0f}ms)",
            audit=audit,
        )
        for target in grid
    ]


def sweep_frontier(
    downlink_trace: Trace,
    uplink_trace: Optional[Trace] = None,
    targets: Optional[Sequence[float]] = None,
    duration: float = 30.0,
    measure_start: float = 4.0,
    enable_feedback: bool = True,
    n_jobs: int = 1,
    audit: AuditArg = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    on_outcome: Optional[OutcomeCallback] = None,
    telemetry: Optional[str] = None,
    sampling: Optional[str] = None,
    profile: Optional[bool] = None,
) -> List[FrontierPoint]:
    """Run PropRate across a grid of t̄_buff targets (Figure 10).

    ``n_jobs`` fans the grid out over worker processes (the points are
    independent simulations); results are identical to the serial run
    and returned in target order.  ``audit`` enables the invariant
    auditor per point (None defers to REPRO_AUDIT).  ``timeout``,
    ``retries``, and ``on_outcome`` forward to
    :func:`repro.experiments.parallel.run_batch`, as do ``sampling``
    (per-kind event budgets) and ``profile`` (phase timers) when
    ``telemetry`` is set; use :func:`iter_frontier` to consume points
    as they complete instead of waiting for the whole grid.
    """
    grid = list(targets) if targets is not None else paper_frontier_targets()
    specs = _frontier_specs(
        downlink_trace, uplink_trace, grid, duration, measure_start,
        enable_feedback, audit,
    )
    results = collect(
        run_batch(
            specs,
            n_jobs=n_jobs,
            timeout=timeout,
            retries=retries,
            on_outcome=on_outcome,
            telemetry=telemetry,
            sampling=sampling,
            profile=profile,
        )
    )
    return [
        FrontierPoint(target_tbuff=target, result=result)
        for target, result in zip(grid, results)
    ]


def iter_frontier(
    downlink_trace: Trace,
    uplink_trace: Optional[Trace] = None,
    targets: Optional[Sequence[float]] = None,
    duration: float = 30.0,
    measure_start: float = 4.0,
    enable_feedback: bool = True,
    n_jobs: int = 1,
    audit: AuditArg = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    on_outcome: Optional[OutcomeCallback] = None,
    telemetry: Optional[str] = None,
    sampling: Optional[str] = None,
    profile: Optional[bool] = None,
) -> Iterator[FrontierPoint]:
    """Stream Figure-10 points **in completion order**.

    The streaming face of :func:`sweep_frontier`: each
    :class:`FrontierPoint` is yielded the moment its simulation lands,
    so a consumer can plot/persist the frontier incrementally while the
    long deep-buffer targets are still running.  A failed point (after
    ``retries`` re-dispatches) raises ``RuntimeError`` with the worker
    traceback.  Point values are bit-identical to the serial sweep —
    only the arrival order differs.
    """
    grid = list(targets) if targets is not None else paper_frontier_targets()
    specs = _frontier_specs(
        downlink_trace, uplink_trace, grid, duration, measure_start,
        enable_feedback, audit,
    )
    for outcome in iter_batch(
        specs,
        n_jobs=n_jobs,
        timeout=timeout,
        retries=retries,
        on_outcome=on_outcome,
        telemetry=telemetry,
        sampling=sampling,
        profile=profile,
    ):
        if not outcome.ok:
            raise RuntimeError(
                f"frontier target {grid[outcome.index] * 1000:.0f}ms "
                f"failed:\n{outcome.error}"
            )
        yield FrontierPoint(
            target_tbuff=grid[outcome.index], result=outcome.result
        )


@dataclass(frozen=True)
class ConvergencePoint:
    """One Figure-9 point: target vs achieved average buffer delay."""

    target_tbuff: float
    achieved_tbuff: float
    with_feedback: bool

    @property
    def error(self) -> float:
        return self.achieved_tbuff - self.target_tbuff


def nfl_convergence(
    downlink_trace: Trace,
    uplink_trace: Optional[Trace] = None,
    targets: Optional[Sequence[float]] = None,
    duration: float = 30.0,
    measure_start: float = 4.0,
    propagation_delay: float = 0.020,
    n_jobs: int = 1,
    audit: AuditArg = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    on_outcome: Optional[OutcomeCallback] = None,
    telemetry: Optional[str] = None,
    sampling: Optional[str] = None,
    profile: Optional[bool] = None,
) -> List[ConvergencePoint]:
    """Figure 9: achieved vs target buffer delay, with and without NFL.

    The achieved buffer delay is the externally measured mean one-way
    delay minus the propagation delay — ground truth, not the sender's
    own estimate.  ``n_jobs`` parallelizes the (feedback × target) grid;
    ``timeout``/``retries``/``on_outcome`` forward to
    :func:`repro.experiments.parallel.run_batch`.
    """
    if targets is None:
        targets = [t / 1000.0 for t in range(20, 121, 20)]
    grid = [
        (with_nfl, target)
        for with_nfl in (True, False)
        for target in targets
    ]
    specs = [
        RunSpec(
            cc=proprate_spec(target, enable_feedback=with_nfl),
            downlink=downlink_trace,
            uplink=uplink_trace,
            duration=duration,
            measure_start=measure_start,
            audit=audit,
        )
        for with_nfl, target in grid
    ]
    results = collect(
        run_batch(
            specs,
            n_jobs=n_jobs,
            timeout=timeout,
            retries=retries,
            on_outcome=on_outcome,
            telemetry=telemetry,
            sampling=sampling,
            profile=profile,
        )
    )
    points = []
    for (with_nfl, target), result in zip(grid, results):
        achieved = max(0.0, result.delay.mean - propagation_delay)
        points.append(
            ConvergencePoint(
                target_tbuff=target,
                achieved_tbuff=achieved,
                with_feedback=with_nfl,
            )
        )
    return points
