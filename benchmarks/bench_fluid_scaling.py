"""Fluid-tier scaling: flow-seconds per wall-second vs the packet engine.

The fluid tier's reason to exist is throughput of *scenario work*: it
must simulate at least two orders of magnitude more flow-seconds per
wall-second than the packet engine (the ISSUE-8 acceptance gate), and a
1000-flow cell-tower fan-in with handovers must finish inside 10 s of
wall time.  This benchmark measures both, against a packet-engine
reference running the same controller mix on the same wired capacity.

Scale the fan-in with REPRO_BENCH_FLUID_FLOWS (default 1000).
"""

import os
import time

from repro.experiments.parallel import CcSpec, proprate_spec
from repro.experiments.runner import (
    FlowSpec,
    cellular_path_config,
    run_experiment,
)
from repro.fluid import fan_in_scenario, run_fluid
from repro.traces.generator import constant_rate_trace

from _report import emit

#: Fan-in size for the wall-time gate.
N_FLOWS = int(os.environ.get("REPRO_BENCH_FLUID_FLOWS", "1000"))
N_TOWERS = 8
DURATION = 30.0
HANDOVERS = 200

#: Packet-engine reference: a small contention run whose cost per
#: flow-second prices the per-packet tier.
PACKET_FLOWS = 4
PACKET_DURATION = 6.0

#: Acceptance gates (ISSUE 8).
MIN_SPEEDUP = 100.0
MAX_FAN_IN_WALL = 10.0


def _packet_reference() -> float:
    """Wall seconds for the packet-engine reference run."""
    trace = constant_rate_trace(1.5e6, PACKET_DURATION, name="wired:12mbps")
    path = cellular_path_config(trace)
    flows = [
        FlowSpec(
            cc_factory=(proprate_spec(0.040) if i % 2 == 0
                        else CcSpec("CUBIC")).build,
            name=f"f{i}",
        )
        for i in range(PACKET_FLOWS)
    ]
    t0 = time.perf_counter()
    run_experiment(path, flows, PACKET_DURATION, measure_start=1.0)
    return time.perf_counter() - t0


def _fluid_fan_in():
    flows, towers, handovers = fan_in_scenario(
        N_FLOWS, N_TOWERS, DURATION, mix="pr-vs-cubic",
        handover_count=HANDOVERS,
    )
    t0 = time.perf_counter()
    report = run_fluid(flows, towers, DURATION, handovers=handovers)
    return time.perf_counter() - t0, report


def test_fluid_scaling(benchmark):
    packet_wall = _packet_reference()
    packet_rate = PACKET_FLOWS * PACKET_DURATION / packet_wall

    fluid_wall, report = benchmark.pedantic(
        _fluid_fan_in, rounds=1, iterations=1
    )
    fluid_rate = N_FLOWS * DURATION / fluid_wall
    speedup = fluid_rate / packet_rate

    lines = [
        f"packet reference: {PACKET_FLOWS} flows x {PACKET_DURATION:.0f}s "
        f"in {packet_wall:.2f}s wall "
        f"({packet_rate:.0f} flow-seconds/wall-second)",
        f"fluid fan-in:     {N_FLOWS} flows x {DURATION:.0f}s over "
        f"{N_TOWERS} towers, {report.handovers_applied} handovers in "
        f"{fluid_wall:.2f}s wall "
        f"({fluid_rate:.0f} flow-seconds/wall-second)",
        f"speedup:          {speedup:.0f}x  (gate: >= {MIN_SPEEDUP:.0f}x)",
        f"fan-in wall:      {fluid_wall:.2f}s  "
        f"(gate: < {MAX_FAN_IN_WALL:.0f}s)",
        f"jfi:              {report.jfi:.3f}",
    ]
    emit("fluid_scaling", lines)

    # The run must have done the work it claims.
    assert report.handovers_applied == HANDOVERS
    assert sum(f.delivered_bytes for f in report.flows) > 0
    assert 0.0 <= report.jfi <= 1.0

    # ISSUE-8 acceptance gates.
    assert fluid_wall < MAX_FAN_IN_WALL, (
        f"1000-flow fan-in took {fluid_wall:.2f}s (gate "
        f"{MAX_FAN_IN_WALL:.0f}s)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"fluid tier only {speedup:.0f}x the packet engine's "
        f"flow-seconds/wall-second (gate {MIN_SPEEDUP:.0f}x)"
    )
