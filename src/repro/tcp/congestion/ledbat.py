"""LEDBAT (RFC 6817): low-extra-delay background transport.

LEDBAT targets a fixed amount of *extra* one-way queueing delay
(100 ms in the RFC) above a measured base delay, with a linear
proportional controller on the window, and halves on loss.  It is the
paper's Table-3 representative of "Buffer Delay + Packet Loss"
window-based control.

The base delay comes from the same relative one-way-delay signal
PropRate uses (receiver timestamp minus echoed sender timestamp).
"""

from __future__ import annotations

from repro.tcp.congestion.base import AckSample, WindowCongestionControl
from repro.util.windows import SlidingWindowMin


class Ledbat(WindowCongestionControl):
    """RFC 6817 controller with per-ACK window updates."""

    name = "LEDBAT"
    sending_regulation = "Window-based"
    congestion_trigger = "Buffer Delay + Packet Loss"

    #: TARGET queueing delay (RFC 6817 recommends <= 100 ms).
    TARGET = 0.100
    #: Controller gain (windows per off-target per RTT).
    GAIN = 1.0
    MIN_CWND = 2.0
    #: Base-delay history horizon (RFC: minutes; shortened to track
    #: cellular baseline shifts, as deployed implementations do).
    BASE_HISTORY = 30.0

    def __init__(self) -> None:
        super().__init__()
        self._base_delay = SlidingWindowMin(self.BASE_HISTORY)

    def on_ack(self, sample: AckSample) -> None:
        if sample.one_way_delay is None or sample.newly_acked <= 0:
            return
        base = self._base_delay.update(sample.now, sample.one_way_delay)
        queuing = max(0.0, sample.one_way_delay - base)
        if sample.in_recovery:
            return
        off_target = (self.TARGET - queuing) / self.TARGET
        self.cwnd += self.GAIN * off_target * sample.newly_acked / self.cwnd
        self.cwnd = max(self.MIN_CWND, self.cwnd)

    def on_congestion(self, sample: AckSample) -> None:
        self.ssthresh = max(self.MIN_CWND, self.cwnd * 0.5)
        self.cwnd = self.ssthresh

    def on_rto(self) -> None:
        self.ssthresh = max(self.MIN_CWND, self.cwnd * 0.5)
        self.cwnd = self.LOSS_WINDOW
