"""Tests for RFC 6298 RTO estimation."""

import pytest

from repro.tcp.rto import RtoEstimator


class TestRtoEstimator:
    def test_initial_rto_is_one_second(self):
        assert RtoEstimator().rto == pytest.approx(1.0)

    def test_first_sample_initialises_srtt(self):
        est = RtoEstimator()
        est.on_rtt_sample(0.1)
        assert est.srtt == pytest.approx(0.1)
        assert est.rttvar == pytest.approx(0.05)

    def test_rto_formula_after_first_sample(self):
        est = RtoEstimator()
        est.on_rtt_sample(0.1)
        # srtt + 4*rttvar = 0.1 + 0.2 = 0.3 (>= latest-rtt guard of 0.15)
        assert est.rto == pytest.approx(0.3)

    def test_smoothing_converges_to_constant_rtt(self):
        est = RtoEstimator()
        for _ in range(200):
            est.on_rtt_sample(0.08)
        assert est.srtt == pytest.approx(0.08, rel=1e-3)
        assert est.rttvar < 0.01

    def test_minimum_rto_enforced(self):
        est = RtoEstimator()
        for _ in range(200):
            est.on_rtt_sample(0.001)
        assert est.rto >= est.min_rto

    def test_backoff_doubles(self):
        est = RtoEstimator()
        est.on_rtt_sample(0.1)
        before = est.rto
        est.on_timeout()
        assert est.rto == pytest.approx(2 * before)
        est.on_timeout()
        assert est.rto == pytest.approx(4 * before)

    def test_sample_clears_backoff(self):
        est = RtoEstimator()
        est.on_rtt_sample(0.1)
        est.on_timeout()
        est.on_rtt_sample(0.1)
        # second identical sample: rttvar = 0.75*0.05 = 0.0375,
        # rto = 0.1 + 4*0.0375 = 0.25 and the 2x backoff is gone
        assert est.rto == pytest.approx(0.25)

    def test_max_rto_capped(self):
        est = RtoEstimator()
        est.on_rtt_sample(10.0)
        for _ in range(10):
            est.on_timeout()
        assert est.rto == est.max_rto

    def test_min_rtt_tracked(self):
        est = RtoEstimator()
        est.on_rtt_sample(0.2)
        est.on_rtt_sample(0.05)
        est.on_rtt_sample(0.3)
        assert est.min_rtt == pytest.approx(0.05)

    def test_nonpositive_samples_ignored(self):
        est = RtoEstimator()
        est.on_rtt_sample(0.0)
        est.on_rtt_sample(-1.0)
        assert est.srtt is None

    def test_latest_rtt_guard_against_spurious_timeouts(self):
        """A sudden RTT jump (deep buffer filling) must lift the RTO even
        before the smoothed estimators catch up."""
        est = RtoEstimator()
        for _ in range(500):
            est.on_rtt_sample(0.05)  # rttvar collapses
        est.on_rtt_sample(1.0)  # queue suddenly deep
        assert est.rto >= 1.5
