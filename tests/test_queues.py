"""Tests for the drop-tail buffer and CoDel AQM."""

import pytest

from repro.sim.packet import make_data_packet
from repro.sim.queues import CoDelQueue, DropTailQueue


def _pkt(seq=0):
    return make_data_packet(flow_id=0, seq=seq, now=0.0)


class TestDropTail:
    def test_fifo_order(self):
        q = DropTailQueue(capacity=10)
        for i in range(3):
            assert q.push(_pkt(i), now=float(i))
        assert q.pop(3.0).seq == 0
        assert q.pop(3.0).seq == 1
        assert q.pop(3.0).seq == 2
        assert q.pop(3.0) is None

    def test_drop_when_full(self):
        drops = []
        q = DropTailQueue(capacity=2, on_drop=drops.append)
        assert q.push(_pkt(0), 0.0)
        assert q.push(_pkt(1), 0.0)
        assert not q.push(_pkt(2), 0.0)
        assert q.drops == 1
        assert [p.seq for p in drops] == [2]
        assert len(q) == 2

    def test_enqueue_time_stamped(self):
        q = DropTailQueue(capacity=5)
        p = _pkt()
        q.push(p, now=7.5)
        assert p.enqueue_time == 7.5

    def test_byte_length(self):
        q = DropTailQueue(capacity=5)
        q.push(_pkt(0), 0.0)
        q.push(_pkt(1), 0.0)
        assert q.byte_length == 3000

    def test_peek_does_not_remove(self):
        q = DropTailQueue(capacity=5)
        q.push(_pkt(0), 0.0)
        assert q.peek().seq == 0
        assert len(q) == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(capacity=0)

    def test_enqueued_counter(self):
        q = DropTailQueue(capacity=1)
        q.push(_pkt(0), 0.0)
        q.push(_pkt(1), 0.0)  # dropped
        assert q.enqueued == 1


class TestCoDel:
    def test_no_drops_below_target_sojourn(self):
        q = CoDelQueue(capacity=100, target=0.005, interval=0.1)
        for i in range(10):
            q.push(_pkt(i), now=float(i))
        out = [q.pop(now=float(i) + 0.001) for i in range(10)]
        assert all(p is not None for p in out)
        assert q.codel_drops == 0

    def test_drops_after_sustained_high_sojourn(self):
        q = CoDelQueue(capacity=1000, target=0.005, interval=0.1)
        # Fill continuously; dequeue with 50 ms sojourn for > interval.
        now = 0.0
        for i in range(400):
            q.push(_pkt(i), now=now)
            now += 0.005
        delivered = 0
        t = now
        for _ in range(300):
            t += 0.005
            if q.pop(t) is not None:
                delivered += 1
        assert q.codel_drops > 0
        assert delivered > 0  # CoDel thins, it does not starve

    def test_dropping_state_resets_when_queue_drains(self):
        q = CoDelQueue(capacity=100, target=0.005, interval=0.05)
        for i in range(20):
            q.push(_pkt(i), now=0.0)
        t = 1.0
        while q.pop(t) is not None:
            t += 0.01
        # Re-fill with fresh (low-sojourn) packets: no immediate drops.
        before = q.codel_drops
        q.push(_pkt(100), now=t)
        assert q.pop(t + 0.001) is not None
        assert q.codel_drops == before

    def test_capacity_still_enforced(self):
        q = CoDelQueue(capacity=2)
        assert q.push(_pkt(0), 0.0)
        assert q.push(_pkt(1), 0.0)
        assert not q.push(_pkt(2), 0.0)
