"""Phase-scoped wall/CPU profiling hooks (``repro trace --profile``).

A :class:`PhaseProfiler` attributes run time to named subsystem phases
— ``ack.scoreboard`` (the sender's ACK/scoreboard path), ``link.serve``
and ``delivery.pump`` (the cellular link), ``sched.dispatch`` (the
batch coordinator), ``fluid.integrate`` (the fluid tier) — without a
sampling profiler or sys.setprofile.  Hot callables are wrapped once at
construction (:meth:`wrap`), coarse regions use :meth:`span`; both
accumulate per-phase call counts plus wall (``perf_counter``) and CPU
(``process_time``) seconds.

The accumulated numbers are flushed into the run's metrics registry as
``run.timing.prof.<phase>.calls`` / ``.wall_s`` / ``.cpu_s`` counters.
Counters merge by summation, so batch aggregation works unchanged; the
``timing`` key fragment keeps them out of ``canonical_metrics``, so the
deterministic summary contract is untouched.

Profiling follows the tracer's ambient-activation pattern
(``current_profiler()`` captured at construction) and *requires* an
active tracer — the measurements have nowhere to go otherwise.  Enable
with ``profile=True`` on the entry points, ``--profile`` on the CLI, or
``REPRO_PROFILE=1`` in the environment (the env form is silently
ignored when telemetry is off; the explicit form raises).  Wrapped
phases nest naturally — a pumped delivery that triggers ACK processing
charges both phases — so phase times are inclusive and do not sum to
wall time.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from repro.obs.registry import MetricsRegistry

#: Environment switch, analogous to ``REPRO_TELEMETRY``.
PROFILE_ENV = "REPRO_PROFILE"

_OFF = ("", "0", "false")

#: Metrics key prefix for run-scope phase timings.
PROF_PREFIX = "run.timing.prof."


class PhaseProfiler:
    """Accumulates per-phase ``[calls, wall_s, cpu_s]`` triples."""

    def __init__(self) -> None:
        self.phases: Dict[str, List[float]] = {}

    def _cell(self, phase: str) -> List[float]:
        cell = self.phases.get(phase)
        if cell is None:
            cell = self.phases[phase] = [0, 0.0, 0.0]
        return cell

    def wrap(self, phase: str, fn: Callable) -> Callable:
        """A timed wrapper around ``fn`` charging ``phase`` per call.

        Components shadow their own bound methods at construction
        (``self.cb = prof.wrap("phase", self.cb)``), so the disabled
        path keeps the plain method and pays nothing.
        """
        cell = self._cell(phase)
        perf, cpu = time.perf_counter, time.process_time

        def timed(*args: Any, **kwargs: Any) -> Any:
            w0 = perf()
            c0 = cpu()
            try:
                return fn(*args, **kwargs)
            finally:
                cell[0] += 1
                cell[1] += perf() - w0
                cell[2] += cpu() - c0

        timed.__wrapped__ = fn  # type: ignore[attr-defined]
        return timed

    def begin(self, phase: str) -> tuple:
        """Open a coarse region by hand; close it with :meth:`end`.

        For regions that would otherwise force re-indenting a large
        block under ``with`` — the span form below is preferred where
        it fits naturally.
        """
        return (self._cell(phase), time.perf_counter(), time.process_time())

    def end(self, token: tuple) -> None:
        cell, w0, c0 = token
        cell[0] += 1
        cell[1] += time.perf_counter() - w0
        cell[2] += time.process_time() - c0

    @contextmanager
    def span(self, phase: str) -> Iterator[None]:
        """Charge one coarse region (e.g. the whole fluid integration)."""
        token = self.begin(phase)
        try:
            yield
        finally:
            self.end(token)

    def flush_into(self, metrics: MetricsRegistry,
                   prefix: str = PROF_PREFIX) -> None:
        """Add the accumulated phase timings as mergeable counters.

        Accumulators are reset on flush (the cells themselves stay
        live for already-wrapped callables), so a profiler shared
        across sequential runs contributes per-run deltas.
        """
        for phase in sorted(self.phases):
            cell = self.phases[phase]
            calls, wall, cpu = cell
            if not calls:
                continue
            metrics.counter(f"{prefix}{phase}.calls").add(calls)
            metrics.counter(f"{prefix}{phase}.wall_s").add(wall)
            metrics.counter(f"{prefix}{phase}.cpu_s").add(cpu)
            cell[0] = 0
            cell[1] = 0.0
            cell[2] = 0.0


_active: Optional[PhaseProfiler] = None


def current_profiler() -> Optional[PhaseProfiler]:
    """The ambient profiler, or ``None`` when profiling is off."""
    return _active


def activate_profiler(profiler: PhaseProfiler) -> PhaseProfiler:
    global _active
    if _active is not None:
        raise RuntimeError("a profiler is already active in this process")
    _active = profiler
    return profiler


def deactivate_profiler() -> None:
    global _active
    _active = None


def env_profile() -> bool:
    """Whether ``REPRO_PROFILE`` asks for profiling."""
    return os.environ.get(PROFILE_ENV, "").strip().lower() not in _OFF


def resolve_profiler(profile: Union[bool, PhaseProfiler, None],
                     have_tracer: bool) -> Optional[PhaseProfiler]:
    """Resolve a run's ``profile=`` argument to a profiler or ``None``.

    Explicitly requested profiling without a tracer is an error (the
    timings would be dropped on the floor); the env-var form degrades
    to off so ``REPRO_PROFILE=1`` can sit in CI without forcing
    telemetry on.
    """
    if isinstance(profile, PhaseProfiler):
        if not have_tracer:
            raise ValueError("profile= requires telemetry to be enabled")
        return profile
    if profile:
        if not have_tracer:
            raise ValueError("profile=True requires telemetry to be enabled")
        return PhaseProfiler()
    if profile is None and have_tracer and env_profile():
        return PhaseProfiler()
    return None
