"""Trace analysis behind the ``repro trace`` CLI subcommand.

Reads a JSONL trace (single run, or a coordinator-merged parallel
batch where every record carries a ``run`` index), and reconstructs
the quantities the paper reasons with: the state-dwell breakdown of
the Fill/Drain machine, the bottleneck-queue sawtooth (via the
existing :func:`repro.metrics.telemetry.sawtooth_summary`), and the
NFL threshold's convergence toward the latency target.

Kept out of ``repro.obs.__init__`` so the hot-path tracer never drags
in numpy/metrics; the CLI imports this module lazily.
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from collections import defaultdict
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.metrics.telemetry import sawtooth_summary
from repro.obs.events import (
    CC_LOSS,
    CC_LOSS_RUNS,
    CC_NFL,
    CC_STATE,
    META,
    METRICS,
    QUEUE_SAMPLE,
    RUN_END,
    RUN_START,
)
from repro.obs.registry import merge_snapshots
from repro.obs.sink import iter_trace_files

#: MSS assumed when converting queue occupancy to buffering delay.
PACKET_BYTES = 1500


def read_trace(path: str) -> List[Dict[str, Any]]:
    """All records of a possibly-rotated trace, oldest first."""
    records: List[Dict[str, Any]] = []
    files = iter_trace_files(path)
    if not files:
        raise FileNotFoundError(f"no trace found at {path}")
    for fpath in files:
        with open(fpath, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
    return records


def _run_of(event: Dict[str, Any]) -> Optional[int]:
    return event.get("run")


def kind_counts(events: List[Dict[str, Any]]) -> Dict[str, int]:
    return dict(TallyCounter(e.get("kind", "?") for e in events))


def run_end_times(events: List[Dict[str, Any]]) -> Dict[Optional[int], float]:
    """Per-run trace horizon: the run.end time, else the last sim event."""
    ends: Dict[Optional[int], float] = {}
    for e in events:
        kind = e.get("kind", "")
        if kind.startswith("sched.") or kind == META:
            continue
        run = _run_of(e)
        t = e.get("t", 0.0)
        if kind == RUN_END or t > ends.get(run, 0.0):
            ends[run] = max(ends.get(run, 0.0), t)
    return ends


def state_dwell(events: List[Dict[str, Any]],
                ) -> Dict[Tuple[Optional[int], Optional[int]],
                          Dict[str, List[float]]]:
    """Per (run, flow): state -> [entries, total dwell seconds]."""
    ends = run_end_times(events)
    open_state: Dict[Tuple, Tuple[str, float]] = {}
    dwell: Dict[Tuple, Dict[str, List[float]]] = defaultdict(
        lambda: defaultdict(lambda: [0, 0.0]))
    for e in events:
        if e.get("kind") != CC_STATE:
            continue
        key = (_run_of(e), e.get("flow"))
        t = e["t"]
        prev = open_state.get(key)
        if prev is not None:
            cell = dwell[key][prev[0]]
            cell[1] += t - prev[1]
        cell = dwell[key][e["state"]]
        cell[0] += 1
        open_state[key] = (e["state"], t)
    for key, (state, since) in open_state.items():
        end = ends.get(key[0], since)
        if end > since:
            dwell[key][state][1] += end - since
    return {k: dict(v) for k, v in dwell.items()}


def nfl_curve(events: List[Dict[str, Any]],
              ) -> Dict[Tuple[Optional[int], Optional[int]],
                        List[Dict[str, float]]]:
    """Per (run, flow): the sequence of applied NFL threshold updates."""
    curves: Dict[Tuple, List[Dict[str, float]]] = defaultdict(list)
    for e in events:
        if e.get("kind") == CC_NFL:
            curves[(_run_of(e), e.get("flow"))].append(e)
    return dict(curves)


def link_rates(events: List[Dict[str, Any]],
               ) -> Dict[Tuple[Optional[int], str], float]:
    """Per (run, link name): mean capacity in bytes/s from run.start."""
    rates: Dict[Tuple[Optional[int], str], float] = {}
    for e in events:
        if e.get("kind") == RUN_START:
            for name, meta in (e.get("links") or {}).items():
                rate = meta.get("rate")
                if rate:
                    rates[(_run_of(e), name)] = rate
    return rates


def queue_waveforms(events: List[Dict[str, Any]],
                    ) -> Dict[Tuple[Optional[int], str],
                              Tuple[np.ndarray, np.ndarray]]:
    """Per (run, link): (sample times, queue length) arrays."""
    samples: Dict[Tuple, Tuple[List[float], List[int]]] = defaultdict(
        lambda: ([], []))
    for e in events:
        if e.get("kind") == QUEUE_SAMPLE:
            times, lens = samples[(_run_of(e), e.get("link", "?"))]
            times.append(e["t"])
            lens.append(e["len"])
    return {k: (np.asarray(t), np.asarray(n))
            for k, (t, n) in samples.items()}


def merged_metrics(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """One aggregate snapshot: the batch record if present, else the
    fold of every run-scope metrics record."""
    batch = None
    total: Dict[str, Any] = {}
    for e in events:
        if e.get("kind") != METRICS:
            continue
        if e.get("scope") == "batch":
            batch = e.get("metrics", {})
        else:
            merge_snapshots(total, e.get("metrics", {}))
    return batch if batch is not None else total


def _fmt_run(run: Optional[int]) -> str:
    return "-" if run is None else str(run)


#: Key fragment marking phase-profiler counters (see ``repro.obs.prof``).
_PROF_MARKER = "timing.prof."

#: Key fragment marking sampling-drop counters (see ``repro.obs.sampling``).
_DROP_MARKER = "telemetry.dropped."


def profile_table(events: List[Dict[str, Any]]) -> str:
    """Phase-timing table from ``*.timing.prof.*`` counters.

    Aggregates the run/batch-scope profiler counters in the trace's
    metrics records into one table per (scope, phase), sorted by wall
    time.  Empty string when the trace carries no profiling data (the
    run was executed without ``profile=``/``REPRO_PROFILE``).
    """
    snap = merged_metrics(events)
    rows: Dict[Tuple[str, str], Dict[str, float]] = {}
    for key, value in snap.items():
        pos = key.find(_PROF_MARKER)
        if pos < 0 or isinstance(value, dict):
            continue
        scope = key[:pos].rstrip(".") or "?"
        phase, _, fld = key[pos + len(_PROF_MARKER):].rpartition(".")
        if fld not in ("calls", "wall_s", "cpu_s") or not phase:
            continue
        rows.setdefault((scope, phase), {})[fld] = float(value)
    if not rows:
        return ""
    out = [f"  {'phase':18s} {'scope':6s} {'calls':>10s} {'wall s':>9s} "
           f"{'cpu s':>9s} {'us/call':>9s}"]
    for (scope, phase), cells in sorted(
            rows.items(), key=lambda kv: (-kv[1].get("wall_s", 0.0), kv[0])):
        calls = cells.get("calls", 0.0)
        wall = cells.get("wall_s", 0.0)
        cpu = cells.get("cpu_s", 0.0)
        per = wall / calls * 1e6 if calls else 0.0
        out.append(f"  {phase:18s} {scope:6s} {calls:10.0f} {wall:9.3f} "
                   f"{cpu:9.3f} {per:9.1f}")
    out.append("  (phase times are inclusive; nested phases overlap)")
    return "\n".join(out)


def _sampling_lines(events: List[Dict[str, Any]]) -> List[str]:
    """Per-kind sampling-drop counters, so truncation is never silent."""
    snap = merged_metrics(events)
    per: Dict[Tuple[str, str], float] = {}
    total = 0.0
    for key, value in snap.items():
        if isinstance(value, dict):
            continue
        if key.endswith("telemetry.dropped_events"):
            total += float(value)
            continue
        pos = key.find(_DROP_MARKER)
        if pos < 0:
            continue
        scope = key[:pos].rstrip(".") or "?"
        kind = key[pos + len(_DROP_MARKER):]
        per[(scope, kind)] = per.get((scope, kind), 0.0) + float(value)
    lines = [f"  {scope:6s} {kind:20s} {value:.0f} dropped"
             for (scope, kind), value in sorted(per.items())]
    if total:
        lines.append(f"  total dropped by sampling budgets: {total:.0f}")
    return lines


def _sawtooth_lines(events: List[Dict[str, Any]]) -> List[str]:
    rates = link_rates(events)
    lines = []
    for (run, link), (times, lens) in sorted(
            queue_waveforms(events).items(),
            key=lambda kv: (_fmt_run(kv[0][0]), kv[0][1])):
        rate = rates.get((run, link))
        if not rate or times.size < 10:
            lines.append(f"  run {_fmt_run(run)} {link:10s} "
                         f"{times.size} samples (too few / no rate)")
            continue
        delays = lens * (PACKET_BYTES / rate)
        try:
            s = sawtooth_summary(times, delays)
        except ValueError as exc:
            lines.append(f"  run {_fmt_run(run)} {link:10s} n/a ({exc})")
            continue
        period = "n/a" if np.isnan(s.period) else f"{s.period:6.2f}s"
        lines.append(
            f"  run {_fmt_run(run)} {link:10s} peak {s.dmax * 1000:7.1f}ms  "
            f"trough {s.dmin * 1000:7.1f}ms  avg {s.average * 1000:7.1f}ms  "
            f"period {period}  cycles {s.n_cycles}  "
            f"empty {s.empty_fraction * 100:.0f}%")
    return lines


def _nfl_lines(events: List[Dict[str, Any]], max_rows: int = 6) -> List[str]:
    lines = []
    for (run, flow), curve in sorted(
            nfl_curve(events).items(),
            key=lambda kv: (_fmt_run(kv[0][0]), str(kv[0][1]))):
        first, last = curve[0], curve[-1]
        target = last.get("target", float("nan"))
        lines.append(
            f"  run {_fmt_run(run)} flow {flow}: {len(curve)} updates, "
            f"T {first['threshold'] * 1000:.1f}ms -> "
            f"{last['threshold'] * 1000:.1f}ms "
            f"(target {target * 1000:.1f}ms, final t_actual "
            f"{last.get('t_actual', float('nan')) * 1000:.1f}ms)")
        if len(curve) > 1:
            idx = np.unique(np.linspace(0, len(curve) - 1,
                                        min(max_rows, len(curve)), dtype=int))
            for i in idx:
                e = curve[i]
                lines.append(
                    f"      t={e['t']:7.2f}s  T={e['threshold'] * 1000:6.2f}ms"
                    f"  t_actual={e.get('t_actual', float('nan')) * 1000:6.2f}ms")
    return lines


def _dwell_lines(events: List[Dict[str, Any]]) -> List[str]:
    lines = []
    for (run, flow), states in sorted(
            state_dwell(events).items(),
            key=lambda kv: (_fmt_run(kv[0][0]), str(kv[0][1]))):
        total = sum(t for _, t in states.values()) or 1.0
        lines.append(f"  run {_fmt_run(run)} flow {flow}:")
        for state, (entries, secs) in sorted(
                states.items(), key=lambda kv: -kv[1][1]):
            lines.append(
                f"      {state:12s} {entries:5d} entries  {secs:8.2f}s  "
                f"{secs / total * 100:5.1f}%")
    return lines


def _metrics_lines(events: List[Dict[str, Any]], limit: int = 40) -> List[str]:
    snap = merged_metrics(events)
    lines = []
    for key in sorted(snap)[:limit]:
        value = snap[key]
        if isinstance(value, dict):
            if "gauge" in value:
                lines.append(f"  {key} = {value['gauge']:g} (peak)")
            else:
                mean = value["sum"] / value["count"] if value["count"] else 0.0
                lines.append(
                    f"  {key} = n={value['count']} mean={mean:.3g} "
                    f"min={value['min']:.3g} max={value['max']:.3g}")
        else:
            lines.append(f"  {key} = {value:g}"
                         if isinstance(value, float) else f"  {key} = {value}")
    if len(snap) > limit:
        lines.append(f"  ... {len(snap) - limit} more")
    return lines


_EIGHTHS = " ▁▂▃▄▅▆▇█"


def _column_values(times: np.ndarray, values: np.ndarray,
                   t0: float, t1: float, width: int) -> List[float]:
    """Per-column peak of a sample series over ``width`` time bins.

    Empty bins carry the previous sample forward, so a sparsely sampled
    waveform still renders as a continuous line.
    """
    cols: List[float] = []
    span = max(t1 - t0, 1e-9)
    idx = 0
    last = 0.0
    n = times.size
    for c in range(width):
        hi = t0 + (c + 1) * span / width
        peak = None
        while idx < n and times[idx] <= hi:
            v = float(values[idx])
            peak = v if peak is None else max(peak, v)
            idx += 1
        if peak is not None:
            last = peak
        cols.append(last)
    return cols


def _waveform_canvas(cols: List[float], vmax: float, height: int) -> List[str]:
    """Render column peaks as stacked eighth-block rows, top first."""
    rows: List[str] = []
    for r in range(height, 0, -1):
        line = []
        for v in cols:
            level = 0.0 if vmax <= 0 else v / vmax * height
            fill = level - (r - 1)
            if fill >= 1.0:
                line.append(_EIGHTHS[8])
            elif fill > 0.0:
                line.append(_EIGHTHS[max(1, int(fill * 8))])
            else:
                line.append(" ")
        rows.append("".join(line))
    return rows


def _state_lane(curve: List[Tuple[float, str]], legend: Dict[str, str],
                t0: float, t1: float, width: int) -> str:
    """One character per column: the CC state active at the bin start."""
    span = max(t1 - t0, 1e-9)
    lane = []
    idx = 0
    current = " "
    for c in range(width):
        at = t0 + c * span / width
        while idx < len(curve) and curve[idx][0] <= at:
            current = legend[curve[idx][1]]
            idx += 1
        lane.append(current)
    return "".join(lane)


def _mark_lane(times: List[float], t0: float, t1: float, width: int,
               mark: str = "x") -> str:
    """Mark the columns in which at least one event fired."""
    span = max(t1 - t0, 1e-9)
    lane = [" "] * width
    for t in times:
        c = int((t - t0) / span * width)
        if 0 <= c < width:
            lane[c] = mark
        elif c == width:
            lane[width - 1] = mark
    return "".join(lane)


def render_plot(events: List[Dict[str, Any]], width: int = 100,
                height: int = 8) -> str:
    """ASCII waveform view of a telemetry trace.

    Per run: the bottleneck buffering-delay sawtooth (queue occupancy
    converted to delay at the link rate recorded by ``run.start``),
    aligned with a per-flow state-dwell strip (one character per column
    showing the CC state machine's position) and a loss-mark lane
    (columns in which ``cc.loss`` or ``cc.loss-runs`` fired — the
    latter covers window-based senders, which have no state curve but
    still get the lane).  All lanes of a run share one
    time axis, so a buffer peak can be read against the state the
    controller was in and the losses it took.
    """
    rates = link_rates(events)
    waves = queue_waveforms(events)
    state_curves: Dict[Tuple, List[Tuple[float, str]]] = defaultdict(list)
    loss_times: Dict[Tuple, List[float]] = defaultdict(list)
    for e in events:
        kind = e.get("kind")
        if kind == CC_STATE:
            state_curves[(_run_of(e), e.get("flow"))].append(
                (e["t"], e["state"]))
        elif kind in (CC_LOSS, CC_LOSS_RUNS):
            loss_times[(_run_of(e), e.get("flow"))].append(e["t"])

    runs = sorted(
        {k[0] for k in waves} | {k[0] for k in state_curves},
        key=_fmt_run,
    )
    if not runs:
        return "no queue samples or cc.state events to plot"

    # One legend across all runs, so lanes are comparable between runs.
    states = sorted({s for curve in state_curves.values() for _, s in curve})
    legend: Dict[str, str] = {}
    for s in states:
        ch = s[0].upper()
        while ch in legend.values():
            ch = chr(ord(ch) + 1)
        legend[s] = ch

    out: List[str] = []
    for run in runs:
        run_waves = {k: v for k, v in waves.items() if k[0] == run}
        run_states = {k: v for k, v in state_curves.items() if k[0] == run}
        spans: List[float] = []
        for times, _ in run_waves.values():
            if times.size:
                spans.extend((float(times[0]), float(times[-1])))
        for curve in run_states.values():
            spans.extend((curve[0][0], curve[-1][0]))
        if not spans:
            continue
        t0, t1 = min(spans), max(spans)
        out.append(f"run {_fmt_run(run)}  [{t0:.2f}s .. {t1:.2f}s]")
        for (_, link), (times, lens) in sorted(
                run_waves.items(), key=lambda kv: kv[0][1]):
            rate = rates.get((run, link))
            if rate:
                values = lens * (PACKET_BYTES / rate) * 1000.0
                unit = "ms"
            else:
                values = lens.astype(float)
                unit = "pkts"
            cols = _column_values(times, values, t0, t1, width)
            vmax = max(cols) if cols else 0.0
            out.append(f"  {link}: buffering delay, peak {vmax:.1f} {unit}")
            canvas = _waveform_canvas(cols, vmax, height)
            for r, row in enumerate(canvas):
                label = f"{vmax * (height - r) / height:7.1f} " if vmax else \
                    "        "
                out.append(label + "|" + row)
            out.append("        +" + "-" * width)
        # Window-based senders emit loss events but no cc.state curve;
        # their flows still get a loss lane, just without a state strip.
        flows = {f for _, f in run_states} | \
            {f for r, f in loss_times if r == run}
        for flow in sorted(flows, key=str):
            curve = run_states.get((run, flow))
            if curve:
                out.append(
                    f"  state  |{_state_lane(curve, legend, t0, t1, width)}"
                    f"  flow {flow}")
            marks = loss_times.get((run, flow))
            if marks:
                out.append(f"  loss   |{_mark_lane(marks, t0, t1, width)}"
                           f"  flow {flow} ({len(marks)} cc.loss events)")
    if legend:
        out.append("legend: " + "  ".join(
            f"{ch}={s}" for s, ch in sorted(legend.items())))
    return "\n".join(out)


def summarize_trace(events: List[Dict[str, Any]], label: str = "trace") -> str:
    """Human-readable single-trace report."""
    counts = kind_counts(events)
    runs = sorted({_fmt_run(_run_of(e)) for e in events
                   if e.get("kind") not in (META,)})
    out = [f"Trace {label}: {len(events)} records, runs: "
           f"{', '.join(runs) if runs else '-'}"]
    out.append("Event counts:")
    for kind in sorted(counts):
        out.append(f"  {kind:20s} {counts[kind]}")
    dwell = _dwell_lines(events)
    if dwell:
        out.append("State dwell (CC state machine):")
        out.extend(dwell)
    nfl = _nfl_lines(events)
    if nfl:
        out.append("NFL threshold convergence:")
        out.extend(nfl)
    saw = _sawtooth_lines(events)
    if saw:
        out.append("Queue sawtooth (from queue.sample, assuming 1500 B/pkt):")
        out.extend(saw)
    sampling = _sampling_lines(events)
    if sampling:
        out.append("Sampling (events dropped by per-kind budgets):")
        out.extend(sampling)
    metrics = _metrics_lines(events)
    if metrics:
        out.append("Metrics:")
        out.extend(metrics)
    return "\n".join(out)


def _aggregate_dwell(events: List[Dict[str, Any]]) -> Dict[str, float]:
    totals: Dict[str, float] = defaultdict(float)
    for states in state_dwell(events).values():
        for state, (_, secs) in states.items():
            totals[state] += secs
    return dict(totals)


def _final_thresholds(events: List[Dict[str, Any]]) -> Dict[str, float]:
    return {f"run {_fmt_run(run)} flow {flow}": curve[-1]["threshold"]
            for (run, flow), curve in nfl_curve(events).items()}


def diff_traces(a: List[Dict[str, Any]], b: List[Dict[str, Any]],
                label_a: str = "A", label_b: str = "B") -> str:
    """Side-by-side comparison of two traces."""
    out = [f"Diff: A={label_a} ({len(a)} records)  "
           f"B={label_b} ({len(b)} records)"]
    ca, cb = kind_counts(a), kind_counts(b)
    out.append("Event count deltas (B - A):")
    for kind in sorted(set(ca) | set(cb)):
        da, db = ca.get(kind, 0), cb.get(kind, 0)
        if da != db:
            out.append(f"  {kind:20s} {da:8d} -> {db:8d}  ({db - da:+d})")
    dwa, dwb = _aggregate_dwell(a), _aggregate_dwell(b)
    if dwa or dwb:
        ta = sum(dwa.values()) or 1.0
        tb = sum(dwb.values()) or 1.0
        out.append("State dwell share (all runs/flows):")
        for state in sorted(set(dwa) | set(dwb)):
            sa, sb = dwa.get(state, 0.0) / ta, dwb.get(state, 0.0) / tb
            out.append(f"  {state:12s} {sa * 100:6.1f}% -> {sb * 100:6.1f}%  "
                       f"({(sb - sa) * 100:+.1f}pp)")
    tha, thb = _final_thresholds(a), _final_thresholds(b)
    if tha or thb:
        out.append("Final NFL threshold (ms):")
        for key in sorted(set(tha) | set(thb)):
            va = tha.get(key)
            vb = thb.get(key)
            fa = "-" if va is None else f"{va * 1000:.2f}"
            fb = "-" if vb is None else f"{vb * 1000:.2f}"
            out.append(f"  {key}: {fa} -> {fb}")
    ma, mb = merged_metrics(a), merged_metrics(b)
    changed = []
    for key in sorted(set(ma) | set(mb)):
        va, vb = ma.get(key), mb.get(key)
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
            if va != vb:
                changed.append(f"  {key}: {va:g} -> {vb:g}")
        elif va != vb:
            changed.append(f"  {key}: changed")
    if changed:
        out.append("Metric deltas:")
        out.extend(changed[:50])
    return "\n".join(out)
