"""Flow-level fluid simulation tier with cell-tower fan-in.

The packet engine (:mod:`repro.sim`) replays every delivery opportunity
as a discrete event — faithful, but topping out at hundreds of
concurrent flows.  This tier evolves per-flow *rate and buffer-delay
trajectories* on a fixed time grid instead, the multi-flow
generalization of the §3 fluid sawtooth already validated single-flow
in :mod:`repro.core.fluid`:

* each **tower** is one bottleneck: a time-varying capacity profile
  (trace-driven or constant), a drop-tail buffer, and an aggregate
  fluid queue whose delay is shared by every attached flow (the FIFO
  property);
* each **flow** runs a fluid controller model
  (:mod:`repro.fluid.controllers`) that sees the tower's buffer delay
  only after its feedback lag — observed(t) ≈ t_buff at the send time
  of the newest acknowledged fluid, the same delayed-observation
  mechanism that produces the paper's sawtooth;
* capacity is split **proportionally to arrival rates** (fluid FIFO):
  a flow sending x_i of the tower's aggregate A receives C·x_i/A of
  the service rate while a queue stands;
* **handovers** migrate flows between towers mid-run; the fluid they
  already queued drains at the old tower (aggregate queues don't track
  per-flow bytes — documented in docs/fluid.md).

Everything is vectorized across flows, so a step costs a handful of
numpy operations regardless of flow count: thousands of flows run in
seconds of wall time (see benchmarks/bench_fluid_scaling.py), which is
what the ROADMAP's "millions of users" tier needs.  Correctness is
anchored by scripts/check_fluid_xval.py: overlapping scenarios run
through both tiers must agree within checked-in tolerance bands.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

import repro.obs as obs
from repro.fluid.controllers import MSS, build_banks
from repro.metrics.stats import jain_fairness
from repro.sim.queues import DEFAULT_BUFFER_PACKETS
from repro.traces.trace import Trace

__all__ = [
    "TowerSpec",
    "FluidFlowSpec",
    "HandoverSpec",
    "FluidFlowResult",
    "TowerSummary",
    "FluidReport",
    "run_fluid",
]

#: Default integration step (seconds).  Cycle times of the modelled
#: controllers are O(100 ms); 5 ms resolves them while keeping a
#: 30-second, thousand-flow run in the low seconds of wall time.
DEFAULT_DT = 0.005

#: Window for sampling a trace into the capacity profile (the paper's
#: Table-2 statistics window).
DEFAULT_CAPACITY_WINDOW = 0.1

#: Time constant of the reference-capacity EWMA used to convert queue
#: bytes into delay (bridges zero-capacity outage windows).
CAPACITY_REF_TAU = 0.25

#: Floor on the reference capacity (bytes/s) so outage-opening traces
#: cannot divide by zero; 15 kB/s ≈ one opportunity per 100 ms window.
CAPACITY_REF_FLOOR = 15e3

#: Simulated seconds between fluid.tower telemetry samples.
TOWER_SAMPLE_INTERVAL = 0.1


@dataclass(frozen=True)
class TowerSpec:
    """One cell tower: a bottleneck capacity profile plus a buffer.

    Exactly one of ``rate`` (constant bytes/s) or ``trace`` (a
    :class:`~repro.traces.trace.Trace`, looped like the packet links
    do) must be given.
    """

    name: str = ""
    rate: Optional[float] = None
    trace: Optional[Trace] = None
    buffer_packets: int = DEFAULT_BUFFER_PACKETS

    def __post_init__(self) -> None:
        if (self.rate is None) == (self.trace is None):
            raise ValueError("give exactly one of rate= or trace=")
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.buffer_packets < 1:
            raise ValueError("buffer_packets must be >= 1")

    def capacity_profile(self, duration: float, window: float) -> np.ndarray:
        """Capacity (bytes/s) per ``window``-second bin over ``duration``."""
        n = max(1, int(math.ceil(duration / window)))
        if self.rate is not None:
            return np.full(n, float(self.rate))
        trace = self.trace
        caps = np.empty(n)
        for i in range(n):
            caps[i] = trace.capacity_bytes(i * window, (i + 1) * window)
        return caps / window


@dataclass(frozen=True)
class FluidFlowSpec:
    """One flow in a fluid run.

    ``controller`` is ``"proprate"`` (with ``target_tbuff``),
    ``"adaptive-proprate"`` (additionally ``min_target``, the §6
    shrink floor), ``"cubic"``, or ``"policy"`` (externally driven
    rates; ``policy`` is the per-step callable all flows sharing it are
    banked under — see
    :class:`~repro.fluid.controllers.PolicyBank`); ``rtt`` is the
    propagation round-trip excluding buffer delay (the packet tier's
    2 × 20 ms default); ``tower`` the index of the initially attached
    tower.
    """

    name: str = ""
    controller: str = "proprate"
    target_tbuff: float = 0.040
    rtt: float = 0.040
    tower: int = 0
    start: float = 0.0
    #: §6 shrink floor ("adaptive-proprate" only).
    min_target: float = 0.005
    #: Per-step action callable ("policy" only); flows sharing the same
    #: callable are banked together.
    policy: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.rtt <= 0:
            raise ValueError("rtt must be positive")
        if self.start < 0:
            raise ValueError("start must be non-negative")
        if self.controller in ("proprate", "adaptive-proprate") \
                and self.target_tbuff <= 0:
            raise ValueError("target_tbuff must be positive")
        if self.controller == "adaptive-proprate" and not (
            0 < self.min_target <= self.target_tbuff
        ):
            raise ValueError("min_target must be in (0, target_tbuff]")


@dataclass(frozen=True)
class HandoverSpec:
    """Migrate ``flow`` (index into the run's flow list) to ``to_tower``
    at simulated ``time``."""

    time: float
    flow: int
    to_tower: int


@dataclass(frozen=True)
class FluidFlowResult:
    """Reduced outcome of one fluid flow — the
    :class:`~repro.experiments.runner.FlowResult` summary vocabulary
    (goodput, buffer delay, utilization) at flow-level resolution."""

    name: str
    controller: str
    goodput: float                  # bytes/s over the measure window
    delivered_bytes: float
    avg_tbuff: float                # time-mean buffer delay (seconds)
    max_tbuff: float
    #: Goodput over the *total* capacity of the towers the flow visited
    #: (same convention as FlowResult.utilization: flows sharing a
    #: bottleneck each report their fraction of the whole).
    utilization: Optional[float]
    loss_epochs: int
    handovers: int
    final_tower: int
    measure_start: float
    measure_end: float

    def summary(self) -> tuple:
        """Deterministic comparable tuple (the xval/CI contract)."""
        return (
            self.name,
            self.controller,
            self.goodput,
            self.delivered_bytes,
            self.avg_tbuff,
            self.max_tbuff,
            self.utilization,
            self.loss_epochs,
            self.handovers,
            self.final_tower,
            self.measure_start,
            self.measure_end,
        )


@dataclass(frozen=True)
class TowerSummary:
    """Aggregate view of one tower over the measure window."""

    name: str
    flows_final: int                # flows attached when the run ended
    mean_capacity: float            # bytes/s
    utilization: float              # served / capacity, in [0, 1]
    peak_tbuff: float
    dropped_bytes: float
    loss_epochs: int


def _finite(value: Optional[float]) -> Optional[float]:
    if value is None or not math.isfinite(value):
        return None
    return value


@dataclass
class FluidReport:
    """The reduced fluid run: per-flow results, per-tower aggregates,
    and the cross-flow fairness index."""

    flows: List[FluidFlowResult]
    towers: List[TowerSummary]
    jfi: float                      # Jain's index over flow goodputs
    duration: float
    dt: float
    steps: int
    handovers_applied: int

    @property
    def total_goodput(self) -> float:
        return sum(f.goodput for f in self.flows)

    def summary(self) -> tuple:
        """Deterministic whole-run tuple (determinism tests compare it)."""
        return (
            tuple(f.summary() for f in self.flows),
            self.jfi,
            self.handovers_applied,
            self.steps,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe deterministic rendering (NaN/inf → null, no
        wall-clock anywhere) — same contract as the grid artifact."""
        return {
            "format": "repro.fluid/1",
            "config": {
                "duration": self.duration,
                "dt": self.dt,
                "steps": self.steps,
                "n_flows": len(self.flows),
                "n_towers": len(self.towers),
            },
            "jfi": _finite(self.jfi),
            "handovers_applied": self.handovers_applied,
            "flows": [
                {
                    "name": f.name,
                    "controller": f.controller,
                    "goodput": _finite(f.goodput),
                    "delivered_bytes": _finite(f.delivered_bytes),
                    "avg_tbuff": _finite(f.avg_tbuff),
                    "max_tbuff": _finite(f.max_tbuff),
                    "utilization": _finite(f.utilization),
                    "loss_epochs": f.loss_epochs,
                    "handovers": f.handovers,
                    "tower": f.final_tower,
                }
                for f in self.flows
            ],
            "towers": [
                {
                    "name": t.name,
                    "flows": t.flows_final,
                    "mean_capacity": _finite(t.mean_capacity),
                    "utilization": _finite(t.utilization),
                    "peak_tbuff": _finite(t.peak_tbuff),
                    "dropped_bytes": _finite(t.dropped_bytes),
                    "loss_epochs": t.loss_epochs,
                }
                for t in self.towers
            ],
        }


def run_fluid(
    flows: Sequence[FluidFlowSpec],
    towers: Sequence[TowerSpec],
    duration: float,
    dt: float = DEFAULT_DT,
    measure_start: float = 5.0,
    measure_end: Optional[float] = None,
    handovers: Sequence[HandoverSpec] = (),
    capacity_window: float = DEFAULT_CAPACITY_WINDOW,
    telemetry: Optional[Any] = None,
    sampling: Optional[Any] = None,
    profile: Optional[Any] = None,
) -> FluidReport:
    """Integrate a multi-flow, multi-tower fluid scenario.

    ``measure_start``/``measure_end`` bound the statistics window
    exactly as in :func:`repro.experiments.runner.run_experiment`
    (per-flow start times push a flow's own window later).
    ``telemetry`` follows the same resolution rules as the packet
    drivers (path, live tracer, or None → ``REPRO_TELEMETRY``);
    ``sampling`` budgets the per-tower sample volume exactly as in the
    packet runner, and ``profile`` times the integration loop
    (``run.timing.prof.fluid.integrate``).

    The integration is pure numpy on a fixed grid — no wall-clock, no
    RNG — so a repeated run of the same scenario is bit-identical.
    """
    if not flows:
        raise ValueError("need at least one flow")
    if not towers:
        raise ValueError("need at least one tower")
    if duration <= 0 or dt <= 0:
        raise ValueError("duration and dt must be positive")
    if measure_end is None:
        measure_end = duration
    for spec in flows:
        if not 0 <= spec.tower < len(towers):
            raise ValueError(f"flow {spec.name!r} references tower "
                             f"{spec.tower} of {len(towers)}")
    for ho in handovers:
        if not 0 <= ho.flow < len(flows):
            raise ValueError(f"handover at {ho.time} references flow "
                             f"{ho.flow} of {len(flows)}")
        if not 0 <= ho.to_tower < len(towers):
            raise ValueError(f"handover at {ho.time} references tower "
                             f"{ho.to_tower} of {len(towers)}")

    tracer, owns_tracer = obs.resolve_tracer(telemetry, sampling=sampling)
    if tracer is not None and obs.current_tracer() is not tracer:
        obs.activate(tracer)
        activated = True
    else:
        activated = False
    profiler = obs.current_profiler()
    owns_profiler = False
    if profiler is None:
        profiler = obs.resolve_profiler(profile, tracer is not None)
        if profiler is not None:
            obs.activate_profiler(profiler)
            owns_profiler = True
    try:
        if tracer is not None:
            tracer.emit(
                obs.FLUID_RUN, 0.0, duration=duration, dt=dt,
                flows=len(flows), towers=len(towers),
                handovers=len(handovers),
            )
        return _integrate(
            flows, towers, duration, dt, measure_start, measure_end,
            handovers, capacity_window, tracer, profiler,
        )
    finally:
        if owns_profiler:
            obs.deactivate_profiler()
        if activated:
            obs.deactivate()
        if owns_tracer:
            tracer.close()


def _integrate(
    flows: Sequence[FluidFlowSpec],
    towers: Sequence[TowerSpec],
    duration: float,
    dt: float,
    measure_start: float,
    measure_end: float,
    handovers: Sequence[HandoverSpec],
    capacity_window: float,
    tracer,
    profiler=None,
) -> FluidReport:
    n_flows = len(flows)
    n_towers = len(towers)
    n_steps = int(round(duration / dt))

    # -- capacity profiles, expanded to the step grid ------------------
    profiles = np.stack([
        tower.capacity_profile(duration, capacity_window)
        for tower in towers
    ])
    window_of_step = np.minimum(
        (np.arange(n_steps) * dt / capacity_window).astype(np.intp),
        profiles.shape[1] - 1,
    )
    cap = profiles[:, window_of_step]           # [towers, steps] bytes/s

    # -- flow arrays ---------------------------------------------------
    tower_id = np.array([f.tower for f in flows], dtype=np.intp)
    start = np.array([f.start for f in flows])
    rtt = np.array([f.rtt for f in flows])
    rtt_steps = np.maximum(1, np.rint(rtt / dt).astype(np.intp))
    mstart = np.maximum(measure_start, start)
    banks = build_banks(flows, dt)

    x = np.zeros(n_flows)                       # send rate
    delivered = np.zeros(n_flows)               # delivered rate last step
    handover_count = np.zeros(n_flows, dtype=np.int64)

    # -- tower state ---------------------------------------------------
    queue = np.zeros(n_towers)                  # bytes
    buffer_bytes = np.array(
        [t.buffer_packets * MSS for t in towers]
    )
    cap_ref = np.maximum(cap[:, 0], CAPACITY_REF_FLOOR)
    alpha_ref = 1.0 - math.exp(-dt / CAPACITY_REF_TAU)
    overflowing = np.zeros(n_towers, dtype=bool)
    dropped = np.zeros(n_towers)
    tower_loss_epochs = np.zeros(n_towers, dtype=np.int64)

    # FIFO exit-delay bookkeeping: cumulative *accepted* arrival bytes
    # per step (``arr_hist``) against cumulative served bytes; the
    # pointer ``exit_ptr`` tracks the entry step of the fluid leaving
    # the queue now, so ``(step − exit_ptr)·dt`` is the buffer delay a
    # delivered byte actually experienced.  This is the delay ACKs
    # report — solving s + t_buff(s) = t exactly instead of
    # approximating it, which matters when the queue grows quickly
    # (the approximation's lookup index stalls and never sees the
    # growth).
    arr_hist = np.zeros((n_towers, n_steps + 1))
    srv_cum = np.zeros(n_towers)
    exit_ptr = np.zeros(n_towers, dtype=np.intp)
    delay_hist = np.zeros((n_towers, n_steps + 1))
    tower_range = np.arange(n_towers)

    # -- measurement accumulators --------------------------------------
    delivered_bytes = np.zeros(n_flows)
    tb_sum = np.zeros(n_flows)
    tb_time = np.zeros(n_flows)
    tb_max = np.zeros(n_flows)
    cap_sum = np.zeros(n_flows)                 # total tower capacity seen
    served_sum = np.zeros(n_towers)
    tower_cap_sum = np.zeros(n_towers)
    tower_peak = np.zeros(n_towers)

    plan = sorted(handovers, key=lambda h: (h.time, h.flow))
    plan_i = 0
    handovers_applied = 0
    sample_every = max(1, int(round(TOWER_SAMPLE_INTERVAL / dt)))
    prof_token = (profiler.begin("fluid.integrate")
                  if profiler is not None else None)

    for step in range(n_steps):
        t = step * dt

        # Handovers due at or before this step.
        while plan_i < len(plan) and plan[plan_i].time <= t:
            ho = plan[plan_i]
            plan_i += 1
            if tower_id[ho.flow] != ho.to_tower:
                if tracer is not None:
                    tracer.emit(
                        obs.FLUID_HANDOVER, t, flow=ho.flow,
                        src=int(tower_id[ho.flow]), dst=ho.to_tower,
                    )
                tower_id[ho.flow] = ho.to_tower
                handover_count[ho.flow] += 1
                handovers_applied += 1

        active = start <= t

        # Feedback-lagged observation: fluid exiting the queue at time
        # s carried the delay it experienced; the ACK reaches its
        # sender one propagation RTT later, so the controller at t sees
        # the exit delay from t − rtt.
        obs_idx = np.maximum(step - rtt_steps, 0)
        observed = delay_hist[tower_id, obs_idx]
        observed = np.where(t - start < rtt, 0.0, observed)

        # Current standing-queue delay (what fluid entering *now* will
        # wait) — the self-clocking term for window controllers.
        tb_now = (queue / cap_ref)[tower_id]

        # Controller banks → send rates.
        for bank in banks:
            idx = bank.index
            x[idx] = bank.rates(
                t, observed[idx], tb_now[idx], delivered[idx], active[idx]
            )

        # Tower aggregation and fluid FIFO service split.
        arrival = np.bincount(tower_id, weights=x, minlength=n_towers)
        c_now = cap[:, step]
        backlogged = (queue > 0.0) | (arrival > c_now)
        serve = np.where(backlogged, c_now, arrival)
        share = np.where(arrival > 0.0, serve / np.maximum(arrival, 1e-12),
                         0.0)
        delivered = x * share[tower_id]

        # Queue integration with drop-tail overflow.
        queue = queue + (arrival - serve) * dt
        np.maximum(queue, 0.0, out=queue)
        over = queue > buffer_bytes
        excess = np.zeros(n_towers)
        if bool(over.any()):
            excess = np.where(over, queue - buffer_bytes, 0.0)
            dropped += excess
            np.minimum(queue, buffer_bytes, out=queue)
            # Tower loss *epochs* count overflow onsets (rising edges);
            # the loss signal to the flows is level-triggered — while
            # the buffer overflows every incoming packet beyond it is
            # dropped, and the banks' own per-RTT hold-off paces how
            # often a flow reacts.
            tower_loss_epochs += over & ~overflowing
            for bank in banks:
                if not bank.loss_based:
                    continue
                idx = bank.index
                hit = over[tower_id[idx]] & (x[idx] > 0.0)
                reacted = bank.on_overflow(t, hit)
                if reacted and tracer is not None:
                    tracer.emit(
                        obs.FLUID_LOSS, t, family=bank.kind,
                        flows=reacted,
                    )
        overflowing = over

        # FIFO exit-delay update: accepted bytes extend the arrival
        # cumulative; the exit pointer chases the served cumulative.
        arr_hist[:, step + 1] = arr_hist[:, step] + arrival * dt - excess
        srv_cum += serve * dt
        while True:
            # Clamp the lookup: on an idle tower exit_ptr reaches
            # step + 1, where the (masked-out) exit_ptr + 1 column does
            # not exist yet.
            nxt = np.minimum(exit_ptr + 1, step + 1)
            can_advance = (exit_ptr < step + 1) & (
                arr_hist[tower_range, nxt] <= srv_cum
            )
            if not bool(can_advance.any()):
                break
            exit_ptr += can_advance
        delay_hist[:, step + 1] = np.where(
            queue > 0.0, (step + 1 - exit_ptr) * dt, 0.0
        )

        # Reference capacity EWMA: converts queue bytes into the
        # *entry* delay estimate even mid-outage (instantaneous rate
        # may be zero).
        cap_ref += alpha_ref * (c_now - cap_ref)
        np.maximum(cap_ref, CAPACITY_REF_FLOOR, out=cap_ref)
        tbuff = delay_hist[:, step + 1]

        # Measurement window accumulation.
        measuring = active & (t >= mstart) & (t < measure_end)
        if bool(measuring.any()):
            d_m = np.where(measuring, delivered, 0.0)
            delivered_bytes += d_m * dt
            tb_flow = tbuff[tower_id]
            tb_sum += np.where(measuring, tb_flow, 0.0) * dt
            tb_time += measuring * dt
            np.maximum(tb_max, np.where(measuring, tb_flow, 0.0),
                       out=tb_max)
            cap_sum += np.where(measuring, c_now[tower_id], 0.0) * dt
        if measure_start <= t < measure_end:
            served_sum += serve * dt
            tower_cap_sum += c_now * dt
            np.maximum(tower_peak, tbuff, out=tower_peak)

        if tracer is not None and step % sample_every == 0:
            for j in range(n_towers):
                tracer.emit(
                    obs.FLUID_TOWER, t, tower=j,
                    tbuff=float(tbuff[j]), capacity=float(c_now[j]),
                    arrival=float(arrival[j]),
                    flows=int(np.count_nonzero(tower_id == j)),
                )

    if prof_token is not None:
        profiler.end(prof_token)

    # -- reduction -----------------------------------------------------
    loss_by_flow = np.zeros(n_flows, dtype=np.int64)
    for bank in banks:
        loss_by_flow[bank.index] = bank.loss_epochs
    kind_by_flow = [""] * n_flows
    for bank in banks:
        for i in bank.index:
            kind_by_flow[i] = bank.kind

    flow_results: List[FluidFlowResult] = []
    for i, spec in enumerate(flows):
        window = max(measure_end - float(mstart[i]), 0.0)
        goodput = delivered_bytes[i] / window if window > 0 else 0.0
        capacity = cap_sum[i] / window if window > 0 else 0.0
        measured = tb_time[i] > 0.0
        flow_results.append(
            FluidFlowResult(
                name=spec.name or f"flow{i}",
                controller=kind_by_flow[i],
                goodput=float(goodput),
                delivered_bytes=float(delivered_bytes[i]),
                avg_tbuff=float(tb_sum[i] / tb_time[i]) if measured
                else float("nan"),
                max_tbuff=float(tb_max[i]) if measured else float("nan"),
                utilization=(
                    float(goodput / capacity) if capacity > 0 else None
                ),
                loss_epochs=int(loss_by_flow[i]),
                handovers=int(handover_count[i]),
                final_tower=int(tower_id[i]),
                measure_start=float(mstart[i]),
                measure_end=float(measure_end),
            )
        )

    tower_summaries: List[TowerSummary] = []
    window = max(measure_end - measure_start, 1e-9)
    for j, tower in enumerate(towers):
        capacity = tower_cap_sum[j] / window
        tower_summaries.append(
            TowerSummary(
                name=tower.name or f"tower{j}",
                flows_final=int(np.count_nonzero(tower_id == j)),
                mean_capacity=float(capacity),
                utilization=(
                    float(served_sum[j] / tower_cap_sum[j])
                    if tower_cap_sum[j] > 0 else 0.0
                ),
                peak_tbuff=float(tower_peak[j]),
                dropped_bytes=float(dropped[j]),
                loss_epochs=int(tower_loss_epochs[j]),
            )
        )

    goodputs = [f.goodput for f in flow_results]
    report = FluidReport(
        flows=flow_results,
        towers=tower_summaries,
        jfi=jain_fairness(goodputs),
        duration=duration,
        dt=dt,
        steps=n_steps,
        handovers_applied=handovers_applied,
    )
    if tracer is not None:
        metrics = tracer.metrics
        metrics.counter("run.fluid.steps").add(n_steps)
        metrics.counter("run.fluid.handovers").add(handovers_applied)
        metrics.counter("run.fluid.loss_epochs").add(
            int(loss_by_flow.sum())
        )
        if profiler is not None:
            profiler.flush_into(metrics)
        dropped = tracer.drain_dropped()
        if dropped:
            total = 0
            for kind, count in dropped.items():
                metrics.counter(f"run.telemetry.dropped.{kind}").add(count)
                total += count
            metrics.counter("run.telemetry.dropped_events").add(total)
        # Standalone fluid runs previously never wrote their metrics
        # snapshot into the trace (the counters only surfaced through a
        # batch merge); emit it so `repro trace` and the dashboard see
        # fluid counters and dropped-event accounting.
        tracer.emit(obs.METRICS, duration, scope="run",
                    metrics=metrics.snapshot())
        tracer.emit(
            obs.FLUID_END, duration, flows=n_flows,
            jfi=_finite(report.jfi),
        )
    return report
