"""Per-event-kind sampling budgets for long-run telemetry.

A full trace of a long grid sweep or a 1000-flow fluid run is dominated
by periodic records (``queue.sample`` every 10 ms per link,
``fluid.tower`` every 100 ms per tower).  A :class:`SamplingPolicy`
bounds that volume *visibly*: each event kind can be decimated
(every-Nth), time-decimated (at most one record per interval of
simulated time), and hard-capped per run — and every record the policy
rejects is counted per kind, so the runner can fold
``run.telemetry.dropped.<kind>`` counters into the metrics snapshot and
truncation is never silent.

Determinism: a policy's decisions depend only on the event stream
itself (arrival order and the simulated ``t`` field), never on wall
clock, so a sampled run is exactly as reproducible as an unsampled one
and the dropped counters are part of the deterministic summary.

Lifecycle kinds (run/batch headers and footers, metrics snapshots,
auditor records) are never sampled — a decimated trace must still be
self-describing for ``repro trace`` and ``repro watch``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.obs.events import (
    AUDIT_DUMP,
    AUDIT_VIOLATION,
    FLUID_END,
    FLUID_RUN,
    GRID_CELL,
    META,
    METRICS,
    RUN_END,
    RUN_START,
)

__all__ = ["KindBudget", "SamplingPolicy", "PROTECTED_KINDS",
           "resolve_sampling", "sampling_spec"]

#: Kinds a policy never drops: without them a trace loses its run
#: boundaries, link metadata, and the metrics (including the dropped
#: counters themselves).
PROTECTED_KINDS = frozenset({
    META, RUN_START, RUN_END, METRICS, GRID_CELL,
    FLUID_RUN, FLUID_END, AUDIT_VIOLATION, AUDIT_DUMP,
})


class KindBudget:
    """The sampling rules for one event kind (or the default).

    ``every=N`` keeps the 1st of every N records; ``interval=X`` keeps
    at most one record per ``X`` seconds of the event clock (the first
    record of a burst is always kept); ``max=N`` is a hard per-run cap
    on *kept* records.  Rules compose: a record must pass all three.
    """

    __slots__ = ("every", "interval", "max_events", "_seen", "_kept",
                 "_next_t")

    def __init__(self, every: int = 1, interval: float = 0.0,
                 max_events: Optional[int] = None) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        if interval < 0:
            raise ValueError("interval must be >= 0")
        if max_events is not None and max_events < 0:
            raise ValueError("max must be >= 0")
        self.every = every
        self.interval = interval
        self.max_events = max_events
        self._seen = 0
        self._kept = 0
        self._next_t = float("-inf")

    def admit(self, t: float) -> bool:
        self._seen += 1
        if (self._seen - 1) % self.every != 0:
            return False
        if self.interval > 0.0 and t < self._next_t:
            return False
        if self.max_events is not None and self._kept >= self.max_events:
            return False
        self._kept += 1
        if self.interval > 0.0:
            self._next_t = t + self.interval
        return True

    def spawn(self) -> "KindBudget":
        """A fresh-state copy with the same rules (per-kind instances)."""
        return KindBudget(self.every, self.interval, self.max_events)

    def describe(self) -> str:
        parts = []
        if self.every > 1:
            parts.append(f"every={self.every}")
        if self.interval > 0.0:
            parts.append(f"interval={self.interval:g}")
        if self.max_events is not None:
            parts.append(f"max={self.max_events}")
        return ",".join(parts) or "all"


class SamplingPolicy:
    """Per-kind admission control with exact dropped-record accounting.

    ``rules`` maps an event kind to its :class:`KindBudget`; the ``"*"``
    key (or ``default=``) budgets every non-protected kind without an
    explicit rule.  Kinds in :data:`PROTECTED_KINDS` are always
    admitted.

    ``admit(kind, t)`` is the hot-path call: it returns whether the
    record should be written and counts the drop otherwise.
    ``drain_dropped()`` returns and resets the per-kind drop counts, so
    a policy reused across runs still yields per-run deltas.
    """

    def __init__(self, rules: Optional[Dict[str, KindBudget]] = None,
                 default: Optional[KindBudget] = None,
                 spec: str = "") -> None:
        rules = dict(rules or {})
        star = rules.pop("*", None)
        self._default = default if default is not None else star
        self._rules: Dict[str, KindBudget] = rules
        self._budgets: Dict[str, KindBudget] = {}
        self.dropped: Dict[str, int] = {}
        #: The spec string this policy was parsed from ("" if built
        #: programmatically); lets batch layers ship the policy to
        #: workers as a plain string.
        self.spec = spec

    def _budget_for(self, kind: str) -> Optional[KindBudget]:
        budget = self._budgets.get(kind)
        if budget is None:
            template = self._rules.get(kind)
            if template is None:
                if kind in PROTECTED_KINDS or self._default is None:
                    return None
                template = self._default
            budget = template.spawn()
            self._budgets[kind] = budget
        return budget

    def admit(self, kind: str, t: float) -> bool:
        budget = self._budget_for(kind)
        if budget is None:
            return True
        if budget.admit(t):
            return True
        self.dropped[kind] = self.dropped.get(kind, 0) + 1
        return False

    def drain_dropped(self) -> Dict[str, int]:
        """Per-kind drop counts since the last drain (reset on read)."""
        out = self.dropped
        self.dropped = {}
        return out

    def describe(self) -> str:
        items: List[str] = []
        for kind in sorted(self._rules):
            items.append(f"{kind}:{self._rules[kind].describe()}")
        if self._default is not None:
            items.append(f"*:{self._default.describe()}")
        return ";".join(items)

    @classmethod
    def parse(cls, spec: str) -> "SamplingPolicy":
        """Build a policy from a CLI spec string.

        Grammar: items separated by ``;``, each ``<kind>:<rule>[,<rule>…]``
        with rules ``every=N``, ``interval=SECONDS``, ``max=N``.  The
        kind ``*`` sets the default budget for unlisted kinds.  A bare
        integer rule is shorthand for ``every=N``::

            queue.sample:every=10;fluid.tower:interval=0.5;*:max=200000
            queue.sample:4
        """
        rules: Dict[str, KindBudget] = {}
        for item in spec.split(";"):
            item = item.strip()
            if not item:
                continue
            if ":" not in item:
                raise ValueError(
                    f"bad sampling item {item!r}: expected kind:rule[,rule...]"
                )
            kind, _, body = item.partition(":")
            kind = kind.strip()
            kwargs: Dict[str, Union[int, float]] = {}
            for rule in body.split(","):
                rule = rule.strip()
                if not rule:
                    continue
                if "=" not in rule:
                    kwargs["every"] = int(rule)
                    continue
                key, _, value = rule.partition("=")
                key = key.strip()
                if key == "every":
                    kwargs["every"] = int(value)
                elif key == "interval":
                    kwargs["interval"] = float(value)
                elif key == "max":
                    kwargs["max_events"] = int(value)
                else:
                    raise ValueError(
                        f"bad sampling rule {rule!r}: use every=, "
                        f"interval=, or max="
                    )
            if not kwargs:
                raise ValueError(f"empty sampling rules for kind {kind!r}")
            rules[kind] = KindBudget(**kwargs)
        return cls(rules, spec=spec)


def resolve_sampling(
    sampling: Union[str, SamplingPolicy, None],
) -> Optional[SamplingPolicy]:
    """A :class:`SamplingPolicy` from a policy, spec string, or None."""
    if sampling is None or sampling == "":
        return None
    if isinstance(sampling, SamplingPolicy):
        return sampling
    return SamplingPolicy.parse(str(sampling))


def sampling_spec(sampling: Union[str, SamplingPolicy, None]) -> Optional[str]:
    """The portable string form of a sampling argument (for specs)."""
    if sampling is None or sampling == "":
        return None
    if isinstance(sampling, SamplingPolicy):
        return sampling.spec or sampling.describe()
    return str(sampling)
