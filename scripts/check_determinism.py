#!/usr/bin/env python
"""CI determinism gates for the batch scheduler and the delivery paths.

Default mode — the batch layer's core promise: ``run_batch(...,
n_jobs=1)`` and ``n_jobs=4`` produce bit-identical ``FlowResult``
summaries, whatever order the work-stealing queue completes specs in.
This script runs a small Figure-10 frontier grid both ways (plus the
streaming ``iter_frontier`` face) and fails loudly on the first
diverging field.  CI runs it twice more with ``REPRO_FAST_PATH=0`` so
the scalar delivery path keeps the same guarantee.

``--fastpath`` mode — the delivery fast path's core promise: the SoA
batched pipeline (``REPRO_FAST_PATH=1``, the default) and the scalar
reference produce bit-identical ``FlowResult`` summaries across a
scenario grid spanning AQMs, delayed ACKs, both flow directions, and
outage-heavy mobile traces (DESIGN.md §9).  Links bind their serve
callback at construction, so each leg pins ``REPRO_FAST_PATH`` before
building its worlds (and restores the caller's value afterwards).

``--contention`` mode — both promises at N flows: multi-flow contention
cells (including 16-flow mixes where some flows starve outright) keep
fast == scalar, and the reduced contention grid's JSON artifact is
byte-identical between ``run_grid(n_jobs=1)`` and ``n_jobs=4``.

``--env`` mode — the control-plane environment's core promise
(docs/env.md): a :class:`repro.env.CcEnv` rollout that replays a native
algorithm through the policy adapter is bit-identical to the native
``run_single_flow`` run (checked for rate-based PropRate and
window-based CUBIC on the outage-heavy mobile trace), and the
adaptive-target algorithm ``PR(A)`` — the env's flagship policy — is
bit-identical between ``run_batch(n_jobs=1)`` and ``n_jobs=4``.

All modes compare *canonical* summaries
(:func:`repro.experiments.runner.canonical_summary`): a starved flow's
delay statistics are NaN, and ``nan != nan`` would make bit-identical
runs falsely diverge under plain tuple equality.

Usage::

    PYTHONPATH=src python scripts/check_determinism.py
    PYTHONPATH=src python scripts/check_determinism.py --fastpath
    PYTHONPATH=src python scripts/check_determinism.py --contention
    PYTHONPATH=src python scripts/check_determinism.py --env
"""

from __future__ import annotations

import os
import sys

TARGETS = [0.020, 0.040, 0.060, 0.080]
DURATION = 6.0
WARMUP = 1.0

#: --fastpath grid: (label, isp, mode, aqm, direction, delayed_ack).
FASTPATH_GRID = [
    ("A-mobile-droptail-down", "A", "mobile", "droptail", "down", False),
    ("A-mobile-codel-down", "A", "mobile", "codel", "down", False),
    ("B-stationary-droptail-down-delack", "B", "stationary", "droptail",
     "down", True),
    ("C-mobile-droptail-up", "C", "mobile", "droptail", "up", False),
    ("B-mobile-codel-up-delack", "B", "mobile", "codel", "up", True),
]

FASTPATH_ALGOS = ["PR(M)", "CUBIC", "BBR", "Sprout", "Verus"]

#: --contention grid: (mix, flow count).  16-flow cells on a 1 Mbps
#: bottleneck guarantee starved flows, exercising the NaN-canonical
#: comparison that plain tuple equality gets wrong.
CONTENTION_CELLS = [
    ("pr-vs-cubic", 4),
    ("cubic-self", 16),
    ("pr-heavy", 16),
]


def check_scheduler() -> int:
    from repro.experiments.frontier import iter_frontier, sweep_frontier
    from repro.experiments.runner import canonical_summary
    from repro.traces.presets import isp_trace

    down = isp_trace("A", "mobile", duration=20.0)
    up = isp_trace("A", "mobile", duration=20.0, direction="uplink")
    kwargs = dict(
        targets=TARGETS, duration=DURATION, measure_start=WARMUP
    )

    serial = sweep_frontier(down, up, n_jobs=1, **kwargs)
    parallel = sweep_frontier(down, up, n_jobs=4, retries=1, **kwargs)
    streamed = sorted(
        iter_frontier(down, up, n_jobs=4, retries=1, **kwargs),
        key=lambda p: p.target_tbuff,
    )

    failures = 0
    for label, candidate in (("n_jobs=4", parallel), ("iter_frontier", streamed)):
        for ref, got in zip(serial, candidate):
            if (canonical_summary(ref.result.summary())
                    != canonical_summary(got.result.summary())):
                failures += 1
                print(
                    f"DIVERGENCE [{label}] target "
                    f"{ref.target_tbuff * 1000:.0f}ms:\n"
                    f"  serial:   {ref.result.summary()}\n"
                    f"  parallel: {got.result.summary()}",
                    file=sys.stderr,
                )
    if failures:
        print(f"determinism gate FAILED: {failures} diverging points",
              file=sys.stderr)
        return 1
    print(
        f"determinism gate OK: {len(TARGETS)} frontier points bit-identical "
        f"across n_jobs=1, n_jobs=4, and streaming collection"
    )
    return 0


def check_fastpath() -> int:
    from repro.experiments.algorithms import paper_algorithms
    from repro.experiments.runner import (
        FlowSpec,
        canonical_summary,
        cellular_path_config,
        run_experiment,
    )
    from repro.traces.presets import isp_trace

    algos = paper_algorithms()

    def leg(fast: bool):
        os.environ["REPRO_FAST_PATH"] = "1" if fast else "0"
        out = {}
        for label, isp, mode, aqm, direction, delack in FASTPATH_GRID:
            down = isp_trace(isp, mode, duration=20.0)
            up = isp_trace(isp, mode, duration=20.0, direction="uplink")
            for name in FASTPATH_ALGOS:
                config = cellular_path_config(down, up, aqm=aqm)
                results = run_experiment(
                    config,
                    [FlowSpec(cc_factory=algos[name], direction=direction,
                              delayed_ack=delack)],
                    duration=DURATION, measure_start=WARMUP,
                )
                out[(label, name)] = canonical_summary(results[0].summary())
        return out

    saved = os.environ.get("REPRO_FAST_PATH")
    try:
        scalar = leg(False)
        fast = leg(True)
    finally:
        if saved is None:
            os.environ.pop("REPRO_FAST_PATH", None)
        else:
            os.environ["REPRO_FAST_PATH"] = saved

    failures = 0
    for key, ref in scalar.items():
        if fast[key] != ref:
            failures += 1
            print(
                f"DIVERGENCE {key}:\n"
                f"  scalar: {ref}\n"
                f"  fast:   {fast[key]}",
                file=sys.stderr,
            )
    if failures:
        print(f"fast-path gate FAILED: {failures} diverging scenarios "
              f"of {len(scalar)}", file=sys.stderr)
        return 1
    print(
        f"fast-path gate OK: {len(scalar)} scenario/algorithm results "
        f"bit-identical between REPRO_FAST_PATH=0 and =1"
    )
    return 0


def check_contention() -> int:
    import json

    from repro.experiments.contention_grid import (
        MIXES,
        REDUCED_GRID,
        build_contention_flows,
        run_grid,
    )
    from repro.experiments.runner import (
        canonical_summary,
        cellular_path_config,
        run_experiment,
    )
    from repro.traces.generator import constant_rate_trace

    failures = 0

    # Leg 1: fast == scalar on multi-flow contention cells.
    def leg(fast: bool):
        os.environ["REPRO_FAST_PATH"] = "1" if fast else "0"
        out = {}
        for mix, n_flows in CONTENTION_CELLS:
            flows, duration = build_contention_flows(
                MIXES[mix], n_flows, "staggered",
                stagger=0.1, settle=1.0, overlap=4.0,
            )
            down = constant_rate_trace(1.0e6 / 8.0, duration + 1.0,
                                       name="wired:1mbps")
            results = run_experiment(
                cellular_path_config(down), flows, duration=duration
            )
            out[(mix, n_flows)] = [
                canonical_summary(r.summary()) for r in results
            ]
        return out

    saved = os.environ.get("REPRO_FAST_PATH")
    try:
        scalar = leg(False)
        fast = leg(True)
    finally:
        if saved is None:
            os.environ.pop("REPRO_FAST_PATH", None)
        else:
            os.environ["REPRO_FAST_PATH"] = saved

    for key, ref in scalar.items():
        for ref_flow, fast_flow in zip(ref, fast[key]):
            if ref_flow != fast_flow:
                failures += 1
                print(
                    f"DIVERGENCE [fastpath] cell {key}:\n"
                    f"  scalar: {ref_flow}\n"
                    f"  fast:   {fast_flow}",
                    file=sys.stderr,
                )

    # Leg 2: the reduced grid artifact is byte-identical serial vs
    # parallel (to_dict carries no wall-clock, so this is exact).
    serial = json.dumps(
        run_grid(REDUCED_GRID, n_jobs=1, audit=True).to_dict(),
        sort_keys=True,
    )
    parallel = json.dumps(
        run_grid(REDUCED_GRID, n_jobs=4, audit=True, retries=1).to_dict(),
        sort_keys=True,
    )
    if serial != parallel:
        failures += 1
        print("DIVERGENCE [grid] reduced-grid JSON differs between "
              "n_jobs=1 and n_jobs=4", file=sys.stderr)

    if failures:
        print(f"contention gate FAILED: {failures} divergences",
              file=sys.stderr)
        return 1
    print(
        f"contention gate OK: {len(CONTENTION_CELLS)} multi-flow cells "
        f"bit-identical fast-vs-scalar; reduced grid byte-identical "
        f"serial-vs-parallel"
    )
    return 0


#: --env replay leg: one rate-based and one window-based algorithm, so
#: both policy adapters are under the bit-identity contract.
ENV_REPLAY_ALGOS = ["PR(M)", "CUBIC"]


def check_env() -> int:
    from repro.env import CcEnv, rollout
    from repro.experiments.algorithms import ADAPTIVE_NAME, paper_algorithms
    from repro.experiments.parallel import CcSpec, RunSpec, run_batch
    from repro.experiments.runner import canonical_summary, run_single_flow
    from repro.traces.cache import as_ref
    from repro.traces.presets import isp_trace

    algos = paper_algorithms()
    down = isp_trace("A", "mobile", duration=20.0)
    up = isp_trace("A", "mobile", duration=20.0, direction="uplink")
    failures = 0

    # Leg 1: env rollout replaying a native algorithm == the native run.
    for name in ENV_REPLAY_ALGOS:
        native = run_single_flow(
            algos[name], down, up, duration=DURATION, measure_start=WARMUP
        )
        env = CcEnv(
            down, up, inner_cc=algos[name],
            duration=DURATION, measure_start=WARMUP,
        )
        replay = rollout(env).result
        if (canonical_summary(native.summary())
                != canonical_summary(replay.summary())):
            failures += 1
            print(
                f"DIVERGENCE [env-replay] {name}:\n"
                f"  native: {native.summary()}\n"
                f"  env:    {replay.summary()}",
                file=sys.stderr,
            )

    # Leg 2: the adaptive-target algorithm is deterministic across the
    # batch scheduler, like every other shootout entry.
    down_ref = as_ref(down)
    up_ref = as_ref(up)
    specs = [
        RunSpec(
            cc=CcSpec(ADAPTIVE_NAME, (("target_buffer_delay", t),)),
            downlink=down_ref, uplink=up_ref,
            duration=DURATION, measure_start=WARMUP,
            name=f"PR(A)-{t * 1000:.0f}ms",
        )
        for t in TARGETS
    ]
    serial = [o.result for o in run_batch(specs, n_jobs=1)]
    parallel = [o.result for o in run_batch(specs, n_jobs=4, retries=1)]
    for spec, ref, got in zip(specs, serial, parallel):
        if (canonical_summary(ref.summary())
                != canonical_summary(got.summary())):
            failures += 1
            print(
                f"DIVERGENCE [env-adaptive] {spec.name}:\n"
                f"  n_jobs=1: {ref.summary()}\n"
                f"  n_jobs=4: {got.summary()}",
                file=sys.stderr,
            )

    if failures:
        print(f"env gate FAILED: {failures} divergences", file=sys.stderr)
        return 1
    print(
        f"env gate OK: {len(ENV_REPLAY_ALGOS)} native replays "
        f"bit-identical through CcEnv; {len(TARGETS)} PR(A) runs "
        f"bit-identical across n_jobs=1 and n_jobs=4"
    )
    return 0


def main() -> int:
    if "--fastpath" in sys.argv[1:]:
        return check_fastpath()
    if "--contention" in sys.argv[1:]:
        return check_contention()
    if "--env" in sys.argv[1:]:
        return check_env()
    return check_scheduler()


if __name__ == "__main__":
    raise SystemExit(main())
