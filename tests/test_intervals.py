"""Unit and property tests for IntervalSet (the SACK scoreboard core)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.util.intervals import IntervalSet, RunMap


class TestBasics:
    def test_empty(self):
        s = IntervalSet()
        assert len(s) == 0
        assert not s
        assert 5 not in s
        assert s.intervals == []

    def test_single_add(self):
        s = IntervalSet()
        assert s.add(5)
        assert 5 in s
        assert 4 not in s
        assert 6 not in s
        assert len(s) == 1

    def test_duplicate_add_returns_false(self):
        s = IntervalSet()
        assert s.add(5)
        assert not s.add(5)
        assert len(s) == 1

    def test_adjacent_adds_merge(self):
        s = IntervalSet()
        s.add(1)
        s.add(2)
        s.add(3)
        assert s.intervals == [(1, 4)]

    def test_min_max(self):
        s = IntervalSet()
        s.add_range(10, 15)
        s.add_range(20, 25)
        assert s.min == 10
        assert s.max == 25

    def test_min_on_empty_raises(self):
        with pytest.raises(ValueError):
            IntervalSet().min


class TestAddRange:
    def test_disjoint_ranges(self):
        s = IntervalSet()
        assert s.add_range(0, 5) == [(0, 5)]
        assert s.add_range(10, 15) == [(10, 15)]
        assert s.intervals == [(0, 5), (10, 15)]
        assert len(s) == 10

    def test_empty_range_is_noop(self):
        s = IntervalSet()
        assert s.add_range(5, 5) == []
        assert s.add_range(5, 3) == []

    def test_overlapping_range_returns_only_new(self):
        s = IntervalSet()
        s.add_range(0, 10)
        new = s.add_range(5, 15)
        assert new == [(10, 15)]
        assert s.intervals == [(0, 15)]

    def test_range_bridging_two_intervals(self):
        s = IntervalSet()
        s.add_range(0, 5)
        s.add_range(10, 15)
        new = s.add_range(3, 12)
        assert new == [(5, 10)]
        assert s.intervals == [(0, 15)]

    def test_range_inside_existing_returns_nothing(self):
        s = IntervalSet()
        s.add_range(0, 100)
        assert s.add_range(10, 20) == []
        assert len(s) == 100

    def test_adjacent_ranges_merge(self):
        s = IntervalSet()
        s.add_range(0, 5)
        s.add_range(5, 10)
        assert s.intervals == [(0, 10)]

    def test_range_covering_multiple_gaps(self):
        s = IntervalSet()
        s.add_range(2, 4)
        s.add_range(6, 8)
        s.add_range(10, 12)
        new = s.add_range(0, 14)
        assert new == [(0, 2), (4, 6), (8, 10), (12, 14)]
        assert s.intervals == [(0, 14)]

    def test_repeated_sack_block_is_cheap_noop(self):
        s = IntervalSet()
        s.add_range(100, 200)
        for _ in range(10):
            assert s.add_range(100, 200) == []


class TestRemoveBelow:
    def test_removes_whole_intervals(self):
        s = IntervalSet()
        s.add_range(0, 5)
        s.add_range(10, 15)
        assert s.remove_below(7) == 5
        assert s.intervals == [(10, 15)]

    def test_truncates_partial_interval(self):
        s = IntervalSet()
        s.add_range(0, 10)
        assert s.remove_below(4) == 4
        assert s.intervals == [(4, 10)]
        assert len(s) == 6

    def test_noop_below_everything(self):
        s = IntervalSet()
        s.add_range(10, 20)
        assert s.remove_below(5) == 0
        assert len(s) == 10


class TestQueries:
    def test_first_gap_at_or_after(self):
        s = IntervalSet()
        s.add_range(0, 5)
        s.add_range(7, 10)
        assert s.first_gap_at_or_after(0) == 5
        assert s.first_gap_at_or_after(5) == 5
        assert s.first_gap_at_or_after(6) == 6
        assert s.first_gap_at_or_after(8) == 10

    def test_covered_in(self):
        s = IntervalSet()
        s.add_range(0, 5)
        s.add_range(10, 20)
        assert s.covered_in(0, 25) == 15
        assert s.covered_in(3, 12) == 4
        assert s.covered_in(5, 10) == 0
        assert s.covered_in(12, 12) == 0


@st.composite
def _operations(draw):
    ops = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=200),
                st.integers(min_value=1, max_value=30),
            ),
            min_size=1,
            max_size=40,
        )
    )
    return [(start, start + width) for start, width in ops]


class TestProperties:
    @given(_operations())
    @settings(max_examples=200, deadline=None)
    def test_matches_reference_set(self, ranges):
        """IntervalSet must behave exactly like a plain set of ints."""
        s = IntervalSet()
        reference = set()
        for start, end in ranges:
            new = s.add_range(start, end)
            new_flat = {v for a, b in new for v in range(a, b)}
            expected_new = set(range(start, end)) - reference
            assert new_flat == expected_new
            reference |= set(range(start, end))
        assert len(s) == len(reference)
        covered = {v for a, b in s.intervals for v in range(a, b)}
        assert covered == reference

    @given(_operations(), st.integers(min_value=0, max_value=250))
    @settings(max_examples=100, deadline=None)
    def test_remove_below_matches_reference(self, ranges, bound):
        s = IntervalSet()
        reference = set()
        for start, end in ranges:
            s.add_range(start, end)
            reference |= set(range(start, end))
        removed = s.remove_below(bound)
        assert removed == len({v for v in reference if v < bound})
        remaining = {v for a, b in s.intervals for v in range(a, b)}
        assert remaining == {v for v in reference if v >= bound}

    @given(_operations())
    @settings(max_examples=100, deadline=None)
    def test_intervals_sorted_and_disjoint(self, ranges):
        s = IntervalSet()
        for start, end in ranges:
            s.add_range(start, end)
        intervals = s.intervals
        for (a1, b1), (a2, b2) in zip(intervals, intervals[1:]):
            assert b1 < a2  # disjoint and non-adjacent (merged)
        for a, b in intervals:
            assert a < b


class TestIntervalSetExtensions:
    def test_remove_range_splits_interval(self):
        s = IntervalSet()
        s.add_range(0, 10)
        assert s.remove_range(3, 6) == [(3, 6)]
        assert s.intervals == [(0, 3), (6, 10)]
        assert len(s) == 7

    def test_remove_range_skips_uncovered(self):
        s = IntervalSet()
        s.add_range(0, 2)
        s.add_range(5, 8)
        assert s.remove_range(1, 7) == [(1, 2), (5, 7)]
        assert s.intervals == [(0, 1), (7, 8)]

    def test_remove_range_noop(self):
        s = IntervalSet()
        s.add_range(5, 8)
        assert s.remove_range(0, 5) == []
        assert s.remove_range(8, 12) == []
        assert s.remove_range(6, 6) == []
        assert s.intervals == [(5, 8)]

    def test_iter_gaps(self):
        s = IntervalSet()
        s.add_range(2, 4)
        s.add_range(6, 8)
        assert list(s.iter_gaps(0, 10)) == [(0, 2), (4, 6), (8, 10)]
        assert list(s.iter_gaps(2, 8)) == [(4, 6)]
        assert list(s.iter_gaps(2, 4)) == []
        assert list(s.iter_gaps(5, 5)) == []

    def test_contains_range(self):
        s = IntervalSet()
        s.add_range(2, 8)
        assert s.contains_range(2, 8)
        assert s.contains_range(3, 5)
        assert s.contains_range(4, 4)  # empty range is vacuously covered
        assert not s.contains_range(1, 3)
        assert not s.contains_range(7, 9)

    @given(_operations(), _operations())
    @settings(max_examples=100, deadline=None)
    def test_remove_range_matches_reference(self, adds, removes):
        s = IntervalSet()
        reference = set()
        for start, end in adds:
            s.add_range(start, end)
            reference |= set(range(start, end))
        for start, end in removes:
            removed = s.remove_range(start, end)
            removed_flat = {v for a, b in removed for v in range(a, b)}
            assert removed_flat == reference & set(range(start, end))
            reference -= set(range(start, end))
        assert {v for a, b in s.intervals for v in range(a, b)} == reference

    @given(_operations())
    @settings(max_examples=100, deadline=None)
    def test_iter_gaps_complements_coverage(self, ranges):
        s = IntervalSet()
        for start, end in ranges:
            s.add_range(start, end)
        covered = {v for a, b in s.intervals for v in range(a, b)}
        gaps = {v for a, b in s.iter_gaps(0, 260) for v in range(a, b)}
        assert gaps == set(range(260)) - covered


# ----------------------------------------------------------------------
# RunMap
# ----------------------------------------------------------------------

def _expand(m):
    """Flatten a RunMap to a per-integer tag dict."""
    return {v: t for s, e, t in m.runs for v in range(s, e)}


def _ref_map_range(ref, start, end, table):
    """Per-integer model of RunMap.map_range, with run-merged returns."""
    changed = []
    for seq in range(start, end):
        old = ref.get(seq)
        if old in table:
            new = table[old]
            if new == old:  # identity mapping: not a change
                continue
            if new is None:
                ref.pop(seq, None)
            else:
                ref[seq] = new
            if changed and changed[-1][1] == seq and changed[-1][2] == old:
                changed[-1] = (changed[-1][0], seq + 1, old)
            else:
                changed.append((seq, seq + 1, old))
    return changed


def _ref_claim_first(ref, tag, new_tag, start, limit):
    """Per-integer model of RunMap.claim_first."""
    if limit <= 0:
        return None
    cands = [s for s, t in ref.items() if t == tag and s >= start]
    if not cands:
        return None
    first = min(cands)
    seq = first
    while seq < first + limit and ref.get(seq) == tag:
        ref[seq] = new_tag
        seq += 1
    return (first, seq)


class TestRunMapBasics:
    def test_map_range_into_gap(self):
        m = RunMap()
        assert m.map_range(3, 7, {None: 1}) == [(3, 7, None)]
        assert m.runs == [(3, 7, 1)]
        assert m.get(3) == 1 and m.get(7) is None
        assert m.count(1) == 4 and len(m) == 4

    def test_map_range_retag_and_merge(self):
        m = RunMap()
        m.map_range(0, 4, {None: 1})
        m.map_range(6, 8, {None: 1})
        # Retagging the gap to the same tag merges all three runs.
        assert m.map_range(4, 6, {None: 1}) == [(4, 6, None)]
        assert m.runs == [(0, 8, 1)]

    def test_map_range_passthrough_untouched_tags(self):
        m = RunMap()
        m.map_range(0, 10, {None: 1})
        m.map_range(2, 5, {1: 2})
        # Table without key 1: the tagged stretch passes through.
        assert m.map_range(0, 10, {None: 3}) == []
        assert m.runs == [(0, 2, 1), (2, 5, 2), (5, 10, 1)]

    def test_map_range_repeated_noop_is_cheap(self):
        m = RunMap()
        m.map_range(0, 100, {None: 1})
        assert m.map_range(0, 100, {None: 1}) == []
        assert m.map_range(10, 90, {None: 1}) == []

    def test_map_range_untag(self):
        m = RunMap()
        m.map_range(0, 6, {None: 1})
        assert m.map_range(2, 4, {1: None}) == [(2, 4, 1)]
        assert m.runs == [(0, 2, 1), (4, 6, 1)]
        assert m.count(1) == 4

    def test_set_range_overwrites(self):
        m = RunMap()
        m.map_range(0, 4, {None: 1})
        m.set_range(2, 6, 2)
        assert m.runs == [(0, 2, 1), (2, 6, 2)]
        m.set_range(0, 6, None)
        assert not m

    def test_clear_below_returns_tag_counts(self):
        m = RunMap()
        m.map_range(0, 3, {None: 1})
        m.map_range(5, 9, {None: 2})
        assert m.clear_below(7) == {1: 3, 2: 2}
        assert m.runs == [(7, 9, 2)]
        assert m.clear_below(7) == {}

    def test_claim_first_whole_run_merges_neighbours(self):
        m = RunMap()
        m.map_range(0, 3, {None: 3})   # existing claimed run
        m.map_range(3, 6, {None: 2})   # pending
        m.map_range(6, 9, {None: 3})
        assert m.claim_first(2, 3, 0, 10) == (3, 6)
        assert m.runs == [(0, 9, 3)]   # both neighbours absorbed

    def test_claim_first_partial_run(self):
        m = RunMap()
        m.map_range(4, 10, {None: 2})
        assert m.claim_first(2, 3, 0, 2) == (4, 6)
        assert m.runs == [(4, 6, 3), (6, 10, 2)]
        assert m.claim_first(2, 3, 0, 2) == (6, 8)
        assert m.runs == [(4, 8, 3), (8, 10, 2)]

    def test_claim_first_straddling_start(self):
        m = RunMap()
        m.map_range(0, 8, {None: 2})
        assert m.claim_first(2, 3, 5, 2) == (5, 7)
        assert m.runs == [(0, 5, 2), (5, 7, 3), (7, 8, 2)]

    def test_claim_first_nothing_pending(self):
        m = RunMap()
        assert m.claim_first(2, 3, 0, 5) is None
        m.map_range(0, 4, {None: 1})
        assert m.claim_first(2, 3, 0, 5) is None
        m.map_range(4, 6, {None: 2})
        assert m.claim_first(2, 3, 6, 5) is None  # only below start
        assert m.claim_first(2, 3, 0, 0) is None  # zero budget

    def test_first_tag(self):
        m = RunMap()
        assert m.first_tag(2) is None
        m.map_range(3, 6, {None: 2})
        assert m.first_tag(2) == 3
        assert m.first_tag(2, 4) == 4  # clipped into the run
        assert m.first_tag(2, 6) is None
        assert m.first_tag(1) is None

    def test_run_at_and_tail_runs(self):
        m = RunMap()
        m.map_range(0, 2, {None: 1})
        m.map_range(4, 6, {None: 2})
        m.map_range(8, 9, {None: 1})
        assert m.run_at(5) == (4, 6, 2)
        assert m.run_at(3) is None
        assert m.tail_runs(2) == [(4, 6, 2), (8, 9, 1)]
        assert m.tail_runs(5) == [(0, 2, 1), (4, 6, 2), (8, 9, 1)]

    def test_segments_tile_exactly(self):
        m = RunMap()
        m.map_range(2, 4, {None: 1})
        m.map_range(6, 8, {None: 2})
        pieces = list(m.segments(0, 10))
        assert pieces == [
            (0, 2, None), (2, 4, 1), (4, 6, None), (6, 8, 2), (8, 10, None),
        ]
        assert list(m.segments(3, 3)) == []

    def test_first_gap_at_or_after(self):
        m = RunMap()
        m.map_range(0, 3, {None: 1})
        m.map_range(3, 5, {None: 2})  # adjacent, different tag
        assert m.first_gap_at_or_after(0) == 5
        assert m.first_gap_at_or_after(5) == 5
        assert m.first_gap_at_or_after(7) == 7


@st.composite
def _runmap_ops(draw):
    tags = st.sampled_from([1, 2, 3, 4])
    maybe_tag = st.sampled_from([None, 1, 2, 3, 4])
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=25))):
        kind = draw(st.sampled_from(["map", "set", "clear", "claim"]))
        if kind == "map":
            start = draw(st.integers(min_value=0, max_value=60))
            width = draw(st.integers(min_value=1, max_value=20))
            pairs = draw(
                st.dictionaries(maybe_tag, maybe_tag, min_size=1, max_size=3)
            )
            ops.append(("map", start, start + width, pairs))
        elif kind == "set":
            start = draw(st.integers(min_value=0, max_value=60))
            width = draw(st.integers(min_value=1, max_value=20))
            ops.append(("set", start, start + width, draw(maybe_tag)))
        elif kind == "clear":
            ops.append(("clear", draw(st.integers(min_value=0, max_value=80))))
        else:
            ops.append((
                "claim",
                draw(tags),
                draw(tags),
                draw(st.integers(min_value=0, max_value=60)),
                draw(st.integers(min_value=1, max_value=10)),
            ))
    return ops


class TestRunMapProperties:
    @given(_runmap_ops())
    @settings(max_examples=300, deadline=None)
    def test_matches_per_integer_reference(self, ops):
        """Every RunMap mutator must agree with a naive per-int dict —
        both the return value and the resulting state — and keep the
        run-structure invariants after every operation."""
        m = RunMap()
        ref = {}
        for op in ops:
            if op[0] == "map":
                _, start, end, table = op
                got = m.map_range(start, end, table)
                want = _ref_map_range(ref, start, end, table)
                assert got == want, (op, got, want)
            elif op[0] == "set":
                _, start, end, tag = op
                m.set_range(start, end, tag)
                for seq in range(start, end):
                    if tag is None:
                        ref.pop(seq, None)
                    else:
                        ref[seq] = tag
            elif op[0] == "clear":
                _, bound = op
                got = m.clear_below(bound)
                want = {}
                for seq in [s for s in ref if s < bound]:
                    t = ref.pop(seq)
                    want[t] = want.get(t, 0) + 1
                assert got == want, (op, got, want)
            else:
                _, tag, new_tag, start, limit = op
                got = m.claim_first(tag, new_tag, start, limit)
                want = _ref_claim_first(ref, tag, new_tag, start, limit)
                assert got == want, (op, got, want)
            m.check()
            assert _expand(m) == ref

    @given(_runmap_ops(), st.integers(min_value=0, max_value=85))
    @settings(max_examples=150, deadline=None)
    def test_queries_match_reference(self, ops, probe):
        m = RunMap()
        ref = {}
        for op in ops:
            if op[0] == "map":
                m.map_range(op[1], op[2], op[3])
                _ref_map_range(ref, op[1], op[2], op[3])
            elif op[0] == "set":
                for seq in range(op[1], op[2]):
                    if op[3] is None:
                        ref.pop(seq, None)
                    else:
                        ref[seq] = op[3]
                m.set_range(op[1], op[2], op[3])
            elif op[0] == "clear":
                m.clear_below(op[1])
                for seq in [s for s in ref if s < op[1]]:
                    del ref[seq]
            else:
                m.claim_first(op[1], op[2], op[3], op[4])
                _ref_claim_first(ref, op[1], op[2], op[3], op[4])
        # Point query
        assert m.get(probe) == ref.get(probe)
        # first_tag per tag
        for tag in (1, 2, 3, 4):
            want = min(
                (s for s, t in ref.items() if t == tag and s >= probe),
                default=None,
            )
            got = m.first_tag(tag, probe)
            if want is not None:
                assert got == want
            else:
                assert got is None
            assert m.count(tag) == sum(1 for t in ref.values() if t == tag)
        # first gap
        gap = probe
        while gap in ref:
            gap += 1
        assert m.first_gap_at_or_after(probe) == gap
        # covered_in + segments tile the probe window exactly
        assert m.covered_in(probe, probe + 10) == sum(
            1 for s in ref if probe <= s < probe + 10
        )
        cursor = probe
        for s, e, t in m.segments(probe, probe + 10):
            assert s == cursor and e > s
            for seq in range(s, e):
                assert ref.get(seq) == t
            cursor = e
        assert cursor == probe + 10
        # run_at agrees with the expansion
        run = m.run_at(probe)
        if probe in ref:
            assert run is not None and run[0] <= probe < run[1]
            assert run[2] == ref[probe]
        else:
            assert run is None
