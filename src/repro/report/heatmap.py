"""ASCII heatmaps for the contention grid (``repro grid``).

Same spirit as the ``repro trace --plot`` waveform view: a terminal
rendering that makes the shape of the data visible without leaving the
shell.  One panel per (trace, start pattern); rows are algorithm mixes,
columns the flow-count ladder, each cell the metric's value plus a
shade glyph so gradients read at a glance.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "render_grid_heatmap",
    "render_grid_heatmaps",
    "render_fluid_towers",
]

#: Shade ramp, light to dark.  Index by the normalized cell value.
_SHADES = " ░▒▓█"

#: Metric key → (title, how to normalize a value into [0, 1]).
_METRICS = {
    "jain": "Jain's fairness index (1 = fair, 1/n = one flow wins)",
    "tbuff_inflation": (
        "t_buff inflation vs single-flow baseline (1 = no added queue)"
    ),
}


def _shade(value: Optional[float], lo: float, hi: float) -> str:
    if value is None:
        return " "
    if hi <= lo:
        return _SHADES[-1]
    frac = (value - lo) / (hi - lo)
    frac = min(1.0, max(0.0, frac))
    return _SHADES[round(frac * (len(_SHADES) - 1))]


def _fmt(value: Optional[float]) -> str:
    return "   --" if value is None else f"{value:5.2f}"


def _panels(
    cells: Sequence[Dict[str, Any]],
) -> List[Tuple[Tuple[str, str], List[Dict[str, Any]]]]:
    """Cells grouped by (trace, pattern), in first-seen order."""
    order: List[Tuple[str, str]] = []
    grouped: Dict[Tuple[str, str], List[Dict[str, Any]]] = {}
    for cell in cells:
        key = (cell["trace"], cell["pattern"])
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(cell)
    return [(key, grouped[key]) for key in order]


def render_grid_heatmap(report: Any, metric: str = "jain") -> str:
    """Render one metric of a grid report as ASCII heatmap panels.

    ``report`` is a :class:`~repro.experiments.contention_grid.
    GridReport` or its :meth:`to_dict` rendering.  ``metric`` is a
    :class:`CellResult` field name; ``"jain"`` and
    ``"tbuff_inflation"`` get descriptive legends, anything else is
    rendered raw.
    """
    if hasattr(report, "to_dict"):
        report = report.to_dict()
    cells = report["cells"]
    if not cells:
        return "(empty grid)"
    lines: List[str] = []
    legend = _METRICS.get(metric, metric)
    values = [c.get(metric) for c in cells if c.get(metric) is not None]
    # Jain's index lives on [0, 1]; other metrics scale to their range.
    lo, hi = (0.0, 1.0) if metric == "jain" else (
        (min(values), max(values)) if values else (0.0, 1.0)
    )
    lines.append(f"{legend}")
    for (trace, pattern), panel in _panels(cells):
        flow_counts = sorted({c["flows"] for c in panel})
        mixes: List[str] = []
        for c in panel:
            if c["mix"] not in mixes:
                mixes.append(c["mix"])
        by_key = {(c["mix"], c["flows"]): c for c in panel}
        label_w = max(len("mix \\ flows"), max(len(m) for m in mixes))
        lines.append("")
        lines.append(f"-- trace {trace} · {pattern} starts --")
        header = "mix \\ flows".ljust(label_w)
        for n in flow_counts:
            header += f" {n:>5d} "
        lines.append(header)
        for mix in mixes:
            row = mix.ljust(label_w)
            for n in flow_counts:
                cell = by_key.get((mix, n))
                value = cell.get(metric) if cell is not None else None
                row += f" {_fmt(value)}{_shade(value, lo, hi)}"
            lines.append(row.rstrip())
    return "\n".join(lines)


def render_grid_heatmaps(report: Any) -> str:
    """Both standard panels — fairness and t_buff inflation."""
    if hasattr(report, "to_dict"):
        report = report.to_dict()
    return (
        render_grid_heatmap(report, "jain")
        + "\n\n"
        + render_grid_heatmap(report, "tbuff_inflation")
    )


def render_fluid_towers(report: Any) -> str:
    """Per-tower panel for a fluid run (``repro fluid``).

    One row per tower: attached flows, mean capacity, utilization and
    peak buffer delay (shaded so the loaded towers stand out), drops
    and loss epochs.  ``report`` is a
    :class:`~repro.fluid.engine.FluidReport` or its ``to_dict``
    rendering.
    """
    if hasattr(report, "to_dict"):
        report = report.to_dict()
    towers = report["towers"]
    if not towers:
        return "(no towers)"
    peaks = [t["peak_tbuff"] for t in towers
             if t.get("peak_tbuff") is not None]
    peak_hi = max(peaks) if peaks else 1.0
    label_w = max(len("tower"), max(len(t["name"]) for t in towers))
    lines = [
        f"{'tower'.ljust(label_w)} {'flows':>5s} {'cap KB/s':>9s} "
        f"{'util':>5s}  {'peak ms':>8s}  {'drop KB':>8s} {'loss':>4s}"
    ]
    for t in towers:
        cap = t.get("mean_capacity")
        util = t.get("utilization")
        peak = t.get("peak_tbuff")
        drops = t.get("dropped_bytes")
        lines.append(
            f"{t['name'].ljust(label_w)} {t['flows']:5d} "
            f"{'--' if cap is None else format(cap / 1000, '9.1f')} "
            f"{_fmt(util)}{_shade(util, 0.0, 1.0)} "
            f"{'--' if peak is None else format(peak * 1000, '8.1f')}"
            f"{_shade(peak, 0.0, peak_hi)} "
            f"{'--' if drops is None else format(drops / 1000, '8.1f')} "
            f"{t['loss_epochs']:4d}"
        )
    jfi = report.get("jfi")
    lines.append("")
    lines.append(
        f"flows: {report['config']['n_flows']}  "
        f"jfi: {'--' if jfi is None else format(jfi, '.3f')}  "
        f"handovers: {report['handovers_applied']}"
    )
    return "\n".join(lines)
