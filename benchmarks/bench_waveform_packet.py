"""Packet-level sawtooth: Figures 1-2 from the *full* simulator.

The fluid-model bench validates Eqs. 1-8 in the idealised system; this
one closes the remaining gap by extracting the buffer-delay waveform
from a real packet-level run (TCP stack, timestamps, pacing ticks, ACK
path) on a constant-rate bottleneck and comparing its geometry to the
model's predictions.  Quantisation, estimator lag and the NFL make the
packet-level waveform rougher — the assertions use correspondingly wider
bands than the fluid test's few-percent ones.
"""

import pytest

from repro.core.model import derive_parameters
from repro.core.proprate import PropRate
from repro.experiments.runner import cellular_path_config
from repro.metrics.telemetry import QueueSampler, sawtooth_summary
from repro.sim.engine import Simulator
from repro.sim.network import DuplexPath
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender
from repro.traces.generator import constant_rate_trace

from _report import emit

RATE = 1.5e6
RTT = 0.040
DURATION = 30.0


def _run(target, enable_feedback):
    sim = Simulator()
    trace = constant_rate_trace(RATE, DURATION + 1.0)
    path = DuplexPath(sim, cellular_path_config(trace))
    recv = TcpReceiver(sim, 0, send_ack=path.send_reverse)
    cc = PropRate(target, enable_feedback=enable_feedback)
    sender = TcpSender(sim, 0, cc, send_packet=path.send_forward)
    path.attach_flow(0, recv.receive, sender.on_ack_packet)
    sampler = QueueSampler(sim, path.forward_link.queue, interval=0.005)
    sender.start()
    sim.run(until=DURATION)
    times, _ = sampler.as_arrays()
    delays = sampler.buffer_delays(service_rate=RATE)
    return sawtooth_summary(times, delays, discard=0.4)


def _rows(label, summary, params):
    return (
        f"{label:22s} Dmax={summary.dmax * 1000:6.1f} "
        f"(model {params.predicted_dmax * 1000:5.1f}) "
        f"Dmin={summary.dmin * 1000:6.1f} "
        f"(model {params.predicted_dmin * 1000:5.1f}) "
        f"avg={summary.average * 1000:6.1f} "
        f"(target {params.target_tbuff * 1000:5.1f}) "
        f"empty={summary.empty_fraction:5.2f} cycles={summary.n_cycles}"
    )


def test_packet_level_waveforms(benchmark):
    def _both():
        return {
            # The NFL is disabled so the raw regulation loop is measured
            # against the open-loop model (the NFL deliberately moves T
            # away from the derivation to cancel measurement bias).
            "buffer-full t=80ms": (_run(0.080, False), derive_parameters(0.080, RTT)),
            "buffer-emptied t=20ms": (_run(0.020, False), derive_parameters(0.020, RTT)),
        }

    results = benchmark.pedantic(_both, rounds=1, iterations=1)
    lines = [_rows(k, s, p) for k, (s, p) in results.items()]
    emit("waveform_packet", lines)

    full, full_params = results["buffer-full t=80ms"]
    emptied, emptied_params = results["buffer-emptied t=20ms"]

    # Buffer-full regime: the packet-level waveform lands within ~20%
    # of the closed-form geometry (measured ~7% in practice) and the
    # buffer essentially never empties.
    assert full.n_cycles >= 5
    assert full.empty_fraction < 0.10
    assert full.dmax == pytest.approx(full_params.predicted_dmax, rel=0.25)
    assert full.dmin == pytest.approx(full_params.predicted_dmin, rel=0.35)
    assert full.average == pytest.approx(full_params.target_tbuff, rel=0.25)
    assert full.dmax > full.dmin

    # Buffer-emptied regime: the buffer genuinely empties periodically
    # and the average sits near the (small) target.
    assert emptied.empty_fraction > 0.05
    assert emptied.average < 2.5 * emptied_params.target_tbuff
    assert emptied.n_cycles >= 5
