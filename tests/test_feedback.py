"""Tests for the negative-feedback loop (§3.2, Figure 4)."""

import pytest

from repro.core.feedback import ThresholdFeedbackLoop


class TestTActualTracking:
    def test_eq9_first_sample(self):
        loop = ThresholdFeedbackLoop(target=0.040)
        loop.on_window_sample(0.050)
        assert loop.t_actual == pytest.approx(0.050)

    def test_eq9_ewma_gains(self):
        loop = ThresholdFeedbackLoop(target=0.040)
        loop.on_window_sample(0.000)
        loop.on_window_sample(0.080)
        # 7/8 * 0 + 1/8 * 0.08
        assert loop.t_actual == pytest.approx(0.010)

    def test_negative_samples_clamped(self):
        loop = ThresholdFeedbackLoop(target=0.040)
        loop.on_window_sample(-0.010)
        assert loop.t_actual == 0.0


class TestThresholdAdjustment:
    def test_initial_threshold_is_target(self):
        loop = ThresholdFeedbackLoop(target=0.040)
        assert loop.threshold == 0.040

    def test_overshoot_lowers_threshold(self):
        loop = ThresholdFeedbackLoop(target=0.040)
        t0 = loop.threshold
        loop.on_window_sample(0.100, now=0.0)
        assert loop.threshold < t0

    def test_undershoot_raises_threshold(self):
        loop = ThresholdFeedbackLoop(target=0.040)
        t0 = loop.threshold
        loop.on_window_sample(0.005, now=0.0)
        assert loop.threshold > t0

    def test_log_scaling_bounds_large_errors(self):
        """A 10x error must not move T violently (log compression)."""
        loop = ThresholdFeedbackLoop(target=0.040)
        loop.on_window_sample(0.400, now=0.0)
        assert loop.threshold > 0.040 - 0.010

    def test_clamped_to_band(self):
        loop = ThresholdFeedbackLoop(
            target=0.040, min_threshold=0.030, max_threshold=0.050
        )
        for i in range(100):
            loop.on_window_sample(1.0, now=float(i))
        assert loop.threshold == 0.030
        for i in range(100, 300):
            loop.on_window_sample(0.0, now=float(i))
        assert loop.threshold == 0.050

    def test_disabled_loop_never_moves(self):
        loop = ThresholdFeedbackLoop(target=0.040, enabled=False)
        for i in range(50):
            loop.on_window_sample(0.200, now=float(i))
        assert loop.threshold == 0.040
        assert loop.t_actual is not None  # still tracked for reporting

    def test_update_rate_limited(self):
        loop = ThresholdFeedbackLoop(target=0.040, min_update_interval=1.0)
        loop.on_window_sample(0.100, now=0.0)
        t1 = loop.threshold
        loop.on_window_sample(0.100, now=0.5)  # too soon
        assert loop.threshold == t1
        loop.on_window_sample(0.100, now=1.5)
        assert loop.threshold < t1

    def test_on_target_sample_does_not_consume_budget(self):
        loop = ThresholdFeedbackLoop(target=0.040, min_update_interval=1.0)
        # A perfectly on-target sample is a no-op...
        loop.on_window_sample(0.040, now=0.0)
        assert loop.threshold == 0.040
        assert loop.updates == 0
        # ...so the very next off-target sample may move T immediately
        # rather than being rate-limited against a move that never
        # happened.
        loop.on_window_sample(0.100, now=0.5)
        assert loop.threshold < 0.040
        assert loop.updates == 1

    def test_clockless_sample_never_moves_threshold(self):
        loop = ThresholdFeedbackLoop(target=0.040)
        for _ in range(50):
            loop.on_window_sample(0.200)  # no `now`: gate can't run
        assert loop.t_actual is not None  # still tracked for reporting
        assert loop.threshold == 0.040
        assert loop.updates == 0

    def test_updates_counter(self):
        loop = ThresholdFeedbackLoop(target=0.040, min_update_interval=0.0)
        loop.on_window_sample(0.100, now=0.0)
        loop.on_window_sample(0.100, now=1.0)
        assert loop.updates == 2

    def test_converges_toward_equilibrium(self):
        """Simulated plant: achieved delay proportional to T.  The loop
        must steer T until achieved ~= target."""
        loop = ThresholdFeedbackLoop(
            target=0.040, min_update_interval=0.0, min_threshold=0.001
        )
        gain = 1.8  # plant: t_actual = 1.8 T (overshooting system)
        for i in range(4000):
            loop.on_window_sample(gain * loop.threshold, now=float(i))
        assert loop.t_actual == pytest.approx(0.040, rel=0.10)

    def test_reset_clears_t_actual(self):
        loop = ThresholdFeedbackLoop(target=0.040)
        loop.on_window_sample(0.100)
        loop.reset()
        assert loop.t_actual is None

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            ThresholdFeedbackLoop(target=0.0)
