"""Integration tests for the paper's multi-flow scenarios.

These use short constant-rate links to keep runtimes low; the full
trace-driven versions live in benchmarks/.
"""

import pytest

import repro.experiments.scenarios as scenarios
from repro.core.proprate import PropRate
from repro.experiments.scenarios import (
    contention_vs_cubic,
    self_contention,
    shallow_buffer,
    throughput_share,
    uplink_congestion,
    wired_path,
)
from repro.tcp.congestion import Bbr, Cubic
from repro.traces.generator import constant_rate_trace


@pytest.fixture(autouse=True)
def _short_contention(monkeypatch):
    """Shrink the Figure-12 timing so tests stay fast."""
    monkeypatch.setattr(scenarios, "CONTENTION_SECOND_START", 5.0)
    monkeypatch.setattr(scenarios, "CONTENTION_OVERLAP", 10.0)


def _trace(rate=1.5e6, duration=20.0):
    return constant_rate_trace(rate, duration)


class TestSelfContention:
    def test_proprate_shares_with_itself(self):
        first, second = self_contention(
            lambda: PropRate(0.080), _trace(), name="pr"
        )
        shares = throughput_share([first, second])
        # Figure 12(a): PropRate self-contention is near-fair.
        assert 0.25 <= shares[1] <= 0.75

    def test_measurement_window_is_overlap(self):
        first, second = self_contention(Cubic, _trace())
        assert first.measure_start == 5.0
        assert first.measure_end == 15.0


class TestContentionVsCubic:
    def test_returns_both_flows(self):
        results = contention_vs_cubic(
            lambda: PropRate(0.080), _trace(), name="pr-h"
        )
        assert set(results) == {"cubic", "pr-h"}

    def test_pr_h_not_starved_by_cubic(self):
        results = contention_vs_cubic(
            lambda: PropRate(0.080), _trace(), cubic_first=True, name="pr-h"
        )
        share = results["pr-h"].throughput / (
            results["pr-h"].throughput + results["cubic"].throughput
        )
        assert share > 0.05

    def test_start_order_flag(self):
        late_algo = contention_vs_cubic(
            Bbr, _trace(), cubic_first=True, name="bbr"
        )
        early_algo = contention_vs_cubic(
            Bbr, _trace(), cubic_first=False, name="bbr"
        )
        assert set(late_algo) == set(early_algo) == {"cubic", "bbr"}

    def test_tie_start_order_is_deterministic(self, monkeypatch):
        # Regression: with simultaneous starts the flow order (and so
        # flow-id assignment and event tie-breaks) used to fall back to
        # dict-insertion order instead of the documented (start, name)
        # key.  A CUBIC-vs-CUBIC pair makes the accident visible — with
        # identical algorithms launched together, which flow gets id 0
        # decides who wins the early synchronized losses — and "aaa"
        # sorts before "cubic", so pre-fix this simulated a different
        # system than the explicit reference below.
        from repro.experiments.runner import (
            FlowSpec,
            cellular_path_config,
            run_experiment,
        )

        monkeypatch.setattr(scenarios, "CONTENTION_SECOND_START", 0.0)
        results = contention_vs_cubic(Cubic, _trace(), name="aaa")
        end = scenarios.CONTENTION_OVERLAP
        flows = [
            FlowSpec(cc_factory=Cubic, name="aaa", start=0.0,
                     measure_start=0.0, measure_end=end),
            FlowSpec(cc_factory=Cubic, name="cubic", start=0.0,
                     measure_start=0.0, measure_end=end),
        ]
        ref = {
            r.name: r
            for r in run_experiment(
                cellular_path_config(_trace()), flows, duration=end
            )
        }
        for name in ("aaa", "cubic"):
            assert results[name].summary() == ref[name].summary()


class TestUplinkCongestion:
    def test_download_and_upload_both_measured(self):
        results = uplink_congestion(
            lambda: PropRate(0.040),
            downlink_trace=_trace(rate=2.0e6),
            uplink_trace=_trace(rate=0.4e6),
            duration=12.0,
            measure_start=3.0,
        )
        assert "down" in results and "cubic-upload" in results
        assert results["cubic-upload"].throughput > 0.1e6

    def test_rate_based_download_survives_congested_uplink(self):
        """Figure 14's point: one-way-delay-driven pacing keeps the
        downlink busy even when the ACK path is saturated."""
        results = uplink_congestion(
            lambda: PropRate(0.080),
            downlink_trace=_trace(rate=2.0e6),
            uplink_trace=_trace(rate=0.4e6),
            duration=12.0,
            measure_start=3.0,
        )
        from repro.tcp.congestion import Cubic as _Cubic

        cwnd_results = uplink_congestion(
            _Cubic,
            downlink_trace=_trace(rate=2.0e6),
            uplink_trace=_trace(rate=0.4e6),
            duration=12.0,
            measure_start=3.0,
        )
        # The control information arrives seconds late, so absolute
        # throughput degrades — but unlike an ACK-clocked sender, the
        # rate-based flow stays far from stalled (Figure 14's point).
        assert results["down"].throughput > 0.35e6
        assert results["down"].throughput > 20 * cwnd_results["down"].throughput


class TestWiredPath:
    def test_known_region_runs(self):
        result = wired_path(Cubic, region="SG", duration=8.0, measure_start=2.0)
        assert result.throughput > 1.0e6

    def test_unknown_region_rejected(self):
        with pytest.raises(ValueError):
            wired_path(Cubic, region="MARS")


class TestShallowBuffer:
    def test_cubic_loses_packets_in_shallow_buffer(self):
        result = shallow_buffer(
            Cubic, _trace(), buffer_packets=40, duration=10.0
        )
        assert result.bottleneck_drops > 0

    def test_codel_bounds_delay(self):
        droptail = shallow_buffer(
            Cubic, _trace(), buffer_packets=2000, aqm="droptail", duration=10.0
        )
        codel = shallow_buffer(
            Cubic, _trace(), buffer_packets=2000, aqm="codel", duration=10.0
        )
        assert codel.delay.mean < droptail.delay.mean


class TestThroughputShare:
    def test_shares_sum_to_one(self):
        first, second = self_contention(Cubic, _trace())
        shares = throughput_share([first, second])
        assert sum(shares) == pytest.approx(1.0)

    def test_zero_total_handled(self):
        class Dummy:
            throughput = 0.0

        assert throughput_share([Dummy(), Dummy()]) == [0.0, 0.0]


class TestBaselineShiftScenario:
    def test_positive_shift_survivable(self):
        from repro.experiments.scenarios import baseline_shift
        from repro.core.proprate import PropRate

        result = baseline_shift(
            lambda: PropRate(0.040, rdmin_window=8.0),
            _trace(duration=26.0),
            shift_delta=+0.030,
            shift_at=6.0,
            duration=25.0,
            measure_start=18.0,  # after the stale baseline aged out
        )
        assert result.utilization is not None
        assert result.utilization > 0.7

    def test_scenario_reports_capacity(self):
        from repro.experiments.scenarios import baseline_shift
        from repro.tcp.congestion import NewReno

        result = baseline_shift(
            NewReno, _trace(duration=16.0), shift_delta=-0.005,
            duration=15.0, measure_start=5.0,
        )
        assert result.capacity == pytest.approx(1.5e6, rel=0.02)
