"""Sprout (Winstein et al., NSDI 2013): stochastic forecast control.

Sprout models the cellular link's packet deliveries as a doubly
stochastic process and sends only as many packets as the *5th-percentile*
forecast says can drain within its 100 ms delay target.  The paper uses
Sprout as the flagship forecast-based baseline: very low delay, with a
substantial throughput penalty on volatile links because the
conservative percentile forecasts under-commit.

This implementation keeps Sprout's control structure while simplifying
the inference: delivery counts are binned into 20 ms ticks (Sprout's
tick), a Brownian-motion-with-drift model tracks the delivery rate's
mean and variance, and the window is the conservative (mean − z·σ)
cumulative forecast over the 100 ms horizon.  The full Sprout inference
(a discretised Bayesian filter over rates) refines the same two moments;
the percentile-forecast behaviour — the part that determines the
throughput/delay trade-off — is preserved.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.tcp.congestion.base import AckSample, WindowCongestionControl
from repro.util.windows import Ewma

TICK = 0.020          # Sprout's tick length (seconds)
HORIZON = 0.100       # delay target: five ticks of lookahead
Z_CONSERVATIVE = 1.65  # one-sided 5th percentile
PROBE_PACKETS = 8.0    # headroom so a self-limited flow can rediscover
                       # capacity (the forecast only sees what it sends)
RATE_ALPHA = 0.20     # EWMA gain for the delivery-rate mean
VAR_ALPHA = 0.20      # EWMA gain for the rate variance


class Sprout(WindowCongestionControl):
    """Conservative stochastic-forecast window control."""

    name = "Sprout"
    sending_regulation = "Window-based"
    congestion_trigger = "Rate Forecast"

    MIN_CWND = 2.0

    def __init__(self) -> None:
        super().__init__()
        self._tick_start: Optional[float] = None
        self._tick_delivered = 0
        self._last_delivered = 0
        self._rate = Ewma(RATE_ALPHA)      # packets per second
        self._var = Ewma(VAR_ALPHA)        # (packets/second)^2

    def on_ack(self, sample: AckSample) -> None:
        delta = max(0, sample.delivered_total - self._last_delivered)
        self._last_delivered = sample.delivered_total

        if self._tick_start is None:
            self._tick_start = sample.now
        # Close elapsed ticks before attributing this ACK's segments:
        # packets arriving now belong to the tick containing `now`.
        while sample.now - self._tick_start >= TICK:
            self._close_tick()
            self._tick_start += TICK
        self._tick_delivered += delta
        self._update_window()

    def _close_tick(self) -> None:
        rate_sample = self._tick_delivered / TICK
        self._tick_delivered = 0
        mean = self._rate.value
        if mean is not None:
            deviation = rate_sample - mean
            self._var.update(deviation * deviation)
        self._rate.update(rate_sample)

    def _update_window(self) -> None:
        mean = self._rate.value
        if mean is None:
            return
        sigma = math.sqrt(self._var.value) if self._var.value else 0.0
        conservative = max(0.0, mean - Z_CONSERVATIVE * sigma)
        # Packets deliverable within the 100 ms target at the 5th pct,
        # plus a small probe allowance: when the flow itself is the
        # limiter, measured deliveries equal the window, so without
        # headroom the forecast would ratchet downward monotonically.
        self.cwnd = max(self.MIN_CWND, conservative * HORIZON + PROBE_PACKETS)

    def on_congestion(self, sample: AckSample) -> None:
        # Sprout reacts to losses only through the forecast; keep a mild
        # multiplicative response so buffer-overflow regimes back off.
        self.ssthresh = max(self.MIN_CWND, self.cwnd * 0.5)
        self.cwnd = self.ssthresh

    def on_rto(self) -> None:
        self.cwnd = self.MIN_CWND
        self.ssthresh = max(self.MIN_CWND, self.cwnd)
