"""Pluggable trace sinks: JSONL files (with rotation), bounded rings,
and push streams.

Every sink speaks the same two-method protocol the tracer and the batch
merge layer use: ``write(record)`` for dict records and ``write_line``
for already-encoded JSON lines (the hot path — ``QueueSampler`` and the
part-file merge both pre-encode).

* :class:`JsonlSink` — append-only file writer.  When the live file
  exceeds ``rotate_bytes`` it is renamed to ``<path>.1``, ``<path>.2``,
  ... (ascending = chronological) and a fresh file is opened at the
  original path, so a bounded tail is always at the expected location
  while nothing is lost.  ``iter_trace_files`` returns the rotated
  series in write order for readers, and ``repro watch`` follows the
  live file across rotations by inode.
* :class:`RingSink` — bounded in-memory ring of decoded records; keeps
  the newest ``max_records`` and counts what it evicted.  For embedding
  telemetry in tests and long-lived processes without filesystem churn.
* :class:`StreamSink` — pushes encoded lines to a callback or file-like
  object as they happen (a socket, ``sys.stdout``, a queue ``put``).
"""

from __future__ import annotations

import json
import os
from collections import deque
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Union

from repro.obs.events import FORMAT, META

#: Default rotation threshold; generous for simulation traces (a 40 s
#: single-flow run emits a few MB at the default sampling interval).
ROTATE_BYTES = 64 * 1024 * 1024


def encode(record: Dict[str, Any]) -> str:
    """One-line compact JSON; non-JSON values degrade to ``repr``."""
    return json.dumps(record, separators=(",", ":"), default=repr)


class Sink:
    """Base class for trace sinks.

    Subclasses implement ``write_line`` (one encoded JSON line, no
    trailing newline) and may override ``write`` when they can use the
    decoded record directly.  ``close`` is idempotent and a no-op by
    default.
    """

    def write(self, record: Dict[str, Any]) -> None:
        self.write_line(encode(record))

    def write_line(self, line: str) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass


class JsonlSink(Sink):
    """Append-only JSONL writer with rotation."""

    def __init__(self, path: Union[str, Path], rotate_bytes: int = ROTATE_BYTES,
                 header: bool = True) -> None:
        self.path = str(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self.rotate_bytes = rotate_bytes
        self.rotations = 0
        self._written = 0
        self._closed = False
        self._header = header
        # Opening "w" truncates only the live file; rotated segments
        # from an earlier run at the same path would otherwise survive
        # and pollute readers with mixed-run records.
        for stale in iter_trace_files(self.path):
            if stale != self.path:
                try:
                    os.remove(stale)
                except OSError:
                    pass
        self._fh = open(self.path, "w", encoding="utf-8")
        if header:
            self.write({"t": 0.0, "kind": META, "format": FORMAT,
                        "pid": os.getpid()})

    def write_line(self, line: str) -> None:
        """Append one already-encoded JSON line (the batch-merge path)."""
        self._fh.write(line)
        self._fh.write("\n")
        self._written += len(line) + 1
        if self.rotate_bytes and self._written >= self.rotate_bytes:
            self._rotate()

    def _rotate(self) -> None:
        self._fh.close()
        self.rotations += 1
        os.replace(self.path, f"{self.path}.{self.rotations}")
        self._fh = open(self.path, "w", encoding="utf-8")
        self._written = 0
        if self._header:
            # Keep every file of the series self-describing; readers
            # that care can tell a continuation from a fresh trace by
            # the rotation field.
            self.write({"t": 0.0, "kind": META, "format": FORMAT,
                        "pid": os.getpid(), "rotation": self.rotations})

    def flush(self) -> None:
        """Push buffered lines to the OS (for live followers)."""
        if not self._closed:
            self._fh.flush()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._fh.close()


class RingSink(Sink):
    """Bounded in-memory sink keeping the newest ``max_records`` records.

    Records are stored decoded; ``records()`` returns them in arrival
    order.  ``dropped_oldest`` counts evictions so truncation is never
    silent, matching the sampling layer's contract.
    """

    def __init__(self, max_records: int = 100_000, header: bool = True) -> None:
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.max_records = max_records
        self.dropped_oldest = 0
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=max_records)
        if header:
            self.write({"t": 0.0, "kind": META, "format": FORMAT,
                        "pid": os.getpid()})

    def write(self, record: Dict[str, Any]) -> None:
        if len(self._ring) == self.max_records:
            self.dropped_oldest += 1
        self._ring.append(record)

    def write_line(self, line: str) -> None:
        self.write(json.loads(line))

    def records(self) -> List[Dict[str, Any]]:
        return list(self._ring)


class StreamSink(Sink):
    """Push each encoded line to a callback or writable file object.

    ``target`` is either a callable invoked with the line (no trailing
    newline) or a file-like object whose ``write`` receives the line
    plus ``\\n`` (and is flushed per line, so a tail sees events live).
    """

    def __init__(self, target: Union[Callable[[str], Any], Any],
                 header: bool = True) -> None:
        if callable(target):
            self._call = target
            self._fh = None
        else:
            self._call = None
            self._fh = target
        self.lines = 0
        if header:
            self.write({"t": 0.0, "kind": META, "format": FORMAT,
                        "pid": os.getpid()})

    def write_line(self, line: str) -> None:
        if self._call is not None:
            self._call(line)
        else:
            self._fh.write(line + "\n")
            flush = getattr(self._fh, "flush", None)
            if flush is not None:
                flush()
        self.lines += 1


def iter_trace_files(path: Union[str, Path]) -> List[str]:
    """All files of a possibly-rotated trace, oldest first.

    Only pure-numeric suffixes count as rotations (``x.jsonl.1``);
    worker part files (``x.jsonl.part0003.jsonl``) are unrelated.
    """
    path = str(path)
    rotated = []
    parent = os.path.dirname(path) or "."
    base = os.path.basename(path)
    if os.path.isdir(parent):
        for name in os.listdir(parent):
            if name.startswith(base + "."):
                suffix = name[len(base) + 1:]
                if suffix.isdigit():
                    rotated.append((int(suffix), os.path.join(parent, name)))
    files = [p for _, p in sorted(rotated)]
    if os.path.exists(path):
        files.append(path)
    return files
