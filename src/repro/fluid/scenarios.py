"""Scenario builders for the fluid tier.

:func:`tower_for_label` materializes the grid's shared trace-label
vocabulary (``wired:<N>mbps`` / ``cellular:<ISP>-<mode>``) into a
:class:`~repro.fluid.engine.TowerSpec`, so fluid scenarios and packet
scenarios name links the same way.  :func:`fan_in_scenario` builds the
deterministic thousand-flow cell-tower fan-in used by the CLI and the
scaling benchmark: flows hash round-robin onto towers, controllers
alternate by mix, start times stagger, and a fixed-stride handover
plan migrates a slice of flows between towers mid-run.  Nothing here
consults a clock or a global RNG — the same arguments always produce
the same scenario, which the determinism tests rely on.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.fluid.engine import FluidFlowSpec, HandoverSpec, TowerSpec

__all__ = ["tower_for_label", "fan_in_scenario", "FAN_IN_MIXES"]

#: Controller rotations by mix name (the grid's MIXES vocabulary where
#: both sides exist in fluid form).
FAN_IN_MIXES = {
    "pr-self": ("proprate",),
    "cubic-self": ("cubic",),
    "pr-vs-cubic": ("proprate", "cubic"),
    "pr-heavy": ("proprate", "proprate", "proprate", "cubic"),
    "pr-adaptive": ("adaptive-proprate", "cubic"),
}

#: Target buffer delays cycled across PropRate flows (PR(L)/PR(M)/PR(H)
#: regimes from Table 3).
PR_TARGET_CYCLE = (0.040, 0.080, 0.150)


def tower_for_label(label: str, duration: float,
                    buffer_packets: Optional[int] = None) -> TowerSpec:
    """A tower from a grid trace label.

    ``wired:<N>mbps`` becomes a constant-rate tower; ``cellular:
    <ISP>-<mode>`` samples the preset trace (looped over ``duration``
    exactly as the packet links loop it).
    """
    kind, _, arg = label.partition(":")
    extra = {} if buffer_packets is None else {
        "buffer_packets": buffer_packets
    }
    if kind == "wired" and arg.endswith("mbps"):
        rate = float(arg[: -len("mbps")]) * 1e6 / 8.0
        return TowerSpec(name=label, rate=rate, **extra)
    if kind == "cellular":
        from repro.traces.presets import isp_trace

        isp, _, mode = arg.partition("-")
        return TowerSpec(
            name=label, trace=isp_trace(isp, mode, duration=duration),
            **extra,
        )
    raise ValueError(
        f"unknown trace label {label!r}; expected 'wired:<N>mbps' or "
        "'cellular:<ISP>-<mode>'"
    )


def fan_in_scenario(
    n_flows: int,
    n_towers: int,
    duration: float,
    mix: str = "pr-vs-cubic",
    handover_count: int = 0,
    tower_labels: Sequence[str] = (),
    tower_rate: float = 12.5e6,
    stagger: float = 0.010,
    seed: int = 0,
) -> Tuple[List[FluidFlowSpec], List[TowerSpec], List[HandoverSpec]]:
    """Deterministic cell-tower fan-in scenario.

    ``tower_labels`` (grid vocabulary) overrides the default constant
    ``tower_rate`` towers, cycling when shorter than ``n_towers``.
    ``handover_count`` handovers are spread evenly over the middle 80%
    of the run, each moving a stride-selected flow to the next tower.
    ``seed`` rotates the deterministic flow→tower and handover strides
    so distinct seeds give distinct (but reproducible) scenarios.
    """
    if n_flows < 1 or n_towers < 1:
        raise ValueError("need at least one flow and one tower")
    rotation = FAN_IN_MIXES.get(mix)
    if rotation is None:
        raise ValueError(
            f"unknown mix {mix!r}; have {sorted(FAN_IN_MIXES)}"
        )

    towers: List[TowerSpec] = []
    for j in range(n_towers):
        if tower_labels:
            label = tower_labels[j % len(tower_labels)]
            towers.append(tower_for_label(label, duration))
        else:
            towers.append(
                TowerSpec(name=f"tower{j}", rate=tower_rate)
            )

    flows: List[FluidFlowSpec] = []
    for i in range(n_flows):
        controller = rotation[i % len(rotation)]
        target = PR_TARGET_CYCLE[(i + seed) % len(PR_TARGET_CYCLE)]
        flows.append(
            FluidFlowSpec(
                name=f"{controller}-{i:04d}",
                controller=controller,
                target_tbuff=target,
                tower=(i + seed) % n_towers,
                start=(i % 64) * stagger,
            )
        )

    handovers: List[HandoverSpec] = []
    if handover_count > 0:
        span = 0.8 * duration
        t0 = 0.1 * duration
        # A stride coprime-ish with n_flows walks the flow list without
        # clustering; +1 keeps it nonzero for tiny flow counts.
        stride = (n_flows // max(handover_count, 1)) * 7 + 1
        for h in range(handover_count):
            flow = (seed + h * stride) % n_flows
            dst = (flows[flow].tower + 1 + (h % max(n_towers - 1, 1))) \
                % n_towers
            handovers.append(
                HandoverSpec(
                    time=t0 + span * (h + 1) / (handover_count + 1),
                    flow=flow,
                    to_tower=dst,
                )
            )
    return flows, towers, handovers
