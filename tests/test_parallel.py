"""The process-pool execution layer and the trace cache.

The layer's contract has three legs:

* determinism — a batch returns bit-identical ``FlowResult`` numbers at
  every job count, because workers run the same ``execute()`` code
  against traces materialized by the same content-keyed cache;
* ordering — outcomes come back in submission order regardless of how
  the pool scheduled the chunks;
* containment — one spec raising (or a worker dying) fails that spec's
  outcome, not the batch.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

import numpy as np
import pytest

from repro.experiments.algorithms import run_shootout
from repro.experiments.frontier import sweep_frontier
from repro.experiments.parallel import (
    CcSpec,
    RunSpec,
    collect,
    detach_results,
    proprate_spec,
    resolve_n_jobs,
    run_batch,
)
from repro.experiments.runner import FlowResult, run_single_flow
from repro.traces import cache as trace_cache
from repro.traces.cache import DataTraceRef, SpecTraceRef, as_ref
from repro.traces.generator import TraceSpec, generate_cellular_trace
from repro.traces.presets import isp_trace
from repro.traces.trace import Trace

DURATION = 6.0
WARMUP = 1.0


@pytest.fixture(autouse=True)
def _fresh_cache():
    trace_cache.clear_cache()
    yield
    trace_cache.clear_cache()


def _down():
    return isp_trace("A", "stationary", duration=20.0)


def _up():
    return isp_trace("A", "stationary", duration=20.0, direction="uplink")


def _flow_key(result: FlowResult):
    return (
        result.throughput,
        result.delay.mean,
        result.delay.p95,
        result.delivered_bytes,
        result.bottleneck_drops,
        result.retransmissions,
        result.rto_count,
    )


# ----------------------------------------------------------------------
# Trace references and the per-process cache
# ----------------------------------------------------------------------
class TestTraceCache:
    def test_generated_trace_becomes_spec_ref(self):
        trace = _down()
        ref = as_ref(trace)
        assert isinstance(ref, SpecTraceRef)
        # The compact form ships the generator spec, not the samples.
        assert len(pickle.dumps(ref)) < 1000

    def test_spec_ref_regenerates_identical_trace(self):
        spec = TraceSpec(
            name="t", mean_throughput=800e3, std_throughput=300e3,
            duration=10.0, seed=7,
        )
        ref = as_ref(spec)
        original = generate_cellular_trace(spec)
        rebuilt = trace_cache.get(ref)
        np.testing.assert_array_equal(
            rebuilt.opportunity_times, original.opportunity_times
        )

    def test_raw_trace_becomes_data_ref(self):
        times = np.sort(np.random.default_rng(3).uniform(0.0, 5.0, 200))
        trace = Trace(times, duration=5.0, name="raw")
        ref = as_ref(trace)
        assert isinstance(ref, DataTraceRef)
        rebuilt = trace_cache.get(ref)
        np.testing.assert_array_equal(rebuilt.opportunity_times, times)

    def test_cache_materializes_each_key_once(self):
        ref = as_ref(_down())
        first = trace_cache.get(ref)
        second = trace_cache.get(ref)
        assert first is second
        assert trace_cache.cache_len() == 1

    def test_equal_content_same_key(self):
        assert as_ref(_down()).key == as_ref(_down()).key
        assert as_ref(_down()).key != as_ref(_up()).key


# ----------------------------------------------------------------------
# Serial/parallel equivalence
# ----------------------------------------------------------------------
class TestEquivalence:
    def test_frontier_identical_across_job_counts(self):
        down, up = _down(), _up()
        kwargs = dict(
            targets=[0.020, 0.040, 0.080],
            duration=DURATION,
            measure_start=WARMUP,
        )
        serial = sweep_frontier(down, up, n_jobs=1, **kwargs)
        parallel = sweep_frontier(down, up, n_jobs=2, **kwargs)
        assert [
            (p.target_tbuff, p.throughput_kbps, p.mean_delay_ms, p.p95_delay_ms)
            for p in serial
        ] == [
            (p.target_tbuff, p.throughput_kbps, p.mean_delay_ms, p.p95_delay_ms)
            for p in parallel
        ]

    def test_shootout_identical_across_job_counts(self):
        down = _down()
        names = ["PR(M)", "CUBIC", "BBR"]
        kwargs = dict(names=names, duration=DURATION, measure_start=WARMUP)
        serial = run_shootout(down, n_jobs=1, **kwargs)
        parallel = run_shootout(down, n_jobs=2, **kwargs)
        assert list(serial) == names == list(parallel)
        for name in names:
            assert _flow_key(serial[name]) == _flow_key(parallel[name]), name

    def test_batch_matches_direct_run_single_flow(self):
        down = _down()
        spec = RunSpec(
            cc=proprate_spec(0.040),
            downlink=down,
            duration=DURATION,
            measure_start=WARMUP,
        )
        (batched,) = collect(run_batch([spec], n_jobs=1))
        direct = run_single_flow(
            spec.cc.build, down,
            duration=DURATION, measure_start=WARMUP, name="PropRate",
        )
        assert _flow_key(batched) == _flow_key(direct)


# ----------------------------------------------------------------------
# Ordering, failure containment, detachment
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _BoomSpec:
    """A spec that always fails inside the worker."""

    message: str = "kaboom"

    def execute(self):
        raise ValueError(self.message)


class TestRunBatch:
    def _specs(self, n=5):
        down = _down()
        return [
            RunSpec(
                cc=proprate_spec(0.020 + 0.010 * i),
                downlink=down,
                duration=3.0,
                measure_start=1.0,
                name=f"run-{i}",
            )
            for i in range(n)
        ]

    def test_outcomes_in_submission_order(self):
        outcomes = run_batch(self._specs(), n_jobs=2, chunksize=1)
        assert [o.index for o in outcomes] == [0, 1, 2, 3, 4]
        assert [o.result.name for o in outcomes] == [f"run-{i}" for i in range(5)]

    def test_spec_failure_does_not_lose_the_batch(self):
        specs = self._specs(3)
        specs.insert(1, _BoomSpec())
        outcomes = run_batch(specs, n_jobs=2, chunksize=1)
        assert [o.ok for o in outcomes] == [True, False, True, True]
        assert "kaboom" in outcomes[1].error
        assert outcomes[1].result is None
        assert all(o.result is not None for o in outcomes if o.ok)

    def test_collect_raises_listing_failures(self):
        outcomes = run_batch([_BoomSpec(), _BoomSpec("pow")], n_jobs=1)
        with pytest.raises(RuntimeError, match=r"2/2 runs failed"):
            collect(outcomes)

    def test_results_cross_the_boundary_detached(self):
        outcomes = run_batch(self._specs(2), n_jobs=2, chunksize=1)
        for outcome in outcomes:
            assert outcome.result.collector is None
            assert outcome.result.sender is None

    def test_serial_results_also_detached(self):
        (outcome,) = run_batch(self._specs(1), n_jobs=1)
        assert outcome.result.collector is None
        assert outcome.result.sender is None

    def test_empty_batch(self):
        assert run_batch([], n_jobs=4) == []

    def test_detach_results_recurses(self):
        down = _down()
        result = run_single_flow(
            proprate_spec(0.040).build, down, duration=3.0, measure_start=1.0
        )
        assert result.sender is not None
        nested = {"a": (result, [result]), "b": 3}
        detached = detach_results(nested)
        assert detached["a"][0].sender is None
        assert detached["a"][1][0].collector is None
        assert detached["b"] == 3
        # The original is untouched; detaching is copy-on-write.
        assert result.sender is not None

    def test_resolve_n_jobs(self, monkeypatch):
        monkeypatch.setattr("repro.experiments.parallel.os.cpu_count", lambda: 8)
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(3) == 3
        assert resolve_n_jobs(None) == 8
        assert resolve_n_jobs(0) == 8
        assert resolve_n_jobs(-1) == 8
        assert resolve_n_jobs(-2) == 7

    def test_cc_spec_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown congestion control"):
            CcSpec("NotAnAlgorithm").build()

    def test_traces_deduplicated_into_table(self):
        # Five specs sharing one downlink trace must cache one entry.
        run_batch(self._specs(5), n_jobs=1)
        assert trace_cache.cache_len() == 1
