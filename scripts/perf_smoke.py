#!/usr/bin/env python
"""CI perf-smoke gate: the Table-4 workload's simulation speed.

Runs ``benchmarks/bench_table4_cpu.py``'s workload in reduced mode
(``REPRO_BENCH_REDUCED=1``) and compares the simulated-seconds-per-
wall-second rate against the checked-in baseline, failing on a >30%
regression.  (Earlier revisions gated events/sec; the delivery fast
path legitimately collapses many small events into batched ones, so
the gate now uses a metric invariant to event granularity.)  The
baseline is deliberately taken on a slow reference host so that noisy
CI runners fail only on real regressions in the simulation hot path.

Any failing gate also writes a cProfile dump of the gated workload
next to the repo root (``perf_profile.pstats`` plus a human-readable
``perf_profile.txt``) so CI can upload it as an artifact.

The ``--telemetry-overhead`` mode gates the :mod:`repro.obs` telemetry
spine instead: it times the same workload with tracing off and on and
fails if the enabled-tracer CPU time exceeds the off run by more than
``TELEMETRY_TOLERANCE`` (the "bounded cost when on" half of the
observer-only contract; "zero cost when off" is covered by ``--check``
running without a tracer).

The ``--loss-check`` mode gates the heavy-loss recovery path instead:
``benchmarks/bench_sack_scoreboard.py``'s bursty-outage workload is the
worst case for sender ACK processing (every ACK walks the loss
scoreboard), and its ACKs-per-CPU-second against the checked-in
baseline catches regressions in the interval-run scoreboard that the
(mostly loss-free) Table-4 workload cannot see.

Usage::

The ``--delivery-check`` mode gates the delivery fast path instead:
``benchmarks/bench_delivery_fastpath.py`` measures the SoA batched
pipeline against the scalar reference on the bursty app-limited
workload where batching engages, and the gate holds both the fast/
scalar CPU ratio (host independent, tight floor) and the absolute
packets-per-CPU-second (baseline with the usual noisy-runner
tolerance).

Usage::

    PYTHONPATH=src python scripts/perf_smoke.py --check     # CI gate
    PYTHONPATH=src python scripts/perf_smoke.py --update    # re-baseline
    PYTHONPATH=src python scripts/perf_smoke.py --telemetry-overhead
    PYTHONPATH=src python scripts/perf_smoke.py --telemetry-overhead --sampled
    PYTHONPATH=src python scripts/perf_smoke.py --loss-check
    PYTHONPATH=src python scripts/perf_smoke.py --loss-update
    PYTHONPATH=src python scripts/perf_smoke.py --delivery-check
    PYTHONPATH=src python scripts/perf_smoke.py --delivery-update
    PYTHONPATH=src python scripts/perf_smoke.py --env-overhead
    PYTHONPATH=src python scripts/perf_smoke.py --env-update

The ``--env-overhead`` mode gates the :mod:`repro.env` control-plane
wrapper: ``benchmarks/bench_env_overhead.py``'s workload runs the
Table-4 single-flow line-up natively and as a ``CcEnv`` rollout
replaying the same algorithms, and the gate fails if the env arm costs
more than ``env_overhead_tolerance`` (default 10%) extra CPU.  Like
the telemetry gate it compares interleaved paired process-time ratios,
so the figure is host independent; the baseline entry in
``perf_smoke.json`` records the reference ratio for drift tracking.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "benchmarks" / "baselines" / "perf_smoke.json"
LOSS_BASELINE = REPO / "benchmarks" / "baselines" / "sack_scoreboard.json"
DELIVERY_BASELINE = REPO / "benchmarks" / "baselines" / "delivery_fastpath.json"
PROFILE_OUT = REPO / "perf_profile"

#: Allowed slowdown relative to baseline before the gate fails.
TOLERANCE = 0.30

#: Floor on the fast/scalar CPU ratio of the delivery microbench.  The
#: measured speedup is ~1.9x; the floor leaves headroom for runner
#: noise while still catching a fast path that has stopped batching.
DELIVERY_SPEEDUP_FLOOR = 1.30

#: Allowed telemetry-on wall-time overhead vs telemetry-off.
TELEMETRY_TOLERANCE = 0.10

#: Allowed CcEnv-wrapper CPU overhead vs the native sender loop
#: (``--env-overhead``); recorded in the baseline as
#: ``env_overhead_tolerance`` alongside the reference ratio.
ENV_TOLERANCE = 0.10

#: Allowed overhead with per-kind sampling budgets active
#: (``--telemetry-overhead --sampled``): decimating the hot event
#: kinds must bring the tracer close to free, so the gate is tighter
#: than the full-firehose one.
SAMPLED_TOLERANCE = 0.05

#: Budget spec for the sampled gate: decimate the hot kinds, cap the
#: rest.  Protected kinds (meta/run/metrics records) always pass.
SAMPLED_SPEC = ("queue.sample:every=64;cc.loss-runs:every=16;"
                "cc.estimator:every=8;*:max=100000")


def _bench_module():
    # Reduced mode must be set before the bench module is imported —
    # it freezes its configuration at import time.
    os.environ.setdefault("REPRO_BENCH_REDUCED", "1")
    sys.path.insert(0, str(REPO / "benchmarks"))
    import bench_table4_cpu

    return bench_table4_cpu


def measure() -> float:
    bench_table4_cpu = _bench_module()
    # One throwaway pass warms the trace cache and JIT-ish caches
    # (interned bytecode, numpy buffers), then the measured pass.
    bench_table4_cpu.sim_seconds_per_second()
    return bench_table4_cpu.sim_seconds_per_second()


def _delivery_bench_module():
    os.environ.setdefault("REPRO_BENCH_REDUCED", "1")
    sys.path.insert(0, str(REPO / "benchmarks"))
    import bench_delivery_fastpath

    return bench_delivery_fastpath


def dump_profile(workload, label: str) -> None:
    """Write a cProfile of ``workload`` for the failing gate.

    CI uploads ``perf_profile.pstats`` (for ``pstats``/snakeviz) and
    ``perf_profile.txt`` (human-readable top functions) as artifacts so
    a regression can be diagnosed without reproducing the runner.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    workload()
    profiler.disable()
    profiler.dump_stats(str(PROFILE_OUT) + ".pstats")
    with open(str(PROFILE_OUT) + ".txt", "w") as fh:
        fh.write(f"gate: {label}\n")
        stats = pstats.Stats(profiler, stream=fh)
        stats.sort_stats("cumulative").print_stats(40)
        stats.sort_stats("tottime").print_stats(40)
    print(f"profile written to {PROFILE_OUT}.pstats / .txt")


def measure_delivery() -> dict:
    """Delivery fast-path microbench stats (see the bench docstring)."""
    bench = _delivery_bench_module()
    return bench.measure(rounds=3)


def _loss_bench_module():
    os.environ.setdefault("REPRO_BENCH_REDUCED", "1")
    sys.path.insert(0, str(REPO / "benchmarks"))
    import bench_sack_scoreboard

    return bench_sack_scoreboard


def measure_loss() -> float:
    """Heavy-loss ACK throughput: ACKs processed per ACK-path CPU second
    on the bursty-outage scoreboard workload (min-of-N rounds)."""
    bench = _loss_bench_module()
    bench.run_workload()  # warm-up pass
    stats = bench.measure(rounds=3)
    return stats["acks"] / stats["ack_cpu_s"]


def _env_bench_module():
    sys.path.insert(0, str(REPO / "benchmarks"))
    import bench_env_overhead

    return bench_env_overhead


def measure_env_overhead():
    """Interleaved native-vs-CcEnv repeats of the env overhead bench.

    Returns ``(overhead, native_times, env_times)`` where ``overhead``
    is the best paired per-round ratio minus one (same noise-damping
    rationale as the telemetry gate).  Aborts if the replayed results
    are not bit-identical to the native ones — in that case the CPU
    comparison is meaningless and ``check_determinism.py --env`` is the
    gate that should be failing.
    """
    bench = _env_bench_module()
    native, env, native_sums, env_sums = bench._measure()
    if native_sums != env_sums:
        raise SystemExit(
            "env replay diverged from the native run; see "
            "scripts/check_determinism.py --env")
    overhead = min(e / n - 1.0 for n, e in zip(native, env))
    return overhead, native, env


def measure_telemetry_overhead(sampled: bool = False) -> int:
    """Gate: the Table-4 workload with a live tracer stays within
    ``TELEMETRY_TOLERANCE`` of the tracer-off cost.

    CPU (process) time is compared rather than wall clock, and off/on
    runs are interleaved with the minimum taken per arm: both choices
    damp co-tenant noise and frequency drift on shared CI runners,
    which otherwise dwarf a ~5% effect on a sub-second workload.

    ``sampled`` runs the tracer arm under :data:`SAMPLED_SPEC` budgets
    and gates at the tighter :data:`SAMPLED_TOLERANCE`, printing the
    per-kind drop counts so the thinning is never silent.
    """
    import repro.obs as obs

    spec = SAMPLED_SPEC if sampled else None
    tolerance = SAMPLED_TOLERANCE if sampled else TELEMETRY_TOLERANCE
    label = "sampled telemetry" if sampled else "telemetry"
    dropped: dict = {}

    bench = _bench_module()
    bench.run_workload()  # warm-up: trace cache, imports, allocator
    scratch = tempfile.mkdtemp(prefix="repro-obs-")

    def timed(telemetry: bool, n: int) -> float:
        start = time.process_time()
        if telemetry:
            with obs.tracing(os.path.join(scratch, f"smoke{n}.jsonl"),
                             sampling=spec) as tracer:
                bench.run_workload()
                elapsed = time.process_time() - start
                # The runner drains the policy into run.telemetry.*
                # counters per run (reset-on-read), so read the drop
                # totals from the metrics registry, not the policy.
                marker = "telemetry.dropped."
                for key, value in tracer.metrics.snapshot().items():
                    pos = key.find(marker)
                    if pos >= 0 and not key.endswith("dropped_events"):
                        kind = key[pos + len(marker):]
                        dropped[kind] = max(dropped.get(kind, 0), value)
                return elapsed
        else:
            bench.run_workload()
        return time.process_time() - start

    rounds = 6 if sampled else 4  # tighter gate, more noise damping
    offs, ons = [], []
    for n in range(rounds):  # interleaved min-of-N absorbs the noise
        offs.append(timed(False, n))
        ons.append(timed(True, n))
    off, on = min(offs), min(ons)
    # Gate on the best *paired* ratio: adjacent off/on runs see the
    # same co-tenant load, so per-round ratios are immune to the slow
    # frequency drift that can inflate min(on)/min(off) on shared
    # runners; one clean round is enough to measure the true overhead.
    overhead = min(o / f - 1.0 for f, o in zip(offs, ons))
    verdict = "OK" if overhead <= tolerance else "FAILED"
    print(
        f"{label} overhead {verdict}: off {off:.2f}s, on {on:.2f}s "
        f"({overhead:+.1%}, tolerance {tolerance:.0%})"
    )
    if sampled:
        drops = ", ".join(f"{kind}={count}"
                          for kind, count in sorted(dropped.items()))
        print(f"  budgets {SAMPLED_SPEC!r} dropped: {drops or 'nothing'}")
    return 0 if overhead <= tolerance else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--check", action="store_true",
                       help="fail if events/sec regressed >30%% vs baseline")
    group.add_argument("--update", action="store_true",
                       help="rewrite the baseline from this host")
    group.add_argument(
        "--telemetry-overhead", action="store_true",
        help="fail if running with a live repro.obs tracer costs more "
        "than 10%% CPU time over the tracer-off run",
    )
    group.add_argument("--loss-check", action="store_true",
                       help="fail if heavy-loss ACK throughput regressed "
                       ">30%% vs baseline")
    group.add_argument("--loss-update", action="store_true",
                       help="rewrite the heavy-loss baseline from this host")
    group.add_argument("--delivery-check", action="store_true",
                       help="fail if the delivery fast path lost its "
                       "speedup over the scalar path or regressed vs "
                       "baseline")
    group.add_argument("--delivery-update", action="store_true",
                       help="rewrite the delivery fast-path baseline from "
                       "this host")
    group.add_argument(
        "--env-overhead", action="store_true",
        help="fail if driving the Table-4 line-up through the CcEnv "
        "step/observe/act wrapper costs more than 10%% CPU over the "
        "native sender loop",
    )
    group.add_argument(
        "--env-update", action="store_true",
        help="re-measure and record the env-overhead reference ratio "
        "in the perf_smoke baseline",
    )
    parser.add_argument(
        "--sampled", action="store_true",
        help="with --telemetry-overhead: run the tracer arm under "
        "per-kind sampling budgets and gate at the tighter 5%% "
        "tolerance, reporting per-kind drop counts",
    )
    args = parser.parse_args()
    if args.sampled and not args.telemetry_overhead:
        parser.error("--sampled only composes with --telemetry-overhead")

    if args.delivery_check or args.delivery_update:
        stats = measure_delivery()
        line = (
            f"{stats['speedup']:.2f}x vs scalar, "
            f"{stats['packets_per_cpu_sec']:,.0f} packets/cpu-sec"
        )
        if args.delivery_update:
            DELIVERY_BASELINE.parent.mkdir(parents=True, exist_ok=True)
            DELIVERY_BASELINE.write_text(json.dumps({
                "packets_per_cpu_sec": round(stats["packets_per_cpu_sec"]),
                "speedup": round(stats["speedup"], 2),
                "speedup_floor": DELIVERY_SPEEDUP_FLOOR,
                "workload": "bench_delivery_fastpath reduced "
                            "(REPRO_BENCH_REDUCED=1)",
                "tolerance": TOLERANCE,
                "host": platform.platform(),
                "cpu_count": os.cpu_count(),
            }, indent=2) + "\n")
            print(f"delivery baseline updated: {line} -> {DELIVERY_BASELINE}")
            return 0
        baseline = json.loads(DELIVERY_BASELINE.read_text())
        floor = baseline["packets_per_cpu_sec"] * (1.0 - TOLERANCE)
        ok = (stats["speedup"] >= DELIVERY_SPEEDUP_FLOOR
              and stats["packets_per_cpu_sec"] >= floor)
        verdict = "OK" if ok else "FAILED"
        print(
            f"delivery smoke {verdict}: {line} "
            f"(speedup floor {DELIVERY_SPEEDUP_FLOOR}, "
            f"throughput floor {floor:,.0f})"
        )
        if not ok:
            bench = _delivery_bench_module()
            dump_profile(bench.run_workload, "delivery-fastpath")
            return 1
        return 0

    if args.env_overhead or args.env_update:
        overhead, native, env = measure_env_overhead()
        baseline = json.loads(BASELINE.read_text()) if BASELINE.exists() \
            else {}
        if args.env_update:
            baseline["env_overhead_ratio"] = round(1.0 + overhead, 3)
            baseline["env_overhead_tolerance"] = ENV_TOLERANCE
            BASELINE.write_text(json.dumps(baseline, indent=2) + "\n")
            print(f"env overhead baseline updated: {overhead:+.1%} "
                  f"-> {BASELINE}")
            return 0
        tolerance = baseline.get("env_overhead_tolerance", ENV_TOLERANCE)
        verdict = "OK" if overhead <= tolerance else "FAILED"
        print(
            f"env overhead {verdict}: native {min(native):.2f}s, "
            f"env {min(env):.2f}s ({overhead:+.1%}, "
            f"tolerance {tolerance:.0%}, baseline ratio "
            f"{baseline.get('env_overhead_ratio', 'unset')})"
        )
        return 0 if overhead <= tolerance else 1

    if args.telemetry_overhead:
        return measure_telemetry_overhead(sampled=args.sampled)

    if args.loss_check or args.loss_update:
        rate = measure_loss()
        if args.loss_update:
            LOSS_BASELINE.parent.mkdir(parents=True, exist_ok=True)
            LOSS_BASELINE.write_text(json.dumps({
                "acks_per_cpu_sec": round(rate),
                "workload": "bench_sack_scoreboard reduced "
                            "(REPRO_BENCH_REDUCED=1)",
                "tolerance": TOLERANCE,
                "host": platform.platform(),
                "cpu_count": os.cpu_count(),
            }, indent=2) + "\n")
            print(f"loss baseline updated: {rate:,.0f} acks/cpu-sec "
                  f"-> {LOSS_BASELINE}")
            return 0
        baseline = json.loads(LOSS_BASELINE.read_text())
        floor = baseline["acks_per_cpu_sec"] * (1.0 - TOLERANCE)
        verdict = "OK" if rate >= floor else "FAILED"
        print(
            f"loss-recovery smoke {verdict}: {rate:,.0f} acks/cpu-sec "
            f"(baseline {baseline['acks_per_cpu_sec']:,}, floor {floor:,.0f})"
        )
        if rate < floor:
            dump_profile(_loss_bench_module().run_workload, "loss-recovery")
            return 1
        return 0

    rate = measure()
    if args.update:
        BASELINE.parent.mkdir(parents=True, exist_ok=True)
        BASELINE.write_text(json.dumps({
            "sim_seconds_per_sec": round(rate, 2),
            "workload": "bench_table4_cpu reduced (REPRO_BENCH_REDUCED=1)",
            "tolerance": TOLERANCE,
            "host": platform.platform(),
            "cpu_count": os.cpu_count(),
        }, indent=2) + "\n")
        print(f"baseline updated: {rate:,.2f} sim-sec/sec -> {BASELINE}")
        return 0

    baseline = json.loads(BASELINE.read_text())
    floor = baseline["sim_seconds_per_sec"] * (1.0 - TOLERANCE)
    verdict = "OK" if rate >= floor else "FAILED"
    print(
        f"perf smoke {verdict}: {rate:,.2f} sim-sec/sec "
        f"(baseline {baseline['sim_seconds_per_sec']:,}, floor {floor:,.2f})"
    )
    if rate < floor:
        dump_profile(_bench_module().run_workload, "table4-sim-rate")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
