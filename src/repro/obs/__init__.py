"""Unified telemetry spine: structured events, metrics, JSONL export.

See ``docs/observability.md`` for the event schema and workflows.
``repro.obs.analyze`` (the ``repro trace`` backend) is intentionally
not imported here — it depends on :mod:`repro.metrics.telemetry` and
is loaded lazily by the CLI.
"""

from repro.obs.events import (
    ALL_KINDS,
    AUDIT_DUMP,
    AUDIT_VIOLATION,
    CC_EPOCH,
    CC_ESTIMATOR,
    CC_LOSS,
    CC_LOSS_RUNS,
    CC_NFL,
    CC_RECOVERY,
    CC_RTO,
    CC_STATE,
    ENV_EPISODE,
    ENV_STEP,
    FLUID_END,
    FLUID_HANDOVER,
    FLUID_LOSS,
    FLUID_RUN,
    FLUID_TOWER,
    FORMAT,
    GRID_CELL,
    LINK_BATCH,
    LINK_HANDOVER,
    LINK_OUTAGE,
    LINK_RECOVER,
    META,
    METRICS,
    QUEUE_SAMPLE,
    RUN_END,
    RUN_START,
    SCHED_DISPATCH,
    SCHED_OUTCOME,
    SCHED_RETRY,
    SCHED_TIMEOUT,
    SCHED_WORKER_DEATH,
)
from repro.obs.prof import (
    PROFILE_ENV,
    PhaseProfiler,
    activate_profiler,
    current_profiler,
    deactivate_profiler,
    env_profile,
    resolve_profiler,
)
from repro.obs.registry import (
    MetricsRegistry,
    canonical_metrics,
    flow_metrics_view,
    merge_snapshots,
    merge_value,
)
from repro.obs.sampling import (
    PROTECTED_KINDS,
    KindBudget,
    SamplingPolicy,
    resolve_sampling,
    sampling_spec,
)
from repro.obs.net import (
    SocketStreamSink,
    TcpLineServer,
    parse_tcp_target,
)
from repro.obs.sink import (
    JsonlSink,
    RingSink,
    Sink,
    StreamSink,
    encode,
    iter_trace_files,
)
from repro.obs.tracer import (
    QUEUE_SAMPLE_INTERVAL,
    SAMPLE_ENV,
    TELEMETRY_ENV,
    Tracer,
    activate,
    current_tracer,
    deactivate,
    env_trace_path,
    resolve_tracer,
    tracing,
)

__all__ = [
    "ALL_KINDS", "AUDIT_DUMP", "AUDIT_VIOLATION", "CC_EPOCH",
    "CC_ESTIMATOR", "CC_LOSS", "CC_LOSS_RUNS", "CC_NFL", "CC_RECOVERY",
    "CC_RTO",
    "CC_STATE", "ENV_EPISODE", "ENV_STEP",
    "FLUID_END", "FLUID_HANDOVER", "FLUID_LOSS", "FLUID_RUN",
    "FLUID_TOWER", "FORMAT", "GRID_CELL", "LINK_BATCH", "LINK_HANDOVER", "LINK_OUTAGE",
    "LINK_RECOVER",
    "META", "METRICS", "QUEUE_SAMPLE", "RUN_END", "RUN_START",
    "SCHED_DISPATCH", "SCHED_OUTCOME", "SCHED_RETRY", "SCHED_TIMEOUT",
    "SCHED_WORKER_DEATH", "MetricsRegistry", "canonical_metrics",
    "flow_metrics_view", "merge_snapshots", "merge_value",
    "JsonlSink", "RingSink", "Sink", "SocketStreamSink", "StreamSink",
    "TcpLineServer", "parse_tcp_target",
    "encode", "iter_trace_files", "QUEUE_SAMPLE_INTERVAL",
    "SAMPLE_ENV", "TELEMETRY_ENV", "Tracer", "activate", "current_tracer",
    "deactivate", "env_trace_path", "resolve_tracer", "tracing",
    "PROTECTED_KINDS", "KindBudget", "SamplingPolicy",
    "resolve_sampling", "sampling_spec",
    "PROFILE_ENV", "PhaseProfiler", "activate_profiler",
    "current_profiler", "deactivate_profiler", "env_profile",
    "resolve_profiler",
]
