"""PCC Allegro (Dong et al., NSDI 2015): utility-driven rate control.

PCC treats the network as a black box: it sends at a rate for a monitor
interval (MI), observes the resulting throughput, loss and RTT
behaviour, computes a utility, and performs online gradient-style rate
moves toward higher utility.  The paper evaluates PCC's *default
delay-sensitive utility* (its throughput-mode was "too aggressive in
practice and caused buffer overflow almost all the time", §5), and finds
it achieves low delay at a significant throughput penalty with high CPU
cost — both consequences of the per-MI black-box probing reproduced
here.

Utility per MI (the delay-sensitive form):

    u = T · S_loss(L) · S_rtt(dRTT/dt) − T · L

where ``T`` is achieved throughput, ``L`` the loss rate, and the two
sigmoids sharply penalise loss above 5 % and any positive RTT gradient.

Control phases follow the published design: *starting* (double the rate
every MI while utility grows), then repeated *decision* pairs (probe
r(1±ε) in consecutive MIs) and *rate adjusting* moves.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.tcp.congestion.base import AckSample, RateCongestionControl

EPSILON = 0.05           # probe amplitude
MIN_RATE = 8 * 1500.0    # bytes/s floor
MI_MIN = 0.050           # seconds
MI_RTT_MULTIPLIER = 1.0  # MI duration = max(MI_MIN, multiplier * srtt)
STEP_GAIN = 1.0          # rate-adjust step, multiples of epsilon*rate


def _sigmoid(x: float) -> float:
    if x > 50:
        return 1.0
    if x < -50:
        return 0.0
    return 1.0 / (1.0 + math.exp(-x))


def delay_sensitive_utility(
    throughput: float,
    loss_rate: float,
    rtt_gradient: float,
    rtt_inflation: float = 0.0,
) -> float:
    """PCC's delay-sensitive utility for one monitor interval.

    ``rtt_inflation`` is (RTT − RTT_min)/RTT_min: a standing queue is
    penalised even when the within-MI gradient is flat, which is what
    keeps the delay-sensitive mode from camping on a full buffer.
    """
    loss_penalty = 1.0 - _sigmoid(100.0 * (loss_rate - 0.05))
    gradient_penalty = 1.0 - _sigmoid(20.0 * rtt_gradient)
    queue_penalty = 1.0 - _sigmoid(8.0 * (rtt_inflation - 0.5))
    return (
        throughput * loss_penalty * gradient_penalty * queue_penalty
        - throughput * loss_rate
    )


class _MonitorInterval:
    """Accumulates observations for one MI.

    Deliveries observed on the wire lag the sends that caused them by one
    RTT, so the measurement window is the send window shifted by the RTT
    at MI start (``lag``).  Without the shift, an up-probe's deliveries
    land in the following (down-probe) MI and the gradient sign flips —
    the control loop then walks its rate steadily toward zero.
    """

    def __init__(
        self, start: float, rate: float, duration: float, lag: float
    ):
        self.start = start
        self.rate = rate
        self.send_end = start + duration
        self.lag = lag
        self.delivered_start: Optional[int] = None
        self.lost_start: Optional[int] = None
        self.meas_start_time: Optional[float] = None
        self.rtt_first: Optional[float] = None
        self.rtt_last: Optional[float] = None

    @property
    def measure_start(self) -> float:
        return self.start + self.lag

    @property
    def measure_end(self) -> float:
        return self.send_end + self.lag

    def begin_measurement(self, now: float, delivered: int, lost: int) -> None:
        self.delivered_start = delivered
        self.lost_start = lost
        self.meas_start_time = now

    def observe_rtt(self, rtt: float) -> None:
        if self.rtt_first is None:
            self.rtt_first = rtt
        self.rtt_last = rtt

    def utility(
        self,
        now: float,
        delivered: int,
        lost: int,
        packet_bytes: int,
        min_rtt: float = float("inf"),
    ) -> float:
        if self.delivered_start is None or self.lost_start is None:
            return 0.0
        span = max(1e-3, now - (self.meas_start_time or self.start))
        got = max(0, delivered - self.delivered_start)
        dropped = max(0, lost - self.lost_start)
        throughput = got * packet_bytes / span
        total = got + dropped
        loss_rate = dropped / total if total else 0.0
        if self.rtt_first is not None and self.rtt_last is not None and span > 0:
            gradient = (self.rtt_last - self.rtt_first) / span
        else:
            gradient = 0.0
        inflation = 0.0
        if self.rtt_last is not None and min_rtt not in (0.0, float("inf")):
            inflation = max(0.0, (self.rtt_last - min_rtt) / min_rtt)
        return delay_sensitive_utility(throughput, loss_rate, gradient, inflation)


class Pcc(RateCongestionControl):
    """PCC Allegro with the delay-sensitive utility."""

    name = "PCC"
    sending_regulation = "Rate-based"
    congestion_trigger = "Utility Function"

    def __init__(self) -> None:
        super().__init__()
        self.phase = "starting"
        self._mi: Optional[_MonitorInterval] = None
        self._mi_deadline = 0.0
        self._last_utility: Optional[float] = None
        self._base_rate = MIN_RATE * 4
        self._decision_trials: list = []  # [(direction, utility), ...]
        self._trial_direction = 1
        self._delivered = 0
        self._lost = 0
        self._last_now = 0.0

    def on_connection_start(self) -> None:
        self.pacing_rate = self._base_rate
        self.round_mode = "up"

    # ------------------------------------------------------------------
    def _mi_duration(self) -> float:
        host = self.host
        srtt = host.srtt if host and host.srtt else 0.1
        return max(MI_MIN, MI_RTT_MULTIPLIER * srtt)

    def _rtt_lag(self) -> float:
        host = self.host
        return host.srtt if host and host.srtt else 0.05

    def _start_mi(self, now: float, rate: float) -> None:
        self.pacing_rate = max(MIN_RATE, rate)
        self._mi = _MonitorInterval(
            now, self.pacing_rate, self._mi_duration(), self._rtt_lag()
        )

    def on_ack(self, sample: AckSample) -> None:
        self._delivered = sample.delivered_total
        self._lost = sample.lost_total
        self._last_now = sample.now
        if self._mi is None:
            self._start_mi(sample.now, self._base_rate)
            return
        if sample.rtt is not None:
            self._mi.observe_rtt(sample.rtt)

    def on_tick(self, now: float) -> None:
        if self._mi is None:
            self._start_mi(now, self._base_rate)
            return
        if self._mi.delivered_start is None:
            if now >= self._mi.measure_start:
                self._mi.begin_measurement(now, self._delivered, self._lost)
            return
        if now < self._mi.measure_end:
            return
        host = self.host
        assert host is not None
        utility = self._mi.utility(
            now, self._delivered, self._lost, host.packet_bytes, host.min_rtt
        )
        rate = self._mi.rate
        inflation = 0.0
        if self._mi.rtt_last is not None and host.min_rtt not in (0.0, float("inf")):
            inflation = max(0.0, (self._mi.rtt_last - host.min_rtt) / host.min_rtt)
        if self.phase == "starting" and inflation > 0.5:
            # The queue is building: capacity was passed during doubling.
            self.phase = "decision"
            self._decision_trials = []
            self._trial_direction = 1
            self._last_utility = None
            self._base_rate = max(MIN_RATE, rate / 2.0)
            self._start_mi(now, self._base_rate * (1 + EPSILON))
            return
        if self.phase != "starting" and (utility < 0.0 or inflation > 0.5):
            # Emergency brake: a negative utility means heavy loss or a
            # standing queue; epsilon-step gradient descent would take
            # many MIs (each a full inflated RTT) to escape.
            self._base_rate = max(MIN_RATE, self._base_rate * 0.7)
            self.phase = "decision"
            self._decision_trials = []
            self._trial_direction = 1
            self._last_utility = None
            self._start_mi(now, self._base_rate * (1 + EPSILON))
            return
        if self.phase == "starting":
            self._starting_step(now, rate, utility)
        elif self.phase == "decision":
            self._decision_step(now, rate, utility)
        else:
            self._adjust_step(now, rate, utility)

    # ------------------------------------------------------------------
    def _starting_step(self, now: float, rate: float, utility: float) -> None:
        if self._last_utility is None or utility > self._last_utility:
            self._last_utility = utility
            self._start_mi(now, rate * 2.0)
        else:
            # Utility fell: back off to the previous rate and probe.
            self.phase = "decision"
            self._decision_trials = []
            self._trial_direction = 1
            self._last_utility = None
            self._start_mi(now, rate / 2.0 * (1 + EPSILON * self._trial_direction))
            self._base_rate = rate / 2.0

    def _decision_step(self, now: float, rate: float, utility: float) -> None:
        self._decision_trials.append((self._trial_direction, utility))
        if len(self._decision_trials) < 2:
            self._trial_direction = -1
            self._start_mi(now, self._base_rate * (1 + EPSILON * self._trial_direction))
            return
        up = next(u for d, u in self._decision_trials if d == 1)
        down = next(u for d, u in self._decision_trials if d == -1)
        self._decision_trials = []
        self._trial_direction = 1
        if up == down:
            # No gradient: stay and re-probe.
            self._start_mi(now, self._base_rate * (1 + EPSILON))
            return
        direction = 1 if up > down else -1
        self.phase = "adjust"
        self._adjust_direction = direction
        self._adjust_step_count = 1
        self._last_utility = max(up, down)
        new_rate = self._base_rate * (1 + STEP_GAIN * EPSILON * direction)
        self._base_rate = new_rate
        self._start_mi(now, new_rate)

    def _adjust_step(self, now: float, rate: float, utility: float) -> None:
        if self._last_utility is not None and utility > self._last_utility:
            self._last_utility = utility
            self._adjust_step_count += 1
            step = STEP_GAIN * EPSILON * self._adjust_direction * self._adjust_step_count
            new_rate = max(MIN_RATE, self._base_rate * (1 + step))
            self._base_rate = new_rate
            self._start_mi(now, new_rate)
        else:
            # Utility dropped: return to probing around the current rate.
            self.phase = "decision"
            self._last_utility = None
            self._trial_direction = 1
            self._start_mi(now, self._base_rate * (1 + EPSILON))

    def on_rto(self) -> None:
        self.phase = "starting"
        self._last_utility = None
        self._base_rate = max(MIN_RATE, self._base_rate / 4.0)
        self._mi = None
        self.pacing_rate = self._base_rate
