#!/usr/bin/env python3
"""Figure 14: downloading while a concurrent upload saturates the uplink.

Cellular uplinks are narrow; a single upload fills the device-side
buffer and delays every returning ACK by seconds.  An ACK-clocked
(cwnd-based) download starves because it may only send when ACKs
arrive; PropRate's timer-clocked pacing — driven by the receiver's
one-way timestamps, which do not traverse the congested uplink clock —
keeps the downlink busy.

Usage::

    python examples/uplink_congestion.py
"""

from repro.core.proprate import PropRate
from repro.experiments.scenarios import uplink_congestion
from repro.tcp.congestion import Bbr, Cubic, Rre
from repro.traces.presets import isp_trace

DURATION = 25.0
WARMUP = 4.0


def main() -> None:
    downlink = isp_trace("A", "stationary", duration=60.0)
    uplink = isp_trace("A", "stationary", duration=60.0, direction="uplink")
    print(
        f"Downlink {downlink.mean_throughput() / 1000:.0f} KB/s, uplink "
        f"{uplink.mean_throughput() / 1000:.0f} KB/s, with a CUBIC upload "
        "running throughout.\n"
    )

    print(f"{'Download CC':12s} {'Download':>12s} {'Down delay':>11s} "
          f"{'Upload got':>12s}")
    for name, factory in (
        ("PropRate(H)", lambda: PropRate(0.080)),
        ("RRE", Rre),
        ("CUBIC", Cubic),
        ("BBR", Bbr),
    ):
        flows = uplink_congestion(
            factory, downlink, uplink,
            duration=DURATION, measure_start=WARMUP, name="down",
        )
        down, upload = flows["down"], flows["cubic-upload"]
        print(
            f"{name:12s} {down.throughput_kbps:9.1f} KB/s "
            f"{down.delay.mean_ms:8.1f} ms {upload.throughput_kbps:9.1f} KB/s"
        )

    print(
        "\nThe rate-based senders (PropRate, RRE) sustain the download"
        "\nacross the saturated return path; the ACK-clocked ones collapse"
        "\nto a crawl — the paper's Figure 14 and §6 'Link Asymmetry'."
    )


if __name__ == "__main__":
    main()
