"""Tests for the adaptive-target extension (paper §6 future work)."""

import pytest

from repro.core.adaptive import (
    AdaptivePropRate,
    LOSS_EPISODES_TO_SHRINK,
    SHRINK_FACTOR,
)
from repro.core.proprate import PropRate
from repro.experiments.runner import FlowSpec, cellular_path_config, run_experiment
from repro.traces.generator import constant_rate_trace

from tests.helpers import AckFeeder, FakeHost


def _adaptive(target=0.080, **kwargs):
    cc = AdaptivePropRate(target_buffer_delay=target, **kwargs)
    feeder = AckFeeder(cc, FakeHost(srtt=0.05, min_rtt=0.04))
    feeder.run(30, dt=0.004)  # establish rate estimate / params
    return cc, feeder


class TestTargetShrinking:
    def test_single_loss_episode_does_not_shrink(self):
        cc, feeder = _adaptive()
        sample = feeder.ack(newly_lost=1)
        cc.on_congestion(sample)
        assert cc.target_buffer_delay == pytest.approx(0.080)

    def test_consecutive_episodes_shrink_target(self):
        cc, feeder = _adaptive()
        for _ in range(LOSS_EPISODES_TO_SHRINK):
            sample = feeder.ack(dt=0.1, newly_lost=1)
            cc.on_congestion(sample)
        assert cc.target_buffer_delay == pytest.approx(0.080 * SHRINK_FACTOR)
        assert cc.target_adjustments == 1

    def test_distant_episodes_do_not_accumulate(self):
        cc, feeder = _adaptive()
        sample = feeder.ack(newly_lost=1)
        cc.on_congestion(sample)
        feeder.run(100, dt=0.05)  # > EPISODE_MEMORY apart
        sample = feeder.ack(newly_lost=1)
        cc.on_congestion(sample)
        assert cc.target_buffer_delay == pytest.approx(0.080)

    def test_rto_shrinks_immediately(self):
        cc, feeder = _adaptive()
        cc.on_rto()
        assert cc.target_buffer_delay == pytest.approx(0.080 * SHRINK_FACTOR)

    def test_floor_respected(self):
        cc, feeder = _adaptive(min_target=0.020)
        for _ in range(50):
            cc.on_rto()
        assert cc.target_buffer_delay >= 0.020

    def test_feedback_loop_recentred(self):
        cc, feeder = _adaptive()
        cc.on_rto()
        assert cc.feedback.target == cc.target_buffer_delay
        assert cc.feedback.min_threshold <= cc.feedback.threshold <= cc.feedback.max_threshold


class TestTargetRecovery:
    def test_recovers_toward_configured_after_quiet_period(self):
        cc, feeder = _adaptive()
        cc.on_rto()
        shrunk = cc.target_buffer_delay
        # A long loss-free stretch (> RECOVERY_QUIET_TIME) of ACKs.
        feeder.run(300, dt=0.05)
        assert cc.target_buffer_delay > shrunk

    def test_never_exceeds_configured_target(self):
        cc, feeder = _adaptive()
        feeder.run(500, dt=0.05)
        assert cc.target_buffer_delay <= cc.configured_target + 1e-12


class TestValidation:
    def test_rejects_bad_min_target(self):
        with pytest.raises(ValueError):
            AdaptivePropRate(0.040, min_target=0.0)
        with pytest.raises(ValueError):
            AdaptivePropRate(0.040, min_target=0.080)

    def test_metadata(self):
        cc = AdaptivePropRate()
        assert cc.is_rate_based
        assert cc.name == "PropRate-A"


class TestShallowBufferBehaviour:
    """The §6 motivation: on a shallow buffer the adaptive variant sheds
    its losses by de-tuning, where fixed PR(80 ms) keeps overflowing."""

    def test_adaptive_loses_less_than_fixed(self):
        trace = constant_rate_trace(1.5e6, 25.0)
        config = cellular_path_config(trace, buffer_packets=40)

        fixed = run_experiment(
            config, [FlowSpec(cc_factory=lambda: PropRate(0.080))],
            duration=15.0, measure_start=3.0,
        )[0]
        adaptive = run_experiment(
            config, [FlowSpec(cc_factory=lambda: AdaptivePropRate(0.080))],
            duration=15.0, measure_start=3.0,
        )[0]

        assert adaptive.bottleneck_drops < 0.2 * max(1, fixed.bottleneck_drops)
        assert adaptive.sender.cc.target_buffer_delay < 0.080
        # It still moves data (at a lower rate: a de-tuned target on a
        # shallow buffer trades throughput for the ~20x loss reduction).
        assert adaptive.throughput > 0.3 * fixed.throughput
        assert adaptive.delay.mean < fixed.delay.mean
