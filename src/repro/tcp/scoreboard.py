"""Interval-run SACK scoreboards shared by sender, receiver and auditor.

One representation, four consumers.  Per-segment recovery state used to
be scattered across a per-seq dict (``_rtx_state``), a retransmission
heap, and a separate SACKed :class:`~repro.util.intervals.IntervalSet`,
making every loss episode O(window) per ACK.  Here the whole window is
a :class:`~repro.util.intervals.RunMap` of disjoint tagged runs:

* **untagged** — a plain in-flight transmission (contributes to pipe);
* :data:`SACKED` — delivered out of order, reported by a SACK block;
* :data:`LOST` — marked lost, retransmission pending (off the pipe);
* :data:`RTX` — retransmission in flight (contributes to pipe);
* :data:`CANCELLED` — marked lost but SACKed before the retransmission
  left (the spurious-mark case; stays off the pipe, never retransmits).

Loss marks, SACK folds, cumulative-ACK accounting, and RTO requeues are
all bulk run transitions (:meth:`RunMap.map_range`), so the cost of an
ACK during recovery scales with the number of *loss runs* in the
window, not the number of segments.  The transition tables below are
the single source of truth for the state machine; the sender turns the
returned transition pieces into pipe/loss counters, and the invariant
auditor re-derives the pipe from the same runs (:meth:`SenderScoreboard
.expected_pipe`) as an independent O(runs) reconstruction.

The receiver's out-of-order store (:class:`ReceiverScoreboard`) is the
same run representation with a single tag — which is exactly what makes
its SACK blocks, the sender's SACKED runs, and the auditor's
cross-checks directly comparable.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.util.intervals import RunMap

__all__ = [
    "SACKED",
    "LOST",
    "RTX",
    "CANCELLED",
    "SenderScoreboard",
    "ReceiverScoreboard",
]

#: Segment delivered out of order (SACK block covered it).
SACKED = 1
#: Segment marked lost; retransmission pending.
LOST = 2
#: Retransmission in flight.
RTX = 3
#: Loss mark cancelled by a later SACK; nothing to retransmit.
CANCELLED = 4

TAG_NAMES: Dict[int, str] = {
    SACKED: "sacked",
    LOST: "lost",
    RTX: "rtx",
    CANCELLED: "cancelled",
}

#: SACK arrival: in-flight and retransmitted segments become SACKED
#: (leaving the pipe); a pending loss mark is cancelled instead —
#: the retransmission would have been spurious.
_SACK_TABLE = {None: SACKED, RTX: SACKED, LOST: CANCELLED}

#: Loss marking: only plain in-flight segments are markable; SACKed,
#: already-marked, retransmitted and cancelled segments are skipped.
_MARK_TABLE = {None: LOST}

#: RTO collapse: everything that might still be in the network is
#: requeued; SACKed data is safe and cancelled/pending marks persist.
_RTO_TABLE = {None: LOST, RTX: LOST}


class SenderScoreboard:
    """The sender's loss-recovery scoreboard as tagged interval runs.

    Segments below ``snd_una`` are never represented (cumulative ACKs
    clear them), and untagged segments inside the window are plain
    in-flight transmissions, so an entirely loss-free window is an
    *empty* scoreboard — the loss-free ACK fast path is ``clean``.

    The scoreboard holds no counters of its own: every mutator returns
    the aggregate effect (newly covered segments, pipe decrement,
    cancelled marks) and the sender keeps ``pipe`` / ``lost_total`` /
    ``spurious_marks`` exactly as before, which is what keeps results
    bit-identical to the per-segment implementation.
    """

    __slots__ = ("_map",)

    def __init__(self) -> None:
        self._map = RunMap()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def clean(self) -> bool:
        """True when the window holds nothing but in-flight segments."""
        return not self._map

    @property
    def in_loss_recovery(self) -> bool:
        """True while any loss mark, retransmission, or cancellation
        is still below the highest cumulative ACK edge."""
        m = self._map
        return bool(m.count(LOST) or m.count(RTX) or m.count(CANCELLED))

    @property
    def has_pending(self) -> bool:
        """True when at least one retransmission is queued (O(1))."""
        return self._map.count(LOST) > 0

    def is_sacked(self, seq: int) -> bool:
        return self._map.get(seq) in (SACKED, CANCELLED)

    def state(self, seq: int) -> Optional[int]:
        """The tag at ``seq`` (None = plain in-flight)."""
        return self._map.get(seq)

    @property
    def runs(self) -> List[Tuple[int, int, int]]:
        """All tagged runs as ``(start, end, tag)`` (audit/telemetry)."""
        return self._map.runs

    def segments(self, start: int, end: int) -> Iterator[
            Tuple[int, int, Optional[int]]]:
        """Tile ``[start, end)`` into ``(s, e, tag)`` pieces."""
        return self._map.segments(start, end)

    def next_pending(self, una: int) -> Optional[int]:
        """Lowest segment >= ``una`` awaiting retransmission (O(1) when
        none is pending — the common case on the transmit path)."""
        return self._map.first_tag(LOST, una)

    def expected_pipe(self, una: int, next_seq: int) -> int:
        """O(runs) pipe reconstruction: one outstanding transmission per
        untagged segment, plus one per retransmission in flight."""
        covered = 0
        rtx = 0
        for s, e, t in self._map.runs:
            covered += e - s
            if t == RTX:
                rtx += e - s
        return (next_seq - una) - covered + rtx

    def check(self) -> None:
        """Verify run-structure invariants (audit aid)."""
        self._map.check()

    def to_dict(self, una: int, next_seq: int) -> Dict[int, int]:
        """Expand to a per-seq tag map over ``[una, next_seq)`` (tests)."""
        out: Dict[int, int] = {}
        for s, e, t in self._map.segments(una, next_seq):
            if t is not None:
                for seq in range(s, e):
                    out[seq] = t
        return out

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def sack_range(self, start: int, end: int) -> Tuple[int, int, int]:
        """Fold one SACK block range into the scoreboard.

        Returns ``(newly_sacked, pipe_drop, cancelled)``: how many
        segments were newly covered, how many of those leave the pipe
        (in-flight or retransmitted), and how many pending loss marks
        the block cancelled (spurious marks).
        """
        changed = self._map.map_range(start, end, _SACK_TABLE)
        if not changed:
            return 0, 0, 0
        newly = pipe_drop = cancelled = 0
        for s, e, old in changed:
            width = e - s
            newly += width
            if old is None or old == RTX:
                pipe_drop += width
            else:  # LOST -> CANCELLED
                cancelled += width
        return newly, pipe_drop, cancelled

    def mark_lost(self, start: int, end: int) -> Tuple[
            int, List[Tuple[int, int, Optional[int]]]]:
        """Mark the markable (plain in-flight) segments of ``[start,
        end)`` lost; returns ``(newly_lost, marked_runs)``."""
        changed = self._map.map_range(start, end, _MARK_TABLE)
        if not changed:
            return 0, changed
        return sum(e - s for s, e, _ in changed), changed

    def ack_to(self, una: int, ack: int) -> int:
        """Consume a cumulative ACK advancing ``una`` to ``ack``.

        Clears every run below ``ack`` and returns the pipe decrement:
        untagged (in-flight) segments plus retransmissions in flight.
        SACKed, pending-lost and cancelled segments already left the
        pipe when they were tagged.
        """
        removed = self._map.clear_below(ack)
        covered = sum(removed.values())
        return (ack - una) - covered + removed.get(RTX, 0)

    def mark_rtx_sent(self, seq: int) -> None:
        """A pending retransmission for ``seq`` just left the host."""
        self._map.map_range(seq, seq + 1, {LOST: RTX})

    def take_pending(self, una: int, limit: int) -> Optional[Tuple[int, int]]:
        """Claim up to ``limit`` pending segments for retransmission.

        Retags the head of the lowest pending run at/after ``una`` as
        in-flight retransmissions and returns the claimed ``(start,
        end)`` range (None when nothing is pending).  Equivalent to a
        ``next_pending`` + ``mark_rtx_sent`` loop, but one run-boundary
        adjustment claims the whole batch — the transmit path stays
        O(1) per run rather than O(1) per segment.
        """
        return self._map.claim_first(LOST, RTX, una, limit)

    def rto_requeue(self, una: int, next_seq: int) -> int:
        """Retransmission timeout: requeue the whole outstanding window.

        Everything that might still be in the network (in-flight or
        retransmitted) is marked lost again; SACKed data is safe, and
        existing pending/cancelled marks persist.  Returns how many
        segments are newly counted lost.
        """
        changed = self._map.map_range(una, next_seq, _RTO_TABLE)
        return sum(e - s for s, e, _ in changed)


class ReceiverScoreboard:
    """The receiver's out-of-order store on the same run representation.

    A single-tag scoreboard: a segment is either received-out-of-order
    (one run) or missing (a gap).  Using :class:`RunMap` rather than a
    plain interval set keeps the representation — and the audit helpers
    — identical to the sender's side, so the auditor can check that
    generated SACK blocks are exact subsets of these runs.
    """

    __slots__ = ("_map",)

    #: The single tag carried by received-out-of-order runs.
    RECEIVED = 1

    def __init__(self) -> None:
        self._map = RunMap()

    def __bool__(self) -> bool:
        return bool(self._map)

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, seq: int) -> bool:
        return self._map.get(seq) is not None

    @property
    def intervals(self) -> List[Tuple[int, int]]:
        return [(s, e) for s, e, _ in self._map.runs]

    @property
    def min(self) -> int:
        return self._map.min

    def add(self, seq: int) -> bool:
        """Store one out-of-order segment; True if it was new."""
        return bool(self._map.map_range(seq, seq + 1, {None: self.RECEIVED}))

    def remove_below(self, bound: int) -> int:
        """Drop all segments < ``bound`` (consumed by rcv_nxt advance)."""
        return sum(self._map.clear_below(bound).values())

    def first_gap_at_or_after(self, value: int) -> int:
        """Smallest sequence >= ``value`` not yet received."""
        return self._map.first_gap_at_or_after(value)

    def interval_containing(self, seq: int) -> Optional[Tuple[int, int]]:
        """The stored ``(start, end)`` run covering ``seq``, or None."""
        run = self._map.run_at(seq)
        if run is None:
            return None
        return (run[0], run[1])

    def tail_intervals(self, k: int) -> List[Tuple[int, int]]:
        """The ``k`` highest runs, descending, without a full copy
        (SACK blocks only ever need the newest few)."""
        return [(s, e) for s, e, _ in reversed(self._map.tail_runs(k))]

    def contains_range(self, start: int, end: int) -> bool:
        """True when every segment of ``[start, end)`` is stored."""
        if end <= start:
            return True
        for s, e, t in self._map.segments(start, end):
            if t is None:
                return False
        return True

    def check(self) -> None:
        self._map.check()
