"""Process-pool execution of experiment batches.

Every paper artifact is an embarrassingly parallel set of independent
simulations (the Figure-10 frontier is 43 of them).  This module maps
picklable run specifications onto worker processes:

* :class:`CcSpec` names a congestion-control configuration by registry
  name plus keyword parameters, so no factory closures ever cross a
  process boundary; workers rebuild the algorithm locally.
* :class:`RunSpec` is one single-flow run — congestion control, trace
  references, and path/flow parameters.  Traces travel as content-keyed
  references (:mod:`repro.traces.cache`); the dispatcher deduplicates
  them into a table shipped once per worker, and each worker
  materializes every distinct trace exactly once per process.
* :func:`iter_batch` executes any sequence of spec objects (anything
  with an ``execute()`` method and optional ``downlink``/``uplink``
  reference fields), yielding :class:`RunOutcome`\\ s **as they
  complete**.
* :func:`run_batch` is the in-order façade on top of :func:`iter_batch`
  — same execution, outcomes sorted back into submission order.

Scheduling: specs are dispatched one at a time from a shared queue with
at most ``n_jobs`` in flight, so an idle worker always takes the next
undone spec — work-stealing across long-tailed grids falls out of the
queue discipline instead of static chunk pre-cutting.  Long LTE
deep-buffer runs no longer pin a pre-assigned chunk of short runs
behind them.

Determinism: the serial (``n_jobs=1``) and parallel paths run the same
``execute()`` code against traces materialized by the same cache, and
each simulation is fully deterministic, so results are bit-identical
across job counts and completion orders.

Failure handling: an exception inside a spec is caught in the worker
and reported on that spec's outcome; the rest of the batch completes.
A result that cannot cross the process boundary (unpicklable) fails
only the offending spec.  If a worker process dies outright (breaking
the pool) or a spec exceeds its wall-clock ``timeout``, the pool is
torn down and respawned, and the lost specs are retried up to
``retries`` times before their outcomes report the loss.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import nullcontext
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import repro.obs as obs
from repro.debug import AuditArg
from repro.experiments.runner import (
    DEFAULT_PROP_DELAY,
    FlowResult,
    run_single_flow,
)
from repro.sim.engine import RunDeadlineExceeded, set_run_deadline
from repro.sim.queues import DEFAULT_BUFFER_PACKETS
from repro.tcp.congestion.base import CongestionControl
from repro.traces import cache as trace_cache
from repro.traces.cache import TraceRef, as_ref
from repro.traces.trace import Trace

__all__ = [
    "CcSpec",
    "RunSpec",
    "RunOutcome",
    "iter_batch",
    "run_batch",
    "collect",
    "resolve_trace",
    "detach_results",
    "resolve_n_jobs",
]

#: A trace field: a reference, a not-yet-referenced Trace, or a content
#: key into the batch's deduplicated trace table.
RefOrKey = Union[TraceRef, Trace, str]

#: Progress hook: called with each outcome as it completes.
OutcomeCallback = Callable[["RunOutcome"], None]


# ----------------------------------------------------------------------
# Congestion-control specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CcSpec:
    """A picklable congestion-control configuration.

    ``name`` is either ``"PropRate"`` (with ``params`` forwarded to the
    constructor) or any entry of
    :func:`repro.experiments.algorithms.paper_algorithms` — ``"CUBIC"``,
    ``"BBR"``, ``"PR(M)"``, and so on.  ``params`` is a tuple of
    ``(keyword, value)`` pairs so the spec stays hashable.
    """

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def build(self) -> CongestionControl:
        from repro.core.proprate import PropRate
        from repro.experiments.algorithms import paper_algorithms

        params = dict(self.params)
        if self.name == "PropRate":
            return PropRate(**params)
        factory = paper_algorithms().get(self.name)
        if factory is None:
            raise ValueError(f"unknown congestion control {self.name!r}")
        if params:
            if isinstance(factory, type):
                return factory(**params)
            raise ValueError(f"{self.name!r} does not accept parameters")
        return factory()


def proprate_spec(target: float, **kwargs: Any) -> CcSpec:
    """A :class:`CcSpec` for PropRate at a fixed t̄_buff."""
    params = (("target_buffer_delay", target),) + tuple(sorted(kwargs.items()))
    return CcSpec("PropRate", params)


# ----------------------------------------------------------------------
# Run specs and outcomes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One single-flow cellular run (the :func:`run_single_flow` shape)."""

    cc: CcSpec
    downlink: RefOrKey
    uplink: Optional[RefOrKey] = None
    duration: float = 40.0
    measure_start: float = 5.0
    name: str = ""
    buffer_packets: int = DEFAULT_BUFFER_PACKETS
    prop_delay: float = DEFAULT_PROP_DELAY
    aqm: str = "droptail"
    #: Invariant auditing (:mod:`repro.debug`): None defers to the
    #: REPRO_AUDIT environment switch, which worker processes inherit.
    audit: AuditArg = None
    #: Telemetry trace path for this run (:mod:`repro.obs`).  Normally
    #: left ``None``; a batch-level ``telemetry=`` target assigns each
    #: spec a worker part file and merges them at the coordinator.
    telemetry: Optional[str] = None
    #: Sampling-budget spec string for this run's tracer (see
    #: ``SamplingPolicy.parse``); stamped by the batch layer so workers
    #: apply the same budget as the coordinator.
    sampling: Optional[str] = None
    #: Enable phase-scoped profiling timers for this run (requires
    #: telemetry); stamped by the batch layer alongside ``telemetry``.
    profile: Optional[bool] = None

    def execute(self) -> FlowResult:
        down = resolve_trace(self.downlink)
        up = resolve_trace(self.uplink) if self.uplink is not None else None
        result = run_single_flow(
            self.cc.build,
            down,
            up,
            duration=self.duration,
            measure_start=self.measure_start,
            name=self.name or self.cc.name,
            buffer_packets=self.buffer_packets,
            prop_delay=self.prop_delay,
            aqm=self.aqm,
            audit=self.audit,
            telemetry=self.telemetry,
            sampling=self.sampling,
            profile=self.profile,
        )
        return result.detached()


@dataclass
class RunOutcome:
    """One spec's fate: its (detached) result, or the failure report.

    ``attempts`` counts dispatches to a worker — 1 for a clean run, more
    when the spec was re-run after a timeout, a worker death charged to
    it, or an un-attributable pool breakage that re-queued it without
    charge (see :func:`iter_batch`).
    """

    index: int
    spec: Any
    result: Optional[Any] = None
    error: Optional[str] = field(repr=False, default=None)
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.error is None


def collect(outcomes: Sequence[RunOutcome]) -> List[Any]:
    """Results in submission order; raises if any spec failed."""
    failed = [o for o in outcomes if not o.ok]
    if failed:
        first = failed[0]
        raise RuntimeError(
            f"{len(failed)}/{len(outcomes)} runs failed; first "
            f"(spec #{first.index}):\n{first.error}"
        )
    return [o.result for o in sorted(outcomes, key=lambda o: o.index)]


# ----------------------------------------------------------------------
# Trace-reference plumbing
# ----------------------------------------------------------------------
#: The batch's deduplicated {content key -> reference} table.  Installed
#: in workers by the pool initializer and in-process by the serial path.
_TRACE_TABLE: Dict[str, TraceRef] = {}


def resolve_trace(ref: RefOrKey) -> Trace:
    """Materialize a trace field through the per-process cache."""
    if isinstance(ref, str):
        ref = _TRACE_TABLE[ref]
    return trace_cache.get(ref)


def _strip_specs(
    specs: Sequence[Any],
) -> Tuple[List[Any], Dict[str, TraceRef]]:
    """Replace in-spec traces/references by content keys.

    Returns the rewritten specs plus the deduplicated reference table;
    each distinct trace is pickled to each worker once, via the table,
    however many specs use it.
    """
    table: Dict[str, TraceRef] = {}
    stripped: List[Any] = []
    for spec in specs:
        updates = {}
        for fieldname in ("downlink", "uplink"):
            value = getattr(spec, fieldname, None)
            if value is None or isinstance(value, str):
                continue
            ref = as_ref(value)
            table[ref.key] = ref
            updates[fieldname] = ref.key
        stripped.append(replace(spec, **updates) if updates else spec)
    return stripped, table


def _install_table(table: Dict[str, TraceRef]) -> None:
    _TRACE_TABLE.clear()
    _TRACE_TABLE.update(table)


def detach_results(value: Any) -> Any:
    """Detach every :class:`FlowResult` in a result structure.

    Scenario drivers return tuples/dicts of results; the live simulation
    handles they carry cannot cross a process boundary.
    """
    if isinstance(value, FlowResult):
        return value.detached()
    if isinstance(value, tuple):
        return tuple(detach_results(v) for v in value)
    if isinstance(value, list):
        return [detach_results(v) for v in value]
    if isinstance(value, dict):
        return {k: detach_results(v) for k, v in value.items()}
    return value


# ----------------------------------------------------------------------
# Batch execution
# ----------------------------------------------------------------------
def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """None/0 -> all cores; joblib-style negatives count from the end."""
    cores = os.cpu_count() or 1
    if n_jobs is None or n_jobs == 0:
        return cores
    if n_jobs < 0:
        return max(1, cores + 1 + n_jobs)
    return n_jobs


def _run_entry(entry: Tuple[int, Any]) -> Tuple[int, Any, Optional[str]]:
    index, spec = entry
    try:
        return index, spec.execute(), None
    except Exception:  # noqa: BLE001 - reported on the outcome
        return index, None, traceback.format_exc()


def _init_worker(table: Dict[str, TraceRef]) -> None:
    _install_table(table)


@dataclass
class _Task:
    """Dispatcher-side state for one spec: identity plus charged losses.

    ``suspect`` marks a task that was in flight when the pool broke with
    no identifiable culprit.  Suspects are quarantined — at most one is
    dispatched at a time — so the next breakage is attributable.
    """

    index: int
    spec: Any
    failures: int = 0  # timeouts + worker deaths charged so far
    dispatches: int = 0  # submissions to a worker, charged or not
    suspect: bool = False


class _BatchTelemetry:
    """Coordinator half of batch telemetry.

    The coordinator owns the batch trace file: it writes ``sched.*``
    events (wall-clock seconds since batch start — scheduler events have
    no simulated clock), assigns each spec a worker part file
    (``<base>.part<index>.jsonl``), and at the end merges the parts back
    into the batch trace with every record tagged ``"run": <index>``,
    folding the per-run metrics snapshots into one ``scope="batch"``
    metrics record.  Workers never coordinate — they just write their
    own part, which also makes the serial (``n_jobs=1``) path identical.
    """

    def __init__(self, base: Union[str, os.PathLike],
                 sampling: Optional[str] = None,
                 profile: Optional[bool] = None) -> None:
        self.base = str(base)
        self.sampling = obs.sampling_spec(sampling)
        self.profile = profile
        self.tracer = obs.Tracer(
            obs.JsonlSink(self.base),
            sampling=obs.resolve_sampling(self.sampling),
        )
        self.prof = obs.PhaseProfiler() if profile else None
        self.workers = 1
        self._t0 = time.monotonic()
        self._parts: Dict[int, str] = {}
        self.counters = {
            "dispatched": 0,
            "outcomes": 0,
            "retries": 0,
            "timeouts": 0,
            "worker_deaths": 0,
        }
        self._counted = {
            obs.SCHED_DISPATCH: "dispatched",
            obs.SCHED_OUTCOME: "outcomes",
            obs.SCHED_RETRY: "retries",
            obs.SCHED_TIMEOUT: "timeouts",
            obs.SCHED_WORKER_DEATH: "worker_deaths",
        }

    def assign(self, index: int, spec: Any) -> Any:
        """Give ``spec`` a part-file trace path unless it brought its own.

        Only specs that expose a ``telemetry`` field participate; a spec
        with an explicit path keeps it (and is excluded from the merge).
        """
        if getattr(spec, "telemetry", False) is not None:
            return spec
        part = f"{self.base}.part{index:04d}.jsonl"
        self._parts[index] = part
        updates: Dict[str, Any] = {"telemetry": part}
        if self.sampling is not None and \
                getattr(spec, "sampling", False) is None:
            updates["sampling"] = self.sampling
        if self.profile is not None and \
                getattr(spec, "profile", False) is None:
            updates["profile"] = self.profile
        return replace(spec, **updates)

    def event(self, kind: str, **fields: Any) -> None:
        counted = self._counted.get(kind)
        if counted is not None:
            self.counters[counted] += 1
        self.tracer.emit(kind, time.monotonic() - self._t0, **fields)
        # Scheduler events are rare; flushing each one lets a live
        # `repro watch` follower see batch progress as it happens.
        flush = getattr(self.tracer.sink, "flush", None)
        if flush is not None:
            flush()

    def finalize(self) -> None:
        """Merge worker parts, write the batch metrics record, close."""
        totals: Dict[str, Any] = {}
        sink = self.tracer.sink
        for index in sorted(self._parts):
            prefix = '{"run":%d,' % index
            for path in obs.iter_trace_files(self._parts[index]):
                with open(path, encoding="utf-8") as fh:
                    for line in fh:
                        line = line.rstrip("\n")
                        if not line.startswith("{"):
                            continue
                        if '"kind":"metrics"' in line:
                            try:
                                record = json.loads(line)
                            except ValueError:
                                record = {}
                            snap = record.get("metrics")
                            if isinstance(snap, dict):
                                obs.merge_snapshots(totals, snap)
                        sink.write_line(prefix + line[1:])
                os.remove(path)
        metrics = self.tracer.metrics
        for name, value in self.counters.items():
            metrics.counter(f"batch.sched.{name}").add(value)
        metrics.counter("batch.sched.steals").add(
            max(0, self.counters["dispatched"] - self.workers)
        )
        if self.prof is not None:
            self.prof.flush_into(metrics, prefix="batch.timing.prof.")
        dropped = self.tracer.drain_dropped()
        if dropped:
            total = 0
            for kind, count in dropped.items():
                metrics.counter(f"batch.telemetry.dropped.{kind}").add(count)
                total += count
            metrics.counter("batch.telemetry.dropped_events").add(total)
        obs.merge_snapshots(totals, metrics.snapshot())
        self.event(obs.METRICS, scope="batch", metrics=totals)
        self.tracer.close()


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down hard: terminate workers, then force-kill stragglers.

    Needed to enforce wall-clock timeouts — a spec stuck inside
    ``execute()`` never returns to the executor, so the only way to
    reclaim the worker is to kill the process.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    for proc in processes:
        proc.terminate()
    deadline = time.monotonic() + 5.0
    for proc in processes:
        proc.join(max(0.0, deadline - time.monotonic()))
        if proc.is_alive():  # pragma: no cover - SIGTERM normally suffices
            proc.kill()
    pool.shutdown(wait=False, cancel_futures=True)


def iter_batch(
    specs: Sequence[Any],
    n_jobs: Optional[int] = 1,
    start_method: Optional[str] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    on_outcome: Optional[OutcomeCallback] = None,
    telemetry: Optional[str] = None,
    sampling: Optional[str] = None,
    profile: Optional[bool] = None,
) -> Iterator[RunOutcome]:
    """Execute ``specs``, yielding outcomes **in completion order**.

    This is the streaming core of the batch layer: specs are dispatched
    one at a time from a shared queue with at most ``n_jobs`` in flight,
    so workers that finish short runs immediately steal the next undone
    spec while long-tailed runs are still going, and each outcome is
    yielded (and reported to ``on_outcome``) the moment it lands.

    Parameters
    ----------
    specs:
        Objects with an ``execute() -> picklable`` method; fields named
        ``downlink``/``uplink`` are treated as trace references and
        deduplicated into a once-per-worker table.
    n_jobs:
        Worker processes.  ``1`` runs serially in-process (no pool);
        ``None``/``0`` uses every core; negative counts from the end
        (``-1`` = all cores).
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheap, inherits imports) and the platform default
        elsewhere.
    timeout:
        Per-spec wall-clock budget in seconds, measured from dispatch to
        a worker.  A spec that exceeds it has its pool torn down (the
        only way to reclaim a stuck worker) and counts one charged loss;
        other in-flight specs are re-queued without charge.  On the
        serial path (``n_jobs=1``) the budget is enforced in-process:
        the simulation event loop checks a monotonic wall-clock deadline
        between event batches (:func:`repro.sim.engine.set_run_deadline`)
        and the overrunning spec is charged exactly like a pool-path
        timeout.
    retries:
        How many charged losses (timeout or worker death) a spec may
        absorb before its outcome reports the failure.  A loss is only
        charged to the spec that caused it: when a worker death takes
        down several in-flight specs and the culprit cannot be
        identified, none are charged — they re-queue as quarantined
        suspects (dispatched one at a time) so the next death is
        attributable and a poison spec cannot burn the retry budget of
        innocent queue-mates.  Ordinary Python exceptions inside
        ``execute()`` are deterministic and are *not* retried.
    on_outcome:
        Called with each :class:`RunOutcome` as it completes — progress
        bars, incremental persistence, early aborts by raising.
    telemetry:
        Batch trace path (:mod:`repro.obs`).  Each spec exposing a
        ``telemetry`` field is assigned a worker part file; the
        coordinator records ``sched.*`` dispatch/retry/timeout events
        and, when the batch finishes, merges the parts into one trace
        (records tagged ``"run": <index>``) with an aggregated
        ``scope="batch"`` metrics record.
    sampling:
        Per-event-kind sampling budget (a ``SamplingPolicy`` spec
        string) applied to the batch trace and stamped onto every spec
        that doesn't carry its own, so worker part files honour the
        same budget.  Requires ``telemetry``.
    profile:
        Enable phase-scoped profiling: the coordinator times its own
        dispatch loop (``batch.timing.prof.sched.dispatch``) and every
        stamped spec runs with the per-run phase timers on
        (``run.timing.prof.*`` in the merged metrics).  Requires
        ``telemetry``.
    """
    entries = list(enumerate(specs))
    if not entries:
        return
    stripped, table = _strip_specs([s for _, s in entries])
    entries = [(i, s) for (i, _), s in zip(entries, stripped)]
    jobs = resolve_n_jobs(n_jobs)
    _install_table(table)  # serial path + fork parent share the table

    if telemetry is None and (sampling is not None or profile):
        raise ValueError("sampling=/profile= require a batch telemetry target")
    bt = (
        _BatchTelemetry(telemetry, sampling=sampling, profile=profile)
        if telemetry is not None
        else None
    )
    if bt is not None:
        entries = [(i, bt.assign(i, s)) for i, s in entries]
    prof = bt.prof if bt is not None else None

    def dispatch_span():
        return prof.span("sched.dispatch") if prof is not None \
            else nullcontext()

    def emit(outcome: RunOutcome) -> RunOutcome:
        if bt is not None:
            bt.event(
                obs.SCHED_OUTCOME,
                spec=outcome.index,
                ok=outcome.ok,
                attempts=outcome.attempts,
            )
        if on_outcome is not None:
            on_outcome(outcome)
        return outcome

    if jobs == 1 or (len(entries) == 1 and timeout is None):
        # Serial in-process path.  ``timeout`` is enforced via the
        # engine's ambient wall-clock deadline: there is no worker to
        # kill, so the event loop itself checks ``time.monotonic()``
        # between event batches and raises RunDeadlineExceeded, which is
        # settled with the same charge/retry semantics as a pool-path
        # timeout.
        tasks = deque(_Task(i, s) for i, s in entries)
        try:
            while tasks:
                with dispatch_span():
                    task = tasks.popleft()
                    task.dispatches += 1
                    if bt is not None:
                        bt.event(
                            obs.SCHED_DISPATCH,
                            spec=task.index,
                            attempt=task.dispatches,
                        )
                timed_out = False
                try:
                    if timeout is not None:
                        set_run_deadline(time.monotonic() + timeout)
                    result, error = task.spec.execute(), None
                except RunDeadlineExceeded:
                    timed_out = True
                except Exception:  # noqa: BLE001 - reported on the outcome
                    result, error = None, traceback.format_exc()
                finally:
                    if timeout is not None:
                        set_run_deadline(None)
                if timed_out:
                    task.failures += 1
                    if bt is not None:
                        bt.event(
                            obs.SCHED_TIMEOUT,
                            spec=task.index,
                            failures=task.failures,
                        )
                    if task.failures <= retries:
                        tasks.append(task)
                        if bt is not None:
                            bt.event(
                                obs.SCHED_RETRY,
                                spec=task.index,
                                failures=task.failures,
                            )
                        continue
                    result, error = None, (
                        f"timed out after {timeout:.6g}s "
                        f"(attempt {task.dispatches})"
                    )
                yield emit(
                    RunOutcome(
                        index=task.index,
                        spec=task.spec,
                        result=result,
                        error=error,
                        attempts=task.dispatches,
                    )
                )
        finally:
            if bt is not None:
                bt.finalize()
        return

    if start_method is None and "fork" in multiprocessing.get_all_start_methods():
        start_method = "fork"
    context = (
        multiprocessing.get_context(start_method) if start_method else None
    )

    queue = deque(_Task(i, s) for i, s in entries)
    workers = min(jobs, len(entries))
    if bt is not None:
        bt.workers = workers
    pool: Optional[ProcessPoolExecutor] = None
    inflight: Dict[Any, Tuple[_Task, Optional[float]]] = {}

    def settle_loss(
        task: _Task, reason: str, kind: str = obs.SCHED_WORKER_DEATH
    ) -> Optional[RunOutcome]:
        """Charge a timeout/death to ``task``; re-queue or report it."""
        task.failures += 1
        if bt is not None:
            bt.event(kind, spec=task.index, failures=task.failures)
        if task.failures <= retries:
            queue.append(task)
            if bt is not None:
                bt.event(obs.SCHED_RETRY, spec=task.index, failures=task.failures)
            return None
        return RunOutcome(
            index=task.index,
            spec=task.spec,
            error=reason,
            attempts=task.dispatches,
        )

    def harvest(future: Any, task: _Task) -> Optional[RunOutcome]:
        """Turn a done future into an outcome (None = pool breakage).

        A ``BrokenProcessPool`` is not charged here: the caller collects
        every task the breakage took down and attributes the loss once.
        """
        try:
            _, result, error = future.result()
        except BrokenProcessPool:
            return None
        except Exception:  # noqa: BLE001 - e.g. unpicklable result
            return RunOutcome(
                index=task.index,
                spec=task.spec,
                error=traceback.format_exc(),
                attempts=task.dispatches,
            )
        return RunOutcome(
            index=task.index,
            spec=task.spec,
            result=result,
            error=error,
            attempts=task.dispatches,
        )

    try:
        while queue or inflight:
            if pool is None:
                pool = ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=context,
                    initializer=_init_worker,
                    initargs=(table,),
                )
            suspect_inflight = any(t.suspect for t, _ in inflight.values())
            held = []
            with dispatch_span():
                while queue and len(inflight) < workers:
                    task = queue.popleft()
                    if task.suspect and suspect_inflight:
                        held.append(task)  # quarantine: one suspect at a time
                        continue
                    suspect_inflight = suspect_inflight or task.suspect
                    task.dispatches += 1
                    if bt is not None:
                        bt.event(
                            obs.SCHED_DISPATCH,
                            spec=task.index,
                            attempt=task.dispatches,
                        )
                    future = pool.submit(_run_entry, (task.index, task.spec))
                    deadline = (
                        None if timeout is None else time.monotonic() + timeout
                    )
                    inflight[future] = (task, deadline)
                queue.extendleft(reversed(held))

            wait_for = None
            if timeout is not None:
                now = time.monotonic()
                wait_for = max(
                    0.0,
                    min(d for _, d in inflight.values() if d is not None) - now,
                )
            done, _ = wait(
                set(inflight), timeout=wait_for, return_when=FIRST_COMPLETED
            )

            broken_tasks = []
            for future in done:
                task, _ = inflight.pop(future)
                outcome = harvest(future, task)
                if outcome is None:
                    broken_tasks.append(task)  # pool breakage
                    continue
                yield emit(outcome)

            if broken_tasks:
                # One BrokenProcessPool means every in-flight future is
                # lost — drain them (keeping any that did complete with
                # real results), then attribute the death and respawn.
                for future in list(inflight):
                    task, _ = inflight.pop(future)
                    if future.done():
                        outcome = harvest(future, task)
                        if outcome is None:
                            broken_tasks.append(task)
                        else:
                            yield emit(outcome)
                    else:
                        future.cancel()
                        broken_tasks.append(task)
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None

                # Charge the loss to the culprit only.  With one task
                # down the culprit is known; with several, a quarantined
                # suspect (which never shares the pool with another
                # suspect) is the repeat offender and takes the charge.
                suspects = [t for t in broken_tasks if t.suspect]
                if len(broken_tasks) == 1:
                    culprit = broken_tasks[0]
                elif len(suspects) == 1:
                    culprit = suspects[0]
                else:
                    # Unattributable: several first-offense tasks were in
                    # flight.  Nobody is charged — all re-queue as
                    # quarantined suspects, so whichever breaks the pool
                    # again dies alone and takes the next charge.
                    culprit = None
                if culprit is not None:
                    culprit.suspect = True  # quarantine the retry too
                    outcome = settle_loss(culprit, "worker process died")
                    if outcome is not None:
                        yield emit(outcome)
                for task in reversed(broken_tasks):
                    if task is culprit:
                        continue
                    if culprit is None:
                        task.suspect = True
                        if bt is not None:
                            bt.event(
                                obs.SCHED_RETRY,
                                spec=task.index,
                                failures=task.failures,
                                suspect=True,
                            )
                    queue.appendleft(task)
                continue

            if not done and timeout is not None:
                now = time.monotonic()
                expired = [
                    future
                    for future, (_, deadline) in inflight.items()
                    if deadline is not None and deadline <= now
                ]
                if not expired:
                    continue
                # A stuck spec can only be reclaimed by killing its
                # worker, which takes the whole pool down; innocent
                # bystanders are re-queued without a charged loss.
                _kill_pool(pool)
                pool = None
                expired_set = set(expired)
                for future in list(inflight):
                    task, _ = inflight.pop(future)
                    future.cancel()
                    if future in expired_set:
                        outcome = settle_loss(
                            task,
                            f"timed out after {timeout:.6g}s "
                            f"(attempt {task.dispatches})",
                            kind=obs.SCHED_TIMEOUT,
                        )
                        if outcome is not None:
                            yield emit(outcome)
                    else:
                        queue.appendleft(task)
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        if bt is not None:
            bt.finalize()


def run_batch(
    specs: Sequence[Any],
    n_jobs: Optional[int] = 1,
    chunksize: Optional[int] = None,
    start_method: Optional[str] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    on_outcome: Optional[OutcomeCallback] = None,
    telemetry: Optional[str] = None,
    sampling: Optional[str] = None,
    profile: Optional[bool] = None,
) -> List[RunOutcome]:
    """Execute ``specs`` and return outcomes in submission order.

    The in-order façade over :func:`iter_batch` — identical execution
    and robustness semantics (work-stealing dispatch, ``timeout``,
    ``retries``, ``on_outcome``, ``telemetry``, ``sampling``,
    ``profile``), with the completed outcomes sorted back into
    submission order before returning.

    ``chunksize`` is accepted for backwards compatibility and ignored:
    the scheduler dispatches one spec per task from a shared queue, so
    there is no longer a static chunk size to tune.
    """
    del chunksize  # pre-work-stealing knob; dispatch is per-spec now
    outcomes = list(
        iter_batch(
            specs,
            n_jobs=n_jobs,
            start_method=start_method,
            timeout=timeout,
            retries=retries,
            on_outcome=on_outcome,
            telemetry=telemetry,
            sampling=sampling,
            profile=profile,
        )
    )
    outcomes.sort(key=lambda o: o.index)
    return outcomes
