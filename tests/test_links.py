"""Tests for trace-driven cellular links and wired links."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.link import CellularLink, WiredLink
from repro.sim.packet import ACK_PACKET_BYTES, make_data_packet
from repro.sim.queues import DropTailQueue
from repro.traces.generator import constant_rate_trace
from repro.traces.trace import Trace


def _pkt(seq=0, size=1500):
    return make_data_packet(flow_id=0, seq=seq, now=0.0, size=size)


class TestCellularLink:
    def _link(self, sim, trace=None, capacity=100, prop=0.0, loop=True):
        delivered = []
        link = CellularLink(
            sim,
            trace or Trace([0.1, 0.2, 0.3, 0.4], 0.5),
            DropTailQueue(capacity=capacity),
            prop_delay=prop,
            on_deliver=lambda p: delivered.append((sim.now, p)),
            loop=loop,
        )
        return link, delivered

    def test_delivers_at_opportunity_times(self):
        sim = Simulator()
        link, delivered = self._link(sim)
        for i in range(3):
            link.enqueue(_pkt(i))
        sim.run(until=1.0)
        assert [p.seq for _, p in delivered] == [0, 1, 2]
        assert [t for t, _ in delivered] == pytest.approx([0.1, 0.2, 0.3])

    def test_propagation_delay_added(self):
        sim = Simulator()
        link, delivered = self._link(sim, prop=0.05)
        link.enqueue(_pkt(0))
        sim.run(until=1.0)
        assert delivered[0][0] == pytest.approx(0.15)

    def test_trace_loops(self):
        sim = Simulator()
        trace = Trace([0.1], 0.5, name="one-per-half-second")
        link, delivered = self._link(sim, trace=trace)
        for i in range(3):
            link.enqueue(_pkt(i))
        sim.run(until=2.0)
        assert [t for t, _ in delivered] == pytest.approx([0.1, 0.6, 1.1])

    def test_no_loop_stops_at_trace_end(self):
        sim = Simulator()
        trace = Trace([0.1], 0.5)
        link, delivered = self._link(sim, trace=trace, loop=False)
        link.enqueue(_pkt(0))
        link.enqueue(_pkt(1))
        sim.run(until=5.0)
        assert len(delivered) == 1

    def test_opportunities_wasted_while_idle(self):
        sim = Simulator()
        link, delivered = self._link(sim)
        sim.run(until=0.25)  # opportunities at 0.1, 0.2 wasted
        link.enqueue(_pkt(0))
        sim.run(until=1.0)
        assert delivered[0][0] == pytest.approx(0.3)

    def test_multiple_small_packets_share_opportunity(self):
        sim = Simulator()
        link, delivered = self._link(sim)
        for i in range(5):
            link.enqueue(_pkt(i, size=ACK_PACKET_BYTES))
        sim.run(until=0.15)
        # 5 * 60 = 300 bytes <= 1500: all five ride the first opportunity.
        assert len(delivered) == 5
        assert all(t == pytest.approx(0.1) for t, _ in delivered)

    def test_full_size_packets_one_per_opportunity(self):
        sim = Simulator()
        link, delivered = self._link(sim)
        link.enqueue(_pkt(0))
        link.enqueue(_pkt(1))
        sim.run(until=0.15)
        assert len(delivered) == 1

    def test_drop_when_queue_full(self):
        sim = Simulator()
        link, _ = self._link(sim, capacity=2)
        assert link.enqueue(_pkt(0))
        assert link.enqueue(_pkt(1))
        assert not link.enqueue(_pkt(2))

    def test_counters(self):
        sim = Simulator()
        link, _ = self._link(sim)
        link.enqueue(_pkt(0))
        sim.run(until=1.0)
        assert link.delivered_packets == 1
        assert link.delivered_bytes == 1500

    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError):
            CellularLink(Simulator(), Trace([], 1.0), DropTailQueue())

    def test_throughput_matches_trace_capacity_when_saturated(self):
        sim = Simulator()
        trace = constant_rate_trace(1_500_000.0, 10.0)  # 1000 pkt/s
        link, delivered = self._link(sim, trace=trace)

        def refill():
            while link.queue_length < 50:
                link.enqueue(_pkt())
            sim.schedule(0.01, refill)

        refill()
        sim.run(until=2.0)
        rate = len(delivered) / 2.0
        assert rate == pytest.approx(1000.0, rel=0.02)


class TestWiredLink:
    def test_service_time_is_size_over_rate(self):
        sim = Simulator()
        delivered = []
        link = WiredLink(
            sim, rate=15000.0, queue=DropTailQueue(10), prop_delay=0.0,
            on_deliver=lambda p: delivered.append(sim.now),
        )
        link.enqueue(_pkt(0))  # 1500 B at 15 kB/s -> 0.1 s
        sim.run(until=1.0)
        assert delivered == pytest.approx([0.1])

    def test_back_to_back_service(self):
        sim = Simulator()
        delivered = []
        link = WiredLink(
            sim, rate=15000.0, queue=DropTailQueue(10), prop_delay=0.0,
            on_deliver=lambda p: delivered.append(sim.now),
        )
        link.enqueue(_pkt(0))
        link.enqueue(_pkt(1))
        sim.run(until=1.0)
        assert delivered == pytest.approx([0.1, 0.2])

    def test_propagation_after_service(self):
        sim = Simulator()
        delivered = []
        link = WiredLink(
            sim, rate=15000.0, queue=DropTailQueue(10), prop_delay=0.5,
            on_deliver=lambda p: delivered.append(sim.now),
        )
        link.enqueue(_pkt(0))
        sim.run(until=1.0)
        assert delivered == pytest.approx([0.6])

    def test_idle_then_resume(self):
        sim = Simulator()
        delivered = []
        link = WiredLink(
            sim, rate=15000.0, queue=DropTailQueue(10), prop_delay=0.0,
            on_deliver=lambda p: delivered.append(sim.now),
        )
        link.enqueue(_pkt(0))
        sim.run(until=0.5)
        link.enqueue(_pkt(1))
        sim.run(until=1.0)
        assert delivered == pytest.approx([0.1, 0.6])

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            WiredLink(Simulator(), rate=0.0, queue=DropTailQueue(10))

    def test_drop_when_full(self):
        sim = Simulator()
        link = WiredLink(sim, rate=1e6, queue=DropTailQueue(1), prop_delay=0.0)
        assert link.enqueue(_pkt(0))  # immediately in service
        assert link.enqueue(_pkt(1))  # queued
        assert not link.enqueue(_pkt(2))
