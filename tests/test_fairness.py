"""Multi-flow fairness tests (beyond the two-flow Figure-12 scenarios)."""

import pytest

from repro.core.proprate import PropRate
from repro.experiments.runner import FlowSpec, cellular_path_config, run_experiment
from repro.metrics.stats import jain_fairness
from repro.tcp.congestion import Bbr, Cubic, NewReno
from repro.traces.generator import constant_rate_trace


def _run_n_flows(factory, n, rate=2.0e6, duration=25.0, stagger=0.5):
    trace = constant_rate_trace(rate, duration + 1.0)
    config = cellular_path_config(trace)
    flows = [
        FlowSpec(cc_factory=factory, name=f"f{i}", start=i * stagger,
                 measure_start=10.0)
        for i in range(n)
    ]
    return run_experiment(config, flows, duration=duration, measure_start=10.0)


class TestManyFlowSharing:
    def test_four_proprate_flows_fill_link_without_starvation(self):
        """Delay-based control has the classic latecomer advantage (the
        newest flow's RD_min baseline already contains the others'
        standing queue), so equal shares are not expected — but the link
        must be filled and nobody fully starved."""
        results = _run_n_flows(lambda: PropRate(0.080), 4)
        tputs = [r.throughput for r in results]
        assert sum(tputs) > 0.7 * 2.0e6
        for t in tputs:
            assert t > 0.02 * 2.0e6

    def test_four_reno_flows_share_via_overflow(self):
        """Loss-based sharing needs losses: with a small buffer the
        flows synchronise on overflow and split the link."""
        trace = constant_rate_trace(2.0e6, 31.0)
        config = cellular_path_config(trace, buffer_packets=150)
        flows = [
            FlowSpec(cc_factory=NewReno, name=f"f{i}", start=i * 0.5,
                     measure_start=15.0)
            for i in range(4)
        ]
        results = run_experiment(config, flows, duration=30.0, measure_start=15.0)
        tputs = [r.throughput for r in results]
        assert sum(tputs) == pytest.approx(2.0e6, rel=0.15)
        assert jain_fairness(tputs) > 0.5

    def test_four_cubic_flows_fill_link(self):
        results = _run_n_flows(Cubic, 4)
        assert sum(r.throughput for r in results) > 0.85 * 2.0e6

    def test_bbr_flows_not_starved(self):
        """BBRv1 shares unevenly (Hock et al., cited in §6), but no flow
        should be shut out entirely."""
        results = _run_n_flows(Bbr, 3)
        for r in results:
            assert r.throughput > 0.02 * 2.0e6

    def test_proprate_aggregate_delay_stays_bounded(self):
        """Several latency-targeting flows should still keep the shared
        queue moderate: each regulates its own share of the buffer."""
        results = _run_n_flows(lambda: PropRate(0.040), 3)
        for r in results:
            assert r.delay.mean < 0.400


class TestMixedFlows:
    def test_proprate_low_vs_high_targets_share(self):
        trace = constant_rate_trace(2.0e6, 26.0)
        config = cellular_path_config(trace)
        flows = [
            FlowSpec(cc_factory=lambda: PropRate(0.020), name="low",
                     measure_start=8.0),
            FlowSpec(cc_factory=lambda: PropRate(0.120), name="high",
                     measure_start=8.0),
        ]
        results = run_experiment(config, flows, duration=25.0, measure_start=8.0)
        by_name = {r.name: r for r in results}
        # The higher-target flow pins the shared queue far above the low
        # flow's threshold, so the low flow concedes almost everything —
        # the paper's observation that a latency-minimising configuration
        # "would not be able to contend effectively" (§5.4), in its most
        # extreme same-algorithm form.  It must still make *some*
        # progress (the Monitor state keeps probing).
        assert by_name["high"].throughput > 0.8 * 2.0e6
        assert by_name["high"].throughput >= by_name["low"].throughput
        assert by_name["low"].delivered_bytes > 0
