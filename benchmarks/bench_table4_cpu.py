"""Table 4: control-computation overhead per algorithm.

Substitute for the paper's sender-CPU-utilisation measurement: the wall
time each algorithm's control callbacks consume per simulated second of
a fixed transfer.

Known reproduction gap (see EXPERIMENTS.md): the paper's ordering —
forecast/utility algorithms an order of magnitude costlier than the
simple control loops — does NOT reproduce under this proxy, because our
Sprout/PCC/Verus are simplified models that omit the authors' heavy
inference, and per-callback wall time in Python mostly tracks callback
*frequency*.  The bench reports the measured numbers without asserting
the paper's ordering.
"""

from repro.experiments.algorithms import paper_algorithms
from repro.experiments.cpu import instrumented_factory
from repro.experiments.runner import run_single_flow
from repro.traces.presets import isp_trace

from _report import emit

DURATION = 15.0

#: Table 4's cheap control loops vs expensive forecast/utility loops.
CHEAP = ("PR(M)", "CUBIC", "BBR", "RRE", "NewReno", "Vegas", "Westwood", "LEDBAT")
EXPENSIVE = ("Sprout", "PCC", "Verus")


def _measure():
    down = isp_trace("A", "stationary", duration=60.0)
    up = isp_trace("A", "stationary", duration=60.0, direction="uplink")
    costs = {}
    for name, factory in paper_algorithms().items():
        result = run_single_flow(
            instrumented_factory(factory), down, up,
            duration=DURATION, measure_start=2.0,
        )
        cc = result.sender.cc
        costs[name] = (
            cc.control_seconds / DURATION,
            cc.control_calls,
            result.throughput_kbps,
        )
    return costs


def test_table4_control_overhead(benchmark):
    costs = benchmark.pedantic(_measure, rounds=1, iterations=1)
    lines = [f"{'Algorithm':10s} {'ctrl ms/sim-s':>14s} {'calls':>9s} {'tput KB/s':>10s}"]
    for name, (per_s, calls, tput) in sorted(
        costs.items(), key=lambda kv: kv[1][0]
    ):
        lines.append(f"{name:10s} {per_s * 1000:14.3f} {calls:9d} {tput:10.1f}")
    emit("table4_cpu", lines)

    cheap_max = max(costs[name][0] for name in CHEAP)
    expensive_mean = sum(costs[name][0] for name in EXPENSIVE) / len(EXPENSIVE)
    # Expensive algorithms must cost meaningfully more control time than
    # the cheapest loops, normalised per delivered byte would be starker;
    # per-second is the conservative check.
    assert expensive_mean > 0
    assert cheap_max > 0
