"""Figure 13: inter-continental wired-path throughput.

CUBIC, BBR, PR(L), PR(H) and PR(max) over wired bottlenecks with the
RTTs of the paper's AWS endpoints (sender in Singapore).  Expected
shape: CUBIC highest, BBR generally below CUBIC, PR(L) within ~30% of
CUBIC, PR(H) slightly below BBR/CUBIC, and PR(max) — t̄_buff grown to
about RTT/2 — close to CUBIC.
"""

from repro.core.proprate import PropRate
from repro.experiments.scenarios import wired_path
from repro.traces.presets import WIRED_PATHS

from _report import emit

DURATION = 12.0


def _algorithms(rtt):
    from repro.tcp.congestion import Bbr, Cubic

    # On high-BDP wired paths the buffer-emptied regime is ruinous: each
    # deliberate idle period wastes a full feedback lag (~RTT >> T̄) of a
    # fat pipe.  The latency budgets are therefore chosen to place every
    # configuration in the buffer-full regime (L_max − RTT = 2·t̄_buff,
    # exactly the Eq. 6 crossover), which is consistent with the paper's
    # wired results — PR(L) within ~30% of CUBIC — and with §5.4 leaving
    # wired target selection as future work.
    return {
        "CUBIC": Cubic,
        "BBR": Bbr,
        "PR(L)": lambda: PropRate(0.020, lmax=rtt + 0.040),
        "PR(H)": lambda: PropRate(0.080, lmax=rtt + 0.160),
        # §5.4: throughput keeps rising with the target until ~RTT/2.
        "PR(max)": lambda: PropRate(max(0.020, rtt / 2.0), lmax=2.0 * rtt),
    }


def _run():
    table = {}
    for region, (rate, rtt, _buf) in WIRED_PATHS.items():
        table[region] = {
            name: wired_path(factory, region=region, duration=DURATION,
                             measure_start=4.0)
            for name, factory in _algorithms(rtt).items()
        }
    return table


def test_fig13_wired_paths(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    names = ["CUBIC", "BBR", "PR(L)", "PR(H)", "PR(max)"]
    lines = ["Region " + " ".join(f"{n:>10s}" for n in names) + "   (MB/s)"]
    for region, row in table.items():
        lines.append(
            f"{region:6s} "
            + " ".join(f"{row[n].throughput / 1e6:10.2f}" for n in names)
        )
    emit("fig13_wired", lines)

    for region, row in table.items():
        cubic = row["CUBIC"].throughput
        # CUBIC effectively saturates a wired bottleneck.
        rate = WIRED_PATHS[region][0]
        assert cubic > 0.7 * rate, region
        # PR(L) sacrifices throughput but stays within a modest gap.
        assert row["PR(L)"].throughput > 0.45 * cubic, region
        # PR(max) approaches CUBIC.
        assert row["PR(max)"].throughput > 0.6 * cubic, region
        # The PropRate knob still orders throughput on wired paths.
        assert row["PR(max)"].throughput >= row["PR(L)"].throughput * 0.9, region
