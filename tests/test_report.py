"""Tests for CSV/gnuplot export."""

import csv

import pytest

from repro.experiments.frontier import FrontierPoint
from repro.experiments.runner import FlowSpec, cellular_path_config, run_experiment
from repro.report.export import (
    flow_results_to_csv,
    frontier_to_csv,
    gnuplot_scatter_script,
    timeseries_to_csv,
)
from repro.tcp.congestion import NewReno
from repro.traces.generator import constant_rate_trace


@pytest.fixture(scope="module")
def sample_result():
    trace = constant_rate_trace(1.0e6, 8.0)
    return run_experiment(
        cellular_path_config(trace),
        [FlowSpec(cc_factory=NewReno, name="reno")],
        duration=6.0,
        measure_start=2.0,
    )[0]


class TestFlowResultsCsv:
    def test_roundtrip(self, sample_result, tmp_path):
        path = flow_results_to_csv({"NewReno": sample_result}, tmp_path / "f.csv")
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 1
        row = rows[0]
        assert row["algorithm"] == "NewReno"
        assert float(row["throughput_kbps"]) == pytest.approx(
            sample_result.throughput_kbps, rel=0.01
        )
        assert float(row["mean_delay_ms"]) == pytest.approx(
            sample_result.delay.mean_ms, rel=0.01
        )

    def test_multiple_rows_ordered(self, sample_result, tmp_path):
        path = flow_results_to_csv(
            {"A": sample_result, "B": sample_result}, tmp_path / "f.csv"
        )
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert [r["algorithm"] for r in rows] == ["A", "B"]


class TestFrontierCsv:
    def test_columns_and_values(self, sample_result, tmp_path):
        points = [FrontierPoint(target_tbuff=0.040, result=sample_result)]
        path = frontier_to_csv(points, tmp_path / "frontier.csv")
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert rows[0]["target_tbuff_ms"] == "40.0"
        assert float(rows[0]["throughput_kbps"]) > 0


class TestTimeseriesCsv:
    def test_pairs_written(self, tmp_path):
        path = timeseries_to_csv(
            [0.0, 0.1, 0.2], [1.0, 2.0, 3.0], tmp_path / "ts.csv",
            value_label="queue_ms",
        )
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 3
        assert rows[1]["queue_ms"] == "2.0000"


class TestGnuplot:
    def test_script_references_csv(self, sample_result, tmp_path):
        csv_path = flow_results_to_csv({"X": sample_result}, tmp_path / "d.csv")
        gp = gnuplot_scatter_script(csv_path, tmp_path / "plot.gp",
                                    png_path="out.png")
        text = gp.read_text()
        assert "d.csv" in text
        assert "out.png" in text
        assert "plot" in text
