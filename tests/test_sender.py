"""Tests for the TCP sender: dispatch, loss recovery, pacing."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.packet import DATA_PACKET_BYTES
from repro.tcp.congestion.base import RateCongestionControl, WindowCongestionControl
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender


class FixedWindow(WindowCongestionControl):
    """A window algorithm that never reacts — pure dispatch testing."""

    name = "fixed"

    def __init__(self, cwnd=4.0):
        super().__init__()
        self.cwnd = cwnd
        self.ssthresh = float("inf")
        self.events = []

    def on_congestion(self, sample):
        self.events.append("congestion")

    def on_recovery_exit(self, sample):
        self.events.append("recovery_exit")

    def on_rto(self):
        self.events.append("rto")


class FixedRate(RateCongestionControl):
    """A rate algorithm pinned at a constant pacing rate."""

    name = "fixed-rate"

    def __init__(self, rate=150_000.0, round_mode="down"):
        super().__init__()
        self.pacing_rate = rate
        self.round_mode = round_mode


class Wire:
    """Deterministic loopback: sender -> receiver -> sender with a fixed
    one-way delay and an optional per-seq drop filter."""

    def __init__(self, sim, delay=0.01, drop_seqs=()):
        self.sim = sim
        self.delay = delay
        self.drop_seqs = set(drop_seqs)
        self.receiver = None
        self.sender = None
        self.sent_packets = []

    def send_data(self, pkt):
        self.sent_packets.append(pkt)
        if pkt.seq in self.drop_seqs and not pkt.retransmit:
            return
        self.sim.schedule(self.delay, lambda p=pkt: self.receiver.receive(p))

    def send_ack(self, pkt):
        self.sim.schedule(self.delay, lambda p=pkt: self.sender.on_ack_packet(p))


def _harness(cc, sim=None, drop_seqs=(), total=None, delay=0.01):
    sim = sim or Simulator()
    wire = Wire(sim, delay=delay, drop_seqs=drop_seqs)
    wire.receiver = TcpReceiver(sim, 0, send_ack=wire.send_ack, ts_granularity=0.0)
    sender = TcpSender(sim, 0, cc, send_packet=wire.send_data, total_segments=total)
    wire.sender = sender
    return sim, sender, wire


class TestWindowDispatch:
    def test_initial_window_sent_at_start(self):
        sim, sender, wire = _harness(FixedWindow(cwnd=4))
        sender.start()
        assert sender.segments_sent == 4
        assert sender.inflight == 4

    def test_ack_clocking_keeps_pipe_at_cwnd(self):
        sim, sender, wire = _harness(FixedWindow(cwnd=4))
        sender.start()
        sim.run(until=1.0)
        assert sender.inflight == 4
        assert sender.snd_una > 10

    def test_finite_transfer_completes(self):
        done = []
        sim = Simulator()
        wire = Wire(sim)
        wire.receiver = TcpReceiver(sim, 0, send_ack=wire.send_ack, ts_granularity=0.0)
        sender = TcpSender(
            sim, 0, FixedWindow(cwnd=4), send_packet=wire.send_data,
            total_segments=20, on_complete=lambda: done.append(sim.now),
        )
        wire.sender = sender
        sender.start()
        sim.run(until=5.0)
        assert sender.complete
        assert done and done[0] < 1.0
        assert sender.snd_una == 20

    def test_rtt_samples_taken(self):
        sim, sender, wire = _harness(FixedWindow(cwnd=2), delay=0.05)
        sender.start()
        sim.run(until=1.0)
        assert sender.srtt == pytest.approx(0.1, rel=0.05)
        assert sender.min_rtt == pytest.approx(0.1, rel=0.05)

    def test_double_start_rejected(self):
        sim, sender, wire = _harness(FixedWindow())
        sender.start()
        with pytest.raises(RuntimeError):
            sender.start()


class TestLossRecovery:
    def test_single_loss_fast_retransmitted(self):
        cc = FixedWindow(cwnd=8)
        sim, sender, wire = _harness(cc, drop_seqs={3})
        sender.start()
        sim.run(until=2.0)
        assert cc.events.count("congestion") == 1
        assert "recovery_exit" in cc.events
        assert sender.retransmissions == 1
        assert sender.rto_count == 0
        assert sender.snd_una > 20  # transfer continued past the hole

    def test_burst_loss_recovered_without_rto(self):
        cc = FixedWindow(cwnd=16)
        sim, sender, wire = _harness(cc, drop_seqs={5, 6, 7})
        sender.start()
        sim.run(until=2.0)
        assert sender.retransmissions == 3
        assert sender.rto_count == 0
        assert sender.snd_una > 30

    def test_congestion_event_fires_once_per_episode(self):
        cc = FixedWindow(cwnd=16)
        sim, sender, wire = _harness(cc, drop_seqs={5, 6, 7})
        sender.start()
        sim.run(until=2.0)
        assert cc.events.count("congestion") == 1

    def test_lost_total_counted(self):
        cc = FixedWindow(cwnd=16)
        sim, sender, wire = _harness(cc, drop_seqs={5, 9})
        sender.start()
        sim.run(until=2.0)
        assert sender.lost_total == 2

    def test_delivered_total_tracks_unique_segments(self):
        cc = FixedWindow(cwnd=8)
        sim, sender, wire = _harness(cc, drop_seqs={3}, total=30)
        sender.start()
        sim.run(until=5.0)
        assert sender.delivered_total >= 30


class TestRtoBehaviour:
    def test_total_blackout_triggers_rto(self):
        class BlackholeWire(Wire):
            def send_data(self, pkt):
                self.sent_packets.append(pkt)
                # nothing ever arrives

        sim = Simulator()
        wire = BlackholeWire(sim)
        wire.receiver = TcpReceiver(sim, 0, send_ack=wire.send_ack, ts_granularity=0.0)
        cc = FixedWindow(cwnd=4)
        sender = TcpSender(sim, 0, cc, send_packet=wire.send_data)
        wire.sender = sender
        sender.start()
        sim.run(until=10.0)
        assert sender.rto_count >= 2
        assert "rto" in cc.events

    def test_rto_backoff_spacing_grows(self):
        class BlackholeWire(Wire):
            def send_data(self, pkt):
                self.sent_packets.append((self.sim.now, pkt))

        sim = Simulator()
        wire = BlackholeWire(sim)
        cc = FixedWindow(cwnd=1)
        sender = TcpSender(sim, 0, cc, send_packet=wire.send_data)
        wire.sender = sender
        sender.start()
        sim.run(until=20.0)
        times = [t for t, _ in wire.sent_packets]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(later >= earlier * 1.5 for earlier, later in zip(gaps, gaps[1:]))

    def test_recovery_after_rto_is_not_fast_recovery(self):
        """Post-RTO the sender must leave the recovery flag cleared so
        slow start can grow the window again."""
        drops = set(range(4, 30))

        class LossyWire(Wire):
            def send_data(self, pkt):
                self.sent_packets.append(pkt)
                if pkt.seq in drops and not pkt.retransmit:
                    return
                self.sim.schedule(self.delay, lambda p=pkt: self.receiver.receive(p))

        sim = Simulator()
        wire = LossyWire(sim)
        wire.receiver = TcpReceiver(sim, 0, send_ack=wire.send_ack, ts_granularity=0.0)
        cc = FixedWindow(cwnd=8)
        sender = TcpSender(sim, 0, cc, send_packet=wire.send_data)
        wire.sender = sender
        sender.start()
        sim.run(until=10.0)
        assert not sender.in_recovery
        assert sender.snd_una > 50


class TestRatePacing:
    def test_paced_rate_matches_target(self):
        rate = 150_000.0  # 100 pkt/s
        sim, sender, wire = _harness(FixedRate(rate=rate))
        sender.start()
        sim.run(until=5.0)
        sent_rate = sender.segments_sent * DATA_PACKET_BYTES / 5.0
        assert sent_rate == pytest.approx(rate, rel=0.02)

    def test_round_up_mode_at_least_target(self):
        rate = 100_000.0  # 0.0667 pkt/tick: round-up must not overshoot
        sim, sender, wire = _harness(FixedRate(rate=rate, round_mode="up"))
        sender.start()
        sim.run(until=5.0)
        sent_rate = sender.segments_sent * DATA_PACKET_BYTES / 5.0
        # Deficit accounting keeps long-run rate at the target even when
        # every tick rounds up.
        assert sent_rate == pytest.approx(rate, rel=0.05)

    def test_zero_rate_sends_nothing_without_burst(self):
        sim, sender, wire = _harness(FixedRate(rate=0.0))
        sender.start()
        sim.run(until=1.0)
        assert sender.segments_sent == 0

    def test_burst_request_sent_immediately(self):
        cc = FixedRate(rate=0.0)
        sim, sender, wire = _harness(cc)
        sender.start()
        cc.request_burst(10)
        sim.run(until=0.01)
        assert sender.segments_sent == 10

    def test_stop_halts_pacing(self):
        sim, sender, wire = _harness(FixedRate(rate=1.5e6))
        sender.start()
        sim.run(until=0.5)
        sent = sender.segments_sent
        sender.stop()
        sim.run(until=1.0)
        assert sender.segments_sent == sent

    def test_retransmissions_share_paced_stream(self):
        cc = FixedRate(rate=300_000.0)
        sim, sender, wire = _harness(cc, drop_seqs={5})
        sender.start()
        sim.run(until=3.0)
        assert sender.retransmissions >= 1
        assert sender.rto_count == 0
        assert sender.snd_una > 100
