"""Seeded replication of experiments (the paper's "repeated many times").

Real cellular conditions vary run to run, so the paper repeats each
experiment and reports averages (§5.3).  The simulation analogue is to
re-generate the trace with different seeds and aggregate: the seed plays
the role of "the network on a different day".

:func:`replicate_single_flow` runs one algorithm over N seed-variants of
a trace spec and reduces the outcomes to means with bootstrap confidence
intervals; :func:`compare_algorithms` does it for several algorithms on
the *same* seed set (paired by seed, so comparisons are fair).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.runner import CcFactory, FlowResult, run_single_flow
from repro.metrics.compare import MeanCI, bootstrap_mean_ci
from repro.traces.generator import TraceSpec, generate_cellular_trace

#: Seed offset separating downlink and uplink synthesis per replication.
_UPLINK_SEED_OFFSET = 5000

#: Uplink scaled to a quarter of the downlink, as in the presets.
_UPLINK_RATIO = 0.25


@dataclass(frozen=True)
class ReplicatedResult:
    """Aggregate of one algorithm across seed replications."""

    name: str
    throughput: MeanCI            # bytes/second
    mean_delay: MeanCI            # seconds
    p95_delay: MeanCI             # seconds
    runs: List[FlowResult]

    @property
    def throughput_kbps(self) -> float:
        return self.throughput.mean / 1000.0


def _uplink_spec(spec: TraceSpec, seed: int) -> TraceSpec:
    return TraceSpec(
        name=f"{spec.name}-ul#s{seed}",
        mean_throughput=spec.mean_throughput * _UPLINK_RATIO,
        std_throughput=spec.std_throughput * _UPLINK_RATIO,
        duration=spec.duration,
        seed=seed + _UPLINK_SEED_OFFSET,
        coherence_time=spec.coherence_time,
        outage_fraction=spec.outage_fraction,
        outage_mean_duration=spec.outage_mean_duration,
    )


def replicate_single_flow(
    cc_factory: CcFactory,
    trace_spec: TraceSpec,
    seeds: Sequence[int],
    duration: float = 25.0,
    measure_start: float = 4.0,
    name: str = "",
    confidence: float = 0.95,
) -> ReplicatedResult:
    """Run one algorithm over seed-variants of ``trace_spec``."""
    if not seeds:
        raise ValueError("need at least one seed")
    runs: List[FlowResult] = []
    for seed in seeds:
        down = generate_cellular_trace(trace_spec.with_seed(seed))
        up = generate_cellular_trace(_uplink_spec(trace_spec, seed))
        runs.append(
            run_single_flow(
                cc_factory, down, up,
                duration=duration, measure_start=measure_start,
                name=f"{name or 'flow'}#s{seed}",
            )
        )
    return ReplicatedResult(
        name=name or "flow",
        throughput=bootstrap_mean_ci(
            [r.throughput for r in runs], confidence=confidence
        ),
        mean_delay=bootstrap_mean_ci(
            [r.delay.mean for r in runs if r.delay.count], confidence=confidence
        ),
        p95_delay=bootstrap_mean_ci(
            [r.delay.p95 for r in runs if r.delay.count], confidence=confidence
        ),
        runs=runs,
    )


def compare_algorithms(
    algorithms: Dict[str, CcFactory],
    trace_spec: TraceSpec,
    seeds: Sequence[int],
    duration: float = 25.0,
    measure_start: float = 4.0,
    confidence: float = 0.95,
) -> Dict[str, ReplicatedResult]:
    """Replicate several algorithms over the *same* seed set."""
    return {
        name: replicate_single_flow(
            factory, trace_spec, seeds,
            duration=duration, measure_start=measure_start,
            name=name, confidence=confidence,
        )
        for name, factory in algorithms.items()
    }


def format_comparison(results: Dict[str, ReplicatedResult]) -> List[str]:
    """Rows of a mean±CI comparison table."""
    lines = [
        f"{'Algorithm':10s} {'tput KB/s':>10s} {'±':>6s} "
        f"{'mean ms':>8s} {'±':>6s} {'p95 ms':>8s} {'±':>6s} {'n':>3s}"
    ]
    for name, res in results.items():
        lines.append(
            f"{name:10s} {res.throughput.mean / 1000:10.1f} "
            f"{res.throughput.half_width / 1000:6.1f} "
            f"{res.mean_delay.mean * 1000:8.1f} "
            f"{res.mean_delay.half_width * 1000:6.1f} "
            f"{res.p95_delay.mean * 1000:8.1f} "
            f"{res.p95_delay.half_width * 1000:6.1f} "
            f"{res.throughput.n:3d}"
        )
    return lines
