"""Result export: CSV tables and gnuplot scripts for the figures."""

from repro.report.export import (
    flow_results_to_csv,
    frontier_to_csv,
    gnuplot_scatter_script,
    timeseries_to_csv,
)

__all__ = [
    "flow_results_to_csv",
    "frontier_to_csv",
    "gnuplot_scatter_script",
    "timeseries_to_csv",
]
