"""Tests for the :mod:`repro.obs` telemetry spine.

Covers the three layers: the event sink (rotation, format), the metrics
registry (merge semantics, canonical views), and the run/batch plumbing
(observer-only invariant, worker-part merging, the ``repro trace``
CLI).
"""

import json
import os

import pytest

import repro.obs as obs
from repro.experiments.parallel import (
    RunSpec,
    collect,
    proprate_spec,
    run_batch,
)
from repro.experiments.runner import run_single_flow
from repro.core.proprate import PropRate
from repro.traces.cache import as_ref
from repro.traces.presets import isp_trace


def _down(duration=30.0):
    return isp_trace("A", "stationary", duration=duration)


def _read_jsonl(path):
    records = []
    for fpath in obs.iter_trace_files(path):
        with open(fpath, encoding="utf-8") as fh:
            records.extend(json.loads(line) for line in fh if line.strip())
    return records


# ----------------------------------------------------------------------
# Sink
# ----------------------------------------------------------------------
class TestJsonlSink:
    def test_meta_header_first(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = obs.JsonlSink(path)
        sink.close()
        records = _read_jsonl(str(path))
        assert records[0]["kind"] == "meta"
        assert records[0]["format"] == obs.FORMAT

    def test_rotation_keeps_chronology(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = obs.JsonlSink(path, rotate_bytes=200)
        for i in range(50):
            sink.write({"t": float(i), "kind": "x", "i": i})
        sink.close()
        assert sink.rotations >= 1
        records = [r for r in _read_jsonl(path) if r["kind"] == "x"]
        assert [r["i"] for r in records] == list(range(50))

    def test_unjsonable_values_degrade_to_repr(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = obs.JsonlSink(path, header=False)
        sink.write({"t": 0.0, "kind": "x", "cb": object()})
        sink.close()
        (record,) = _read_jsonl(path)
        assert "object" in record["cb"]

    def test_close_idempotent(self, tmp_path):
        sink = obs.JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()

    def test_part_files_not_rotations(self, tmp_path):
        base = str(tmp_path / "t.jsonl")
        obs.JsonlSink(base).close()
        obs.JsonlSink(f"{base}.part0001.jsonl").close()
        assert obs.iter_trace_files(base) == [base]

    def test_record_exactly_at_rotation_limit(self, tmp_path):
        # A write that lands exactly on rotate_bytes triggers rotation
        # *after* the record is safely in the old segment: nothing is
        # lost, split, or duplicated at the boundary.
        path = str(tmp_path / "t.jsonl")
        sink = obs.JsonlSink(path, rotate_bytes=100, header=False)
        record = '{"pad":"%s"}' % ("y" * 89)  # 99 chars; +newline == limit
        assert len(record) + 1 == 100
        sink.write_line(record)
        assert sink.rotations == 1
        sink.write_line('{"after":1}')
        sink.close()
        files = obs.iter_trace_files(path)
        assert files == [f"{path}.1", path]
        assert _read_jsonl(path) == [{"pad": "y" * 89}, {"after": 1}]

    def test_rotated_segments_carry_meta_headers(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = obs.JsonlSink(path, rotate_bytes=200)
        for i in range(50):
            sink.write({"t": float(i), "kind": "x", "i": i})
        sink.close()
        assert sink.rotations >= 1
        for fpath in obs.iter_trace_files(path):
            with open(fpath, encoding="utf-8") as fh:
                first = json.loads(fh.readline())
            assert first["kind"] == "meta"
        # Continuations are distinguishable from fresh traces.
        with open(f"{path}.1", encoding="utf-8") as fh:
            assert "rotation" not in json.loads(fh.readline())
        with open(path, encoding="utf-8") as fh:
            assert json.loads(fh.readline())["rotation"] == sink.rotations

    def test_reopening_removes_stale_rotation_segments(self, tmp_path):
        # A second run writing to the same path must not leave the
        # first run's rotated segments to pollute readers.
        path = str(tmp_path / "t.jsonl")
        sink = obs.JsonlSink(path, rotate_bytes=200)
        for i in range(50):
            sink.write({"t": float(i), "kind": "x", "i": i})
        sink.close()
        assert len(obs.iter_trace_files(path)) > 1
        fresh = obs.JsonlSink(path)
        fresh.write({"t": 0.0, "kind": "x", "i": 99})
        fresh.close()
        assert obs.iter_trace_files(path) == [path]
        assert [r["i"] for r in _read_jsonl(path) if r["kind"] == "x"] == [99]


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_snapshot_shapes(self):
        reg = obs.MetricsRegistry()
        reg.counter("c").add(3)
        reg.gauge("g").track_max(7)
        reg.gauge("g").track_max(5)  # below the peak: ignored
        h = reg.histogram("h")
        h.observe(1.0)
        h.observe(3.0)
        snap = reg.snapshot()
        assert snap["c"] == 3
        assert snap["g"] == {"gauge": 7}
        assert snap["h"] == {"count": 2, "sum": 4.0, "min": 1.0, "max": 3.0}

    def test_empty_histogram_omitted(self):
        reg = obs.MetricsRegistry()
        reg.histogram("h")
        assert "h" not in reg.snapshot()

    def test_merge_value_semantics(self):
        assert obs.merge_value(2, 3) == 5  # counters: sum
        assert obs.merge_value({"gauge": 2}, {"gauge": 9}) == {"gauge": 9}
        merged = obs.merge_value(
            {"count": 1, "sum": 2.0, "min": 2.0, "max": 2.0},
            {"count": 2, "sum": 1.0, "min": 0.5, "max": 0.6},
        )
        assert merged == {"count": 3, "sum": 3.0, "min": 0.5, "max": 2.0}

    def test_merge_value_empty_histogram_is_identity(self):
        # An empty histogram's min/max sentinels (inf/-inf) must not
        # poison the merged cell — empty merges as identity, both ways.
        full = {"count": 2, "sum": 4.0, "min": 1.0, "max": 3.0}
        empty = {"count": 0, "sum": 0.0,
                 "min": float("inf"), "max": float("-inf")}
        assert obs.merge_value(full, empty) == full
        assert obs.merge_value(empty, full) == full
        assert obs.merge_value(empty, dict(empty))["count"] == 0

    def test_merge_value_gauge_histogram_conflict_peak_wins(self):
        # A key recorded as a gauge on one side and a histogram on the
        # other (e.g. track_max vs observe across versions) merges to
        # the overall peak, as a gauge — the only order-independent
        # choice.  An empty histogram contributes no peak.
        hist = {"count": 2, "sum": 4.0, "min": 1.0, "max": 3.0}
        assert obs.merge_value({"gauge": 2}, hist) == {"gauge": 3}
        assert obs.merge_value(hist, {"gauge": 2}) == {"gauge": 3}
        assert obs.merge_value({"gauge": 5}, hist) == {"gauge": 5}
        empty = {"count": 0, "sum": 0.0,
                 "min": float("inf"), "max": float("-inf")}
        assert obs.merge_value({"gauge": 2}, empty) == {"gauge": 2}

    def test_merge_snapshots_normalizes_flow_prefix(self):
        total = {}
        obs.merge_snapshots(total, {"flow0.acks": 10, "run.engine.events": 5})
        obs.merge_snapshots(total, {"flow1.acks": 7, "run.engine.events": 2})
        assert total == {"flows.acks": 17, "run.engine.events": 7}

    def test_flow_metrics_view(self):
        snap = {"flow0.acks": 4, "flow1.acks": 9, "run.engine.events": 2}
        view = obs.flow_metrics_view(snap, 1)
        assert view == {"acks": 9, "run.engine.events": 2}

    def test_canonical_metrics_excludes_timing(self):
        snap = {
            "acks": 1,
            "timing.ack_cost_us": {"count": 1, "sum": 2.0, "min": 2.0, "max": 2.0},
            "run.timing.wall_s": {"gauge": 0.5},
            "peak": {"gauge": 3},
        }
        canon = obs.canonical_metrics(snap)
        keys = [k for k, *_ in canon]
        assert "acks" in keys and "peak" in keys
        assert not any("timing" in k for k in keys)
        # Deterministic: a dict with reversed insertion order canonicalizes
        # identically.
        assert canon == obs.canonical_metrics(dict(reversed(list(snap.items()))))


# ----------------------------------------------------------------------
# Tracer lifecycle
# ----------------------------------------------------------------------
class TestTracerLifecycle:
    def test_off_by_default(self):
        assert obs.current_tracer() is None

    def test_double_activation_rejected(self, tmp_path):
        with obs.tracing(tmp_path / "a.jsonl") as tracer:
            assert obs.current_tracer() is tracer
            with pytest.raises(RuntimeError):
                obs.activate(tracer)
        assert obs.current_tracer() is None

    def test_resolve_prefers_explicit_then_ambient(self, tmp_path):
        explicit = obs.Tracer(obs.JsonlSink(tmp_path / "x.jsonl"))
        tracer, owned = obs.resolve_tracer(explicit)
        assert tracer is explicit and not owned
        explicit.close()
        with obs.tracing(tmp_path / "a.jsonl") as ambient:
            tracer, owned = obs.resolve_tracer(None)
            assert tracer is ambient and not owned
        tracer, owned = obs.resolve_tracer(None)
        assert tracer is None and not owned

    def test_env_switch(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs.TELEMETRY_ENV, "0")
        assert obs.env_trace_path() is None
        monkeypatch.setenv(obs.TELEMETRY_ENV, str(tmp_path / "pfx"))
        path = obs.env_trace_path()
        assert path is not None and path.startswith(str(tmp_path / "pfx"))
        monkeypatch.setenv(obs.TELEMETRY_ENV, "1")
        assert obs.env_trace_path().startswith("telemetry" + os.sep)


# ----------------------------------------------------------------------
# Run-level plumbing
# ----------------------------------------------------------------------
class TestRunnerTelemetry:
    def _run(self, **kwargs):
        return run_single_flow(
            PropRate, _down(), duration=4.0, measure_start=1.0, **kwargs
        )

    def test_disabled_is_observer_free(self):
        result = self._run()
        assert result.metrics is None
        assert len(result.summary()) == 11

    def test_enabled_base_summary_bit_identical(self, tmp_path):
        baseline = self._run()
        traced = self._run(telemetry=str(tmp_path / "t.jsonl"))
        assert traced.summary()[:-1] == baseline.summary()
        assert obs.current_tracer() is None  # deactivated after the run

    def test_trace_contents(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        self._run(telemetry=path)
        kinds = {r["kind"] for r in _read_jsonl(path)}
        assert {
            "meta", "run.start", "run.end", "metrics",
            obs.CC_STATE, obs.CC_ESTIMATOR, obs.QUEUE_SAMPLE,
        } <= kinds

    def test_flow_metrics_populated(self, tmp_path):
        result = self._run(telemetry=str(tmp_path / "t.jsonl"))
        assert result.metrics["acks"] > 0
        assert result.metrics["segments_sent"] > 0
        assert "run.engine.events" in result.metrics
        assert "cc.dwell.fill" in result.metrics

    def test_run_twice_with_same_ambient_tracer(self, tmp_path):
        # Nested runs share an ambient tracer without double-activation.
        with obs.tracing(tmp_path / "t.jsonl"):
            self._run()
            self._run()
        records = _read_jsonl(str(tmp_path / "t.jsonl"))
        assert sum(r["kind"] == "run.end" for r in records) == 2


# ----------------------------------------------------------------------
# Batch merge
# ----------------------------------------------------------------------
class TestBatchTelemetry:
    def _specs(self, n=2):
        down = as_ref(_down())
        return [
            RunSpec(
                cc=proprate_spec(0.040),
                downlink=down,
                duration=4.0,
                measure_start=1.0,
                name=f"run{i}",
            )
            for i in range(n)
        ]

    def test_parallel_merge_tags_runs(self, tmp_path):
        base = str(tmp_path / "batch.jsonl")
        outcomes = run_batch(self._specs(3), n_jobs=2, telemetry=base)
        assert all(o.ok for o in outcomes)
        records = _read_jsonl(base)
        assert {r.get("run") for r in records if "run" in r} == {0, 1, 2}
        assert sum(r["kind"] == obs.SCHED_DISPATCH for r in records) == 3
        assert not [p for p in os.listdir(tmp_path) if ".part" in p]

    def test_batch_metrics_record(self, tmp_path):
        base = str(tmp_path / "batch.jsonl")
        run_batch(self._specs(2), n_jobs=2, telemetry=base)
        (batch,) = [
            r for r in _read_jsonl(base)
            if r["kind"] == "metrics" and r.get("scope") == "batch"
        ]
        metrics = batch["metrics"]
        assert metrics["batch.sched.dispatched"] == 2
        assert metrics["batch.sched.outcomes"] == 2
        assert metrics["flows.acks"] > 0  # per-run snapshots folded in

    def test_serial_and_parallel_summaries_match(self, tmp_path):
        specs = self._specs(2)
        serial = collect(
            run_batch(specs, n_jobs=1, telemetry=str(tmp_path / "s.jsonl"))
        )
        parallel = collect(
            run_batch(specs, n_jobs=2, telemetry=str(tmp_path / "p.jsonl"))
        )
        assert [r.summary() for r in serial] == [r.summary() for r in parallel]

    def test_rotated_part_files_merge_in_order(self, tmp_path):
        # A worker whose part trace rotated still merges completely and
        # chronologically into the batch trace, tagged with its run.
        from repro.experiments.parallel import _BatchTelemetry

        base = str(tmp_path / "batch.jsonl")
        bt = _BatchTelemetry(base)
        spec = bt.assign(0, self._specs(1)[0])
        part = obs.JsonlSink(spec.telemetry, rotate_bytes=120)
        for i in range(40):
            part.write({"t": float(i), "kind": "x", "i": i})
        part.close()
        assert part.rotations >= 1
        bt.finalize()
        records = [r for r in _read_jsonl(base) if r.get("kind") == "x"]
        assert [r["i"] for r in records] == list(range(40))
        assert all(r["run"] == 0 for r in records)
        assert not [p for p in os.listdir(tmp_path) if ".part" in p]

    def test_spec_with_own_path_untouched(self, tmp_path):
        own = str(tmp_path / "own.jsonl")
        spec = self._specs(1)[0]
        spec = RunSpec(
            cc=spec.cc, downlink=spec.downlink, duration=spec.duration,
            measure_start=spec.measure_start, name=spec.name, telemetry=own,
        )
        run_batch([spec], n_jobs=1, telemetry=str(tmp_path / "batch.jsonl"))
        assert os.path.exists(own)  # kept, not merged or deleted


# ----------------------------------------------------------------------
# Analyzer + CLI
# ----------------------------------------------------------------------
class TestTraceAnalysis:
    @pytest.fixture(scope="class")
    def batch_trace(self, tmp_path_factory):
        base = str(tmp_path_factory.mktemp("obs") / "batch.jsonl")
        down = as_ref(_down())
        specs = [
            RunSpec(cc=proprate_spec(t), downlink=down, duration=6.0,
                    measure_start=1.0, name=f"PR{i}")
            for i, t in enumerate((0.020, 0.060))
        ]
        run_batch(specs, n_jobs=2, telemetry=base)
        return base

    def test_read_trace_missing_raises(self, tmp_path):
        from repro.obs import analyze

        with pytest.raises(FileNotFoundError):
            analyze.read_trace(str(tmp_path / "nope.jsonl"))

    def test_summary_reconstructs_sawtooth_and_nfl(self, batch_trace):
        from repro.obs import analyze

        report = analyze.summarize_trace(analyze.read_trace(batch_trace))
        assert "State dwell" in report
        assert "fill" in report and "drain" in report
        assert "NFL threshold convergence" in report
        assert "Queue sawtooth" in report
        assert "downlink" in report

    def test_state_dwell_closes_open_state(self, batch_trace):
        from repro.obs import analyze

        events = analyze.read_trace(batch_trace)
        for states in analyze.state_dwell(events).values():
            total = sum(secs for _, secs in states.values())
            assert total == pytest.approx(6.0, abs=0.5)

    def test_diff_traces(self, batch_trace):
        from repro.obs import analyze

        events = analyze.read_trace(batch_trace)
        report = analyze.diff_traces(events, events)
        assert report.startswith("Diff:")

    def test_trace_cli_summary(self, batch_trace, capsys):
        from repro.__main__ import main

        main(["trace", batch_trace])
        out = capsys.readouterr().out
        assert "Event counts" in out
        assert "cc.state" in out

    def test_trace_cli_diff(self, batch_trace, capsys):
        from repro.__main__ import main

        main(["trace", batch_trace, "--diff", batch_trace])
        assert "Diff:" in capsys.readouterr().out

    def test_render_plot_waveform(self, batch_trace):
        from repro.obs import analyze

        events = analyze.read_trace(batch_trace)
        plot = analyze.render_plot(events, width=60, height=6)
        # Both runs of the batch get their own time axis and lanes.
        assert "run 0" in plot and "run 1" in plot
        assert "buffering delay" in plot and "downlink" in plot
        assert "state  |" in plot
        assert "legend:" in plot and "F=fill" in plot
        # Lanes are aligned: every lane row is exactly `width` wide.
        for line in plot.splitlines():
            if "|" in line and "flow" not in line and "cc.loss" not in line:
                assert len(line.split("|", 1)[1]) == 60

    def test_render_plot_empty_trace(self):
        from repro.obs import analyze

        assert "nothing" in analyze.render_plot([]) or \
            "no queue samples" in analyze.render_plot([])

    def test_trace_cli_plot(self, batch_trace, capsys):
        from repro.__main__ import main

        main(["trace", batch_trace, "--plot", "--plot-width", "50"])
        out = capsys.readouterr().out
        assert "buffering delay" in out
        assert "legend:" in out

    def test_run_cli_telemetry_flag(self, tmp_path, capsys):
        from repro.__main__ import main

        path = str(tmp_path / "run.jsonl")
        main(["run", "PropRate", "--target", "40", "--duration", "3",
              "--warmup", "1", "--telemetry", path])
        assert "KB/s" in capsys.readouterr().out
        assert any(r["kind"] == "run.end" for r in _read_jsonl(path))
