"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` needs bdist_wheel, which this
offline environment lacks; `python setup.py develop` (or the .pth
fallback below) provides the same editable install.  All metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
