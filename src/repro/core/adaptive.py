"""Adaptive target-delay PropRate (the paper's §6 work-in-progress).

The discussion section notes a PropRate shortcoming under *shallow*
buffers: if the configured target buffer delay exceeds what the buffer
can hold, the flow behaves like BBR — persistent overflow losses — and
proposes "dynamic adjustment of the target buffer delay and reacting to
consecutive packet losses" as future work.  This module implements that
extension:

* every loss (fast-retransmit) episode within a short memory window
  counts as evidence the operating point overflows the buffer; after
  ``LOSS_EPISODES_TO_SHRINK`` consecutive episodes the *effective*
  target is cut multiplicatively (floored at ``min_target``);
* after a sustained loss-free period the effective target recovers
  additively toward the configured target.

The result keeps the configured latency budget as a ceiling while
automatically de-tuning aggressiveness to the actual buffer depth — the
tunability-vs-BBR argument of §6 made automatic.

The decision rule itself lives in :class:`TargetAdjuster`, a pure
event→target policy with no transport state.  It is consumed at two
granularities behind the :mod:`repro.env` control-plane split:

* per-ACK, in-path, by :class:`AdaptivePropRate` (the shootout
  algorithm, registered as ``PR(A)`` / ``adaptive-proprate``);
* per feedback epoch, out-of-path, by
  :class:`repro.env.policies.AdaptiveTargetPolicy`, which observes a
  :class:`~repro.env.CcEnv` and emits ``{"target": …}`` actions.
"""

from __future__ import annotations

from typing import Optional

from repro.core.proprate import PropRate
from repro.tcp.congestion.base import AckSample

#: Consecutive loss episodes (within MEMORY of each other) that trigger
#: a target cut.
LOSS_EPISODES_TO_SHRINK = 2

#: Two loss episodes further apart than this are unrelated.
EPISODE_MEMORY = 2.0

#: Multiplicative target decrease per trigger.
SHRINK_FACTOR = 0.7

#: Loss-free time before the target starts recovering.
RECOVERY_QUIET_TIME = 5.0

#: Additive recovery per quiet interval (seconds of target delay).
RECOVERY_STEP = 0.005


class TargetAdjuster:
    """The §6 target-adjustment rule as a pure decision policy.

    Feed it loss / timeout / quiet-time events and the current
    effective target; it answers with the new target to apply (or
    ``None`` for "keep").  It never touches transport state, so the
    same instance semantics hold whether it is driven per ACK (the
    in-sender :class:`AdaptivePropRate`) or per observation epoch (the
    env policy).
    """

    def __init__(self, configured_target: float, min_target: float) -> None:
        if not 0 < min_target <= configured_target:
            raise ValueError("min_target must be in (0, target]")
        self.configured_target = configured_target
        self.min_target = min_target
        self._consecutive_episodes = 0
        self._last_episode_at: Optional[float] = None
        self._last_loss_at: Optional[float] = None
        self._last_recovery_at: Optional[float] = None

    def clamp(self, target: float) -> float:
        return min(self.configured_target, max(self.min_target, target))

    def on_loss(self, now: float, target: float) -> Optional[float]:
        """A fast-retransmit episode at ``now``; maybe shrink."""
        self._last_loss_at = now
        if (
            self._last_episode_at is not None
            and now - self._last_episode_at <= EPISODE_MEMORY
        ):
            self._consecutive_episodes += 1
        else:
            self._consecutive_episodes = 1
        self._last_episode_at = now
        if self._consecutive_episodes >= LOSS_EPISODES_TO_SHRINK:
            self._consecutive_episodes = 0
            return self.clamp(target * SHRINK_FACTOR)
        return None

    def on_rto(self, target: float) -> float:
        """A timeout is the strongest overflow signal of all."""
        return self.clamp(target * SHRINK_FACTOR)

    def on_quiet(self, now: float, target: float) -> Optional[float]:
        """Loss-free progress at ``now``; maybe recover one step."""
        quiet_since = self._last_loss_at if self._last_loss_at is not None else 0.0
        if now - quiet_since < RECOVERY_QUIET_TIME:
            return None
        if target >= self.configured_target:
            return None
        if (
            self._last_recovery_at is None
            or now - self._last_recovery_at >= RECOVERY_QUIET_TIME
        ):
            self._last_recovery_at = now
            return self.clamp(target + RECOVERY_STEP)
        return None


def retarget(cc: PropRate, new_target: float) -> bool:
    """Point a live PropRate instance at a new target buffer delay.

    Sets ``target_buffer_delay`` and re-centres the threshold feedback
    loop's band on the new target (same construction as PropRate's
    ``__init__``), clamping the current threshold into the band.
    Returns False when the change is below the 1 ns dead-band (nothing
    mutated).  Shared by :class:`AdaptivePropRate` and the env action
    path (``{"target": …}``).
    """
    if abs(new_target - cc.target_buffer_delay) < 1e-9:
        return False
    cc.target_buffer_delay = new_target
    feedback = cc.feedback
    feedback.target = new_target
    feedback.min_threshold = max(0.005, new_target / 2.0)
    feedback.max_threshold = min(1.0, new_target * 1.5)
    feedback.threshold = min(
        max(feedback.threshold, feedback.min_threshold),
        feedback.max_threshold,
    )
    return True


class AdaptivePropRate(PropRate):
    """PropRate with loss-driven dynamic adjustment of t̄_buff.

    Parameters are those of :class:`~repro.core.proprate.PropRate` plus
    ``min_target``, the floor the adaptive logic may shrink to.
    """

    name = "PropRate-A"

    def __init__(
        self,
        target_buffer_delay: float = 0.040,
        min_target: float = 0.005,
        **kwargs,
    ) -> None:
        super().__init__(target_buffer_delay=target_buffer_delay, **kwargs)
        self._adjuster = TargetAdjuster(target_buffer_delay, min_target)
        self.configured_target = target_buffer_delay
        self.min_target = min_target
        self.target_adjustments = 0

    # ------------------------------------------------------------------
    def _apply_target(self, new_target: float) -> None:
        if retarget(self, self._adjuster.clamp(new_target)):
            self.target_adjustments += 1

    def on_congestion(self, sample: AckSample) -> None:
        super().on_congestion(sample)
        proposed = self._adjuster.on_loss(sample.now, self.target_buffer_delay)
        if proposed is not None:
            self._apply_target(proposed)

    def on_rto(self) -> None:
        super().on_rto()
        self._apply_target(self._adjuster.on_rto(self.target_buffer_delay))

    def on_ack(self, sample: AckSample) -> None:
        super().on_ack(sample)
        proposed = self._adjuster.on_quiet(sample.now, self.target_buffer_delay)
        if proposed is not None:
            self._apply_target(proposed)
