"""Discrete-event simulation engine.

The engine is a classic calendar-queue event loop: callbacks are scheduled
at absolute simulated times and executed in time order.  Ties are broken by
insertion order so that runs are fully deterministic, which the whole
evaluation relies on (every benchmark is seeded and repeatable).

The engine knows nothing about networking; links, queues and TCP endpoints
are built on top of it.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and can be cancelled
    with :meth:`cancel`.  Cancellation is lazy: the entry stays in the heap
    and is skipped when popped, which is O(1) and adequate for the timer
    churn TCP retransmission produces.
    """

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f}{state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(0.5, lambda: print(sim.now))
        sim.run(until=10.0)

    Time is a float in seconds.  The simulator guarantees that callbacks
    run in nondecreasing time order, and that two callbacks scheduled for
    the same instant run in the order they were scheduled.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._running = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Negative delays are clamped to zero (run "immediately", after any
        already-pending events at the current time).
        """
        if delay < 0:
            delay = 0.0
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now={self.now}"
            )
        event = Event(time, next(self._counter), callback)
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Run events until the queue drains or simulated ``until`` passes.

        When ``until`` is given, events with ``time > until`` stay queued
        and ``now`` is advanced to exactly ``until`` on return, so that
        consecutive ``run`` calls compose.
        """
        self._running = True
        try:
            while self._heap:
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self.now = event.time
                self._events_processed += 1
                event.callback()
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Run the single next pending event.  Returns False if none."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_processed += 1
            event.callback()
            return True
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of queued, not-yet-cancelled events."""
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def events_processed(self) -> int:
        """Total callbacks executed so far."""
        return self._events_processed

    def peek_next_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        for event in sorted(self._heap):
            if not event.cancelled:
                return event.time
        return None


class PeriodicTimer:
    """A repeating timer built on :class:`Simulator`.

    Used for the sender's pacing tick (the kernel-tick analogue).  The
    callback receives no arguments; cancel with :meth:`stop`.  The timer
    re-arms itself *before* invoking the callback so the callback may
    safely call :meth:`stop`.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], None],
        start_delay: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self._event: Optional[Event] = None
        self._stopped = False
        first = interval if start_delay is None else start_delay
        self._event = sim.schedule(first, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._event = self.sim.schedule(self.interval, self._fire)
        self.callback()

    def stop(self) -> None:
        """Stop the timer.  Idempotent."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def running(self) -> bool:
        return not self._stopped
