"""Run-scoped tracer handle and process-wide activation.

The contract mirrors the audit switch (``repro.debug.audit_enabled``):
telemetry is **off by default** and instrumented components pay only a
``None`` check when it is off.  Components capture the ambient tracer
at construction time (``current_tracer()``), so a tracer must be
activated *before* the simulator/flows are built — ``run_experiment``
does this when given a ``telemetry=`` target, and ``tracing()`` is the
context manager for hand-built simulations.

Resolution order for a run (``resolve_tracer``):

1. an explicit ``telemetry=`` argument (path, ``tcp://host:port`` to
   serve the trace to ``repro watch --connect`` clients, or a
   ``Tracer``);
2. the already-active ambient tracer (nested runs share it);
3. the ``REPRO_TELEMETRY`` environment variable: ``1``/``true`` writes
   ``telemetry/trace-<pid>-<n>.jsonl`` under the working directory, any
   other non-empty value is used as a path prefix.

A tracer may carry a :class:`~repro.obs.sampling.SamplingPolicy`
(``sampling=`` on the entry points, ``REPRO_TELEMETRY_SAMPLE`` from the
environment): ``emit`` consults it per event kind and the policy counts
every record it rejects, which the runner folds into
``run.telemetry.dropped.*`` metrics at the end of the run.
"""

from __future__ import annotations

import itertools
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Optional, Tuple, Union

from repro.obs.registry import MetricsRegistry
from repro.obs.sampling import SamplingPolicy, resolve_sampling
from repro.obs.sink import JsonlSink, Sink

#: Environment switch, analogous to ``REPRO_AUDIT``.
TELEMETRY_ENV = "REPRO_TELEMETRY"

#: Default sampling spec applied to env-enabled tracers (and any entry
#: point that doesn't pass ``sampling=`` explicitly).
SAMPLE_ENV = "REPRO_TELEMETRY_SAMPLE"

#: Values of the env var that mean "disabled" (same parsing as audit).
_OFF = ("", "0", "false")

#: Interval for the bottleneck-queue samplers attached by the runner.
QUEUE_SAMPLE_INTERVAL = 0.010

_env_seq = itertools.count()


def _open_sink(target: Union[str, Path]) -> Sink:
    """Sink for a string target: a JSONL file, or — for
    ``tcp://host:port`` — a broadcast server streaming the trace to
    connected ``repro watch --connect`` clients."""
    spec = str(target)
    if spec.startswith("tcp://"):
        from repro.obs.net import SocketStreamSink, parse_tcp_target

        host, port = parse_tcp_target(spec)  # type: ignore[misc]
        return SocketStreamSink(host, port)
    return JsonlSink(spec)


class Tracer:
    """Live telemetry handle: an event sink plus a metrics registry."""

    def __init__(self, sink: Sink,
                 metrics: Optional[MetricsRegistry] = None,
                 sampling: Optional[SamplingPolicy] = None) -> None:
        self.sink = sink
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.sampling = sampling
        self.events = 0

    def emit(self, kind: str, t: float, flow: Optional[int] = None,
             **fields: Any) -> None:
        if self.sampling is not None and not self.sampling.admit(kind, t):
            return
        record = {"t": t, "kind": kind}
        if flow is not None:
            record["flow"] = flow
        record.update(fields)
        self.sink.write(record)
        self.events += 1

    def drain_dropped(self) -> dict:
        """Per-kind sampling drops since the last drain (``{}`` if none)."""
        if self.sampling is None:
            return {}
        return self.sampling.drain_dropped()

    def close(self) -> None:
        self.sink.close()


_active: Optional[Tracer] = None


def current_tracer() -> Optional[Tracer]:
    """The ambient tracer, or ``None`` when telemetry is off."""
    return _active


def activate(tracer: Tracer) -> Tracer:
    global _active
    if _active is not None:
        raise RuntimeError("a tracer is already active in this process")
    _active = tracer
    return tracer


def deactivate() -> None:
    global _active
    _active = None


def env_sampling() -> Optional[SamplingPolicy]:
    """Policy mandated by ``REPRO_TELEMETRY_SAMPLE``, or ``None``."""
    value = os.environ.get(SAMPLE_ENV, "").strip()
    if not value or value.lower() in _OFF:
        return None
    return SamplingPolicy.parse(value)


def _effective_sampling(
    sampling: Union[str, SamplingPolicy, None],
) -> Optional[SamplingPolicy]:
    policy = resolve_sampling(sampling)
    if policy is None:
        policy = env_sampling()
    return policy


@contextmanager
def tracing(target: Union[str, Path, Tracer],
            sampling: Union[str, SamplingPolicy, None] = None,
            ) -> Iterator[Tracer]:
    """Activate a tracer for the duration of the block.

    A path target creates (and on exit closes) a :class:`JsonlSink`
    tracer; an existing :class:`Tracer` is activated without taking
    ownership (and keeps its own sampling policy — ``sampling=`` only
    applies to path targets).
    """
    owned = not isinstance(target, Tracer)
    if owned:
        tracer = Tracer(_open_sink(target),
                        sampling=_effective_sampling(sampling))
    else:
        tracer = target
    activate(tracer)
    try:
        yield tracer
    finally:
        deactivate()
        if owned:
            tracer.close()


def env_trace_path() -> Optional[str]:
    """Trace path mandated by ``REPRO_TELEMETRY``, or ``None`` if off."""
    value = os.environ.get(TELEMETRY_ENV, "").strip()
    if value.lower() in _OFF:
        return None
    n = next(_env_seq)
    if value.lower() in ("1", "true", "yes", "on"):
        return os.path.join("telemetry", f"trace-{os.getpid()}-{n}.jsonl")
    return f"{value}.{os.getpid()}-{n}.jsonl"


def resolve_tracer(telemetry: Union[str, Path, Tracer, None],
                   sampling: Union[str, SamplingPolicy, None] = None,
                   ) -> Tuple[Optional[Tracer], bool]:
    """Resolve a run's telemetry target to ``(tracer, owned)``.

    ``owned`` tells the caller it must deactivate and close the tracer
    when the run finishes; an ambient or caller-provided tracer is
    never owned.  ``sampling`` (a spec string or policy; falls back to
    ``REPRO_TELEMETRY_SAMPLE``) applies only when a tracer is
    constructed here — a pre-built or ambient tracer keeps its own.
    """
    if telemetry is not None:
        if isinstance(telemetry, Tracer):
            return telemetry, False
        return Tracer(_open_sink(telemetry),
                      sampling=_effective_sampling(sampling)), True
    ambient = current_tracer()
    if ambient is not None:
        return ambient, False
    path = env_trace_path()
    if path is not None:
        return Tracer(JsonlSink(path),
                      sampling=_effective_sampling(sampling)), True
    return None, False
