"""Table 2: statistics of the six synthetic ISP traces.

Regenerates every trace and reports the mean and standard deviation of
its 100 ms-windowed throughput next to the paper's targets.
"""

from repro.traces.presets import TABLE2_TARGETS, isp_trace

from _report import emit


def _rows():
    lines = [
        f"{'Trace':22s} {'Mean KB/s':>10s} {'(paper)':>9s} "
        f"{'Std KB/s':>10s} {'(paper)':>9s}"
    ]
    for (isp, mode), (mean_t, std_t) in sorted(TABLE2_TARGETS.items()):
        stats = isp_trace(isp, mode, duration=120.0).stats()
        lines.append(
            f"ISP {isp}-{mode:11s} {stats.mean_kbps:10.1f} {mean_t:9.1f} "
            f"{stats.std_kbps:10.1f} {std_t:9.1f}"
        )
    return lines


def test_table2_trace_statistics(benchmark):
    lines = benchmark.pedantic(_rows, rounds=1, iterations=1)
    emit("table2_traces", lines)
    # The reproduction must match the paper's moments closely.
    for (isp, mode), (mean_t, std_t) in TABLE2_TARGETS.items():
        stats = isp_trace(isp, mode, duration=120.0).stats()
        assert abs(stats.mean_kbps - mean_t) / mean_t < 0.03
        assert abs(stats.std_kbps - std_t) / std_t < 0.10
