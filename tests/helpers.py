"""Shared test utilities: fake hosts and ACK-sample synthesis.

Congestion-control unit tests drive algorithms directly through their
event API against a :class:`FakeHost`, without spinning up the full
simulator.  :class:`AckFeeder` fabricates internally consistent
:class:`~repro.tcp.congestion.base.AckSample` streams (monotone ACK
numbers, cumulative delivered counts, quantised receiver timestamps).
"""

from __future__ import annotations

from typing import Optional

from repro.sim.packet import DATA_PACKET_BYTES, MSS
from repro.tcp.congestion.base import AckSample, CongestionControl


class FakeHost:
    """Minimal HostView implementation for unit tests."""

    def __init__(
        self,
        srtt: Optional[float] = 0.05,
        min_rtt: float = 0.04,
        inflight: int = 0,
    ) -> None:
        self.now = 0.0
        self._srtt = srtt
        self._min_rtt = min_rtt
        self._inflight = inflight

    @property
    def mss(self) -> int:
        return MSS

    @property
    def packet_bytes(self) -> int:
        return DATA_PACKET_BYTES

    @property
    def srtt(self) -> Optional[float]:
        return self._srtt

    @srtt.setter
    def srtt(self, value: Optional[float]) -> None:
        self._srtt = value

    @property
    def min_rtt(self) -> float:
        return self._min_rtt

    @min_rtt.setter
    def min_rtt(self, value: float) -> None:
        self._min_rtt = value

    @property
    def inflight(self) -> int:
        return self._inflight

    @inflight.setter
    def inflight(self, value: int) -> None:
        self._inflight = value


class AckFeeder:
    """Generate a consistent ACK stream for a bound algorithm.

    Each :meth:`ack` call advances time, the cumulative ACK and the
    delivered counter, synthesising the RTT/one-way-delay/receiver-ts
    fields from the supplied link model.
    """

    def __init__(
        self,
        cc: CongestionControl,
        host: Optional[FakeHost] = None,
        base_owd: float = 0.02,
        ts_granularity: float = 0.01,
    ) -> None:
        self.host = host or FakeHost()
        self.cc = cc
        if cc.host is None:
            cc.bind(self.host)
            cc.on_connection_start()
        self.base_owd = base_owd
        self.ts_granularity = ts_granularity
        self.ack_no = 0
        self.delivered = 0
        self.lost = 0

    def _receiver_ts(self, now: float) -> float:
        g = self.ts_granularity
        return int(now / g) * g if g > 0 else now

    def ack(
        self,
        dt: float = 0.01,
        newly_acked: int = 1,
        newly_sacked: int = 0,
        rtt: Optional[float] = None,
        queue_delay: float = 0.0,
        is_dupack: bool = False,
        in_recovery: bool = False,
        inflight: Optional[int] = None,
        newly_lost: int = 0,
    ) -> AckSample:
        """Advance by ``dt`` and deliver one ACK to the algorithm."""
        self.host.now += dt
        now = self.host.now
        self.ack_no += newly_acked
        self.delivered += newly_acked + newly_sacked + (1 if is_dupack and not newly_sacked else 0)
        self.lost += newly_lost
        if inflight is not None:
            self.host.inflight = inflight
        owd = self.base_owd + queue_delay
        sample = AckSample(
            now=now,
            ack=self.ack_no,
            newly_acked=newly_acked,
            newly_sacked=newly_sacked,
            delivered_total=self.delivered,
            rtt=rtt if rtt is not None else (self.host.min_rtt + queue_delay),
            one_way_delay=self._receiver_ts(now) - (now - owd),
            receiver_ts=self._receiver_ts(now),
            inflight=self.host.inflight,
            is_dupack=is_dupack,
            in_recovery=in_recovery,
            lost_total=self.lost,
        )
        self.cc.on_ack(sample)
        return sample

    def run(self, n: int, **kwargs) -> None:
        """Deliver ``n`` ACKs with identical parameters."""
        for _ in range(n):
            self.ack(**kwargs)
