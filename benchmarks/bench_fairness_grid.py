"""N×M contention/fairness grid (Figure 12 generalized).

Runs the reduced contention grid — algorithm mixes × flow counts ×
start patterns × traces — through the parallel batch scheduler and
emits the per-cell Jain's index, goodput-share spread, and t_buff
inflation vs the single-flow baseline, plus the ASCII heatmaps the
``repro grid`` CLI prints.

Scale up with REPRO_BENCH_JOBS (worker processes); the full grid is an
artifact run via ``repro grid --out grid.json``, not a CI benchmark.
"""

from repro.experiments.contention_grid import REDUCED_GRID, run_grid
from repro.report.heatmap import render_grid_heatmaps

from _report import JOBS, emit


def _run():
    return run_grid(REDUCED_GRID, n_jobs=JOBS, audit=True)


def test_fairness_grid(benchmark):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)
    data = report.to_dict()

    lines = [
        f"{'mix':12s} {'flows':>5s} {'pattern':10s} {'trace':14s} "
        f"{'jain':>6s} {'min/max share':>13s} {'tbuff_x':>8s}"
    ]
    for cell in data["cells"]:
        shares = cell["shares"]
        spread = (
            f"{min(shares):5.2f}/{max(shares):4.2f}" if shares else "   --"
        )
        infl = cell["tbuff_inflation"]
        lines.append(
            f"{cell['mix']:12s} {cell['flows']:5d} {cell['pattern']:10s} "
            f"{cell['trace']:14s} {cell['jain']:6.3f} {spread:>13s} "
            f"{'--' if infl is None else format(infl, '8.2f')}"
        )
    lines.append("")
    lines.append(render_grid_heatmaps(data))
    emit("fairness_grid", lines)

    # Every cell reduced: a Jain's index is always defined and bounded
    # by [1/n, 1]; shares sum to ~1 unless every flow starved.
    for cell in data["cells"]:
        n = cell["flows"]
        assert cell["jain"] is not None
        assert 1.0 / n - 1e-9 <= cell["jain"] <= 1.0 + 1e-9
        total = sum(cell["shares"])
        assert total == 0.0 or abs(total - 1.0) < 1e-6

    # Baselines exist for every trace the cells reference.
    assert data["baselines"], "grid must carry single-flow baselines"
