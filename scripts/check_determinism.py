#!/usr/bin/env python
"""CI determinism gate for the batch scheduler.

The batch layer's core promise: ``run_batch(..., n_jobs=1)`` and
``n_jobs=4`` produce bit-identical ``FlowResult`` summaries, whatever
order the work-stealing queue completes specs in.  This script runs a
small Figure-10 frontier grid both ways (plus the streaming
``iter_frontier`` face) and fails loudly on the first diverging field.

Usage::

    PYTHONPATH=src python scripts/check_determinism.py
"""

from __future__ import annotations

import sys

from repro.experiments.frontier import iter_frontier, sweep_frontier
from repro.traces.presets import isp_trace

TARGETS = [0.020, 0.040, 0.060, 0.080]
DURATION = 6.0
WARMUP = 1.0


def main() -> int:
    down = isp_trace("A", "mobile", duration=20.0)
    up = isp_trace("A", "mobile", duration=20.0, direction="uplink")
    kwargs = dict(
        targets=TARGETS, duration=DURATION, measure_start=WARMUP
    )

    serial = sweep_frontier(down, up, n_jobs=1, **kwargs)
    parallel = sweep_frontier(down, up, n_jobs=4, retries=1, **kwargs)
    streamed = sorted(
        iter_frontier(down, up, n_jobs=4, retries=1, **kwargs),
        key=lambda p: p.target_tbuff,
    )

    failures = 0
    for label, candidate in (("n_jobs=4", parallel), ("iter_frontier", streamed)):
        for ref, got in zip(serial, candidate):
            if ref.result.summary() != got.result.summary():
                failures += 1
                print(
                    f"DIVERGENCE [{label}] target "
                    f"{ref.target_tbuff * 1000:.0f}ms:\n"
                    f"  serial:   {ref.result.summary()}\n"
                    f"  parallel: {got.result.summary()}",
                    file=sys.stderr,
                )
    if failures:
        print(f"determinism gate FAILED: {failures} diverging points",
              file=sys.stderr)
        return 1
    print(
        f"determinism gate OK: {len(TARGETS)} frontier points bit-identical "
        f"across n_jobs=1, n_jobs=4, and streaming collection"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
