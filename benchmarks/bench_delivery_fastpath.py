"""Delivery-loop microbench: the SoA fast path vs the scalar path.

Exercises exactly the pipeline the fast path rebuilds — trace-driven
link → drop-tail queue → delivery pump → per-flow demux → batched
receive → ACK emission → reverse link — on the workload class where
batching legally engages: an app-limited bursty source over a dense
opportunity schedule with periodic outages.  A saturated ACK-clocked
transfer keeps foreign sender events inside every quiescence window
(see DESIGN.md §9), so this bench drives the link directly with burst
refills instead: between bursts the queue drains, and each refill is
served as one multi-opportunity batch.

The CI gate (``scripts/perf_smoke.py --delivery-check``) tracks two
numbers from :func:`measure`:

* ``speedup`` — scalar CPU / fast CPU, interleaved min-of-N.  Host
  independent, so it is gated with a tight floor.
* ``packets_per_cpu_sec`` (fast path) — absolute throughput against a
  checked-in baseline with the usual noisy-runner tolerance.
"""

import os
import time

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.network import DuplexPath, LinkConfig, PathConfig
from repro.sim.packet import make_data_packet
from repro.tcp.receiver import TcpReceiver
from repro.traces.trace import Trace

#: REPRO_BENCH_REDUCED=1 selects the CI smoke configuration.
REDUCED = os.environ.get("REPRO_BENCH_REDUCED", "") not in ("", "0")

#: Simulated seconds per round.
DURATION = 4.0 if REDUCED else 12.0

#: Burst refill: BURST packets every REFILL seconds (app-limited; the
#: spacing lets each burst's ACK stream drain before the next burst so
#: the quiescence window is foreign-event free).
BURST = 64
REFILL = 0.060

#: Opportunity spacing of the synthetic trace (≈48 Mbit/s at 1500 B).
SPACING = 0.00025

#: Periodic outage carved out of the schedule, the regime the paper's
#: fast-forward targets (handover gaps, dead zones).
OUTAGE_EVERY = 0.5
OUTAGE_LEN = 0.12


def _dense_outage_trace(duration: float) -> Trace:
    """A dense schedule with periodic outage windows.

    Times are quantised to the millisecond like real Saturator captures,
    so several opportunities share one instant — the same-time runs the
    delivery pump coalesces into multi-packet groups.  The capture spans
    the whole workload (no cycle rollover): once a replay loops, the
    reference path's float round-trip wastes same-instant duplicates
    (see ``CellularLink._serve_fast``) and the workload would quietly
    leave the multi-packet regime it is meant to exercise.
    """
    period = duration + 1.0
    times = np.arange(0.0, period, SPACING)
    keep = np.ones(len(times), dtype=bool)
    t0 = OUTAGE_EVERY
    while t0 < period:
        keep &= ~((times >= t0) & (times < t0 + OUTAGE_LEN))
        t0 += OUTAGE_EVERY + OUTAGE_LEN
    times = np.floor(times[keep] * 1000.0) / 1000.0
    return Trace(times, duration=period, name="bench-fastpath")


def run_workload(duration: float = DURATION):
    """One pass of the delivery loop; returns (packets delivered, ACKs).

    The path is built fresh each call so the ``REPRO_FAST_PATH``
    environment toggle is honoured (links bind their serve callback at
    construction).
    """
    sim = Simulator()
    trace = _dense_outage_trace(duration)
    path = DuplexPath(sim, PathConfig(
        downlink=LinkConfig(trace=trace, prop_delay=0.020,
                            buffer_packets=1024),
        uplink=LinkConfig(trace=trace, prop_delay=0.020,
                          buffer_packets=1024),
    ))
    acks = [0]

    def on_ack(_packet) -> None:
        acks[0] += 1

    def on_ack_batch(batch) -> None:
        acks[0] += len(batch.packets)

    receiver = TcpReceiver(sim, flow_id=0, send_ack=path.send_reverse)
    path.attach_flow(
        0,
        receiver.receive,
        on_ack,
        forward_batch_sink=receiver.receive_batch,
        reverse_batch_sink=on_ack_batch,
    )

    state = {"seq": 0}

    def refill() -> None:
        seq = state["seq"]
        now = sim.now
        for i in range(BURST):
            path.send_forward(make_data_packet(0, seq + i, now))
        state["seq"] = seq + BURST
        if now + REFILL < duration:
            sim.schedule(REFILL, refill)

    sim.schedule_at(0.0, refill)
    sim.run(until=duration + 1.0)
    return receiver.data_packets_received, acks[0]


def measure(rounds: int = 3) -> dict:
    """Interleaved min-of-N CPU comparison of the two paths.

    Returns ``{"fast_cpu_s", "scalar_cpu_s", "speedup", "packets",
    "packets_per_cpu_sec"}``.  Interleaving plus min damps co-tenant
    noise and frequency drift; the ratio is additionally host
    independent.
    """
    saved = os.environ.get("REPRO_FAST_PATH")

    def timed(fast: bool) -> float:
        os.environ["REPRO_FAST_PATH"] = "1" if fast else "0"
        start = time.process_time()
        run_workload()
        return time.process_time() - start

    try:
        timed(True)  # warm-up: numpy buffers, trace compilation path
        timed(False)
        fast_times, scalar_times = [], []
        for _ in range(rounds):
            fast_times.append(timed(True))
            scalar_times.append(timed(False))
    finally:
        if saved is None:
            os.environ.pop("REPRO_FAST_PATH", None)
        else:
            os.environ["REPRO_FAST_PATH"] = saved
    fast_cpu = min(fast_times)
    scalar_cpu = min(scalar_times)
    packets, _ = run_workload()
    return {
        "fast_cpu_s": fast_cpu,
        "scalar_cpu_s": scalar_cpu,
        "speedup": scalar_cpu / fast_cpu,
        "packets": packets,
        "packets_per_cpu_sec": packets / fast_cpu,
    }


def test_delivery_fastpath_speedup(benchmark):
    stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        f"\nfast {stats['fast_cpu_s']:.3f}s  scalar "
        f"{stats['scalar_cpu_s']:.3f}s  speedup {stats['speedup']:.2f}x  "
        f"{stats['packets_per_cpu_sec']:,.0f} packets/cpu-s"
    )


if __name__ == "__main__":
    stats = measure()
    print(
        f"fast {stats['fast_cpu_s']:.3f}s  scalar {stats['scalar_cpu_s']:.3f}s"
        f"  speedup {stats['speedup']:.2f}x  "
        f"{stats['packets_per_cpu_sec']:,.0f} packets/cpu-s"
    )
