"""N×M contention/fairness grid — Figure 12 generalized.

The paper's contention evidence (Fig. 12) is two hand-built 2-flow
scenarios: PropRate against itself and PropRate against CUBIC.  This
module turns that into a systematic competition grid:

    (algorithm mix) × (flow count) × (start pattern) × (trace)

Each **cell** launches N flows of a cyclic algorithm mix over one
shared bottleneck, measures every flow over the common overlap window,
and reduces to three numbers:

* **Jain's fairness index** over per-flow goodput
  (:func:`repro.metrics.stats.jain_fairness`);
* **per-flow goodput shares** (:func:`goodput_shares`);
* **t_buff inflation** — the cell's mean queueing delay relative to a
  single-flow baseline of the same algorithm on the same trace, i.e.
  how much standing queue the contention itself adds.

Cells are picklable :class:`GridCellSpec`\\ s and run through the
work-stealing scheduler (:func:`repro.experiments.parallel.iter_batch`)
with the full timeout/retries/progress plumbing; the reduction is
deterministic (no wall-clock anywhere), so a repeated ``run_grid`` is
byte-identical at any job count.  Render the result with
:func:`repro.report.heatmap.render_grid_heatmap` and persist it with
:func:`repro.report.export.grid_to_json`.

Related work motivates the default mixes: BBR's bandwidth-grabbing
under competition ("An Evaluation of BBR and its variants") and CUBIC's
fairness collapse on variable-rate links (TCP ROCCET) are published
pathologies of algorithms in :mod:`repro.tcp.congestion` — the grid
makes them regression-checked artifacts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.debug import AuditArg
from repro.experiments.parallel import (
    CcSpec,
    OutcomeCallback,
    RefOrKey,
    collect,
    iter_batch,
    proprate_spec,
    resolve_trace,
)
from repro.experiments.runner import (
    DEFAULT_PROP_DELAY,
    FlowResult,
    FlowSpec,
    cellular_path_config,
    run_experiment,
)
from repro.metrics.stats import jain_fairness
from repro.sim.queues import DEFAULT_BUFFER_PACKETS

__all__ = [
    "MIXES",
    "PATTERNS",
    "GridConfig",
    "FULL_GRID",
    "REDUCED_GRID",
    "GridCellSpec",
    "CellResult",
    "GridReport",
    "build_contention_flows",
    "goodput_shares",
    "expand_grid",
    "grid_size",
    "run_grid",
]

#: Mix key → cyclic tuple of (label, CcSpec).  A cell with N flows
#: cycles the tuple, so "pr-vs-cubic" at N=4 is PR, CUBIC, PR, CUBIC
#: and "pr-heavy" at N=4 is three PropRates against one CUBIC.
MIXES: Dict[str, Tuple[Tuple[str, CcSpec], ...]] = {
    "pr-self": (("pr", proprate_spec(0.040)),),
    "cubic-self": (("cubic", CcSpec("CUBIC")),),
    "pr-vs-cubic": (("pr", proprate_spec(0.040)), ("cubic", CcSpec("CUBIC"))),
    "pr-vs-bbr": (("pr", proprate_spec(0.040)), ("bbr", CcSpec("BBR"))),
    "bbr-vs-cubic": (("bbr", CcSpec("BBR")), ("cubic", CcSpec("CUBIC"))),
    "pr-heavy": (
        ("pr", proprate_spec(0.040)),
        ("pr", proprate_spec(0.040)),
        ("pr", proprate_spec(0.040)),
        ("cubic", CcSpec("CUBIC")),
    ),
    "pr-adaptive": (("pra", CcSpec("PR(A)")), ("cubic", CcSpec("CUBIC"))),
}

#: Start patterns.  "simultaneous" launches every flow at t=0 (the
#: synchronized-loss worst case); "staggered" spaces starts by the
#: config's ``stagger``; "late-half" launches half the flows at t=0 and
#: the rest together mid-ramp (the Fig.-12(b) late-joiner shape at N).
PATTERNS = ("simultaneous", "staggered", "late-half")


def _starts(pattern: str, n_flows: int, stagger: float) -> List[float]:
    if pattern == "simultaneous":
        return [0.0] * n_flows
    if pattern == "staggered":
        return [i * stagger for i in range(n_flows)]
    if pattern == "late-half":
        half = (n_flows + 1) // 2
        late = max(stagger, stagger * n_flows / 2.0)
        return [0.0] * half + [late] * (n_flows - half)
    raise ValueError(f"unknown start pattern {pattern!r}; have {PATTERNS}")


@dataclass(frozen=True)
class GridConfig:
    """One grid's axes and timing.

    ``traces`` entries are labels of the form ``"wired:<mbps>mbps"``
    (a constant-rate bottleneck through the cellular topology) or
    ``"cellular:<ISP>-<mode>"`` (a Table-2 preset trace).

    The measurement window is the common overlap: every flow is
    measured from ``max(starts) + settle`` for ``overlap`` seconds,
    and the cell runs exactly to the window's end.
    """

    mixes: Tuple[str, ...]
    flow_counts: Tuple[int, ...]
    patterns: Tuple[str, ...]
    traces: Tuple[str, ...]
    stagger: float = 0.5
    settle: float = 2.0
    overlap: float = 20.0
    aqm: str = "droptail"
    buffer_packets: int = DEFAULT_BUFFER_PACKETS

    def __post_init__(self) -> None:
        for mix in self.mixes:
            if mix not in MIXES:
                raise ValueError(f"unknown mix {mix!r}; have {sorted(MIXES)}")
        for pattern in self.patterns:
            if pattern not in PATTERNS:
                raise ValueError(
                    f"unknown start pattern {pattern!r}; have {PATTERNS}"
                )
        if min(self.flow_counts, default=1) < 1:
            raise ValueError("flow counts must be >= 1")


#: The paper-scale grid: every mix, the {2, 4, 16, 64} flow ladder,
#: synchronized and staggered starts, one cellular and one wired
#: bottleneck.  Hours of simulated time — an artifact run, not a test.
FULL_GRID = GridConfig(
    mixes=tuple(MIXES),
    flow_counts=(2, 4, 16, 64),
    patterns=("simultaneous", "staggered"),
    traces=("cellular:B-mobile", "wired:8mbps"),
)

#: The CI-sized subset (2 mixes × {2, 4} flows × 1 pattern × 1 trace):
#: small enough for a smoke job, still multi-flow enough to exercise
#: the scheduler, the auditor's flow-scaled bands, and the fast path.
REDUCED_GRID = GridConfig(
    mixes=("pr-self", "pr-vs-cubic", "pr-adaptive"),
    flow_counts=(2, 4),
    patterns=("staggered",),
    traces=("wired:4mbps",),
    stagger=0.25,
    settle=1.0,
    overlap=5.0,
)


def _trace_for(label: str, duration: float):
    """Materialize a grid trace label (see :class:`GridConfig`)."""
    kind, _, arg = label.partition(":")
    if kind == "wired" and arg.endswith("mbps"):
        from repro.traces.generator import constant_rate_trace

        rate_bps = float(arg[: -len("mbps")]) * 1e6 / 8.0
        return constant_rate_trace(rate_bps, duration, name=label)
    if kind == "cellular":
        from repro.traces.presets import isp_trace

        isp, _, mode = arg.partition("-")
        return isp_trace(isp, mode, duration=duration)
    raise ValueError(
        f"unknown trace label {label!r}; expected 'wired:<N>mbps' or "
        "'cellular:<ISP>-<mode>'"
    )


def build_contention_flows(
    entries: Sequence[Tuple[str, CcSpec]],
    n_flows: int,
    pattern: str,
    stagger: float,
    settle: float,
    overlap: float,
) -> Tuple[List[FlowSpec], float]:
    """Expand a cyclic mix into N measured :class:`FlowSpec`\\ s.

    Generalizes the fixed 2-flow ``self_contention`` /
    ``contention_vs_cubic`` helpers: flow *i* runs ``entries[i % len]``
    starting per ``pattern``, and every flow is measured over the
    common overlap ``[max(starts) + settle, + overlap)``.  Returns the
    flows in deterministic (start, name) order plus the cell duration
    (== the measure window's end).
    """
    if n_flows < 1:
        raise ValueError("need at least one flow")
    starts = _starts(pattern, n_flows, stagger)
    measure_start = max(starts) + settle
    measure_end = measure_start + overlap
    width = max(2, len(str(n_flows - 1)))
    flows = [
        FlowSpec(
            cc_factory=entries[i % len(entries)][1].build,
            name=f"{entries[i % len(entries)][0]}-{i:0{width}d}",
            start=starts[i],
            measure_start=measure_start,
            measure_end=measure_end,
        )
        for i in range(n_flows)
    ]
    flows.sort(key=lambda f: (f.start, f.name))
    return flows, measure_end


def goodput_shares(throughputs: Sequence[float]) -> List[float]:
    """Per-flow goodput as a fraction of the cell total.

    The all-starved cell (total 0) reports equal zero shares rather
    than dividing by zero — consistent with ``jain_fairness``'s
    convention that an all-zero allocation is (vacuously) fair.
    """
    values = [float(v) for v in throughputs]
    if not values:
        raise ValueError("need at least one flow")
    total = sum(values)
    if total <= 0.0:
        return [0.0] * len(values)
    return [v / total for v in values]


# ----------------------------------------------------------------------
# Picklable cell specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GridCellSpec:
    """One grid cell, picklable for the process pool.

    ``entries`` carries the mix inline (label, :class:`CcSpec`) so the
    spec is self-contained — baselines reuse the same shape with a
    single entry and ``n_flows=1``.  The trace travels as a reference
    through the batch layer's deduplicated table.
    """

    mix: str
    n_flows: int
    pattern: str
    trace_label: str
    entries: Tuple[Tuple[str, CcSpec], ...]
    downlink: RefOrKey
    stagger: float
    settle: float
    overlap: float
    aqm: str = "droptail"
    buffer_packets: int = DEFAULT_BUFFER_PACKETS
    #: Invariant auditing (:mod:`repro.debug`): None defers to the
    #: REPRO_AUDIT environment switch, which worker processes inherit.
    audit: AuditArg = None
    #: Telemetry trace path; assigned by the batch layer when a
    #: batch-level target is given.
    telemetry: Optional[str] = None
    #: Per-kind sampling budget spec (``repro.obs.SamplingPolicy``
    #: grammar); only meaningful with ``telemetry``.  The grid.cell
    #: tag record is a protected kind and never sampled away.
    sampling: Optional[str] = None
    #: Enable phase profiling for the cell; only meaningful with
    #: ``telemetry``.
    profile: Optional[bool] = None

    @property
    def is_baseline(self) -> bool:
        return self.n_flows == 1

    def cell_tags(self) -> Dict[str, Any]:
        """The cell coordinates, as telemetry / report tags."""
        return {
            "mix": self.mix,
            "flows": self.n_flows,
            "pattern": self.pattern,
            "trace": self.trace_label,
            "baseline": self.is_baseline,
        }

    def execute(self) -> List[FlowResult]:
        import repro.obs as obs

        flows, duration = build_contention_flows(
            self.entries, self.n_flows, self.pattern,
            self.stagger, self.settle, self.overlap,
        )
        config = cellular_path_config(
            resolve_trace(self.downlink),
            buffer_packets=self.buffer_packets,
            aqm=self.aqm,
        )

        def _run() -> List[FlowResult]:
            results = run_experiment(
                config, flows, duration=duration, audit=self.audit,
            )
            return [r.detached() for r in results]

        if self.telemetry is None:
            return _run()
        # Tag the cell's trace: one grid.cell record up front, then the
        # run's own events — run_experiment binds the ambient tracer
        # (and profiler) and flushes metrics/timings at the end.
        with obs.tracing(self.telemetry, sampling=self.sampling):
            tracer = obs.current_tracer()
            if tracer is not None:
                tracer.emit(obs.GRID_CELL, 0.0, **self.cell_tags())
            profiler = obs.resolve_profiler(self.profile, True)
            if profiler is not None:
                obs.activate_profiler(profiler)
            try:
                return _run()
            finally:
                if profiler is not None:
                    obs.deactivate_profiler()


# ----------------------------------------------------------------------
# Reduction
# ----------------------------------------------------------------------
def _finite(value: Optional[float]) -> Optional[float]:
    """A float fit for a deterministic JSON artifact (NaN/inf → None)."""
    if value is None or not math.isfinite(value):
        return None
    return value


def _queueing_delay(result: FlowResult) -> Optional[float]:
    """Mean standing-queue delay: one-way mean minus propagation."""
    queueing = result.delay.mean - DEFAULT_PROP_DELAY
    return None if math.isnan(queueing) else max(0.0, queueing)


@dataclass
class CellResult:
    """One reduced grid cell."""

    mix: str
    n_flows: int
    pattern: str
    trace: str
    flow_names: List[str]
    throughputs: List[float]        # bytes/s, flow order
    shares: List[float]             # goodput fraction, flow order
    jain: float
    #: Mean queueing delay over flows with deliveries (seconds); None
    #: when every flow starved.
    queueing_delay: Optional[float]
    #: queueing_delay / single-flow baseline queueing delay, averaged
    #: over flows whose algorithm has a usable baseline.
    tbuff_inflation: Optional[float]
    per_flow_inflation: List[Optional[float]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mix": self.mix,
            "flows": self.n_flows,
            "pattern": self.pattern,
            "trace": self.trace,
            "flow_names": list(self.flow_names),
            "throughputs": [_finite(t) for t in self.throughputs],
            "shares": [_finite(s) for s in self.shares],
            "jain": _finite(self.jain),
            "queueing_delay": _finite(self.queueing_delay),
            "tbuff_inflation": _finite(self.tbuff_inflation),
            "per_flow_inflation": [
                _finite(v) for v in self.per_flow_inflation
            ],
        }


def _flow_label(name: str) -> str:
    """The mix-entry label a flow name was minted from."""
    return name.rsplit("-", 1)[0]


def reduce_cell(
    spec: GridCellSpec,
    results: Sequence[FlowResult],
    baselines: Dict[Tuple[str, str], Optional[float]],
) -> CellResult:
    """Reduce one cell's flow results against the single-flow baselines.

    ``baselines`` maps (mix-entry label, trace label) to the baseline
    queueing delay.  Inflation is computed per flow against its own
    algorithm's baseline, then averaged over the flows where both sides
    are well-defined; starved flows (NaN delay) contribute nothing.
    """
    throughputs = [r.throughput for r in results]
    shares = goodput_shares(throughputs)
    queueing = [_queueing_delay(r) for r in results]
    defined = [q for q in queueing if q is not None]
    per_flow_inflation: List[Optional[float]] = []
    for result, q in zip(results, queueing):
        base = baselines.get((_flow_label(result.name), spec.trace_label))
        if q is None or base is None or base <= 0.0:
            per_flow_inflation.append(None)
        else:
            per_flow_inflation.append(q / base)
    inflations = [v for v in per_flow_inflation if v is not None]
    return CellResult(
        mix=spec.mix,
        n_flows=spec.n_flows,
        pattern=spec.pattern,
        trace=spec.trace_label,
        flow_names=[r.name for r in results],
        throughputs=throughputs,
        shares=shares,
        jain=jain_fairness(throughputs),
        queueing_delay=sum(defined) / len(defined) if defined else None,
        tbuff_inflation=(
            sum(inflations) / len(inflations) if inflations else None
        ),
        per_flow_inflation=per_flow_inflation,
    )


@dataclass
class GridReport:
    """The reduced grid: config echo, baselines, one entry per cell."""

    config: GridConfig
    baselines: Dict[Tuple[str, str], Optional[float]]
    cells: List[CellResult]

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe, deterministic rendering (no wall-clock data)."""
        return {
            "format": "repro.grid/1",
            "config": {
                "mixes": list(self.config.mixes),
                "flow_counts": list(self.config.flow_counts),
                "patterns": list(self.config.patterns),
                "traces": list(self.config.traces),
                "stagger": self.config.stagger,
                "settle": self.config.settle,
                "overlap": self.config.overlap,
                "aqm": self.config.aqm,
                "buffer_packets": self.config.buffer_packets,
            },
            "baselines": {
                f"{label}@{trace}": _finite(value)
                for (label, trace), value in sorted(self.baselines.items())
            },
            "cells": [cell.to_dict() for cell in self.cells],
        }


# ----------------------------------------------------------------------
# Expansion and the batch driver
# ----------------------------------------------------------------------
def expand_grid(
    config: GridConfig = FULL_GRID,
    audit: AuditArg = None,
) -> Tuple[List[GridCellSpec], List[GridCellSpec]]:
    """Expand a config into (baseline specs, cell specs).

    Baselines are one single-flow cell per (mix-entry label, trace) —
    the denominator of every inflation figure.  Traces are built once
    per label, sized to the longest cell that uses them, and shared via
    the batch layer's deduplicated reference table.
    """
    durations = [
        build_contention_flows(
            MIXES[mix], n, pattern,
            config.stagger, config.settle, config.overlap,
        )[1]
        for mix in config.mixes
        for n in config.flow_counts
        for pattern in config.patterns
    ]
    trace_duration = max(durations) + 1.0
    trace_refs = {
        label: _trace_for(label, trace_duration) for label in config.traces
    }

    common = dict(
        stagger=config.stagger,
        settle=config.settle,
        overlap=config.overlap,
        aqm=config.aqm,
        buffer_packets=config.buffer_packets,
        audit=audit,
    )
    baseline_specs = []
    seen = set()
    for mix in config.mixes:
        for label, cc in MIXES[mix]:
            for trace_label in config.traces:
                if (label, trace_label) in seen:
                    continue
                seen.add((label, trace_label))
                baseline_specs.append(
                    GridCellSpec(
                        mix=f"baseline:{label}",
                        n_flows=1,
                        pattern="simultaneous",
                        trace_label=trace_label,
                        entries=((label, cc),),
                        downlink=trace_refs[trace_label],
                        **common,
                    )
                )
    cell_specs = [
        GridCellSpec(
            mix=mix,
            n_flows=n,
            pattern=pattern,
            trace_label=trace_label,
            entries=MIXES[mix],
            downlink=trace_refs[trace_label],
            **common,
        )
        for mix in config.mixes
        for n in config.flow_counts
        for pattern in config.patterns
        for trace_label in config.traces
    ]
    return baseline_specs, cell_specs


def grid_size(config: GridConfig = FULL_GRID) -> int:
    """Total specs a :func:`run_grid` of ``config`` dispatches
    (baselines + cells) — sized without building any traces."""
    labels = {
        label for mix in config.mixes for label, _cc in MIXES[mix]
    }
    cells = (
        len(config.mixes)
        * len(config.flow_counts)
        * len(config.patterns)
        * len(config.traces)
    )
    return len(labels) * len(config.traces) + cells


def run_grid(
    config: GridConfig = FULL_GRID,
    n_jobs: int = 1,
    audit: AuditArg = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    on_outcome: Optional[OutcomeCallback] = None,
    telemetry: Optional[str] = None,
    sampling: Optional[str] = None,
    profile: Optional[bool] = None,
) -> GridReport:
    """Run every cell (plus baselines) and reduce to a :class:`GridReport`.

    All specs go through one :func:`iter_batch` call, so baselines and
    cells share the work-stealing queue; ``timeout``/``retries``/
    ``on_outcome``/``telemetry``/``sampling``/``profile`` forward to
    the scheduler.  The report is deterministic: serial and parallel
    runs, at any job count, produce byte-identical
    :meth:`GridReport.to_dict` renderings (sampling only thins the
    event trace, never the results).
    """
    baseline_specs, cell_specs = expand_grid(config, audit=audit)
    specs = baseline_specs + cell_specs
    outcomes = list(
        iter_batch(
            specs,
            n_jobs=n_jobs,
            timeout=timeout,
            retries=retries,
            on_outcome=on_outcome,
            telemetry=telemetry,
            sampling=sampling,
            profile=profile,
        )
    )
    outcomes.sort(key=lambda o: o.index)
    results = collect(outcomes)

    baselines: Dict[Tuple[str, str], Optional[float]] = {}
    for spec, flow_results in zip(baseline_specs, results):
        (label, _cc), = spec.entries
        baselines[(label, spec.trace_label)] = _queueing_delay(
            flow_results[0]
        )
    cells = [
        reduce_cell(spec, flow_results, baselines)
        for spec, flow_results in zip(
            cell_specs, results[len(baseline_specs):]
        )
    ]
    return GridReport(config=config, baselines=baselines, cells=cells)
