#!/usr/bin/env python3
"""Figure 10: sweep t̄_buff and draw PropRate's performance frontier.

Runs PropRate across a grid of target buffer delays on the mobile trace
and renders the resulting throughput/latency frontier as an ASCII
scatter, with CUBIC, BBR and Sprout as fixed reference points.

Usage::

    python examples/frontier_sweep.py
"""

from repro.experiments.frontier import sweep_frontier
from repro.experiments.runner import run_single_flow
from repro.tcp.congestion import Bbr, Cubic, Sprout
from repro.traces.presets import isp_trace

TARGETS_MS = list(range(12, 31, 3)) + list(range(36, 121, 12))
DURATION = 20.0
WARMUP = 4.0


def _ascii_scatter(points, references, width=68, height=18):
    xs = [p.mean_delay_ms for p in points] + [r.delay.mean_ms for r in references.values()]
    ys = [p.throughput_kbps for p in points] + [r.throughput_kbps for r in references.values()]
    x_max = max(xs) * 1.05
    y_max = max(ys) * 1.05
    grid = [[" "] * width for _ in range(height)]

    def plot(x, y, char):
        col = min(width - 1, int(x / x_max * (width - 1)))
        row = min(height - 1, int(y / y_max * (height - 1)))
        grid[height - 1 - row][col] = char

    for p in points:
        plot(p.mean_delay_ms, p.throughput_kbps, "o")
    for label, r in references.items():
        plot(r.delay.mean_ms, r.throughput_kbps, label[0])

    lines = [f"{y_max:7.0f} KB/s"]
    lines += ["".join(row) for row in grid]
    lines.append(f"{'0':>7s} " + "-" * (width - 8))
    lines.append(f"{'':7s}0 … {x_max:.0f} ms mean one-way delay")
    lines.append("        o=PropRate sweep, C=CUBIC, B=BBR, S=Sprout")
    return "\n".join(lines)


def main() -> None:
    downlink = isp_trace("A", "mobile", duration=60.0)
    uplink = isp_trace("A", "mobile", duration=60.0, direction="uplink")

    print("Sweeping PropRate t̄_buff over "
          f"{len(TARGETS_MS)} targets ({TARGETS_MS[0]}-{TARGETS_MS[-1]} ms)…\n")
    points = sweep_frontier(
        downlink, uplink,
        targets=[t / 1000.0 for t in TARGETS_MS],
        duration=DURATION, measure_start=WARMUP,
    )
    references = {
        name: run_single_flow(factory, downlink, uplink,
                              duration=DURATION, measure_start=WARMUP)
        for name, factory in (("CUBIC", Cubic), ("BBR", Bbr), ("Sprout", Sprout))
    }

    print(f"{'target ms':>9s} {'tput KB/s':>10s} {'mean ms':>8s} {'p95 ms':>8s}")
    for p in points:
        print(f"{p.target_tbuff * 1000:9.0f} {p.throughput_kbps:10.1f} "
              f"{p.mean_delay_ms:8.1f} {p.p95_delay_ms:8.1f}")
    print()
    print(_ascii_scatter(points, references))


if __name__ == "__main__":
    main()
