"""Socket transport for the telemetry spine: JSONL over TCP.

A run that writes its trace to a file can only be watched from the
same filesystem.  This module adds the network leg:

* :class:`TcpLineServer` — a broadcast server.  Clients connect with
  anything that reads line-delimited JSON (``nc host port``, ``repro
  watch --connect host:port``); every encoded record is pushed to all
  connected clients as one line.  Slow or dead clients are dropped, not
  waited on — telemetry must never stall the simulation.
* :class:`SocketStreamSink` — a :class:`~repro.obs.sink.StreamSink`
  bound to an owned server, so ``--telemetry tcp://host:port`` serves
  the live trace instead of writing a file.  Closing the sink stops
  the server.

The wire format is exactly the file format (one compact JSON object
per line, ``meta`` header first), so the follower side reuses the same
decoding path as file tailing.
"""

from __future__ import annotations

import socket
import threading
from typing import List, Optional, Tuple

from repro.obs.sink import StreamSink

__all__ = ["TcpLineServer", "SocketStreamSink", "parse_tcp_target"]


def parse_tcp_target(target: str) -> Optional[Tuple[str, int]]:
    """``"tcp://host:port"`` → ``(host, port)``; None for other targets.

    ``tcp://:port`` and ``tcp://port`` bind the loopback interface.
    """
    if not isinstance(target, str) or not target.startswith("tcp://"):
        return None
    spec = target[len("tcp://"):]
    host, sep, port = spec.rpartition(":")
    if not sep:
        host, port = "", spec
    try:
        return (host or "127.0.0.1", int(port))
    except ValueError:
        raise ValueError(
            f"bad tcp telemetry target {target!r}; expected tcp://host:port"
        )


class TcpLineServer:
    """Broadcast line-delimited text to every connected TCP client.

    A daemon thread accepts connections; :meth:`broadcast` fans one
    line out to all of them, silently dropping clients whose sends
    fail (closed or wedged).  ``port=0`` picks a free port — read the
    bound address back from :attr:`address`.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 backlog: int = 8) -> None:
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(backlog)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._clients: List[socket.socket] = []
        self._lock = threading.Lock()
        self._closed = False
        self.dropped_clients = 0
        self._accepter = threading.Thread(
            target=self._accept_loop,
            name=f"repro-obs-tcp-{self.address[1]}",
            daemon=True,
        )
        self._accepter.start()

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            # Telemetry is advisory: never let one slow reader block
            # the simulation inside broadcast().
            client.settimeout(0.5)
            with self._lock:
                if self._closed:
                    client.close()
                    return
                self._clients.append(client)

    @property
    def client_count(self) -> int:
        with self._lock:
            return len(self._clients)

    def broadcast(self, line: str) -> None:
        """Send ``line`` (no trailing newline) to every client."""
        payload = (line + "\n").encode("utf-8")
        with self._lock:
            dead = []
            for client in self._clients:
                try:
                    client.sendall(payload)
                except OSError:
                    dead.append(client)
            for client in dead:
                self._clients.remove(client)
                self.dropped_clients += 1
                try:
                    client.close()
                except OSError:
                    pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            for client in self._clients:
                try:
                    client.close()
                except OSError:
                    pass
            self._clients.clear()


class SocketStreamSink(StreamSink):
    """A :class:`StreamSink` serving the trace over an owned TCP server.

    The ``meta`` header is replayed to the broadcast immediately, but a
    client that connects mid-run simply starts at the next record —
    live watching tolerates a truncated prefix exactly as tailing a
    rotated file does.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 header: bool = True) -> None:
        self.server = TcpLineServer(host, port)
        super().__init__(self.server.broadcast, header=header)

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.address

    def close(self) -> None:
        self.server.close()
