"""Runtime correctness instrumentation (invariant auditor + recorder).

Enable per call with ``audit=True`` on the experiment entry points, per
process with ``REPRO_AUDIT=1`` (the benchmarks and workers inherit it),
or from the CLI with ``--audit``.  See DESIGN.md, "The audit layer".
"""

from __future__ import annotations

import os
from typing import Any, Optional, Union

from repro.debug.auditor import AuditConfig, InvariantAuditor, InvariantViolation
from repro.debug.recorder import FlightRecorder

__all__ = [
    "AUDIT_ENV",
    "AuditArg",
    "AuditConfig",
    "FlightRecorder",
    "InvariantAuditor",
    "InvariantViolation",
    "audit_enabled",
    "make_auditor",
]

#: Environment switch: any value but ""/"0"/"false" enables auditing in
#: every run whose ``audit`` argument is left at None.
AUDIT_ENV = "REPRO_AUDIT"

#: What the ``audit=`` knob accepts everywhere: None (defer to the
#: environment), a bool, or an :class:`AuditConfig` with per-scenario
#: band overrides.
AuditArg = Union[None, bool, AuditConfig]


def audit_enabled(audit: AuditArg = None) -> bool:
    """Resolve an ``audit`` knob: explicit wins, else the environment."""
    if isinstance(audit, AuditConfig):
        return audit.enabled
    if audit is not None:
        return bool(audit)
    return os.environ.get(AUDIT_ENV, "").strip().lower() not in (
        "",
        "0",
        "false",
    )


def make_auditor(sim: Any, audit: AuditArg = None) -> Optional[InvariantAuditor]:
    """Build the auditor an ``audit=`` knob asks for (None if disabled).

    Drivers call this instead of constructing :class:`InvariantAuditor`
    directly so an :class:`AuditConfig` override reaches the bands.
    """
    if not audit_enabled(audit):
        return None
    if isinstance(audit, AuditConfig):
        return audit.build(sim)
    return InvariantAuditor(sim)
