"""Figure 7: the full algorithm shootout on stationary and mobile traces.

Runs every Table-3 algorithm plus PR(L)/PR(M)/PR(H) over the ISP-A
stationary and mobile traces and reports throughput vs mean/95th-pct
one-way packet delay.  The shape assertions encode the paper's findings:

* PropRate traces a more efficient frontier — PR(H) approaches the
  loss-based algorithms' throughput at a fraction of their delay;
* CUBIC/NewReno saturate the 2,000-packet buffer (delays of hundreds of
  ms to seconds);
* the forecast-based algorithms (Sprout, PCC) achieve low delay at a
  significant throughput penalty;
* BBR performs surprisingly well: high throughput at moderate delay.
"""

from repro.experiments.algorithms import run_shootout
from repro.traces.presets import isp_trace

from _report import DURATION, JOBS, MEASURE_START, emit, emit_flow_csv, flow_row


def _shootout(mode):
    down = isp_trace("A", mode, duration=60.0)
    up = isp_trace("A", mode, duration=60.0, direction="uplink")
    return run_shootout(
        down, up, duration=DURATION, measure_start=MEASURE_START, n_jobs=JOBS,
    )


def _check_shapes(results):
    pr_l, pr_m, pr_h = results["PR(L)"], results["PR(M)"], results["PR(H)"]
    cubic, bbr = results["CUBIC"], results["BBR"]
    sprout, pcc = results["Sprout"], results["PCC"]

    # The PropRate knob is monotone along the frontier.
    assert pr_l.delay.mean < pr_m.delay.mean < pr_h.delay.mean
    assert pr_l.throughput < pr_h.throughput

    # CUBIC fills the deep buffer: an order of magnitude more delay than
    # PR(H) for comparable throughput.
    assert cubic.delay.mean > 4 * pr_h.delay.mean
    assert pr_h.throughput > 0.6 * cubic.throughput

    # Forecast-based algorithms: low delay, large throughput penalty.
    assert sprout.delay.mean < cubic.delay.mean / 4
    assert sprout.throughput < 0.7 * pr_h.throughput
    assert pcc.throughput < 0.7 * pr_h.throughput

    # PropRate's low configuration reaches the forecasters' delay class
    # at higher throughput (the paper's headline result).
    assert pr_l.throughput > max(sprout.throughput, pcc.throughput)

    # BBR: high throughput, moderate delay (well below the loss-based).
    assert bbr.throughput > 0.8 * cubic.throughput
    assert bbr.delay.mean < 0.5 * cubic.delay.mean


def test_fig7a_stationary(benchmark):
    results = benchmark.pedantic(_shootout, args=("stationary",), rounds=1, iterations=1)
    lines = [flow_row(name, r) for name, r in results.items()]
    emit("fig7a_stationary", lines)
    emit_flow_csv("fig7a_stationary", results)
    _check_shapes(results)


def test_fig7b_mobile(benchmark):
    results = benchmark.pedantic(_shootout, args=("mobile",), rounds=1, iterations=1)
    lines = [flow_row(name, r) for name, r in results.items()]
    emit("fig7b_mobile", lines)
    emit_flow_csv("fig7b_mobile", results)
    pr_l, pr_h = results["PR(L)"], results["PR(H)"]
    cubic = results["CUBIC"]
    assert pr_l.delay.mean < pr_h.delay.mean
    assert cubic.delay.mean > 3 * pr_h.delay.mean
