"""TCP NewReno: the canonical AIMD loss-based algorithm (RFC 5681/6582).

Included as the reference point for the cwnd-based mechanism in the
paper's Figure 5(a): slow start doubles the window each RTT, congestion
avoidance adds one segment per RTT, fast retransmit halves, and a
retransmission timeout collapses to the loss window.
"""

from __future__ import annotations

from repro.tcp.congestion.base import AckSample, WindowCongestionControl


class NewReno(WindowCongestionControl):
    """AIMD congestion control with fast recovery."""

    name = "NewReno"
    sending_regulation = "cwnd-based"
    congestion_trigger = "Packet Loss"

    #: Multiplicative-decrease factor.
    BETA = 0.5
    #: Floor on the window (segments).
    MIN_CWND = 2.0

    def on_ack(self, sample: AckSample) -> None:
        if sample.newly_acked <= 0 or sample.in_recovery:
            return
        if self.in_slow_start:
            self.cwnd += sample.newly_acked
            if self.cwnd > self.ssthresh:
                self.cwnd = self.ssthresh
        else:
            self.cwnd += sample.newly_acked / self.cwnd

    def on_congestion(self, sample: AckSample) -> None:
        self.ssthresh = max(self.MIN_CWND, sample.inflight * self.BETA)
        self.cwnd = self.ssthresh

    def on_recovery_exit(self, sample: AckSample) -> None:
        self.cwnd = self.ssthresh

    def on_rto(self) -> None:
        self.ssthresh = max(self.MIN_CWND, self.cwnd * self.BETA)
        self.cwnd = self.LOSS_WINDOW
