"""Tests for the windowed filters (EWMA, sliding min/max)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.util.windows import Ewma, SlidingWindowMin, WindowedMax


class TestEwma:
    def test_first_sample_initialises(self):
        e = Ewma(0.5)
        assert e.value is None
        assert e.update(10.0) == 10.0

    def test_moves_toward_samples(self):
        e = Ewma(0.5)
        e.update(0.0)
        assert e.update(10.0) == 5.0
        assert e.update(10.0) == 7.5

    def test_paper_gain_one_eighth(self):
        e = Ewma(1.0 / 8.0)
        e.update(0.0)
        assert e.update(8.0) == pytest.approx(1.0)

    def test_alpha_one_tracks_exactly(self):
        e = Ewma(1.0)
        e.update(3.0)
        assert e.update(7.0) == 7.0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            Ewma(0.0)
        with pytest.raises(ValueError):
            Ewma(1.5)

    def test_reset(self):
        e = Ewma(0.5)
        e.update(5.0)
        e.reset()
        assert e.value is None

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
    @settings(max_examples=100, deadline=None)
    def test_stays_within_sample_range(self, samples):
        e = Ewma(0.25)
        for s in samples:
            e.update(s)
        assert min(samples) <= e.value <= max(samples)


class TestSlidingWindowMin:
    def test_tracks_minimum(self):
        f = SlidingWindowMin(10.0)
        assert f.update(0.0, 5.0) == 5.0
        assert f.update(1.0, 3.0) == 3.0
        assert f.update(2.0, 7.0) == 3.0

    def test_expires_old_samples(self):
        f = SlidingWindowMin(1.0)
        f.update(0.0, 1.0)
        assert f.update(2.0, 5.0) == 5.0

    def test_current_with_time_expires(self):
        f = SlidingWindowMin(1.0)
        f.update(0.0, 1.0)
        f.update(0.5, 3.0)
        assert f.current(2.0) == 3.0 or f.current(2.0) is None
        # sample at 0.5 expires at t>1.5; at t=2.0 only it could remain
        f2 = SlidingWindowMin(1.0)
        f2.update(0.0, 1.0)
        assert f2.current(5.0) is None

    def test_current_without_time_keeps_state(self):
        f = SlidingWindowMin(1.0)
        f.update(0.0, 2.0)
        assert f.current() == 2.0

    def test_reset(self):
        f = SlidingWindowMin(1.0)
        f.update(0.0, 2.0)
        f.reset()
        assert f.current() is None

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            SlidingWindowMin(0.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=-1e3, max_value=1e3),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_bruteforce(self, raw):
        samples = sorted(raw, key=lambda p: p[0])
        window = 10.0
        f = SlidingWindowMin(window)
        for i, (t, v) in enumerate(samples):
            got = f.update(t, v)
            expected = min(v2 for t2, v2 in samples[: i + 1] if t2 >= t - window)
            assert got == expected


class TestWindowedMax:
    def test_tracks_maximum(self):
        f = WindowedMax(10.0)
        assert f.update(0.0, 5.0) == 5.0
        assert f.update(1.0, 3.0) == 5.0
        assert f.update(2.0, 7.0) == 7.0

    def test_expiry_promotes_next_best(self):
        f = WindowedMax(1.0)
        f.update(0.0, 9.0)
        f.update(0.5, 4.0)
        assert f.update(1.2, 1.0) == 4.0

    def test_window_attribute_adjustable(self):
        f = WindowedMax(10.0)
        f.update(0.0, 5.0)
        f.window = 0.5
        assert f.update(1.0, 1.0) == 1.0

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=-1e3, max_value=1e3),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_bruteforce(self, raw):
        samples = sorted(raw, key=lambda p: p[0])
        window = 10.0
        f = WindowedMax(window)
        for i, (t, v) in enumerate(samples):
            got = f.update(t, v)
            expected = max(v2 for t2, v2 in samples[: i + 1] if t2 >= t - window)
            assert got == expected
