#!/usr/bin/env python3
"""Watch the sawtooth: the bottleneck buffer under PropRate, live.

Runs PropRate on a constant-rate bottleneck while sampling the queue,
then renders the buffer-delay waveform as ASCII art next to the
analytical model's predicted envelope — the Figure-1/Figure-2 pictures,
produced by the packet-level simulator.

Usage::

    python examples/waveform_demo.py [target_ms]   # default 80
"""

import sys

from repro.core.model import derive_parameters
from repro.core.proprate import PropRate
from repro.experiments.runner import cellular_path_config
from repro.metrics.telemetry import QueueSampler, sawtooth_summary
from repro.sim.engine import Simulator
from repro.sim.network import DuplexPath
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender
from repro.traces.generator import constant_rate_trace

RATE = 1.5e6
RTT = 0.040
DURATION = 20.0


def _render(times, delays, width=76, height=16, t0=8.0, t1=14.0):
    mask = (times >= t0) & (times < t1)
    t = times[mask]
    d = delays[mask] * 1000.0
    d_max = max(d.max() * 1.1, 1.0)
    grid = [[" "] * width for _ in range(height)]
    for ti, di in zip(t, d):
        col = min(width - 1, int((ti - t0) / (t1 - t0) * width))
        row = min(height - 1, int(di / d_max * (height - 1)))
        grid[height - 1 - row][col] = "*"
    lines = [f"{d_max:6.1f} ms"]
    lines += ["".join(row) for row in grid]
    lines.append(f"{'0':>6s}  t = {t0:.0f}s … {t1:.0f}s")
    return "\n".join(lines)


def main() -> None:
    target_ms = float(sys.argv[1]) if len(sys.argv) > 1 else 80.0
    target = target_ms / 1000.0

    sim = Simulator()
    trace = constant_rate_trace(RATE, DURATION + 1.0)
    path = DuplexPath(sim, cellular_path_config(trace))
    recv = TcpReceiver(sim, 0, send_ack=path.send_reverse)
    cc = PropRate(target, enable_feedback=False)
    sender = TcpSender(sim, 0, cc, send_packet=path.send_forward)
    path.attach_flow(0, recv.receive, sender.on_ack_packet)
    sampler = QueueSampler(sim, path.forward_link.queue, interval=0.005)
    sender.start()
    sim.run(until=DURATION)

    times, _ = sampler.as_arrays()
    delays = sampler.buffer_delays(service_rate=RATE)
    params = derive_parameters(target, RTT)
    summary = sawtooth_summary(times, delays, discard=0.4)

    print(f"PropRate t̄_buff={target_ms:.0f} ms on a "
          f"{RATE / 1e6:.1f} MB/s bottleneck ({params.regime.value}):\n")
    print(_render(times, delays))
    print(
        f"\nmeasured: Dmax={summary.dmax * 1000:.1f} ms "
        f"Dmin={summary.dmin * 1000:.1f} ms "
        f"avg={summary.average * 1000:.1f} ms "
        f"period={summary.period * 1000:.0f} ms "
        f"empty={summary.empty_fraction:.0%}"
    )
    print(
        f"model:    Dmax={params.predicted_dmax * 1000:.1f} ms "
        f"Dmin={params.predicted_dmin * 1000:.1f} ms "
        f"avg={params.target_tbuff * 1000:.1f} ms "
        f"(paper Figures 1-3)"
    )


if __name__ == "__main__":
    main()
