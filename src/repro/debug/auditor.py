"""Runtime invariant auditing for the packet simulator.

The PR-1 hot-path rewrites (lazy event cancellation, lazy RTO re-arm,
pacing-tick suspension, the loss-free ACK fast path) are exactly the
kind of optimisation that corrupts results silently rather than
crashing.  The :class:`InvariantAuditor` cross-checks the optimised
incremental state against ground truth the simulator has anyway:

* **packet conservation** per link — every packet ever accepted by a
  bottleneck queue is still queued, in service, or was delivered or
  AQM-dropped (``enqueued == len(queue) + delivered + codel_drops
  [+ in_service]``), and no more packets reach the endpoints than
  exited the link;
* **monotonicity** — simulated time never runs backwards, cumulative
  ACK points (``snd_una``, ``rcv_nxt``) never regress, and the sender
  never believes more data was acknowledged than the receiver has;
* **queue bounds** — occupancy stays within ``[0, capacity]``;
* **timer liveness** — a flow with unACKed data always has a live RTO
  event, and a rate-based sender's pacing tick may only be parked when
  the ``idle_tick_safe`` suspension conditions provably hold (a direct
  audit of PR 1's lazy re-arm and tick suspension);
* **scoreboard integrity** — both endpoints keep per-segment state as
  tagged interval runs; the sender's incremental pipe counter must
  match an independent O(runs) reconstruction, the run structures must
  verify (sorted, disjoint, merged, counts consistent), the receiver's
  out-of-order store must never overlap its cumulative edge, and every
  SACK block the receiver emits must be exactly backed by stored runs;
* **estimator sanity** — the sender's ``t_buff`` and ρ estimates stay
  within coarse tolerance bands of the ground-truth queue sojourn and
  link drain rate.  The bands are deliberately one-sided and wide:
  under-estimates are routine (slow-start ramp, EWMA lag) and several
  scenarios *deliberately* bias the estimators (baseline shifts, ρ hold
  across outages), so only a sustained, large over-read — the failure
  mode that makes a sender overrun the network — trips the check.  The
  t_buff band is additionally gated on clean feedback: while loss
  recovery is in progress, dup ACKs echo a stale TSval (RFC 7323) and
  the resulting RD inflation is expected, not a bug.

The auditor is strictly an observer: it schedules no events and mutates
no simulation state, so a run with auditing enabled is bit-identical to
the same run without it.  The event loop itself stamps every event into
the flight-recorder ring (``Simulator.audit_ring`` — plain list stores,
no per-event Python call); full sweeps run every ``stride`` events and
verify time monotonicity over the ring window accumulated since the
last sweep, so the check loses nothing to the striding.
:meth:`final_check` closes the loop at end of run — a totally stalled
flow fires no further events, so the end-of-run sweep is what catches
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.debug.recorder import FlightRecorder
from repro.obs import AUDIT_VIOLATION, current_tracer
from repro.util.windows import WindowedMax

__all__ = ["AuditConfig", "InvariantAuditor", "InvariantViolation"]

#: Events between invariant sweeps.  The flight-recorder ring is
#: written inline by the event loop on every event, and each sweep
#: verifies time monotonicity over the ring entries accumulated since
#: the last one, so that check loses nothing to the striding.  The
#: structural checks (conservation, bounds, liveness) detect conditions
#: that persist once violated, so a coarser stride only delays
#: detection by milliseconds of simulated time.
DEFAULT_STRIDE = 64

#: Ground-truth windows (seconds): queue sojourn maximum and peak drain
#: rate are compared against estimates over this much trailing history.
SOJOURN_WINDOW = 4.0
DRAIN_WINDOW = 4.0

#: Slack added to the ground-truth sojourn bound before t_buff is
#: suspect.  Covers receiver timestamp quantisation and deliberate
#: baseline shifts (the handover scenario biases RD by tens of ms).
DEFAULT_TBUFF_TOLERANCE = 0.150

#: ρ may exceed the windowed peak drain rate by at most this factor.
DEFAULT_RHO_FACTOR = 8.0

#: Drain rates below this (bytes/s) are too small to judge ρ against
#: (outages, app-limited idling).
DEFAULT_RHO_FLOOR = 30000.0

#: Consecutive out-of-band observations (on distinct audited ACKs)
#: before an estimator check trips.  A single excursion is noise.
DEFAULT_SUSTAIN = 25

#: Audited-ACK sweeps between O(window) pipe reconstructions.
DEFAULT_PIPE_CHECK_EVERY = 100

#: Sweeps between the heavyweight sub-checks (windowed-filter folds,
#: estimator bands, sender snapshots).  The cheap structural checks —
#: conservation, bounds, monotonicity, liveness — run on every sweep;
#: the estimator bands are wide and sustained by design, so a 4x
#: coarser cadence costs them nothing.
_FULL_SWEEP_EVERY = 4

#: Minimum spacing between drain-rate samples (seconds): consecutive
#: sweeps closer than this are merged to keep the rate well-defined.
_MIN_RATE_DT = 0.002


class InvariantViolation(RuntimeError):
    """A simulator invariant failed.  Carries the dumped trace path."""

    def __init__(self, check: str, message: str, trace_path: Optional[str] = None):
        super().__init__(f"[{check}] {message}")
        self.check = check
        self.detail = message
        self.trace_path = trace_path


@dataclass(frozen=True)
class AuditConfig:
    """Per-scenario audit overrides, accepted anywhere ``audit=`` is.

    ``audit=True`` keeps the global defaults; passing an
    :class:`AuditConfig` instead enables auditing with the bands below.
    The config is a frozen bag of primitives, so it pickles cleanly into
    the parallel scheduler's worker processes.

    ``flow_scale`` widens the t_buff band by the number of *active*
    flows sharing the audited data link (see
    :meth:`InvariantAuditor._tbuff_band`): with N senders competing for
    one bottleneck, each sender's feedback arrives ~N× less often and
    the smoothed estimate holds contention peaks ~N× longer than the
    ground-truth window does, so the single-flow band trips spuriously
    under contention.  Set it False to restore the fixed band.
    """

    enabled: bool = True
    strict: bool = True
    stride: int = DEFAULT_STRIDE
    tbuff_tolerance: float = DEFAULT_TBUFF_TOLERANCE
    rho_factor: float = DEFAULT_RHO_FACTOR
    rho_floor: float = DEFAULT_RHO_FLOOR
    sustain: int = DEFAULT_SUSTAIN
    pipe_check_every: int = DEFAULT_PIPE_CHECK_EVERY
    flow_scale: bool = True

    def build(
        self, sim: Any, recorder: Optional[FlightRecorder] = None
    ) -> "InvariantAuditor":
        """Construct an :class:`InvariantAuditor` with these bands."""
        return InvariantAuditor(
            sim,
            recorder=recorder,
            stride=self.stride,
            strict=self.strict,
            tbuff_tolerance=self.tbuff_tolerance,
            rho_factor=self.rho_factor,
            rho_floor=self.rho_floor,
            sustain=self.sustain,
            pipe_check_every=self.pipe_check_every,
            flow_scale=self.flow_scale,
        )


class _LinkAudit:
    """Per-link ground-truth bookkeeping (observer only)."""

    __slots__ = (
        "link",
        "queue",
        "name",
        "is_wired",
        "sojourn_max",
        "drain_max",
        "_arrived_cell",
        "_sojourn_cell",
        "_last_rate_t",
        "_last_rate_bytes",
    )

    def __init__(self, link: Any) -> None:
        self.link = link
        self.queue = link.queue
        self.name = getattr(link, "name", "link")
        self.is_wired = hasattr(link, "_busy")
        # Hot-path accumulators, folded into the windowed trackers at
        # sweep time: the taps below run once per packet, so they do a
        # list-cell update and nothing else.
        self._arrived_cell = [0]
        self._sojourn_cell = [-1.0]
        self.sojourn_max = WindowedMax(SOJOURN_WINDOW)
        self.drain_max = WindowedMax(DRAIN_WINDOW)
        self._last_rate_t: Optional[float] = None
        self._last_rate_bytes = 0
        self._wrap()

    @property
    def arrived(self) -> int:
        """Packets that completed propagation to the far endpoint."""
        return self._arrived_cell[0]

    def _wrap(self) -> None:
        link, queue = self.link, self.queue

        # Tap deliveries to the far endpoint: counts packets that
        # completed propagation (never more than exited the link).
        original_deliver = link.on_deliver
        if original_deliver is not None:
            def _tap_deliver(
                packet: Any,
                _orig: Any = original_deliver,
                _cell: List[int] = self._arrived_cell,
            ) -> None:
                _cell[0] += 1
                _orig(packet)

            link.on_deliver = _tap_deliver

        # Tap queue exits to measure the true sojourn of every packet
        # the link serves; ``pop`` receives the current time, so the
        # measurement needs no clock of its own.  Only the running max
        # is kept here — the windowed tracker is fed at sweep cadence.
        original_pop = queue.pop

        def _tap_pop(
            now: float,
            _orig: Any = original_pop,
            _cell: List[float] = self._sojourn_cell,
        ) -> Any:
            packet = _orig(now)
            if packet is not None:
                enq = packet.enqueue_time
                if enq is not None:
                    sojourn = now - enq
                    if sojourn > _cell[0]:
                        _cell[0] = sojourn
            return packet

        queue.pop = _tap_pop

        # Fast-path taps: batched deliveries and sliced queue drains
        # must hit the same accumulators, or conservation would "lose"
        # every packet the batch path moved.
        original_deliver_batch = getattr(link, "on_deliver_batch", None)
        if original_deliver_batch is not None:
            def _tap_deliver_batch(
                batch: Any,
                _orig: Any = original_deliver_batch,
                _cell: List[int] = self._arrived_cell,
            ) -> None:
                _cell[0] += len(batch.packets)
                _orig(batch)

            link.on_deliver_batch = _tap_deliver_batch

        original_drain = getattr(queue, "drain_opportunity", None)
        if original_drain is not None:
            def _tap_drain(
                now: float,
                budget: int,
                _orig: Any = original_drain,
                _cell: List[float] = self._sojourn_cell,
            ) -> Any:
                packets = _orig(now, budget)
                best = _cell[0]
                for packet in packets:
                    enq = packet.enqueue_time
                    if enq is not None:
                        sojourn = now - enq
                        if sojourn > best:
                            best = sojourn
                _cell[0] = best
                return packets

            queue.drain_opportunity = _tap_drain

    def fold(self, now: float) -> None:
        """Fold the per-packet accumulators into the windowed trackers.

        Called at sweep cadence.  Stamping the bucket maximum with the
        sweep time (slightly after the pops it covers) only makes the
        ground-truth window retain it marginally longer — conservative
        for the one-sided estimator checks.
        """
        cell = self._sojourn_cell
        if cell[0] >= 0.0:
            self.sojourn_max.update(now, cell[0])
            cell[0] = -1.0
        last_t = self._last_rate_t
        if last_t is None:
            self._last_rate_t = now
            self._last_rate_bytes = self.link.delivered_bytes
            return
        dt = now - last_t
        if dt < _MIN_RATE_DT:
            return
        delivered = self.link.delivered_bytes
        self.drain_max.update(now, (delivered - self._last_rate_bytes) / dt)
        self._last_rate_t = now
        self._last_rate_bytes = delivered


class _FlowAudit:
    """Per-flow monotonicity, liveness, and estimator tracking."""

    __slots__ = (
        "sender",
        "receiver",
        "data_link",
        "last_una",
        "last_rcv_nxt",
        "last_acks",
        "ack_sweeps",
        "tbuff_streak",
        "rho_streak",
    )

    def __init__(
        self,
        sender: Any,
        receiver: Optional[Any],
        data_link: Optional[_LinkAudit],
    ) -> None:
        self.sender = sender
        self.receiver = receiver
        self.data_link = data_link
        self.last_una = sender.snd_una
        self.last_rcv_nxt = receiver.rcv_nxt if receiver is not None else 0
        self.last_acks = sender.acks_received
        self.ack_sweeps = 0
        self.tbuff_streak = 0
        self.rho_streak = 0


class InvariantAuditor:
    """Continuously check simulator invariants against ground truth.

    Attach to a :class:`~repro.sim.engine.Simulator` (done by the
    constructor), then register topology with :meth:`attach_path` /
    :meth:`attach_link` and endpoints with :meth:`attach_flow` before
    running.  On a violation the flight recorder dumps a JSON trace and,
    when ``strict`` (the default), :class:`InvariantViolation` is
    raised; otherwise violations accumulate on :attr:`violations`.
    """

    def __init__(
        self,
        sim: Any,
        recorder: Optional[FlightRecorder] = None,
        stride: int = DEFAULT_STRIDE,
        strict: bool = True,
        tbuff_tolerance: float = DEFAULT_TBUFF_TOLERANCE,
        rho_factor: float = DEFAULT_RHO_FACTOR,
        rho_floor: float = DEFAULT_RHO_FLOOR,
        sustain: int = DEFAULT_SUSTAIN,
        pipe_check_every: int = DEFAULT_PIPE_CHECK_EVERY,
        flow_scale: bool = True,
    ) -> None:
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.sim = sim
        self.recorder = recorder if recorder is not None else FlightRecorder()
        self.stride = stride
        self.strict = strict
        self.tbuff_tolerance = tbuff_tolerance
        self.rho_factor = rho_factor
        self.rho_floor = rho_floor
        self.sustain = sustain
        self.pipe_check_every = pipe_check_every
        self.flow_scale = flow_scale

        self.violations: List[Dict[str, Any]] = []
        self.sweeps = 0
        self.trace_path: Optional[str] = None
        self._ring_checked = 0  # engine events already monotone-checked
        self._last_t = sim.now
        self._links: List[_LinkAudit] = []
        self._flows: List[_FlowAudit] = []
        # The event loop writes the flight-recorder ring inline and
        # invokes the hook every ``stride`` events (see Simulator).
        rec = self.recorder
        if stride > rec.ring_capacity:
            raise ValueError("stride must not exceed the recorder ring")
        sim.audit_hook = self._on_stride
        sim.audit_ring = (
            rec.ring_times,
            rec.ring_details,
            rec.ring_count,
            rec.ring_capacity - 1,
            [stride],
            stride,
        )

    # ------------------------------------------------------------------
    # Topology registration
    # ------------------------------------------------------------------
    def attach_link(self, link: Any) -> _LinkAudit:
        """Audit one bottleneck link (conservation, bounds, sojourn)."""
        audit = _LinkAudit(link)
        self._links.append(audit)
        return audit

    def attach_path(self, path: Any) -> Tuple[_LinkAudit, _LinkAudit]:
        """Audit both directions of a :class:`DuplexPath`.

        Returns the (forward, reverse) link audits so flows can be
        bound to the link their *data* rides (``attach_flow``).
        """
        return self.attach_link(path.forward_link), self.attach_link(
            path.reverse_link
        )

    def attach_flow(
        self,
        sender: Any,
        receiver: Optional[Any] = None,
        data_link: Optional[_LinkAudit] = None,
    ) -> _FlowAudit:
        """Audit one flow's endpoints.

        ``data_link`` is the audit handle of the link carrying this
        flow's data packets (its queue is the one the sender's ``t_buff``
        and ρ estimates describe); omit it to skip estimator checks.
        """
        audit = _FlowAudit(sender, receiver, data_link)
        self._flows.append(audit)
        return audit

    # ------------------------------------------------------------------
    # Engine hook
    # ------------------------------------------------------------------
    @property
    def _events_seen(self) -> int:
        return self.recorder.ring_count[0]

    def _on_stride(self, event: Any) -> None:
        """Invoked by the event loop every ``stride`` events."""
        self.sweep()

    def _check_ring_monotone(self) -> None:
        """Verify simulated time never ran backwards since last sweep.

        The event loop stamps every event's time into the flight-
        recorder ring, so the check replays the window accumulated
        since the last sweep.  The window is extracted as list slices
        and compared against its sorted copy — all C-level operations —
        so the amortised per-event cost is a few nanoseconds.
        """
        rec = self.recorder
        count = rec.ring_count[0]
        start = self._ring_checked
        if count == start:
            return
        cap = rec.ring_capacity
        if count - start > cap:  # pragma: no cover - stride <= capacity
            start = count - cap
        i0, i1 = start & (cap - 1), count & (cap - 1)
        times = rec.ring_times
        if i0 < i1:
            window = times[i0:i1]
        else:
            window = times[i0:] + times[:i1]
        if window[0] < self._last_t or window != sorted(window):
            # Cold path: pinpoint the first regression.
            prev = self._last_t
            for offset, t in enumerate(window):
                if t < prev:
                    self._violation(
                        "time-monotone",
                        f"simulated time ran backwards: {t} after {prev} "
                        f"(engine event #{start + offset})",
                    )
                prev = t
        self._last_t = window[-1]
        self._ring_checked = count

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def sweep(self, full: Optional[bool] = None) -> None:
        """Run the invariant checks once at the current instant.

        ``full`` forces (or suppresses) the heavyweight sub-checks;
        by default they run every ``_FULL_SWEEP_EVERY``-th sweep.
        """
        self.sweeps += 1
        if full is None:
            full = self.sweeps % _FULL_SWEEP_EVERY == 0
        now = self.sim.now
        self._check_ring_monotone()
        for link in self._links:
            self._check_link(link, now, full)
        for flow in self._flows:
            self._check_flow(flow, now, full)

    def final_check(self) -> None:
        """End-of-run closure: a fully stalled flow fires no further
        events, so the per-event sweeps never see it — this one does."""
        self.sweep(full=True)
        for flow in self._flows:
            sender = flow.sender
            if (
                sender.started
                and not sender.complete
                and sender.snd_una < sender.next_seq
                and self._live(sender._rto_event) is None
            ):
                self._violation(
                    "timer-liveness",
                    f"flow {sender.flow_id} ended stalled: "
                    f"una={sender.snd_una} < next={sender.next_seq} "
                    "with no live RTO timer",
                    flow=sender.flow_id,
                )

    @staticmethod
    def _live(event: Any) -> Optional[Any]:
        """The event if it is scheduled and not cancelled, else None."""
        if event is None or event[2] is None:
            return None
        return event

    def _check_link(self, audit: _LinkAudit, now: float, full: bool = True) -> None:
        link, queue = audit.link, audit.queue
        occupancy = len(queue)
        if occupancy > queue.capacity:
            self._violation(
                "queue-bounds",
                f"{audit.name}: occupancy {occupancy} exceeds capacity "
                f"{queue.capacity}",
                link=audit.name,
            )
        in_service = 1 if audit.is_wired and link._busy else 0
        codel_drops = getattr(queue, "codel_drops", 0)
        accounted = (
            occupancy + link.delivered_packets + codel_drops + in_service
        )
        if queue.enqueued != accounted:
            self._violation(
                "conservation",
                f"{audit.name}: {queue.enqueued} packets entered the queue "
                f"but only {accounted} are accounted for (queued={occupancy} "
                f"delivered={link.delivered_packets} codel={codel_drops} "
                f"in_service={in_service})",
                link=audit.name,
            )
        if audit.arrived > link.delivered_packets:
            self._violation(
                "conservation",
                f"{audit.name}: {audit.arrived} packets reached the endpoint "
                f"but the link only delivered {link.delivered_packets}",
                link=audit.name,
            )
        # Byte conservation (the packet-count check cannot see a packet
        # swapped for one of a different size).
        enqueued_bytes = getattr(queue, "enqueued_bytes", None)
        if enqueued_bytes is not None:
            in_service_bytes = (
                getattr(link, "_in_service_bytes", 0) if audit.is_wired else 0
            )
            codel_bytes = getattr(queue, "codel_dropped_bytes", 0)
            accounted_bytes = (
                queue.byte_length + link.delivered_bytes + codel_bytes
                + in_service_bytes
            )
            if enqueued_bytes != accounted_bytes:
                self._violation(
                    "conservation-bytes",
                    f"{audit.name}: {enqueued_bytes} bytes entered the queue "
                    f"but only {accounted_bytes} are accounted for "
                    f"(queued={queue.byte_length} "
                    f"delivered={link.delivered_bytes} codel={codel_bytes} "
                    f"in_service={in_service_bytes})",
                    link=audit.name,
                )
        if full:
            audit.fold(now)

    def _check_flow(self, flow: _FlowAudit, now: float, full: bool = True) -> None:
        sender = flow.sender
        una = sender.snd_una
        if una < flow.last_una:
            self._violation(
                "ack-monotone",
                f"flow {sender.flow_id}: snd_una regressed "
                f"{flow.last_una} -> {una}",
                flow=sender.flow_id,
            )
        flow.last_una = una
        if una > sender.next_seq:
            self._violation(
                "ack-monotone",
                f"flow {sender.flow_id}: snd_una {una} beyond "
                f"next_seq {sender.next_seq}",
                flow=sender.flow_id,
            )
        if sender._pipe < 0:
            self._violation(
                "pipe-accounting",
                f"flow {sender.flow_id}: negative in-flight {sender._pipe}",
                flow=sender.flow_id,
            )

        receiver = flow.receiver
        if receiver is not None:
            rcv_nxt = receiver.rcv_nxt
            if rcv_nxt < flow.last_rcv_nxt:
                self._violation(
                    "ack-monotone",
                    f"flow {sender.flow_id}: rcv_nxt regressed "
                    f"{flow.last_rcv_nxt} -> {rcv_nxt}",
                    flow=sender.flow_id,
                )
            flow.last_rcv_nxt = rcv_nxt
            if una > rcv_nxt:
                self._violation(
                    "ack-monotone",
                    f"flow {sender.flow_id}: sender believes {una} segments "
                    f"acked but receiver has only {rcv_nxt}",
                    flow=sender.flow_id,
                )
            if rcv_nxt > sender.next_seq:
                self._violation(
                    "conservation",
                    f"flow {sender.flow_id}: receiver advanced to {rcv_nxt} "
                    f"but sender only sent up to {sender.next_seq}",
                    flow=sender.flow_id,
                )

        if sender.started and not sender.complete:
            self._check_liveness(flow, sender)

        acks = sender.acks_received
        if full and acks != flow.last_acks:
            flow.last_acks = acks
            flow.ack_sweeps += 1
            self.recorder.record(
                now,
                "sender",
                {
                    "flow": sender.flow_id,
                    "una": una,
                    "next": sender.next_seq,
                    "pipe": sender._pipe,
                    "acks": acks,
                },
            )
            if flow.ack_sweeps % self.pipe_check_every == 0:
                expected = sender.debug_expected_pipe()
                if sender._pipe != expected:
                    self._violation(
                        "pipe-accounting",
                        f"flow {sender.flow_id}: incremental pipe "
                        f"{sender._pipe} != scoreboard reconstruction "
                        f"{expected}",
                        flow=sender.flow_id,
                    )
                self._check_scoreboards(flow, sender)
            self._check_estimators(flow, now)

    def _check_scoreboards(self, flow: _FlowAudit, sender: Any) -> None:
        """Run-structure and receiver reordering-buffer invariants.

        Both endpoints keep per-segment state as tagged interval runs
        (:mod:`repro.tcp.scoreboard`); this verifies the structural
        invariants of both maps, that the receiver's out-of-order store
        never overlaps the cumulative edge (everything at or below
        ``rcv_nxt`` must have been consumed), and that every SACK block
        the receiver would emit is exactly backed by stored runs.
        """
        try:
            sender.scoreboard.check()
        except ValueError as exc:
            self._violation(
                "scoreboard-structure",
                f"flow {sender.flow_id}: sender scoreboard corrupt: {exc}",
                flow=sender.flow_id,
            )
        receiver = flow.receiver
        if receiver is None:
            return
        ooo = receiver._ooo
        try:
            ooo.check()
        except ValueError as exc:
            self._violation(
                "scoreboard-structure",
                f"flow {sender.flow_id}: receiver reorder store corrupt: "
                f"{exc}",
                flow=sender.flow_id,
            )
        if ooo:
            if ooo.min <= receiver.rcv_nxt:
                self._violation(
                    "receiver-ooo",
                    f"flow {sender.flow_id}: out-of-order store holds "
                    f"segment {ooo.min} at or below rcv_nxt "
                    f"{receiver.rcv_nxt}",
                    flow=sender.flow_id,
                )
            for block in receiver._sack_blocks():
                if not ooo.contains_range(block.start, block.end):
                    self._violation(
                        "receiver-ooo",
                        f"flow {sender.flow_id}: SACK block "
                        f"[{block.start}, {block.end}) not fully backed "
                        "by the reorder store",
                        flow=sender.flow_id,
                    )

    def _check_liveness(self, flow: _FlowAudit, sender: Any) -> None:
        if sender.snd_una < sender.next_seq and self._live(sender._rto_event) is None:
            self._violation(
                "timer-liveness",
                f"flow {sender.flow_id}: unACKed data "
                f"(una={sender.snd_una}, next={sender.next_seq}) "
                "with no live RTO timer",
                flow=sender.flow_id,
            )
        cc = sender.cc
        if cc.is_rate_based and self._live(sender._tick_event) is None:
            # The tick may only be parked under the exact conditions of
            # TcpSender._suspend_tick_if_idle — otherwise the flow can
            # never transmit again without an ACK or RTO waking it.
            budget_idle = (
                sender._budget <= 1e-9
                if cc.round_mode == "up"
                else sender._budget < sender.packet_bytes
            )
            if not (
                sender._tick_passive
                and cc.pacing_rate <= 0.0
                and cc.pending_burst == 0
                and budget_idle
            ):
                self._violation(
                    "timer-liveness",
                    f"flow {sender.flow_id}: pacing tick parked while the "
                    f"sender could transmit (rate={cc.pacing_rate}, "
                    f"burst={cc.pending_burst}, budget={sender._budget}, "
                    f"passive={sender._tick_passive})",
                    flow=sender.flow_id,
                )

    def _active_flows_on(self, link: _LinkAudit) -> int:
        """Flows currently competing for ``link`` (started, not done)."""
        count = 0
        for other in self._flows:
            if other.data_link is link:
                sender = other.sender
                if sender.started and not sender.complete:
                    count += 1
        return count

    def _tbuff_band(self, link: _LinkAudit) -> float:
        """The t_buff slack for a flow whose data rides ``link``.

        Under contention the single-flow band is too tight: a sender's
        RD samples arrive once per *own* delivered packet, so with N
        active flows sharing the bottleneck the smoothed t_buff decays
        roughly N× slower than the ground-truth sojourn window, and the
        peaks it holds include queueing contributed by the *other*
        flows.  Both effects are benign — the estimate describes the
        queue the sender actually observed — so the band scales with
        the count of active flows on the audited link.
        """
        if not self.flow_scale:
            return self.tbuff_tolerance
        return self.tbuff_tolerance * max(1, self._active_flows_on(link))

    def _check_estimators(self, flow: _FlowAudit, now: float) -> None:
        link = flow.data_link
        if link is None:
            return
        sender = flow.sender
        cc = sender.cc

        delay_est = getattr(cc, "delay_estimator", None)
        if delay_est is not None:
            # The t_buff band is only meaningful on clean feedback.
            # While the receiver holds a hole (out-of-order data), dup
            # ACKs echo the stale pre-hole TSval per RFC 7323, so the
            # sender's RD — and with it t_buff — legitimately inflates
            # with the age of the hole.  Under sustained overflow drops
            # (wired PR(max), contention vs CUBIC) that bias dwarfs the
            # true queue sojourn, so the streak resets whenever loss
            # recovery is in progress at either end.
            receiver = flow.receiver
            dirty = sender.scoreboard.in_loss_recovery or (
                receiver is not None and bool(receiver._ooo)
            )
            if dirty:
                flow.tbuff_streak = 0
                delay_est = None

        if delay_est is not None:
            estimate = delay_est.tbuff_smooth
            truth = link.sojourn_max.current(now)
            if estimate is not None and truth is not None:
                tolerance = self._tbuff_band(link)
                if estimate > truth + tolerance:
                    flow.tbuff_streak += 1
                    if flow.tbuff_streak >= self.sustain:
                        self._violation(
                            "estimator-tbuff",
                            f"flow {flow.sender.flow_id}: t_buff estimate "
                            f"{estimate:.3f}s exceeds ground-truth max queue "
                            f"sojourn {truth:.3f}s (+{tolerance:.3f}s "
                            f"tolerance) for {flow.tbuff_streak} consecutive "
                            "audited ACKs",
                            flow=flow.sender.flow_id,
                        )
                else:
                    flow.tbuff_streak = 0
            else:
                flow.tbuff_streak = 0

        rate_est = getattr(cc, "rate_estimator", None)
        if rate_est is not None:
            estimate = rate_est.rate
            truth = link.drain_max.current(now)
            if (
                estimate is not None
                and truth is not None
                and truth >= self.rho_floor
            ):
                if estimate > truth * self.rho_factor:
                    flow.rho_streak += 1
                    if flow.rho_streak >= self.sustain:
                        self._violation(
                            "estimator-rho",
                            f"flow {flow.sender.flow_id}: ρ estimate "
                            f"{estimate:.0f} B/s exceeds {self.rho_factor}x "
                            f"the ground-truth peak drain rate {truth:.0f} "
                            f"B/s for {flow.rho_streak} consecutive audited "
                            "ACKs",
                            flow=flow.sender.flow_id,
                        )
                else:
                    flow.rho_streak = 0
            else:
                flow.rho_streak = 0

    # ------------------------------------------------------------------
    # Violation / exception handling
    # ------------------------------------------------------------------
    def _violation(self, check: str, message: str, **context: Any) -> None:
        entry: Dict[str, Any] = {
            "check": check,
            "time": self.sim.now,
            "message": message,
        }
        entry.update(context)
        self.violations.append(entry)
        tr = current_tracer()
        if tr is not None:
            tr.emit(AUDIT_VIOLATION, self.sim.now, check=check,
                    message=message, **context)
        self.trace_path = self.recorder.dump(
            violations=self.violations,
            context={"events_seen": self._events_seen, "sweeps": self.sweeps},
            path=self.trace_path,
        )
        if self.strict:
            raise InvariantViolation(check, message, trace_path=self.trace_path)

    def record_exception(self, exc: BaseException) -> str:
        """Dump the flight recorder for an unhandled engine exception."""
        self.trace_path = self.recorder.dump(
            violations=self.violations,
            context={
                "events_seen": self._events_seen,
                "sweeps": self.sweeps,
                "exception": f"{type(exc).__name__}: {exc}",
            },
            path=self.trace_path,
        )
        return self.trace_path
