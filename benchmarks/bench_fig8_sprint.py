"""Figure 8: the Sprint-like trace — poor connectivity with 54% outage.

The absolute throughputs are tiny; the figure's point is relative
robustness: aggressive loss-based algorithms (CUBIC, Westwood, RRE) grab
what little throughput exists at enormous delays (note the log-scale
axis in the paper), PropRate suffers from outage-induced losses, and BBR
is surprisingly robust.
"""

from repro.experiments.algorithms import paper_algorithms
from repro.experiments.runner import run_single_flow
from repro.traces.presets import sprint_like_trace

from _report import DURATION, MEASURE_START, emit, flow_row


def _run():
    trace = sprint_like_trace(duration=120.0)
    results = {}
    for name, factory in paper_algorithms().items():
        results[name] = run_single_flow(
            factory, trace, None,
            duration=max(DURATION, 60.0), measure_start=MEASURE_START,
        )
    return results


def test_fig8_sprint_trace(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [flow_row(name, r) for name, r in results.items()]
    emit("fig8_sprint", lines)

    # Nobody exceeds the trace's capacity by more than the backlog
    # carried into the measurement window: with multi-second outages the
    # queue built before measure_start drains inside the window, so
    # goodput can transiently exceed the window's own capacity.
    capacity = sprint_like_trace(duration=120.0).mean_throughput()
    for result in results.values():
        assert result.throughput <= capacity * 1.5
    # The aggressive loss-based algorithms pay with high delay whenever
    # they do push data through.
    cubic = results["CUBIC"]
    sprout = results["Sprout"]
    if cubic.delay.count and sprout.delay.count:
        assert cubic.delay.p95 > sprout.delay.p95
    # Outages mean losses for PropRate (the paper's observation).
    assert results["PR(H)"].rto_count >= 1 or results["PR(H)"].retransmissions > 0
