"""Process-pool execution of experiment batches.

Every paper artifact is an embarrassingly parallel set of independent
simulations (the Figure-10 frontier is 43 of them).  This module maps
picklable run specifications onto worker processes:

* :class:`CcSpec` names a congestion-control configuration by registry
  name plus keyword parameters, so no factory closures ever cross a
  process boundary; workers rebuild the algorithm locally.
* :class:`RunSpec` is one single-flow run — congestion control, trace
  references, and path/flow parameters.  Traces travel as content-keyed
  references (:mod:`repro.traces.cache`); the dispatcher deduplicates
  them into a table shipped once per worker, and each worker
  materializes every distinct trace exactly once per process.
* :func:`run_batch` executes any sequence of spec objects (anything
  with an ``execute()`` method and optional ``downlink``/``uplink``
  reference fields) and returns :class:`RunOutcome`\\ s **in submission
  order**, regardless of worker scheduling.

Determinism: the serial (``n_jobs=1``) and parallel paths run the same
``execute()`` code against traces materialized by the same cache, and
each simulation is fully deterministic, so results are bit-identical
across job counts.

Failure handling: an exception inside a spec is caught in the worker
and reported on that spec's outcome; the rest of the batch completes.
If a worker process dies outright (breaking the pool), the outcomes
whose results were lost report the breakage — completed work from other
chunks is preserved either way.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.runner import (
    DEFAULT_PROP_DELAY,
    FlowResult,
    run_single_flow,
)
from repro.sim.queues import DEFAULT_BUFFER_PACKETS
from repro.tcp.congestion.base import CongestionControl
from repro.traces import cache as trace_cache
from repro.traces.cache import TraceRef, as_ref
from repro.traces.trace import Trace

__all__ = [
    "CcSpec",
    "RunSpec",
    "RunOutcome",
    "run_batch",
    "collect",
    "resolve_trace",
    "detach_results",
    "resolve_n_jobs",
]

#: A trace field: a reference, a not-yet-referenced Trace, or a content
#: key into the batch's deduplicated trace table.
RefOrKey = Union[TraceRef, Trace, str]


# ----------------------------------------------------------------------
# Congestion-control specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CcSpec:
    """A picklable congestion-control configuration.

    ``name`` is either ``"PropRate"`` (with ``params`` forwarded to the
    constructor) or any entry of
    :func:`repro.experiments.algorithms.paper_algorithms` — ``"CUBIC"``,
    ``"BBR"``, ``"PR(M)"``, and so on.  ``params`` is a tuple of
    ``(keyword, value)`` pairs so the spec stays hashable.
    """

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def build(self) -> CongestionControl:
        from repro.core.proprate import PropRate
        from repro.experiments.algorithms import paper_algorithms

        params = dict(self.params)
        if self.name == "PropRate":
            return PropRate(**params)
        factory = paper_algorithms().get(self.name)
        if factory is None:
            raise ValueError(f"unknown congestion control {self.name!r}")
        if params:
            if isinstance(factory, type):
                return factory(**params)
            raise ValueError(f"{self.name!r} does not accept parameters")
        return factory()


def proprate_spec(target: float, **kwargs: Any) -> CcSpec:
    """A :class:`CcSpec` for PropRate at a fixed t̄_buff."""
    params = (("target_buffer_delay", target),) + tuple(sorted(kwargs.items()))
    return CcSpec("PropRate", params)


# ----------------------------------------------------------------------
# Run specs and outcomes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One single-flow cellular run (the :func:`run_single_flow` shape)."""

    cc: CcSpec
    downlink: RefOrKey
    uplink: Optional[RefOrKey] = None
    duration: float = 40.0
    measure_start: float = 5.0
    name: str = ""
    buffer_packets: int = DEFAULT_BUFFER_PACKETS
    prop_delay: float = DEFAULT_PROP_DELAY
    aqm: str = "droptail"
    #: Invariant auditing (:mod:`repro.debug`): None defers to the
    #: REPRO_AUDIT environment switch, which worker processes inherit.
    audit: Optional[bool] = None

    def execute(self) -> FlowResult:
        down = resolve_trace(self.downlink)
        up = resolve_trace(self.uplink) if self.uplink is not None else None
        result = run_single_flow(
            self.cc.build,
            down,
            up,
            duration=self.duration,
            measure_start=self.measure_start,
            name=self.name or self.cc.name,
            buffer_packets=self.buffer_packets,
            prop_delay=self.prop_delay,
            aqm=self.aqm,
            audit=self.audit,
        )
        return result.detached()


@dataclass
class RunOutcome:
    """One spec's fate: its (detached) result, or the failure report."""

    index: int
    spec: Any
    result: Optional[Any] = None
    error: Optional[str] = field(repr=False, default=None)

    @property
    def ok(self) -> bool:
        return self.error is None


def collect(outcomes: Sequence[RunOutcome]) -> List[Any]:
    """Results in submission order; raises if any spec failed."""
    failed = [o for o in outcomes if not o.ok]
    if failed:
        first = failed[0]
        raise RuntimeError(
            f"{len(failed)}/{len(outcomes)} runs failed; first "
            f"(spec #{first.index}):\n{first.error}"
        )
    return [o.result for o in outcomes]


# ----------------------------------------------------------------------
# Trace-reference plumbing
# ----------------------------------------------------------------------
#: The batch's deduplicated {content key -> reference} table.  Installed
#: in workers by the pool initializer and in-process by the serial path.
_TRACE_TABLE: Dict[str, TraceRef] = {}


def resolve_trace(ref: RefOrKey) -> Trace:
    """Materialize a trace field through the per-process cache."""
    if isinstance(ref, str):
        ref = _TRACE_TABLE[ref]
    return trace_cache.get(ref)


def _strip_specs(
    specs: Sequence[Any],
) -> Tuple[List[Any], Dict[str, TraceRef]]:
    """Replace in-spec traces/references by content keys.

    Returns the rewritten specs plus the deduplicated reference table;
    each distinct trace is pickled to each worker once, via the table,
    however many specs use it.
    """
    table: Dict[str, TraceRef] = {}
    stripped: List[Any] = []
    for spec in specs:
        updates = {}
        for fieldname in ("downlink", "uplink"):
            value = getattr(spec, fieldname, None)
            if value is None or isinstance(value, str):
                continue
            ref = as_ref(value)
            table[ref.key] = ref
            updates[fieldname] = ref.key
        stripped.append(replace(spec, **updates) if updates else spec)
    return stripped, table


def _install_table(table: Dict[str, TraceRef]) -> None:
    _TRACE_TABLE.clear()
    _TRACE_TABLE.update(table)


def detach_results(value: Any) -> Any:
    """Detach every :class:`FlowResult` in a result structure.

    Scenario drivers return tuples/dicts of results; the live simulation
    handles they carry cannot cross a process boundary.
    """
    if isinstance(value, FlowResult):
        return value.detached()
    if isinstance(value, tuple):
        return tuple(detach_results(v) for v in value)
    if isinstance(value, list):
        return [detach_results(v) for v in value]
    if isinstance(value, dict):
        return {k: detach_results(v) for k, v in value.items()}
    return value


# ----------------------------------------------------------------------
# Batch execution
# ----------------------------------------------------------------------
def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """None/0 -> all cores; joblib-style negatives count from the end."""
    cores = os.cpu_count() or 1
    if n_jobs is None or n_jobs == 0:
        return cores
    if n_jobs < 0:
        return max(1, cores + 1 + n_jobs)
    return n_jobs


def _run_entry(entry: Tuple[int, Any]) -> Tuple[int, Any, Optional[str]]:
    index, spec = entry
    try:
        return index, spec.execute(), None
    except Exception:  # noqa: BLE001 - reported on the outcome
        return index, None, traceback.format_exc()


def _run_chunk(
    chunk: List[Tuple[int, Any]],
) -> List[Tuple[int, Any, Optional[str]]]:
    return [_run_entry(entry) for entry in chunk]


def _init_worker(table: Dict[str, TraceRef]) -> None:
    _install_table(table)


def run_batch(
    specs: Sequence[Any],
    n_jobs: Optional[int] = 1,
    chunksize: Optional[int] = None,
    start_method: Optional[str] = None,
) -> List[RunOutcome]:
    """Execute ``specs`` and return outcomes in submission order.

    Parameters
    ----------
    specs:
        Objects with an ``execute() -> picklable`` method; fields named
        ``downlink``/``uplink`` are treated as trace references and
        deduplicated into a once-per-worker table.
    n_jobs:
        Worker processes.  ``1`` runs serially in-process (no pool);
        ``None``/``0`` uses every core; negative counts from the end
        (``-1`` = all cores).
    chunksize:
        Specs per worker task.  Defaults to ~4 tasks per worker, which
        amortizes dispatch without starving the pool on uneven runs.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheap, inherits imports) and the platform default
        elsewhere.
    """
    entries = list(enumerate(specs))
    if not entries:
        return []
    stripped, table = _strip_specs([s for _, s in entries])
    entries = [(i, s) for (i, _), s in zip(entries, stripped)]
    jobs = resolve_n_jobs(n_jobs)
    _install_table(table)  # serial path + fork parent share the table

    if jobs == 1 or len(entries) == 1:
        rows = [_run_entry(entry) for entry in entries]
        return _to_outcomes(rows, entries)

    if chunksize is None:
        chunksize = max(1, math.ceil(len(entries) / (jobs * 4)))
    chunks = [
        entries[i : i + chunksize] for i in range(0, len(entries), chunksize)
    ]

    if start_method is None and "fork" in multiprocessing.get_all_start_methods():
        start_method = "fork"
    context = (
        multiprocessing.get_context(start_method) if start_method else None
    )

    rows: List[Tuple[int, Any, Optional[str]]] = []
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(chunks)),
        mp_context=context,
        initializer=_init_worker,
        initargs=(table,),
    ) as pool:
        futures = [pool.submit(_run_chunk, chunk) for chunk in chunks]
        for chunk, future in zip(chunks, futures):
            try:
                rows.extend(future.result())
            except BrokenProcessPool as exc:
                # A worker died mid-chunk (hard crash, not a Python
                # exception).  Report the specs whose results were lost;
                # other chunks' futures keep their completed results.
                for index, _ in chunk:
                    rows.append(
                        (index, None, f"worker process died: {exc!r}")
                    )
            except Exception:  # noqa: BLE001 - e.g. unpicklable result
                err = traceback.format_exc()
                for index, _ in chunk:
                    rows.append((index, None, err))
    return _to_outcomes(rows, entries)


def _to_outcomes(
    rows: List[Tuple[int, Any, Optional[str]]],
    entries: List[Tuple[int, Any]],
) -> List[RunOutcome]:
    spec_by_index = dict(entries)
    outcomes = [
        RunOutcome(index=i, spec=spec_by_index[i], result=r, error=e)
        for i, r, e in rows
    ]
    outcomes.sort(key=lambda o: o.index)
    return outcomes
