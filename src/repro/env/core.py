"""The control-plane environment: a step/observe/act face on a run.

:class:`CcEnv` wraps one single-flow packet-tier experiment as a
gym-style environment: ``reset() → obs``, ``step(action) → (obs,
reward, done, info)``.  The flow's congestion control is a
:class:`~repro.tcp.congestion.policy.PolicyDriven` adapter (or its
window twin), so external decisions travel through exactly the sender
code path native algorithms use, and wrapping a native algorithm as the
adapter's ``inner`` turns the env into a bit-identical *replay* of the
native run — the determinism contract ``scripts/check_determinism.py
--env`` enforces.

Observations are a versioned vector (:data:`OBS_VERSION`,
:data:`OBS_FIELDS`); see ``docs/env.md`` for the full schema, action
vocabulary, and versioning rules.  Actions are applied at feedback-
epoch granularity: each :meth:`CcEnv.step` applies the action, then
integrates ``step_interval`` seconds of simulated time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

import repro.obs as obs_mod
from repro.core.adaptive import retarget
from repro.core.proprate import PropRate
from repro.experiments.runner import (
    DEFAULT_PROP_DELAY,
    ExperimentHarness,
    FlowResult,
    FlowSpec,
    cellular_path_config,
)
from repro.sim.network import PathConfig
from repro.sim.queues import DEFAULT_BUFFER_PACKETS
from repro.tcp.application import Application
from repro.tcp.congestion.base import CongestionControl
from repro.tcp.congestion.policy import (
    PolicyDriven,
    WindowPolicyDriven,
    policy_adapter,
)
from repro.tcp.receiver import DEFAULT_TS_GRANULARITY
from repro.traces.trace import Trace

__all__ = ["CcEnv", "Observation", "OBS_FIELDS", "OBS_VERSION",
           "DEFAULT_STEP_INTERVAL"]

#: Observation schema version.  Bump on any change to
#: :data:`OBS_FIELDS` order, meaning, or units (see docs/env.md).
OBS_VERSION = 1

#: Field names of :meth:`Observation.vector`, in order.
OBS_FIELDS = (
    "t",                # simulated time (s)
    "rho",              # receive-rate estimate ρ̂ (bytes/s; NaN unknown)
    "tbuff",            # buffer-delay estimate t_buff (s; NaN unknown)
    "threshold",        # PropRate threshold T (s; NaN non-PropRate)
    "target",           # PropRate target t̄_buff (s; NaN non-PropRate)
    "srtt",             # smoothed RTT (s; NaN before first sample)
    "min_rtt",          # minimum RTT (s; NaN before first sample)
    "inflight",         # segments in flight
    "pacing_rate",      # pacing rate (bytes/s; NaN for window adapters)
    "cwnd",             # congestion window (segments; NaN for rate adapters)
    "delivered",        # cumulative delivered segments
    "lost",             # cumulative segments marked lost
    "retransmissions",  # cumulative retransmitted segments
    "rtos",             # cumulative retransmission timeouts
    "loss_episodes",    # cumulative fast-retransmit episodes
    "in_recovery",      # 1.0 while in fast recovery
    "app_limited",      # 1.0 when the application has no new data
)

#: Default action epoch: PropRate's threshold-feedback update interval,
#: the natural control granularity of the paper's state machine.
DEFAULT_STEP_INTERVAL = 0.25

#: Default reward weights (see docs/env.md; *not* part of the
#: determinism contract).
DELAY_WEIGHT = 25.0
LOSS_WEIGHT = 0.1


@dataclass(frozen=True)
class Observation:
    """One observation of the flow (schema :data:`OBS_VERSION`)."""

    t: float
    rho: float
    tbuff: float
    threshold: float
    target: float
    srtt: float
    min_rtt: float
    inflight: float
    pacing_rate: float
    cwnd: float
    delivered: float
    lost: float
    retransmissions: float
    rtos: float
    loss_episodes: float
    in_recovery: float
    app_limited: float

    version = OBS_VERSION
    fields = OBS_FIELDS

    def vector(self) -> List[float]:
        """The observation as a flat float vector (:data:`OBS_FIELDS`
        order)."""
        return [getattr(self, name) for name in OBS_FIELDS]

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in OBS_FIELDS}


class CcEnv:
    """A single-flow cellular-path experiment as an environment.

    Parameters mirror :func:`~repro.experiments.runner.run_single_flow`
    plus:

    inner_cc:
        Factory for a native algorithm to wrap as the policy adapter's
        brain (replay / knob-steering mode), or ``None`` for a purely
        externally driven rate (the policy must ``{"rate": …}``).
    window:
        Only meaningful with ``inner_cc=None``: use the cwnd-based
        adapter instead of the rate-based one.
    step_interval:
        Simulated seconds integrated per :meth:`step` (the action
        epoch).
    delay_weight / loss_weight:
        Reward shaping (see :meth:`step`); tune freely — the reward is
        advisory and not part of the determinism contract.

    Call :meth:`close` (or use :func:`repro.env.rollout`) when done so
    an owned telemetry tracer is released.
    """

    def __init__(
        self,
        downlink_trace: Trace,
        uplink_trace: Optional[Trace] = None,
        *,
        inner_cc: Optional[Callable[[], CongestionControl]] = None,
        window: bool = False,
        duration: float = 40.0,
        measure_start: float = 5.0,
        step_interval: float = DEFAULT_STEP_INTERVAL,
        buffer_packets: int = DEFAULT_BUFFER_PACKETS,
        prop_delay: float = DEFAULT_PROP_DELAY,
        aqm: str = "droptail",
        ts_granularity: float = DEFAULT_TS_GRANULARITY,
        application: Optional[Application] = None,
        total_segments: Optional[int] = None,
        delay_weight: float = DELAY_WEIGHT,
        loss_weight: float = LOSS_WEIGHT,
        audit: Any = None,
        telemetry: Optional[Any] = None,
        sampling: Optional[Any] = None,
        name: str = "",
    ) -> None:
        if duration <= 0:
            raise ValueError("duration must be positive")
        if step_interval <= 0:
            raise ValueError("step_interval must be positive")
        self.path_config: PathConfig = cellular_path_config(
            downlink_trace,
            uplink_trace,
            buffer_packets=buffer_packets,
            prop_delay=prop_delay,
            aqm=aqm,
        )
        self.inner_cc = inner_cc
        self.window = window
        self.duration = duration
        self.measure_start = measure_start
        self.step_interval = step_interval
        self.ts_granularity = ts_granularity
        self.application = application
        self.total_segments = total_segments
        self.delay_weight = delay_weight
        self.loss_weight = loss_weight
        self.audit = audit
        self.name = name

        self._tracer, self._owns_tracer = obs_mod.resolve_tracer(
            telemetry, sampling=sampling
        )
        if (
            self._tracer is not None
            and obs_mod.current_tracer() is not self._tracer
        ):
            obs_mod.activate(self._tracer)
            self._activated = True
        else:
            self._activated = False
        self._closed = False

        self._harness: Optional[ExperimentHarness] = None
        self.adapter: Any = None
        self._done = False
        self._episode = 0
        self._steps = 0
        self._last_delivered = 0
        self._last_lost = 0
        self._last_delivered_t = 0.0

    # -- lifecycle ------------------------------------------------------
    def reset(self) -> Observation:
        """Build a fresh simulation and return the initial observation."""
        if self._closed:
            raise RuntimeError("env is closed")
        inner = self.inner_cc() if self.inner_cc is not None else None
        if inner is not None:
            self.adapter = policy_adapter(inner)
        elif self.window:
            self.adapter = WindowPolicyDriven(None)
        else:
            self.adapter = PolicyDriven(None)
        adapter = self.adapter
        self._harness = ExperimentHarness(
            self.path_config,
            [
                FlowSpec(
                    cc_factory=lambda: adapter,
                    name=self.name,
                    total_segments=self.total_segments,
                    application=self.application,
                )
            ],
            self.duration,
            measure_start=self.measure_start,
            ts_granularity=self.ts_granularity,
            audit=self.audit,
            tracer=self._tracer,
            profiler=obs_mod.current_profiler(),
        )
        self._done = False
        self._episode += 1
        self._steps = 0
        self._last_delivered = 0
        self._last_lost = 0
        self._last_delivered_t = 0.0
        self._harness.advance(0.0)
        return self._observe()

    def close(self) -> None:
        """Release the telemetry tracer (if this env owns it)."""
        if self._closed:
            return
        self._closed = True
        if self._activated:
            obs_mod.deactivate()
        if self._owns_tracer and self._tracer is not None:
            self._tracer.close()

    # -- the step loop --------------------------------------------------
    def step(self, action: Optional[Dict[str, Any]] = None):
        """Apply ``action``, integrate one epoch, observe.

        Returns ``(obs, reward, done, info)``.  The reward is
        ``delivered_megabits − delay_weight·t_buff −
        loss_weight·new_losses`` over the epoch — a throughput-vs-delay
        utility in the spirit of the paper's Figure-7 frontier.
        ``info`` carries the raw per-epoch deltas.
        """
        harness = self._require_harness()
        if self._done:
            raise RuntimeError("episode finished; call reset()")
        self.apply_action(action)
        before = self._observe()
        harness.advance(harness.now + self.step_interval)
        obs = self._observe()
        self._steps += 1
        self._done = harness.now >= self.duration - 1e-12

        delivered_delta = obs.delivered - before.delivered
        lost_delta = obs.lost - before.lost
        delivered_bits = (
            delivered_delta * harness.sender(0).packet_bytes * 8.0
        )
        tbuff_penalty = 0.0 if math.isnan(obs.tbuff) else obs.tbuff
        reward = (
            delivered_bits / 1e6
            - self.delay_weight * tbuff_penalty
            - self.loss_weight * lost_delta
        )
        info = {
            "t": obs.t,
            "delivered_delta": delivered_delta,
            "lost_delta": lost_delta,
            "rto_delta": obs.rtos - before.rtos,
            "episode": self._episode,
            "step": self._steps,
        }
        if self._tracer is not None:
            self._tracer.emit(
                obs_mod.ENV_STEP,
                obs.t,
                flow=0,
                step=self._steps,
                action=action,
                reward=reward,
                obs=obs.as_dict(),
            )
        return obs, reward, self._done, info

    def apply_action(self, action: Optional[Dict[str, Any]]) -> None:
        """Apply an action dict (see docs/env.md for the vocabulary)."""
        if not action:
            return
        adapter = self.adapter
        unknown = set(action) - {
            "rate", "cwnd", "target", "threshold", "kf", "kd", "probe",
        }
        if unknown:
            raise ValueError(f"unknown action keys: {sorted(unknown)}")
        if "rate" in action:
            if not isinstance(adapter, PolicyDriven):
                raise ValueError("'rate' needs the rate-based adapter")
            adapter.set_rate(action["rate"])
        if "cwnd" in action:
            if not isinstance(adapter, WindowPolicyDriven):
                raise ValueError("'cwnd' needs the window-based adapter")
            adapter.set_cwnd(action["cwnd"])
        if "kf" in action or "kd" in action:
            if not isinstance(adapter, PolicyDriven):
                raise ValueError("gain overrides need the rate-based adapter")
            adapter.set_gains(action.get("kf"), action.get("kd"))
        if "target" in action:
            inner = self._proprate_inner("'target'")
            new_target = action["target"]
            if new_target <= 0:
                raise ValueError("target must be positive")
            retarget(inner, new_target)
        if "threshold" in action:
            inner = self._proprate_inner("'threshold'")
            feedback = inner.feedback
            feedback.threshold = min(
                max(action["threshold"], feedback.min_threshold),
                feedback.max_threshold,
            )
        if "probe" in action:
            if not isinstance(adapter, PolicyDriven):
                raise ValueError("'probe' needs the rate-based adapter")
            adapter.request_probe(int(action["probe"]))

    def _proprate_inner(self, what: str) -> PropRate:
        inner = getattr(self.adapter, "inner", None)
        if not isinstance(inner, PropRate):
            raise ValueError(f"{what} needs a PropRate inner algorithm")
        return inner

    # -- observation ----------------------------------------------------
    def _require_harness(self) -> ExperimentHarness:
        if self._harness is None:
            raise RuntimeError("call reset() first")
        return self._harness

    def _observe(self) -> Observation:
        harness = self._require_harness()
        sender = harness.sender(0)
        adapter = self.adapter
        inner = getattr(adapter, "inner", None)
        now = harness.now

        rho = getattr(inner, "rho", None)
        if rho is None:
            # Fallback ρ̂: delivered rate since the last delivery
            # progress, NaN until anything has been delivered.
            delivered = sender.delivered_total
            if delivered > self._last_delivered and now > self._last_delivered_t:
                rho = (
                    (delivered - self._last_delivered)
                    * sender.packet_bytes
                    / (now - self._last_delivered_t)
                )
                self._last_delivered = delivered
                self._last_delivered_t = now
            else:
                rho = float("nan") if delivered == 0 else 0.0

        delay_estimator = getattr(inner, "delay_estimator", None)
        tbuff = getattr(delay_estimator, "tbuff_smooth", None)
        if tbuff is None:
            srtt = sender.srtt
            min_rtt = sender.min_rtt
            if srtt is not None and math.isfinite(min_rtt):
                tbuff = max(0.0, srtt - min_rtt)

        feedback = getattr(inner, "feedback", None)
        threshold = getattr(feedback, "threshold", None)
        target = getattr(inner, "target_buffer_delay", None)

        produced = sender.application.produced(now)
        app_limited = produced is not None and sender.next_seq >= produced

        def _f(value: Optional[float]) -> float:
            if value is None:
                return float("nan")
            value = float(value)
            return value if math.isfinite(value) else float("nan")

        return Observation(
            t=now,
            rho=_f(rho),
            tbuff=_f(tbuff),
            threshold=_f(threshold),
            target=_f(target),
            srtt=_f(sender.srtt),
            min_rtt=_f(sender.min_rtt),
            inflight=float(sender.inflight),
            pacing_rate=_f(getattr(adapter, "pacing_rate", None)),
            cwnd=_f(getattr(adapter, "cwnd", None)),
            delivered=float(sender.delivered_total),
            lost=float(sender.lost_total),
            retransmissions=float(sender.retransmissions),
            rtos=float(sender.rto_count),
            loss_episodes=float(adapter.congestion_events),
            in_recovery=1.0 if sender.in_recovery else 0.0,
            app_limited=1.0 if app_limited else 0.0,
        )

    # -- results --------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._done

    @property
    def now(self) -> float:
        return self._require_harness().now

    def result(self) -> FlowResult:
        """Finalize the episode and reduce it to a
        :class:`~repro.experiments.runner.FlowResult` — the same
        reduction (and determinism contract) as
        :func:`~repro.experiments.runner.run_single_flow`."""
        harness = self._require_harness()
        result = harness.finalize()[0]
        self._done = True
        if self._tracer is not None:
            self._tracer.emit(
                obs_mod.ENV_EPISODE,
                harness.now,
                flow=0,
                episode=self._episode,
                steps=self._steps,
                obs_version=OBS_VERSION,
                throughput=result.throughput,
                delay_mean=result.delay.mean,
            )
        return result
