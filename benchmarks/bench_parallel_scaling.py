"""Execution-harness performance: event-loop rate and batch scaling.

Two probes for the PERF registry entry:

* a micro-benchmark of the simulator hot path (schedule / fire, cancel,
  and periodic-timer reschedule), reported as events per second;
* wall-clock for the same Figure-10-style frontier batch at
  ``n_jobs`` ∈ {1, 2, 4}, asserting that the results are bit-identical
  at every job count (determinism is the layer's core contract).

Speed-ups are only meaningful relative to the host's core count, which
is recorded alongside the numbers: on a single-core runner the parallel
rows measure process-pool overhead, not speed-up.
"""

import os
import time

from repro.experiments.frontier import sweep_frontier
from repro.sim.engine import Simulator
from repro.traces.presets import isp_trace

from _report import emit

#: A small frontier grid keeps the 3-job-count sweep under a minute.
TARGETS = [t / 1000.0 for t in range(20, 101, 10)]
SWEEP_DURATION = 10.0
SWEEP_WARMUP = 2.0
JOB_COUNTS = (1, 2, 4)

EVENTS = 100_000


def _engine_rates():
    """Events/sec for the three hot operations of the event loop."""
    rates = {}

    # Plain schedule + fire.
    sim = Simulator()
    fired = [0]

    def on_fire():
        fired[0] += 1

    for i in range(EVENTS):
        sim.schedule_at(i * 1e-6, on_fire)
    start = time.perf_counter()
    sim.run()
    rates["schedule+fire"] = fired[0] / (time.perf_counter() - start)

    # Lazy cancellation: half the scheduled events are cancelled before
    # the loop reaches them (the RTO re-arm pattern).
    sim = Simulator()
    events = [sim.schedule_at(i * 1e-6, on_fire) for i in range(EVENTS)]
    for event in events[::2]:
        event.cancel()
    start = time.perf_counter()
    sim.run()
    rates["cancel-half"] = EVENTS / (time.perf_counter() - start)

    # Reschedule in place (the pacing-tick pattern).
    sim = Simulator()
    ticks = [0]

    def on_tick():
        ticks[0] += 1
        if ticks[0] < EVENTS:
            sim.reschedule(timer, 1e-6)

    timer = sim.schedule(1e-6, on_tick)
    start = time.perf_counter()
    sim.run()
    rates["reschedule"] = ticks[0] / (time.perf_counter() - start)
    return rates


def _frontier_times():
    """(n_jobs → seconds, points) for the same batch at each job count."""
    down = isp_trace("A", "mobile", duration=30.0)
    up = isp_trace("A", "mobile", duration=30.0, direction="uplink")
    timings = {}
    reference = None
    for n_jobs in JOB_COUNTS:
        start = time.perf_counter()
        points = sweep_frontier(
            down, up, targets=TARGETS,
            duration=SWEEP_DURATION, measure_start=SWEEP_WARMUP,
            n_jobs=n_jobs,
        )
        timings[n_jobs] = time.perf_counter() - start
        key = [(p.throughput_kbps, p.mean_delay_ms, p.p95_delay_ms) for p in points]
        if reference is None:
            reference = key
        else:
            assert key == reference, f"n_jobs={n_jobs} changed the results"
    return timings


def _run():
    return _engine_rates(), _frontier_times()


def test_parallel_scaling(benchmark):
    rates, timings = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [f"host cores: {os.cpu_count()}"]
    lines.append("-- event loop --")
    for op, rate in rates.items():
        lines.append(f"{op:15s} {rate / 1e6:8.2f} M events/s")
    lines.append(f"-- frontier batch ({len(TARGETS)} runs) --")
    serial = timings[JOB_COUNTS[0]]
    for n_jobs, seconds in timings.items():
        lines.append(
            f"n_jobs={n_jobs}  {seconds:7.2f} s  speedup {serial / seconds:5.2f}x"
        )
    emit("parallel_scaling", lines)

    # Sanity floors, far below any real machine, to catch regressions
    # that make the loop pathological rather than to measure the host.
    assert rates["schedule+fire"] > 1e4
    assert all(seconds > 0 for seconds in timings.values())
