"""Fluid-model validation of the analytical waveform (Figures 1-3).

These tests close the loop between §3's closed forms and an independent
numerical integration of the two-state system: the same (T, k_f, k_d)
must produce the predicted sawtooth.
"""

import pytest

from repro.core.fluid import simulate_sawtooth, waveform_phases
from repro.core.model import derive_parameters

RTT = 0.040
RHO = 1_000_000.0


class TestBufferFullRegime:
    """Figure 1: with Eq. 7 parameters the buffer never empties."""

    @pytest.fixture(scope="class")
    def result(self):
        params = derive_parameters(0.080, RTT)
        return simulate_sawtooth(
            RHO, RTT, params.threshold, params.kf, params.kd,
            duration=30.0, initial_tbuff=0.04,
        )

    def test_buffer_never_empties(self, result):
        assert result.empty_fraction < 0.01
        assert result.utilization > 0.99

    def test_dmax_matches_prediction(self, result):
        # Eq. 7 design: Dmax = 1.5 T = 120 ms
        assert result.dmax == pytest.approx(0.120, rel=0.05)

    def test_dmin_matches_prediction(self, result):
        # Dmin = T/2 = 40 ms
        assert result.dmin == pytest.approx(0.040, rel=0.10)

    def test_average_tbuff_matches_target(self, result):
        assert result.avg_tbuff == pytest.approx(0.080, rel=0.05)

    def test_period_is_4_t_plus_rtt(self, result):
        """Symmetric waveform (Fig. 3(c)): t_f = t_d = 2(T + RTT)."""
        assert result.period == pytest.approx(4 * (0.080 + RTT), rel=0.10)


class TestBufferEmptiedRegime:
    """Figure 2: Eq. 8 parameters periodically empty the buffer."""

    @pytest.fixture(scope="class")
    def result(self):
        params = derive_parameters(0.020, RTT)
        return simulate_sawtooth(
            RHO, RTT, params.threshold, params.kf, params.kd,
            duration=30.0,
        )

    def test_buffer_periodically_empty(self, result):
        assert result.empty_fraction > 0.02

    def test_utilisation_near_design_value(self, result):
        params = derive_parameters(0.020, RTT)
        assert result.utilization == pytest.approx(params.utilization, abs=0.15)

    def test_average_tbuff_near_target(self, result):
        assert result.avg_tbuff == pytest.approx(0.020, rel=0.35)

    def test_trough_is_zero(self, result):
        assert result.dmin == pytest.approx(0.0, abs=1e-3)


class TestThresholdPlacement:
    """Figure 3(a)-(c): for a fixed peak/trough, the period is minimal
    when T sits in the middle of the waveform.

    Holding D_max and D_min fixed while moving T requires adjusting the
    slopes: the observation lag is T + RTT, so the rise must be
    (D_max − T)/(T + RTT) and the fall (T − D_min)/(T + RTT).
    """

    DMAX, DMIN = 0.120, 0.040

    def _period(self, threshold):
        lag = threshold + RTT
        kf = 1.0 + (self.DMAX - threshold) / lag
        kd = 1.0 - (threshold - self.DMIN) / lag
        return simulate_sawtooth(
            RHO, RTT, threshold, kf=kf, kd=kd,
            duration=40.0, initial_tbuff=(self.DMAX + self.DMIN) / 2,
        ).period

    def test_symmetric_threshold_minimises_period(self):
        near_trough = self._period(0.050)   # Fig. 3(a)
        middle = self._period(0.080)        # Fig. 3(c)
        near_peak = self._period(0.110)     # Fig. 3(b)
        assert middle < near_trough
        assert middle < near_peak

    def test_extreme_threshold_stretches_one_state(self):
        """Near the trough the drain slope is shallow, so the algorithm
        lingers in the Drain state for most of the cycle (Fig. 3(a))."""
        result = simulate_sawtooth(
            RHO, RTT, 0.050,
            kf=1.0 + (self.DMAX - 0.050) / (0.050 + RTT),
            kd=1.0 - (0.050 - self.DMIN) / (0.050 + RTT),
            duration=40.0, initial_tbuff=0.08,
        )
        drain_time = float((result.states[len(result.states) // 2:] == -1).mean())
        assert drain_time > 0.5


class TestFluidMechanics:
    def test_rejects_bad_gains(self):
        with pytest.raises(ValueError):
            simulate_sawtooth(RHO, RTT, 0.02, kf=1.0, kd=0.5)
        with pytest.raises(ValueError):
            simulate_sawtooth(RHO, RTT, 0.02, kf=1.5, kd=1.0)

    def test_rejects_bad_scalars(self):
        with pytest.raises(ValueError):
            simulate_sawtooth(0.0, RTT, 0.02, 1.5, 0.5)
        with pytest.raises(ValueError):
            simulate_sawtooth(RHO, RTT, -0.01, 1.5, 0.5)

    def test_waveform_arrays_consistent(self):
        r = simulate_sawtooth(RHO, RTT, 0.02, 1.4, 0.5, duration=5.0)
        assert len(r.times) == len(r.tbuff) == len(r.states)
        assert (r.tbuff >= 0).all()
        assert set(r.states.tolist()) <= {-1, 1}

    def test_phases_cover_run(self):
        r = simulate_sawtooth(RHO, RTT, 0.02, 1.4, 0.5, duration=5.0)
        phases = waveform_phases(r)
        total = sum(d for _, d in phases)
        assert total == pytest.approx(5.0, rel=0.01)
        labels = {name for name, _ in phases}
        assert "fill" in labels

    def test_oscillation_exists(self):
        r = simulate_sawtooth(RHO, RTT, 0.04, 1.3, 0.7, duration=20.0)
        assert r.dmax > r.dmin
        assert r.period > 0


class TestEdgeCases:
    """Degenerate parameter placements the closed forms don't cover."""

    def test_kf_barely_above_one_never_fills(self):
        # kf → 1⁺: the fill rate (kf − 1)·ρ is negligible, so the
        # buffer never reaches the threshold — the waveform stays in
        # the fill state with an (almost) empty buffer throughout.
        r = simulate_sawtooth(RHO, RTT, 0.02, kf=1.000001, kd=0.5,
                              duration=10.0)
        assert set(r.states.tolist()) == {1}
        assert r.dmax < 0.001
        # An almost-empty buffer counts as empty (no standing queue).
        assert r.empty_fraction > 0.9

    def test_threshold_zero_drains_and_stays_empty(self):
        # T = 0: the first observed queueing flips the controller to
        # drain, and since the observed delay can never go *below*
        # zero it never fills again — the T→0 limit of the latency/
        # utilization trade-off.
        r = simulate_sawtooth(RHO, RTT, 0.0, kf=1.5, kd=0.5,
                              duration=10.0)
        assert r.states[-1] == -1
        assert r.tbuff[-1] == 0.0
        # Steady state is an empty buffer: utilization collapses.
        assert r.empty_fraction > 0.9

    def test_initial_tbuff_above_threshold_converges(self):
        # Starting with a standing queue well above T must converge to
        # the same steady-state sawtooth as starting empty.
        params = derive_parameters(0.080, RTT)
        from_empty = simulate_sawtooth(
            RHO, RTT, params.threshold, params.kf, params.kd,
            duration=30.0,
        )
        from_above = simulate_sawtooth(
            RHO, RTT, params.threshold, params.kf, params.kd,
            duration=30.0, initial_tbuff=0.300,
        )
        assert from_above.dmax == pytest.approx(from_empty.dmax, rel=0.05)
        assert from_above.avg_tbuff == pytest.approx(
            from_empty.avg_tbuff, rel=0.05
        )
        assert from_above.period == pytest.approx(
            from_empty.period, rel=0.10
        )
