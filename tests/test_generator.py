"""Tests for synthetic trace generation and the Table-2 presets."""

import numpy as np
import pytest

from repro.traces.generator import (
    TraceSpec,
    constant_rate_trace,
    generate_cellular_trace,
)
from repro.traces.presets import (
    TABLE2_TARGETS,
    isp_trace,
    lte_validation_trace,
    sprint_like_trace,
)


def _spec(**overrides):
    base = dict(
        name="test",
        mean_throughput=1_000_000.0,
        std_throughput=300_000.0,
        duration=30.0,
        seed=42,
    )
    base.update(overrides)
    return TraceSpec(**base)


class TestGenerator:
    def test_mean_matches_target(self):
        trace = generate_cellular_trace(_spec())
        assert trace.mean_throughput() == pytest.approx(1_000_000.0, rel=0.02)

    def test_windowed_std_matches_target(self):
        trace = generate_cellular_trace(_spec())
        stats = trace.stats(window=0.1)
        assert stats.std == pytest.approx(300_000.0, rel=0.10)

    def test_deterministic_for_same_seed(self):
        a = generate_cellular_trace(_spec())
        b = generate_cellular_trace(_spec())
        np.testing.assert_array_equal(a.opportunity_times, b.opportunity_times)

    def test_different_seed_differs(self):
        a = generate_cellular_trace(_spec(seed=1))
        b = generate_cellular_trace(_spec(seed=2))
        assert not np.array_equal(a.opportunity_times, b.opportunity_times)

    def test_outage_fraction_realised(self):
        spec = _spec(
            outage_fraction=0.5, outage_mean_duration=1.0, duration=120.0,
            std_throughput=100_000.0,
        )
        trace = generate_cellular_trace(spec)
        stats = trace.stats(window=0.1)
        assert 0.30 <= stats.outage_fraction <= 0.70

    def test_zero_std_gives_smooth_trace(self):
        trace = generate_cellular_trace(_spec(std_throughput=0.0))
        stats = trace.stats(window=0.1)
        assert stats.std < 0.05 * stats.mean

    def test_with_seed_copies_spec(self):
        spec = _spec()
        reseeded = spec.with_seed(99)
        assert reseeded.seed == 99
        assert reseeded.mean_throughput == spec.mean_throughput
        assert spec.seed == 42  # original untouched

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            generate_cellular_trace(_spec(mean_throughput=0.0))
        with pytest.raises(ValueError):
            generate_cellular_trace(_spec(std_throughput=-1.0))
        with pytest.raises(ValueError):
            generate_cellular_trace(_spec(duration=0.001))


class TestConstantRate:
    def test_exact_rate(self):
        trace = constant_rate_trace(1_500_000.0, 10.0)
        assert trace.mean_throughput() == pytest.approx(1_500_000.0, rel=0.01)

    def test_evenly_spaced(self):
        trace = constant_rate_trace(150_000.0, 1.0)
        gaps = np.diff(trace.opportunity_times)
        assert gaps.std() < 1e-9

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            constant_rate_trace(0.0, 1.0)


class TestPresets:
    @pytest.mark.parametrize("isp,mode", sorted(TABLE2_TARGETS))
    def test_table2_mean_reproduced(self, isp, mode):
        trace = isp_trace(isp, mode, duration=60.0)
        mean_kbps, _ = TABLE2_TARGETS[(isp, mode)]
        assert trace.stats().mean_kbps == pytest.approx(mean_kbps, rel=0.03)

    @pytest.mark.parametrize("isp,mode", sorted(TABLE2_TARGETS))
    def test_table2_std_in_band(self, isp, mode):
        trace = isp_trace(isp, mode, duration=60.0)
        _, std_kbps = TABLE2_TARGETS[(isp, mode)]
        assert trace.stats().std_kbps == pytest.approx(std_kbps, rel=0.10)

    def test_uplink_scaled_down(self):
        down = isp_trace("A", "stationary", duration=60.0)
        up = isp_trace("A", "stationary", duration=60.0, direction="uplink")
        ratio = up.mean_throughput() / down.mean_throughput()
        assert 0.15 <= ratio <= 0.35

    def test_unknown_trace_rejected(self):
        with pytest.raises(ValueError):
            isp_trace("Z", "stationary")
        with pytest.raises(ValueError):
            isp_trace("A", "stationary", direction="sideways")

    def test_sprint_like_outage_dominates(self):
        trace = sprint_like_trace(duration=120.0)
        stats = trace.stats(window=0.1)
        # Figure 8: the network is down 54% of the time.
        assert 0.45 <= stats.outage_fraction <= 0.70
        assert stats.mean_kbps < 100.0

    def test_lte_validation_distinct_from_table2(self):
        val = lte_validation_trace(duration=60.0)
        a = isp_trace("A", "stationary", duration=60.0)
        assert not np.array_equal(val.opportunity_times, a.opportunity_times)

    def test_preset_caching_returns_same_object(self):
        assert isp_trace("A", "mobile") is isp_trace("A", "mobile")
