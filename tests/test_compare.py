"""Tests for the replication statistics (bootstrap CI, rank test)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.compare import (
    bootstrap_mean_ci,
    mann_whitney_u,
    stochastically_less,
)


class TestBootstrapCI:
    def test_point_estimate_is_sample_mean(self):
        ci = bootstrap_mean_ci([1.0, 2.0, 3.0])
        assert ci.mean == pytest.approx(2.0)

    def test_interval_contains_mean(self):
        ci = bootstrap_mean_ci([1.0, 2.0, 3.0, 4.0, 5.0])
        assert ci.low <= ci.mean <= ci.high
        assert 3.0 in ci

    def test_single_sample_degenerates(self):
        ci = bootstrap_mean_ci([7.0])
        assert ci.low == ci.high == ci.mean == 7.0
        assert ci.half_width == 0.0

    def test_deterministic_given_seed(self):
        samples = [1.0, 5.0, 2.0, 8.0]
        a = bootstrap_mean_ci(samples, seed=42)
        b = bootstrap_mean_ci(samples, seed=42)
        assert (a.low, a.high) == (b.low, b.high)

    def test_wider_with_more_variance(self):
        tight = bootstrap_mean_ci([10.0, 10.1, 9.9, 10.0, 10.05] * 3)
        loose = bootstrap_mean_ci([1.0, 20.0, 5.0, 15.0, 10.0] * 3)
        assert loose.half_width > tight.half_width

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], confidence=1.5)

    @given(
        st.lists(st.floats(min_value=-100, max_value=100), min_size=3,
                 max_size=30)
    )
    @settings(max_examples=60, deadline=None)
    def test_interval_brackets_point_estimate(self, samples):
        ci = bootstrap_mean_ci(samples)
        assert ci.low - 1e-9 <= ci.mean <= ci.high + 1e-9

    def test_coverage_on_known_distribution(self):
        """~95% of CIs from N(0,1) samples should contain 0."""
        rng = np.random.default_rng(7)
        hits = 0
        trials = 200
        for i in range(trials):
            samples = rng.standard_normal(20)
            ci = bootstrap_mean_ci(samples, seed=i)
            hits += 0.0 in ci
        assert hits / trials > 0.85


class TestMannWhitney:
    def test_identical_samples_not_significant(self):
        u, p = mann_whitney_u([1, 2, 3, 4, 5], [1, 2, 3, 4, 5])
        assert p > 0.5

    def test_separated_samples_significant(self):
        a = [1.0, 1.1, 0.9, 1.05, 0.95, 1.02, 0.98, 1.01]
        b = [5.0, 5.1, 4.9, 5.05, 4.95, 5.02, 4.98, 5.01]
        u, p = mann_whitney_u(a, b)
        assert p < 0.01

    def test_symmetry(self):
        a, b = [1, 2, 3, 10], [4, 5, 6, 7]
        _, p_ab = mann_whitney_u(a, b)
        _, p_ba = mann_whitney_u(b, a)
        assert p_ab == pytest.approx(p_ba)

    def test_handles_ties(self):
        u, p = mann_whitney_u([1, 1, 1, 2], [1, 1, 2, 2])
        assert 0.0 <= p <= 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mann_whitney_u([], [1.0])


class TestStochasticallyLess:
    def test_clear_separation(self):
        low = [1.0, 1.2, 0.8, 1.1, 0.9, 1.05, 1.15, 0.85]
        high = [3.0, 3.2, 2.8, 3.1, 2.9, 3.05, 3.15, 2.85]
        assert stochastically_less(low, high)
        assert not stochastically_less(high, low)

    def test_overlapping_not_significant(self):
        a = [1.0, 2.0, 3.0]
        b = [1.5, 2.5, 2.0]
        assert not stochastically_less(a, b)
