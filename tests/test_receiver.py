"""Tests for the TCP receiver: ACK generation, SACK, timestamp echo."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.packet import make_data_packet
from repro.tcp.receiver import TcpReceiver


def _receiver(sim=None, granularity=0.01, sack=True):
    sim = sim or Simulator()
    acks = []
    recv = TcpReceiver(
        sim, flow_id=0, send_ack=acks.append,
        ts_granularity=granularity, sack_enabled=sack,
    )
    return sim, recv, acks


def _data(seq, now=0.0):
    return make_data_packet(flow_id=0, seq=seq, now=now)


class TestInOrder:
    def test_cumulative_ack_advances(self):
        sim, recv, acks = _receiver()
        for seq in range(3):
            recv.receive(_data(seq))
        assert [a.ack for a in acks] == [1, 2, 3]
        assert recv.rcv_nxt == 3

    def test_in_order_echoes_own_tsval(self):
        sim, recv, acks = _receiver()
        recv.receive(_data(0, now=1.234))
        assert acks[0].tsecr == 1.234

    def test_receiver_timestamp_quantised(self):
        sim, recv, acks = _receiver(granularity=0.01)
        sim.schedule(0.017, lambda: recv.receive(_data(0)))
        sim.run()
        assert acks[0].tsval == pytest.approx(0.01)

    def test_zero_granularity_uses_exact_clock(self):
        sim, recv, acks = _receiver(granularity=0.0)
        sim.schedule(0.0173, lambda: recv.receive(_data(0)))
        sim.run()
        assert acks[0].tsval == pytest.approx(0.0173)

    def test_rejects_ack_packets(self):
        from repro.sim.packet import make_ack_packet

        _, recv, _ = _receiver()
        with pytest.raises(ValueError):
            recv.receive(make_ack_packet(0, 1, 0.0, 0.0))


class TestOutOfOrder:
    def test_gap_produces_duplicate_acks(self):
        sim, recv, acks = _receiver()
        recv.receive(_data(0))
        recv.receive(_data(2))
        recv.receive(_data(3))
        assert [a.ack for a in acks] == [1, 1, 1]

    def test_hole_fill_jumps_cumulative_ack(self):
        sim, recv, acks = _receiver()
        recv.receive(_data(0))
        recv.receive(_data(2))
        recv.receive(_data(1))
        assert acks[-1].ack == 3

    def test_ooo_echoes_last_in_sequence_tsval(self):
        """Paper §4.1: on loss, TSecr is the TSval of the last in-sequence
        segment before the gap."""
        sim, recv, acks = _receiver()
        recv.receive(_data(0, now=1.0))
        recv.receive(_data(2, now=2.0))
        assert acks[-1].tsecr == 1.0

    def test_hole_filling_segment_echoes_its_own_tsval(self):
        sim, recv, acks = _receiver()
        recv.receive(_data(0, now=1.0))
        recv.receive(_data(2, now=2.0))
        recv.receive(_data(1, now=3.0))
        assert acks[-1].tsecr == 3.0

    def test_duplicate_segment_counted(self):
        sim, recv, acks = _receiver()
        recv.receive(_data(0))
        recv.receive(_data(0))
        assert recv.duplicate_packets == 1
        assert recv.unique_segments == 1

    def test_below_rcv_nxt_still_acked(self):
        sim, recv, acks = _receiver()
        recv.receive(_data(0))
        recv.receive(_data(0))
        assert acks[-1].ack == 1


class TestSack:
    def test_sack_reports_ooo_ranges(self):
        sim, recv, acks = _receiver()
        recv.receive(_data(0))
        recv.receive(_data(2))
        recv.receive(_data(3))
        blocks = acks[-1].sacks
        assert blocks[0].start == 2 and blocks[0].end == 4

    def test_most_recent_block_first(self):
        sim, recv, acks = _receiver()
        recv.receive(_data(0))
        recv.receive(_data(5))
        recv.receive(_data(2))
        blocks = acks[-1].sacks
        assert blocks[0].start == 2  # block containing the latest arrival

    def test_at_most_three_blocks(self):
        sim, recv, acks = _receiver()
        recv.receive(_data(0))
        for seq in (2, 4, 6, 8, 10):
            recv.receive(_data(seq))
        assert len(acks[-1].sacks) <= 3

    def test_no_sacks_when_disabled(self):
        sim, recv, acks = _receiver(sack=False)
        recv.receive(_data(0))
        recv.receive(_data(2))
        assert acks[-1].sacks == []

    def test_no_sacks_when_in_order(self):
        sim, recv, acks = _receiver()
        recv.receive(_data(0))
        assert acks[-1].sacks == []

    def test_sack_cleared_after_hole_filled(self):
        sim, recv, acks = _receiver()
        recv.receive(_data(0))
        recv.receive(_data(2))
        recv.receive(_data(1))
        assert acks[-1].sacks == []
