"""Replicated shootout: Figure-7 headline claims across trace seeds.

The paper repeats its real-network experiments many times and reports
averages (§5.3).  This bench replays the headline comparison — PR(L),
PR(H), CUBIC, BBR, Sprout — across three seed-variants of the ISP-A
mobile spec and asserts the shape claims on the *aggregated* outcomes
(mean ± bootstrap CI), so a single lucky seed cannot carry the result.
"""

from repro.core.proprate import PropRate
from repro.experiments.replication import compare_algorithms, format_comparison
from repro.metrics.compare import stochastically_less
from repro.tcp.congestion import Bbr, Cubic, Sprout
from repro.traces.presets import PRESET_SPECS

from _report import emit

SEEDS = (11, 22, 33, 44, 55)  # 5 paired seeds: sign test p = 1/32
DURATION = 20.0


def _run():
    spec = PRESET_SPECS["ISPA-mobile"]
    return compare_algorithms(
        {
            "PR(L)": lambda: PropRate(0.020),
            "PR(H)": lambda: PropRate(0.080),
            "CUBIC": Cubic,
            "BBR": Bbr,
            "Sprout": Sprout,
        },
        spec,
        seeds=SEEDS,
        duration=DURATION,
        measure_start=4.0,
    )


def test_replicated_shootout(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("replication_shootout", format_comparison(results))

    def delays(name):
        return [r.delay.mean for r in results[name].runs]

    def tputs(name):
        return [r.throughput for r in results[name].runs]

    # Headline claims must hold across seeds, not on one lucky trace.
    # The seeds are paired (same trace variant for every algorithm), so
    # the per-seed sign test is the right design: PR beating CUBIC on
    # all 5 paired seeds has p = 1/32 under the null.
    assert all(p < c for p, c in zip(delays("PR(H)"), delays("CUBIC")))
    assert all(p < c for p, c in zip(delays("PR(L)"), delays("CUBIC")))
    # Unpaired rank test for the wide gap: PR(L) vs CUBIC delays.
    assert stochastically_less(delays("PR(L)"), delays("CUBIC"))
    # PR(H) throughput stays within a modest gap of CUBIC on every seed.
    for pr, cubic in zip(tputs("PR(H)"), tputs("CUBIC")):
        assert pr > 0.6 * cubic
    # Sprout's throughput penalty holds in aggregate (individual smooth
    # seeds can let its variance-driven window open right up).
    assert results["Sprout"].throughput.mean < 0.7 * results["PR(H)"].throughput.mean
    # And the PropRate knob orders delay on every seed.
    for low, high in zip(delays("PR(L)"), delays("PR(H)")):
        assert low < high
