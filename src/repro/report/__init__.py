"""Result export: CSV/JSON tables, gnuplot scripts, ASCII heatmaps."""

from repro.report.export import (
    flow_results_to_csv,
    fluid_to_json,
    frontier_to_csv,
    gnuplot_scatter_script,
    grid_to_json,
    timeseries_to_csv,
)
from repro.report.heatmap import (
    render_fluid_towers,
    render_grid_heatmap,
    render_grid_heatmaps,
)

__all__ = [
    "flow_results_to_csv",
    "fluid_to_json",
    "frontier_to_csv",
    "gnuplot_scatter_script",
    "grid_to_json",
    "render_fluid_towers",
    "render_grid_heatmap",
    "render_grid_heatmaps",
    "timeseries_to_csv",
]
