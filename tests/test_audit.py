"""Tests for the :mod:`repro.debug` invariant auditor and flight recorder.

The positive direction — audited runs are clean and bit-identical to
unaudited ones — and the negative direction: deliberately corrupted
simulator state must trip the matching check and dump a parseable
flight-recorder trace.
"""

import json
import os

import pytest

from repro.core.proprate import PropRate
from repro.debug import (
    AUDIT_ENV,
    AuditConfig,
    FlightRecorder,
    InvariantAuditor,
    InvariantViolation,
    audit_enabled,
)
from repro.debug.auditor import DEFAULT_TBUFF_TOLERANCE
from repro.debug.recorder import TRACE_DIR_ENV
from repro.experiments.runner import (
    FlowSpec,
    cellular_path_config,
    run_experiment,
    run_single_flow,
)
from repro.sim.engine import Simulator
from repro.sim.network import DuplexPath
from repro.tcp.congestion.cubic import Cubic
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender
from repro.traces.generator import constant_rate_trace

DURATION = 6.0
WARMUP = 1.0


def _trace(rate: float = 750_000.0, duration: float = DURATION + 2.0):
    return constant_rate_trace(rate, duration)


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_ring_retains_last_n(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record(float(i), "k", i)
        assert len(rec) == 4
        assert rec.recorded == 10
        snap = rec.snapshot()
        assert [e["detail"] for e in snap] == [6, 7, 8, 9]
        assert [e["t"] for e in snap] == [6.0, 7.0, 8.0, 9.0]

    def test_snapshot_renders_live_objects(self):
        rec = FlightRecorder(capacity=4)

        def some_callback():
            pass  # pragma: no cover - never called

        rec.record(1.0, "event", some_callback)
        (entry,) = rec.snapshot()
        assert "some_callback" in entry["detail"]

    def test_engine_ring_merges_by_time(self):
        rec = FlightRecorder(capacity=8)
        # Engine entries arrive via the inline ring.
        for i, t in enumerate([0.0, 1.0, 2.0]):
            j = rec.ring_count[0] & (rec.ring_capacity - 1)
            rec.ring_times[j] = t
            rec.ring_details[j] = f"cb{i}"
            rec.ring_count[0] += 1
        rec.record(1.0, "sender", {"una": 3})
        snap = rec.snapshot()
        assert [e["kind"] for e in snap] == ["event", "event", "sender", "event"]
        assert rec.recorded == 4

    def test_dump_writes_parseable_json(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        rec = FlightRecorder(capacity=4)
        rec.record(0.5, "k", "detail")
        path = rec.dump(violations=[{"check": "x", "message": "boom"}])
        assert path.startswith(str(tmp_path))
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["format"].startswith("repro.debug.flight-recorder")
        assert payload["violations"][0]["check"] == "x"
        assert payload["events"][0]["detail"] == "detail"

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


# ----------------------------------------------------------------------
# The REPRO_AUDIT switch
# ----------------------------------------------------------------------
class TestAuditEnabled:
    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv(AUDIT_ENV, "1")
        assert audit_enabled(False) is False
        monkeypatch.delenv(AUDIT_ENV)
        assert audit_enabled(True) is True

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("TRUE", True), ("yes", True),
        ("0", False), ("", False), ("false", False), ("False", False),
    ])
    def test_env_values(self, monkeypatch, value, expected):
        monkeypatch.setenv(AUDIT_ENV, value)
        assert audit_enabled() is expected

    def test_unset_env_is_off(self, monkeypatch):
        monkeypatch.delenv(AUDIT_ENV, raising=False)
        assert audit_enabled() is False
        assert audit_enabled(None) is False


# ----------------------------------------------------------------------
# Clean audited runs
# ----------------------------------------------------------------------
class TestCleanRun:
    def test_audited_run_is_clean_and_bit_identical(self):
        kwargs = dict(duration=DURATION, measure_start=WARMUP)
        plain = run_single_flow(
            lambda: PropRate(target_buffer_delay=0.040), _trace(),
            audit=False, **kwargs,
        )
        audited = run_single_flow(
            lambda: PropRate(target_buffer_delay=0.040), _trace(),
            audit=True, **kwargs,
        )
        assert audited.throughput == plain.throughput
        assert audited.delivered_bytes == plain.delivered_bytes
        assert audited.delay.mean == plain.delay.mean
        assert audited.retransmissions == plain.retransmissions

    def test_env_switch_attaches_auditor(self, monkeypatch):
        attached = []
        real = InvariantAuditor

        class Spy(real):
            def __init__(self, *args, **kw):
                super().__init__(*args, **kw)
                attached.append(self)

        import repro.debug

        monkeypatch.setattr(repro.debug, "InvariantAuditor", Spy)
        monkeypatch.setenv(AUDIT_ENV, "1")
        run_single_flow(
            lambda: PropRate(target_buffer_delay=0.040), _trace(),
            duration=2.0, measure_start=0.5,
        )
        (auditor,) = attached
        assert auditor.sweeps > 0
        assert auditor._events_seen > 0
        assert auditor.violations == []


# ----------------------------------------------------------------------
# Injected corruption must trip the matching check
# ----------------------------------------------------------------------
def _wire(strict: bool = True):
    """A manually wired single-flow simulation with the auditor attached."""
    sim = Simulator()
    path = DuplexPath(sim, cellular_path_config(_trace()))
    auditor = InvariantAuditor(sim, strict=strict)
    forward_audit, _ = auditor.attach_path(path)
    receiver = TcpReceiver(sim, 0, send_ack=path.send_reverse)
    sender = TcpSender(
        sim, 0, PropRate(target_buffer_delay=0.040),
        send_packet=path.send_forward,
    )
    path.attach_flow(0, receiver.receive, sender.on_ack_packet)
    auditor.attach_flow(sender, receiver, data_link=forward_audit)
    sender.start()
    return sim, path, sender, auditor


class TestInjectedViolations:
    def test_conservation_leak_detected(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        sim, path, sender, auditor = _wire()

        def leak():
            path.forward_link.queue.enqueued += 1

        sim.schedule_at(2.0, leak)
        with pytest.raises(InvariantViolation) as exc_info:
            sim.run(until=4.0)
        assert exc_info.value.check == "conservation"
        # The dumped trace is parseable and carries context.
        trace_path = exc_info.value.trace_path
        assert trace_path is not None and os.path.exists(trace_path)
        with open(trace_path, encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["violations"][0]["check"] == "conservation"
        assert len(payload["events"]) > 0
        assert payload["context"]["events_seen"] > 0

    def test_stalled_rto_detected(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        sim, path, sender, auditor = _wire()

        def stall():
            assert sender.snd_una < sender.next_seq  # data genuinely unACKed
            sender._rto_event.cancel()
            auditor.sweep(full=True)

        sim.schedule_at(2.0, stall)
        with pytest.raises(InvariantViolation) as exc_info:
            sim.run(until=4.0)
        assert exc_info.value.check == "timer-liveness"

    def test_parked_pacing_tick_detected(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        sim, path, sender, auditor = _wire()

        def park():
            assert sender.cc.pacing_rate > 0.0
            sender._tick_event.cancel()
            auditor.sweep(full=True)

        sim.schedule_at(2.0, park)
        with pytest.raises(InvariantViolation) as exc_info:
            sim.run(until=4.0)
        assert exc_info.value.check == "timer-liveness"
        assert "tick" in exc_info.value.detail

    def test_snd_una_regression_detected(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        sim, path, sender, auditor = _wire()

        def regress():
            assert sender.snd_una > 0
            auditor.sweep(full=True)  # sync the auditor's last-seen una
            sender.snd_una -= 1
            auditor.sweep(full=True)

        sim.schedule_at(2.0, regress)
        with pytest.raises(InvariantViolation) as exc_info:
            sim.run(until=4.0)
        assert exc_info.value.check == "ack-monotone"

    def test_non_strict_accumulates_without_raising(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        sim, path, sender, auditor = _wire(strict=False)
        sim.schedule_at(2.0, lambda: setattr(
            path.forward_link.queue, "enqueued",
            path.forward_link.queue.enqueued + 1,
        ))
        sim.run(until=2.5)
        auditor.final_check()
        assert auditor.violations
        assert all(v["check"] == "conservation" for v in auditor.violations)
        # All dumps go to one file, rewritten in place.
        assert auditor.trace_path is not None
        with open(auditor.trace_path, encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["violations"] == auditor.violations

    def test_record_exception_dumps_trace(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        sim, path, sender, auditor = _wire()

        def boom():
            raise RuntimeError("engine callback exploded")

        sim.schedule_at(2.0, boom)
        with pytest.raises(RuntimeError):
            sim.run(until=4.0)
        trace_path = auditor.record_exception(RuntimeError("engine callback exploded"))
        with open(trace_path, encoding="utf-8") as fh:
            payload = json.load(fh)
        assert "engine callback exploded" in payload["context"]["exception"]


# ----------------------------------------------------------------------
# Batch / parallel plumbing
# ----------------------------------------------------------------------
class TestBatchPlumbing:
    def test_shootout_audited_serial_and_parallel(self):
        from repro.experiments.algorithms import run_shootout

        kwargs = dict(
            names=["PR(M)", "CUBIC"], duration=3.0, measure_start=0.5,
        )
        serial = run_shootout(_trace(), n_jobs=1, audit=True, **kwargs)
        parallel = run_shootout(_trace(), n_jobs=2, audit=True, **kwargs)
        for name in kwargs["names"]:
            assert serial[name].throughput == parallel[name].throughput

    def test_scenario_grid_audited(self):
        from repro.experiments.parallel import CcSpec
        from repro.experiments.scenarios import run_scenario_grid

        results = run_scenario_grid(
            "wired_path",
            {"cubic": CcSpec("CUBIC")},
            n_jobs=1,
            audit=True,
            duration=3.0,
            measure_start=0.5,
        )
        assert results["cubic"].throughput > 0

    def test_frontier_audited(self):
        from repro.experiments.frontier import sweep_frontier

        points = sweep_frontier(
            _trace(), targets=[0.040], duration=3.0, measure_start=0.5,
            audit=True,
        )
        assert points[0].throughput_kbps > 0


class TestScoreboardInvariants:
    """Satellite checks for the interval-run scoreboards (PR 5)."""

    def _wire_fast_checks(self, strict: bool = True):
        """Like ``_wire`` but checking scoreboards on every ACK sweep."""
        sim = Simulator()
        path = DuplexPath(sim, cellular_path_config(_trace()))
        auditor = InvariantAuditor(sim, strict=strict, pipe_check_every=1)
        forward_audit, _ = auditor.attach_path(path)
        receiver = TcpReceiver(sim, 0, send_ack=path.send_reverse)
        sender = TcpSender(
            sim, 0, PropRate(target_buffer_delay=0.040),
            send_packet=path.send_forward,
        )
        path.attach_flow(0, receiver.receive, sender.on_ack_packet)
        auditor.attach_flow(sender, receiver, data_link=forward_audit)
        sender.start()
        return sim, path, sender, receiver, auditor

    def test_clean_run_with_per_ack_scoreboard_checks(self):
        sim, path, sender, receiver, auditor = self._wire_fast_checks()
        sim.run(until=4.0)
        assert auditor.violations == []
        assert sender.acks_received > 0

    def test_corrupt_sender_scoreboard_detected(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        sim, path, sender, receiver, auditor = self._wire_fast_checks()

        def corrupt():
            # An empty run violates structure but contributes nothing
            # to the pipe reconstruction, so the structural check (not
            # pipe-accounting) must be what trips.
            m = sender.scoreboard._map
            m._starts.append(10**6)
            m._ends.append(10**6)
            m._tags.append(1)

        sim.schedule_at(2.0, corrupt)
        with pytest.raises(InvariantViolation) as exc_info:
            sim.run(until=4.0)
        assert exc_info.value.check == "scoreboard-structure"

    def test_ooo_overlapping_rcv_nxt_detected(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        sim, path, sender, receiver, auditor = self._wire_fast_checks()

        def corrupt():
            assert receiver.rcv_nxt > 0
            # A stored segment at the cumulative edge should have been
            # consumed by the rcv_nxt advance.  Sweep synchronously:
            # the next in-order arrival would legitimately consume it.
            receiver._ooo.add(receiver.rcv_nxt)
            auditor.sweep(full=True)

        sim.schedule_at(2.0, corrupt)
        with pytest.raises(InvariantViolation) as exc_info:
            sim.run(until=4.0)
        assert exc_info.value.check == "receiver-ooo"

    def test_unbacked_sack_block_detected(self, tmp_path, monkeypatch):
        from repro.sim.packet import SackBlock

        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        sim, path, sender, receiver, auditor = self._wire_fast_checks()

        def corrupt():
            # Keep the store non-empty and legal, but forge a block the
            # store does not back.
            receiver._ooo.add(receiver.rcv_nxt + 50)
            receiver._sack_blocks = lambda: [
                SackBlock(receiver.rcv_nxt + 100, receiver.rcv_nxt + 102)
            ]
            # Sweep before the receiver can emit the forged block on a
            # real ACK (which would corrupt the sender's pipe instead).
            auditor.sweep(full=True)

        sim.schedule_at(2.0, corrupt)
        with pytest.raises(InvariantViolation) as exc_info:
            sim.run(until=4.0)
        assert exc_info.value.check == "receiver-ooo"
        assert "not fully backed" in exc_info.value.detail


# ----------------------------------------------------------------------
# Multi-flow tolerance scaling and AuditConfig overrides (PR 7)
# ----------------------------------------------------------------------
class _StaleDelayEstimator:
    """A delay estimator frozen at an absurd over-read.

    Feedback is swallowed (``on_ack`` is a no-op), so the sender keeps
    acting on a t_buff reading that never decays — the exact failure
    mode the estimator band exists to catch.
    """

    tbuff_smooth = 10.0

    def on_ack(self, now, one_way_delay):
        pass

    def __setattr__(self, name, value):
        pass  # stays frozen even if the CC pokes at it


def _wire_contention(n: int, auditor_kwargs=None, stagger: float = 0.5):
    """``n`` staggered PropRate flows sharing one audited bottleneck."""
    sim = Simulator()
    path = DuplexPath(
        sim, cellular_path_config(constant_rate_trace(1.5e6, 14.0))
    )
    auditor = InvariantAuditor(sim, **(auditor_kwargs or {}))
    forward_audit, _ = auditor.attach_path(path)
    senders = []
    for i in range(n):
        receiver = TcpReceiver(sim, i, send_ack=path.send_reverse)
        sender = TcpSender(
            sim, i, PropRate(target_buffer_delay=0.040),
            send_packet=path.send_forward,
        )
        path.attach_flow(i, receiver.receive, sender.on_ack_packet)
        auditor.attach_flow(sender, receiver, data_link=forward_audit)
        sim.schedule_at(i * stagger, sender.start)
        senders.append(sender)
    return sim, path, senders, auditor, forward_audit


class TestMultiFlowTolerance:
    def test_four_flow_cubic_contention_audits_clean(self):
        # Regression (ROADMAP carry-over): the single-flow t_buff band
        # must not trip spuriously when four flows contend.
        trace = constant_rate_trace(1.5e6, 10.0)
        flows = [
            FlowSpec(
                cc_factory=Cubic, name=f"cubic{i}", start=0.5 * i,
                measure_start=3.0,
            )
            for i in range(4)
        ]
        results = run_experiment(
            cellular_path_config(trace), flows, duration=9.0, audit=True
        )
        assert len(results) == 4
        assert sum(r.delivered_bytes for r in results) > 0

    def test_four_flow_proprate_contention_audits_clean(self):
        # Same regression for the estimator-bearing sender: PropRate's
        # t_buff is checked against the shared-queue sojourn, so this
        # exercises the flow-scaled band directly.
        trace = constant_rate_trace(1.5e6, 10.0)
        flows = [
            FlowSpec(
                cc_factory=lambda: PropRate(target_buffer_delay=0.040),
                name=f"pr{i}", start=0.5 * i, measure_start=3.0,
            )
            for i in range(4)
        ]
        results = run_experiment(
            cellular_path_config(trace), flows, duration=9.0, audit=True
        )
        assert len(results) == 4

    def test_tbuff_band_scales_with_active_flows(self):
        sim, path, senders, auditor, forward_audit = _wire_contention(4)
        bands = []
        # By t=2.5 all four staggered flows have started; none complete.
        sim.schedule_at(2.5, lambda: bands.append(
            auditor._tbuff_band(forward_audit)
        ))
        sim.run(until=3.0)
        assert bands == [pytest.approx(4 * DEFAULT_TBUFF_TOLERANCE)]
        # flow_scale=False restores the fixed single-flow band.
        auditor.flow_scale = False
        assert auditor._tbuff_band(forward_audit) == DEFAULT_TBUFF_TOLERANCE

    def test_stale_estimator_still_trips_at_scaled_tolerance(
        self, tmp_path, monkeypatch
    ):
        # The widened band must stay a real check: an estimator frozen
        # far above the 4-flow band (4 x 150 ms) still trips.
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        sim, path, senders, auditor, _ = _wire_contention(4)

        def go_stale():
            senders[0].cc.delay_estimator = _StaleDelayEstimator()

        sim.schedule_at(3.0, go_stale)
        with pytest.raises(InvariantViolation) as exc_info:
            sim.run(until=12.0)
        assert exc_info.value.check == "estimator-tbuff"


class TestAuditConfig:
    def test_enabled_flag_resolves(self, monkeypatch):
        monkeypatch.setenv(AUDIT_ENV, "1")
        assert audit_enabled(AuditConfig(enabled=False)) is False
        monkeypatch.delenv(AUDIT_ENV)
        assert audit_enabled(AuditConfig()) is True

    def test_overrides_reach_the_auditor(self):
        cfg = AuditConfig(
            tbuff_tolerance=0.5, sustain=3, flow_scale=False, strict=False,
        )
        auditor = cfg.build(Simulator())
        assert auditor.tbuff_tolerance == 0.5
        assert auditor.sustain == 3
        assert auditor.flow_scale is False
        assert auditor.strict is False

    def test_config_threads_through_run_experiment(self, tmp_path, monkeypatch):
        # An impossibly tight band + sustain=1 must trip on a clean run
        # if (and only if) the config actually reaches the auditor.
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        cfg = AuditConfig(tbuff_tolerance=-10.0, sustain=1, flow_scale=False)
        with pytest.raises(InvariantViolation) as exc_info:
            run_single_flow(
                lambda: PropRate(target_buffer_delay=0.040),
                constant_rate_trace(750_000.0, 8.0),
                duration=6.0, measure_start=1.0, audit=cfg,
            )
        assert exc_info.value.check == "estimator-tbuff"

    def test_config_pickles(self):
        import pickle

        cfg = AuditConfig(sustain=7)
        assert pickle.loads(pickle.dumps(cfg)) == cfg
