"""Flow-level fluid tier: engine, controllers, scenarios, exports.

The xval CI gate (scripts/check_fluid_xval.py) pins fluid-vs-packet
agreement; these tests pin the fluid tier's *internal* contract —
target tracking, conservation, determinism, handover mechanics, loss
epochs, and the [0, 1] bounds the report metrics promise.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fluid import (
    FluidFlowSpec,
    HandoverSpec,
    TowerSpec,
    fan_in_scenario,
    run_fluid,
    tower_for_label,
)
from repro.report import fluid_to_json, render_fluid_towers

RATE = 1e6  # bytes/s, the 8 Mbps wired bottleneck


def _pr(name="pr", target=0.040, **kw):
    return FluidFlowSpec(name=name, controller="proprate",
                         target_tbuff=target, **kw)


def _cubic(name="cu", **kw):
    return FluidFlowSpec(name=name, controller="cubic", **kw)


class TestSingleFlow:
    def test_proprate_tracks_target(self):
        report = run_fluid([_pr()], [TowerSpec(rate=RATE)], 30.0, dt=0.002)
        flow = report.flows[0]
        # Full utilization at a standing queue near the target — the
        # §3 design point (avg ≈ target, Dmax ≈ 1.5·T for PR at 40 ms).
        assert flow.utilization == pytest.approx(1.0, abs=0.02)
        assert flow.avg_tbuff == pytest.approx(0.040, rel=0.25)
        assert flow.max_tbuff < 0.100
        assert flow.loss_epochs == 0

    def test_cubic_fills_buffer_and_loses(self):
        report = run_fluid(
            [_cubic()], [TowerSpec(rate=RATE, buffer_packets=300)],
            30.0, dt=0.002,
        )
        flow = report.flows[0]
        assert flow.utilization == pytest.approx(1.0, abs=0.02)
        # Loss-based probing must overflow the 450 KB buffer repeatedly
        # and ride near the resulting ~0.45 s ceiling.
        assert flow.loss_epochs >= 3
        assert flow.max_tbuff == pytest.approx(0.45, rel=0.10)

    def test_delivered_bytes_conserved(self):
        report = run_fluid([_pr()], [TowerSpec(rate=RATE)], 20.0, dt=0.002,
                           measure_start=5.0)
        flow = report.flows[0]
        window = flow.measure_end - flow.measure_start
        # Goodput is delivered bytes over the window, and delivery
        # can't exceed the bottleneck's capacity over that window.
        assert flow.goodput * window == pytest.approx(flow.delivered_bytes)
        assert flow.delivered_bytes <= RATE * window * (1 + 1e-9)

    def test_flow_starting_late_measures_late(self):
        report = run_fluid(
            [_pr(start=12.0)], [TowerSpec(rate=RATE)], 20.0,
            measure_start=5.0,
        )
        assert report.flows[0].measure_start == 12.0
        assert report.flows[0].goodput > 0


class TestContention:
    def test_two_proprate_flows_split_fairly(self):
        flows = [_pr("a"), _pr("b")]
        report = run_fluid(flows, [TowerSpec(rate=2 * RATE)], 30.0,
                           dt=0.002)
        assert report.jfi == pytest.approx(1.0, abs=0.01)
        for flow in report.flows:
            assert flow.utilization == pytest.approx(0.5, abs=0.05)

    def test_cubic_starves_proprate(self):
        # The paper's coexistence result: a loss-based competitor fills
        # the buffer, the delay-based flow backs off.
        flows = [_pr("pr"), _cubic("cu")]
        report = run_fluid(
            flows, [TowerSpec(rate=2 * RATE, buffer_packets=300)],
            30.0, dt=0.002,
        )
        by_name = {f.name: f for f in report.flows}
        assert by_name["cu"].goodput > 2 * by_name["pr"].goodput
        assert report.jfi < 0.9

    def test_total_delivery_bounded_by_capacity(self):
        flows = [_pr(f"f{i}") for i in range(4)]
        report = run_fluid(flows, [TowerSpec(rate=RATE)], 20.0)
        window = report.flows[0].measure_end - report.flows[0].measure_start
        total = sum(f.delivered_bytes for f in report.flows)
        assert total <= RATE * window * (1 + 1e-9)


class TestHandover:
    def test_handover_moves_flow(self):
        towers = [TowerSpec(name="a", rate=RATE),
                  TowerSpec(name="b", rate=RATE)]
        report = run_fluid(
            [_pr()], towers, 20.0,
            handovers=[HandoverSpec(time=10.0, flow=0, to_tower=1)],
        )
        assert report.handovers_applied == 1
        assert report.flows[0].handovers == 1
        assert report.flows[0].final_tower == 1
        # The flow kept delivering on both sides of the migration.
        assert report.flows[0].utilization > 0.8

    def test_same_tower_handover_is_noop(self):
        report = run_fluid(
            [_pr()], [TowerSpec(rate=RATE)], 10.0,
            handovers=[HandoverSpec(time=5.0, flow=0, to_tower=0)],
        )
        assert report.handovers_applied == 0
        assert report.flows[0].handovers == 0

    def test_handover_to_idle_tower_recovers_rate(self):
        # Two flows share tower a; one migrates to idle tower b and
        # should recover toward full capacity there.
        towers = [TowerSpec(name="a", rate=RATE),
                  TowerSpec(name="b", rate=RATE)]
        flows = [_pr("stay"), _pr("move")]
        report = run_fluid(
            flows, towers, 30.0, measure_start=20.0,
            handovers=[HandoverSpec(time=10.0, flow=1, to_tower=1)],
        )
        by_name = {f.name: f for f in report.flows}
        assert by_name["move"].goodput == pytest.approx(RATE, rel=0.05)
        assert by_name["stay"].goodput == pytest.approx(RATE, rel=0.05)


class TestDeterminismAndExport:
    def test_repeated_run_byte_identical(self, tmp_path):
        flows, towers, handovers = fan_in_scenario(
            40, 3, 8.0, mix="pr-vs-cubic", handover_count=6,
        )
        paths = []
        for i in range(2):
            report = run_fluid(flows, towers, 8.0, handovers=handovers,
                               measure_start=2.0)
            path = fluid_to_json(report.to_dict(), tmp_path / f"r{i}.json")
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_to_dict_json_safe(self):
        report = run_fluid([_pr(start=9.0)], [TowerSpec(rate=RATE)], 10.0,
                           measure_start=9.9)
        # A barely-measured flow must still serialize (NaN → null).
        payload = json.dumps(report.to_dict(), allow_nan=False)
        assert "repro.fluid/1" in payload

    def test_tower_panel_renders(self):
        flows, towers, handovers = fan_in_scenario(
            20, 2, 6.0, mix="pr-self", handover_count=2,
        )
        report = run_fluid(flows, towers, 6.0, handovers=handovers,
                           measure_start=2.0)
        panel = render_fluid_towers(report)
        assert "tower0" in panel and "jfi" in panel


class TestValidation:
    def test_tower_needs_exactly_one_capacity(self):
        with pytest.raises(ValueError):
            TowerSpec()
        with pytest.raises(ValueError):
            TowerSpec(rate=RATE, trace=tower_for_label(
                "cellular:A-stationary", 10.0).trace)

    def test_unknown_controller_rejected(self):
        with pytest.raises(ValueError, match="unknown fluid controller"):
            run_fluid(
                [FluidFlowSpec(name="x", controller="vegas")],
                [TowerSpec(rate=RATE)], 5.0,
            )

    def test_out_of_range_indices_rejected(self):
        with pytest.raises(ValueError, match="references tower"):
            run_fluid([_pr(tower=3)], [TowerSpec(rate=RATE)], 5.0)
        with pytest.raises(ValueError, match="references flow"):
            run_fluid([_pr()], [TowerSpec(rate=RATE)], 5.0,
                      handovers=[HandoverSpec(1.0, 5, 0)])

    def test_tower_label_vocabulary(self):
        wired = tower_for_label("wired:8mbps", 10.0)
        assert wired.rate == pytest.approx(1e6)
        cellular = tower_for_label("cellular:A-stationary", 10.0)
        assert cellular.trace is not None
        with pytest.raises(ValueError, match="unknown trace label"):
            tower_for_label("satellite:geo", 10.0)

    def test_capacity_profile_matches_trace(self):
        tower = tower_for_label("cellular:B-mobile", 10.0)
        profile = tower.capacity_profile(10.0, 0.1)
        assert profile.shape == (100,)
        total = profile.sum() * 0.1
        assert total == pytest.approx(
            tower.trace.capacity_bytes(0.0, 10.0), rel=0.01
        )


class TestFanInScenario:
    def test_deterministic_and_complete(self):
        a = fan_in_scenario(100, 4, 10.0, mix="pr-heavy", handover_count=10)
        b = fan_in_scenario(100, 4, 10.0, mix="pr-heavy", handover_count=10)
        assert a == b
        flows, towers, handovers = a
        assert len(flows) == 100 and len(towers) == 4
        assert len(handovers) == 10
        assert all(0 <= h.flow < 100 and 0 <= h.to_tower < 4
                   for h in handovers)

    def test_seed_rotates_assignment(self):
        a = fan_in_scenario(10, 3, 10.0, seed=0)[0]
        b = fan_in_scenario(10, 3, 10.0, seed=1)[0]
        assert [f.tower for f in a] != [f.tower for f in b]

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError, match="unknown mix"):
            fan_in_scenario(4, 2, 10.0, mix="bbr-self")


class TestAdaptiveBank:
    """The §6 adaptive-target rule vectorized over the fleet."""

    def _bank(self, target=0.080, min_target=0.005, rtt=0.040):
        from repro.fluid.controllers import AdaptivePropRateBank

        return AdaptivePropRateBank([0], [rtt], [0.0], 0.005,
                                    [target], [min_target])

    def test_two_consecutive_episodes_shrink(self):
        bank = self._bank(target=0.080)
        threshold0 = float(bank.threshold[0])
        hit = np.array([True])
        assert bank.on_overflow(1.0, hit) == 1
        assert bank.target[0] == pytest.approx(0.080)  # first: no shrink
        assert bank.on_overflow(2.0, hit) == 1
        assert bank.target[0] == pytest.approx(0.080 * 0.7)
        # The shrink re-derives the fill/drain operating point.
        assert bank.threshold[0] != pytest.approx(threshold0)
        assert bank.target_adjustments[0] == 1

    def test_episode_memory_boundary_inclusive(self):
        from repro.core.adaptive import EPISODE_MEMORY

        bank = self._bank(target=0.080)
        hit = np.array([True])
        bank.on_overflow(1.0, hit)
        # Exactly EPISODE_MEMORY apart still counts as consecutive.
        bank.on_overflow(1.0 + EPISODE_MEMORY, hit)
        assert bank.target[0] == pytest.approx(0.080 * 0.7)

    def test_per_rtt_holdoff_coalesces_burst(self):
        bank = self._bank(target=0.080, rtt=0.040)
        hit = np.array([True])
        assert bank.on_overflow(1.0, hit) == 1
        assert bank.on_overflow(1.01, hit) == 0  # same burst, one epoch
        assert bank.target[0] == pytest.approx(0.080)

    def test_quiet_recovery_capped_at_configured(self):
        from repro.core.adaptive import RECOVERY_QUIET_TIME, RECOVERY_STEP

        bank = self._bank(target=0.080)
        hit = np.array([True])
        bank.on_overflow(1.0, hit)
        bank.on_overflow(2.0, hit)
        shrunk = float(bank.target[0])
        obs = np.zeros(1)
        active = np.ones(1, dtype=bool)
        # Not yet quiet long enough → no move.
        bank.rates(2.0 + RECOVERY_QUIET_TIME - 0.1, obs, obs, obs, active)
        assert bank.target[0] == pytest.approx(shrunk)
        bank.rates(2.0 + RECOVERY_QUIET_TIME, obs, obs, obs, active)
        assert bank.target[0] == pytest.approx(shrunk + RECOVERY_STEP)
        # Recovery never exceeds the configured ceiling.
        for k in range(20):
            bank.rates(10.0 + (k + 1) * RECOVERY_QUIET_TIME,
                       obs, obs, obs, active)
        assert bank.target[0] == pytest.approx(0.080)

    def test_min_target_floor(self):
        bank = self._bank(target=0.080, min_target=0.050)
        hit = np.array([True])
        for k in range(8):
            bank.on_overflow(1.0 + 0.5 * k, hit)
        assert bank.target[0] == pytest.approx(0.050)

    def test_min_target_validated(self):
        with pytest.raises(ValueError, match="min_target"):
            self._bank(target=0.040, min_target=0.080)
        with pytest.raises(ValueError, match="min_target"):
            FluidFlowSpec(name="x", controller="adaptive-proprate",
                          target_tbuff=0.040, min_target=0.080)

    def test_adaptive_detunes_on_shallow_buffer(self):
        # 40-packet buffer ≈ 60 ms at 1 MB/s; a 150 ms target overflows
        # persistently.  PR(A) must register losses, shrink, and end up
        # with fewer loss epochs than fixed-target PropRate.
        shallow = TowerSpec(rate=RATE, buffer_packets=40)
        adaptive = run_fluid(
            [FluidFlowSpec(name="pra", controller="adaptive-proprate",
                           target_tbuff=0.150)],
            [shallow], 30.0, dt=0.002,
        )
        fixed = run_fluid(
            [_pr(target=0.150)], [shallow], 30.0, dt=0.002,
        )
        assert adaptive.flows[0].controller == "adaptive-proprate"
        assert adaptive.flows[0].loss_epochs >= 1
        # The shrink pulls the flow off the buffer ceiling: an order of
        # magnitude fewer dropped bytes, far lower standing delay, and
        # near-full utilization kept.
        assert adaptive.towers[0].dropped_bytes < \
            0.1 * fixed.towers[0].dropped_bytes
        assert adaptive.flows[0].avg_tbuff < fixed.flows[0].avg_tbuff
        assert adaptive.flows[0].utilization > 0.9

    def test_pr_adaptive_mix_in_scenario(self):
        flows, towers, handovers = fan_in_scenario(
            8, 2, 6.0, mix="pr-adaptive",
        )
        assert {f.controller for f in flows} == {
            "adaptive-proprate", "cubic",
        }
        report = run_fluid(flows, towers, 6.0, measure_start=2.0)
        assert 0.0 <= report.jfi <= 1.0 + 1e-9


class TestPolicyBank:
    """Externally driven per-step action arrays (repro.env, fleet form)."""

    def test_policy_rates_drive_the_fleet(self):
        seen = []

        def policy(t, obs):
            seen.append(sorted(obs))
            return np.where(obs["active"], 2e5, 0.0)

        spec = FluidFlowSpec(name="pol", controller="policy", policy=policy)
        report = run_fluid([spec], [TowerSpec(rate=RATE)], 10.0,
                           measure_start=2.0)
        flow = report.flows[0]
        assert flow.controller == "policy"
        assert flow.goodput == pytest.approx(2e5, rel=0.05)
        assert seen and seen[0] == [
            "active", "delivered", "loss_epochs", "observed_tbuff",
            "rtt", "tbuff",
        ]

    def test_policy_bank_registers_overflow_epochs(self):
        def firehose(t, obs):
            return np.full(1, 10 * RATE)

        spec = FluidFlowSpec(name="hog", controller="policy",
                             policy=firehose)
        report = run_fluid([spec],
                           [TowerSpec(rate=RATE, buffer_packets=40)],
                           5.0, dt=0.002)
        assert report.flows[0].loss_epochs >= 1

    def test_bad_policy_shape_rejected(self):
        def wrong(t, obs):
            return np.zeros(3)

        spec = FluidFlowSpec(name="bad", controller="policy", policy=wrong)
        with pytest.raises(ValueError, match="policy returned shape"):
            run_fluid([spec], [TowerSpec(rate=RATE)], 1.0)

    def test_policy_controller_requires_callable(self):
        with pytest.raises(ValueError, match="needs a policy"):
            run_fluid(
                [FluidFlowSpec(name="p", controller="policy")],
                [TowerSpec(rate=RATE)], 2.0,
            )


class TestReportBounds:
    """Property tests: the report's normalized metrics stay in [0, 1]
    whatever the scenario shape."""

    @given(
        n_flows=st.integers(min_value=1, max_value=6),
        n_towers=st.integers(min_value=1, max_value=3),
        rate_mbps=st.floats(min_value=0.5, max_value=40.0),
        cubic_every=st.integers(min_value=1, max_value=3),
        stagger=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=12, deadline=None)
    def test_jfi_and_utilization_bounded(self, n_flows, n_towers,
                                         rate_mbps, cubic_every, stagger):
        flows = [
            (_cubic(f"c{i}", tower=i % n_towers, start=i * stagger)
             if i % cubic_every == 0 else
             _pr(f"p{i}", tower=i % n_towers, start=i * stagger))
            for i in range(n_flows)
        ]
        towers = [TowerSpec(rate=rate_mbps * 1e6 / 8, buffer_packets=200)
                  for _ in range(n_towers)]
        report = run_fluid(flows, towers, 6.0, dt=0.01, measure_start=2.0)
        assert 0.0 <= report.jfi <= 1.0 + 1e-9
        for flow in report.flows:
            if flow.utilization is not None:
                assert 0.0 <= flow.utilization <= 1.0 + 1e-9
            assert flow.goodput >= 0.0
            assert flow.delivered_bytes >= 0.0
            assert math.isnan(flow.avg_tbuff) or flow.avg_tbuff >= 0.0
        for tower in report.towers:
            assert 0.0 <= tower.utilization <= 1.0 + 1e-9
            assert tower.peak_tbuff >= 0.0
            assert tower.dropped_bytes >= 0.0

    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=8, deadline=None)
    def test_fan_in_report_bounded(self, seed):
        flows, towers, handovers = fan_in_scenario(
            24, 3, 5.0, mix="pr-vs-cubic", handover_count=4, seed=seed,
        )
        report = run_fluid(flows, towers, 5.0, dt=0.01, measure_start=1.0,
                           handovers=handovers)
        assert 0.0 <= report.jfi <= 1.0 + 1e-9
        utils = [f.utilization for f in report.flows
                 if f.utilization is not None]
        assert all(0.0 <= u <= 1.0 + 1e-9 for u in utils)
        assert report.handovers_applied <= len(handovers)
