"""Heavy-loss SACK scoreboard benchmark: sender ACK-processing CPU.

ROADMAP named the sender's per-ACK SACK scoreboard walk the largest
remaining hot-path cost on mobile traces with heavy loss.  This bench
isolates exactly that cost: a large-window flow over a deterministic
loopback wire with seeded random drops, periodic burst losses, and
hard outages (RTO + slow-start collapse), measuring the CPU seconds
spent inside ``TcpSender.on_ack_packet`` — the path holding the
scoreboard walks (``_process_sacks``, ``_mark_losses``, cumulative-ACK
accounting).

The run is bit-deterministic (seeded drops, fixed delays), so the
measured flow — segments sent, losses, retransmissions, RTOs — is
identical across scoreboard implementations; only the CPU cost may
differ.  Results land in ``benchmarks/results/bench_sack_scoreboard
.json`` (machine-readable, the BENCH artifact) and ``.txt``.

Reduced mode (``REPRO_BENCH_REDUCED=1``) shrinks the horizon for the
CI loss-smoke gate in ``scripts/perf_smoke.py``.
"""

import json
import os
import random
import time
from time import perf_counter

from repro.sim.engine import Simulator
from repro.tcp.congestion.base import WindowCongestionControl
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender

from _report import RESULTS_DIR, emit

REDUCED = os.environ.get("REPRO_BENCH_REDUCED", "") not in ("", "0")

#: Simulated horizon (seconds).
HORIZON = 20.0 if REDUCED else 60.0

#: Congestion window: deep-buffer cellular regime — hundreds of
#: segments outstanding when loss strikes.
CWND = 360

#: One-way wire delay (seconds).
DELAY = 0.03

#: Random per-segment drop probability outside outages.  Kept low:
#: cellular loss is dominated by clustered outage/handover bursts (the
#: paper's regime), with only background random loss between them.
DROP_P = 0.01

#: Uniform extra data-path delay (seconds): reorders deliveries enough
#: to trigger spurious loss marks that later SACKs cancel.
JITTER = 0.004

#: Outage schedule: every PERIOD seconds the wire goes dark for DARK
#: seconds (drops everything, retransmissions included) — the handover
#: /outage regime that forces RTO + full-window scoreboard requeues.
OUTAGE_PERIOD = 2.0
OUTAGE_DARK = 0.4

SEED = 20170407

#: Pre-refactor reference: the per-segment scoreboard (``_rtx_state``
#: dict + retransmission heap, commit 3009a61) measured min-of-N on
#: this exact workload at 15.2 us/ACK against 9.3 us/ACK for the
#: run-based scoreboard on the same host — a 39% reduction.  The
#: figure is host-specific; ``reduction_vs_baseline`` in the JSON is
#: only meaningful when compared on similar hardware.  CI gates use
#: the host-relative throughput baseline in ``benchmarks/baselines``
#: instead.
BASELINE_US_PER_ACK = 15.216


class _FixedWindow(WindowCongestionControl):
    """Constant window: all CPU cost lives in the sender's scoreboard."""

    name = "fixed"

    def __init__(self, cwnd: float) -> None:
        super().__init__()
        self.cwnd = cwnd
        self.ssthresh = float("inf")


class _LossyWire:
    """Deterministic loopback with seeded drops and scheduled outages."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.rng = random.Random(SEED)
        self.receiver = None
        self.sender = None

    def _dark(self) -> bool:
        return (self.sim.now % OUTAGE_PERIOD) > (OUTAGE_PERIOD - OUTAGE_DARK)

    def send_data(self, pkt) -> None:
        if self._dark():
            return
        if not pkt.retransmit and self.rng.random() < DROP_P:
            return
        delay = DELAY + self.rng.random() * JITTER
        self.sim.schedule(delay, lambda p=pkt: self.receiver.receive(p))

    def send_ack(self, pkt) -> None:
        if self._dark():
            return
        self.sim.schedule(DELAY, lambda p=pkt: self.sender.on_ack_packet(p))


def run_workload(horizon: float = HORIZON):
    """Run the heavy-loss flow; returns (stats dict, sender)."""
    sim = Simulator()
    wire = _LossyWire(sim)
    wire.receiver = TcpReceiver(sim, 0, send_ack=wire.send_ack,
                                ts_granularity=0.0)
    sender = TcpSender(sim, 0, _FixedWindow(CWND), send_packet=wire.send_data)
    wire.sender = sender

    # Time exactly the ACK-processing path (scoreboard walks included).
    inner = sender.on_ack_packet
    acc = [0.0]

    def timed_ack(pkt, _inner=inner, _acc=acc, _pc=perf_counter):
        t0 = _pc()
        _inner(pkt)
        _acc[0] += _pc() - t0

    sender.on_ack_packet = timed_ack
    wall0 = perf_counter()
    sender.start()
    sim.run(until=horizon)
    wall = perf_counter() - wall0

    acks = sender.acks_received
    stats = {
        "horizon_s": horizon,
        "cwnd": CWND,
        "acks": acks,
        "ack_cpu_s": acc[0],
        "us_per_ack": acc[0] / acks * 1e6 if acks else 0.0,
        "wall_s": wall,
        "segments_sent": sender.segments_sent,
        "retransmissions": sender.retransmissions,
        "lost_total": sender.lost_total,
        "spurious_marks": sender.spurious_marks,
        "rto_count": sender.rto_count,
        "snd_una": sender.snd_una,
        "events": sim.events_processed,
    }
    return stats, sender


def measure(horizon: float = HORIZON, rounds: int = 3):
    """Min-of-N ACK-processing cost (min absorbs co-tenant noise).

    The flow itself is bit-identical across rounds; only timing varies.
    """
    best = None
    for _ in range(rounds):
        stats, _ = run_workload(horizon)
        if best is None or stats["ack_cpu_s"] < best["ack_cpu_s"]:
            best = stats
    return best


def test_sack_scoreboard_cost(benchmark):
    stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"mode: {'reduced' if REDUCED else 'full'}   horizon: "
        f"{stats['horizon_s']:.0f}s   cwnd: {stats['cwnd']}",
        f"acks: {stats['acks']:,}   ack cpu: {stats['ack_cpu_s']:.3f}s   "
        f"per ack: {stats['us_per_ack']:.2f}us",
        f"sent: {stats['segments_sent']:,}   rtx: "
        f"{stats['retransmissions']:,}   lost: {stats['lost_total']:,}   "
        f"spurious: {stats['spurious_marks']:,}   rto: {stats['rto_count']}",
    ]
    emit("bench_sack_scoreboard", lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    stats["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    stats["baseline_us_per_ack"] = BASELINE_US_PER_ACK
    stats["reduction_vs_baseline"] = round(
        1.0 - stats["us_per_ack"] / BASELINE_US_PER_ACK, 4
    )
    (RESULTS_DIR / "bench_sack_scoreboard.json").write_text(
        json.dumps(stats, indent=2) + "\n", encoding="utf-8"
    )
    # The loss episodes must actually exercise the scoreboard.
    assert stats["lost_total"] > 1000
    assert stats["rto_count"] >= 1
    assert stats["retransmissions"] > 500


if __name__ == "__main__":
    print(json.dumps(measure(), indent=2))
