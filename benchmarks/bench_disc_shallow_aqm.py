"""§6 discussion: shallow buffers and CoDel AQM.

The paper argues PropRate's aggressiveness is tunable where BBR's is
not: with a shallow bottleneck buffer, a high target buffer delay causes
overflow losses like BBR/CUBIC, but *reducing the target* makes PropRate
as gentle as — or gentler than — CUBIC.  Under CoDel, large buffers act
shallow and the same tunability applies.
"""

from repro.core.proprate import PropRate
from repro.experiments.scenarios import shallow_buffer
from repro.tcp.congestion import Bbr, Cubic
from repro.traces.presets import isp_trace

from _report import emit

DURATION = 20.0
SHALLOW_PACKETS = 50  # ~65 ms of buffering at the trace's mean rate


def _run():
    down = isp_trace("A", "stationary", duration=60.0)
    rows = {}
    for label, factory, aqm, buf in (
        ("CUBIC/shallow", Cubic, "droptail", SHALLOW_PACKETS),
        ("BBR/shallow", Bbr, "droptail", SHALLOW_PACKETS),
        ("PR(80ms)/shallow", lambda: PropRate(0.080), "droptail", SHALLOW_PACKETS),
        ("PR(10ms)/shallow", lambda: PropRate(0.010), "droptail", SHALLOW_PACKETS),
        ("CUBIC/codel", Cubic, "codel", 2000),
        ("PR(10ms)/codel", lambda: PropRate(0.010), "codel", 2000),
    ):
        rows[label] = shallow_buffer(
            factory, down, buffer_packets=buf, aqm=aqm,
            duration=DURATION, measure_start=4.0, name=label,
        )
    return rows


def test_discussion_shallow_buffers_and_aqm(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [
        f"{'config':18s} {'tput KB/s':>10s} {'mean ms':>8s} {'p95 ms':>8s} "
        f"{'drops':>7s} {'rtx':>7s}"
    ]
    for label, r in rows.items():
        lines.append(
            f"{label:18s} {r.throughput_kbps:10.1f} {r.delay.mean_ms:8.1f} "
            f"{r.delay.p95_ms:8.1f} {r.bottleneck_drops:7d} {r.retransmissions:7d}"
        )
    emit("disc_shallow_aqm", lines)

    # A too-high target overflows a shallow buffer, like BBR/CUBIC ...
    assert rows["CUBIC/shallow"].bottleneck_drops > 0
    # ... but reducing the target delay reduces PropRate's losses —
    # the tunability BBR lacks (§6).
    assert (
        rows["PR(10ms)/shallow"].bottleneck_drops
        <= rows["PR(80ms)/shallow"].bottleneck_drops
    )
    assert (
        rows["PR(10ms)/shallow"].bottleneck_drops
        < rows["CUBIC/shallow"].bottleneck_drops
    )
    # CoDel keeps CUBIC's delay far below the raw drop-tail bufferbloat.
    assert rows["CUBIC/codel"].delay.mean < 0.300
