"""Live-run observatory: trace following and the ``repro watch`` CLI.

Watching a run while it happens takes two pieces:

* :class:`TraceFollower` — incremental JSONL tailing of a trace that is
  still being written.  State is keyed by inode, so a file that the
  sink rotates away (``os.replace`` to ``<path>.1`` preserves the
  inode) keeps its read offset and nothing is re-read or lost.  Worker
  part files (``<base>.partNNNN.jsonl``, possibly themselves rotated)
  are tailed as they appear, their records tagged with the spec index;
  when the coordinator merges them back into the base trace the
  follower skips the re-appearing copies, so every record is yielded
  exactly once whether it was seen live or post-merge.
* :class:`StreamFollower` — the same ``poll()`` contract over a TCP
  connection to a run serving its trace with ``--telemetry
  tcp://host:port`` (:mod:`repro.obs.net`).  Record decoding is shared
  with :class:`TraceFollower`, so both transports agree on what a
  record is; only the byte source differs.
* :class:`DashboardState` — a bounded reduction of the record stream
  into the panels the paper reasons with: the queue sawtooth per link,
  the CC state lane and loss marks per flow, scheduler progress
  (done/total, retries, timeouts, worker deaths), per-tower occupancy
  for fluid runs, and the sampling layer's dropped-event counters.
  :meth:`DashboardState.render` draws them with the same
  eighth-block/lane helpers as ``repro trace --plot``.

:func:`watch` ties them together into an auto-refreshing terminal
dashboard that exits on its own when the trace completes (the batch
metrics record, ``run.end``, or ``fluid.end`` has been seen and the
tail has gone quiet).
"""

from __future__ import annotations

import json
import os
import re
import socket
import sys
import time
from collections import defaultdict, deque
from typing import Any, Deque, Dict, List, Optional, Set, TextIO, Tuple

from repro.obs.events import (
    CC_LOSS,
    CC_LOSS_RUNS,
    CC_STATE,
    FLUID_END,
    FLUID_RUN,
    FLUID_TOWER,
    METRICS,
    QUEUE_SAMPLE,
    RUN_END,
    RUN_START,
    SCHED_DISPATCH,
    SCHED_OUTCOME,
    SCHED_RETRY,
    SCHED_TIMEOUT,
    SCHED_WORKER_DEATH,
)
from repro.obs.sink import iter_trace_files

__all__ = ["TraceFollower", "StreamFollower", "DashboardState", "watch"]

#: Retained samples per waveform — enough for one screenful at any
#: plausible width while keeping a 1000-flow fluid run's memory flat.
WAVE_SAMPLES = 4096

#: Prefix under which the runner records sampling drops.
DROPPED_PREFIX = "telemetry.dropped."

_PART_RE = re.compile(r"\.part(\d+)\.jsonl$")


class TraceFollower:
    """Incrementally read a live, rotating, possibly-parallel trace.

    ``poll()`` returns the records appended since the previous poll,
    oldest first.  Records read from worker part files carry a
    ``"run"`` tag (the spec index from the filename), matching the
    shape the coordinator's merge gives them, so downstream reductions
    never care whether they saw the live part or the merged base.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        # inode -> [byte offset, partial-line tail] for every file of
        # the trace family we have started reading.
        self._states: Dict[Tuple[int, int], List[Any]] = {}
        # run index -> records already yielded from that run's part
        # files; the merged base re-contains exactly those lines (in
        # the same per-run order), so this many run-tagged base records
        # are skipped per run.
        self._from_parts: Dict[int, int] = defaultdict(int)
        self._skipped: Dict[int, int] = defaultdict(int)
        self.lines = 0
        self.decode_errors = 0

    # -- low-level file tailing ----------------------------------------
    def _read_new(self, fpath: str) -> List[str]:
        """Complete new lines of one file since the last read of its inode."""
        try:
            fh = open(fpath, "rb")
        except OSError:
            return []
        with fh:
            try:
                st = os.fstat(fh.fileno())
            except OSError:
                return []
            key = (st.st_dev, st.st_ino)
            state = self._states.get(key)
            if state is None:
                state = self._states[key] = [0, b""]
            offset, tail = state
            if st.st_size <= offset:
                return []
            fh.seek(offset)
            chunk = fh.read()
        state[0] = offset + len(chunk)
        data = tail + chunk
        parts = data.split(b"\n")
        state[1] = parts.pop()  # incomplete final line, kept for next poll
        out = []
        for raw in parts:
            raw = raw.strip()
            if raw:
                out.append(raw.decode("utf-8", errors="replace"))
        return out

    def _part_paths(self) -> List[Tuple[int, str]]:
        """Live worker part files next to the base trace, by run index."""
        parent = os.path.dirname(self.path) or "."
        base = os.path.basename(self.path)
        found: Dict[int, str] = {}
        try:
            names = os.listdir(parent)
        except OSError:
            return []
        for name in names:
            if not name.startswith(base + ".part"):
                continue
            m = _PART_RE.search(name)
            if m is not None and name == f"{base}.part{int(m.group(1)):04d}.jsonl":
                found[int(m.group(1))] = os.path.join(parent, name)
            else:
                # A rotated part segment (".jsonl.3"); register the run
                # via its canonical live path so iter_trace_files finds
                # the whole series even if the live file is mid-rotate.
                m2 = re.search(r"\.part(\d+)\.jsonl\.\d+$", name)
                if m2 is not None:
                    run = int(m2.group(1))
                    found.setdefault(
                        run, os.path.join(parent, f"{base}.part{run:04d}.jsonl"))
        return sorted(found.items())

    # -- record-level polling ------------------------------------------
    def poll(self) -> List[Dict[str, Any]]:
        records: List[Dict[str, Any]] = []

        # Worker part files first: they hold the newest run-scoped
        # events while a batch is in flight.
        for run, part in self._part_paths():
            for fpath in iter_trace_files(part):
                for line in self._read_new(fpath):
                    rec = self._decode(line)
                    if rec is None:
                        continue
                    rec.setdefault("run", run)
                    self._from_parts[run] += 1
                    records.append(rec)

        # Then the base trace (rotations before the live file).
        for fpath in iter_trace_files(self.path):
            for line in self._read_new(fpath):
                rec = self._decode(line)
                if rec is None:
                    continue
                run = rec.get("run")
                if isinstance(run, int) and \
                        self._skipped[run] < self._from_parts[run]:
                    self._skipped[run] += 1  # merged copy of a seen record
                    continue
                records.append(rec)
        return records

    def _decode(self, line: str) -> Optional[Dict[str, Any]]:
        self.lines += 1
        try:
            rec = json.loads(line)
        except ValueError:
            self.decode_errors += 1
            return None
        return rec if isinstance(rec, dict) else None


class StreamFollower:
    """Incrementally read trace records from a TCP telemetry server.

    ``poll()`` returns the records received since the previous poll,
    oldest first — the same contract as :class:`TraceFollower`, so the
    dashboard loop does not care which transport feeds it.  The
    connection is dialled lazily and re-dialled on each poll until the
    server appears, so ``repro watch --connect`` can be started before
    the run it is watching.  When the server hangs up, :attr:`closed`
    goes true and ``poll()`` returns nothing further.
    """

    def __init__(self, address: str, dial_timeout: float = 1.0) -> None:
        host, sep, port = str(address).rpartition(":")
        try:
            port_no = int(port)
        except ValueError:
            sep = ""
        if not sep:
            raise ValueError(
                f"bad connect address {address!r}; expected host:port")
        self.address: Tuple[str, int] = (host or "127.0.0.1", port_no)
        self._dial_timeout = dial_timeout
        self._sock: Optional[socket.socket] = None
        self._tail = b""
        self.lines = 0
        self.decode_errors = 0
        self.closed = False

    # Record decoding (and its lines/decode_errors counters) is shared
    # with file tailing so both transports agree on what a record is.
    _decode = TraceFollower._decode

    def _dial(self) -> bool:
        try:
            sock = socket.create_connection(
                self.address, timeout=self._dial_timeout)
        except OSError:
            return False
        sock.setblocking(False)
        self._sock = sock
        return True

    def _hangup(self) -> None:
        self.closed = True
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def poll(self) -> List[Dict[str, Any]]:
        if self.closed or (self._sock is None and not self._dial()):
            return []
        chunks: List[bytes] = []
        assert self._sock is not None
        while True:
            try:
                chunk = self._sock.recv(65536)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                chunk = b""
            if chunk == b"":
                self._hangup()
                break
            chunks.append(chunk)
        data = self._tail + b"".join(chunks)
        parts = data.split(b"\n")
        self._tail = parts.pop()
        records: List[Dict[str, Any]] = []
        for raw in parts:
            raw = raw.strip()
            if not raw:
                continue
            rec = self._decode(raw.decode("utf-8", errors="replace"))
            if rec is not None:
                records.append(rec)
        return records

    def close(self) -> None:
        self._hangup()


class DashboardState:
    """Bounded reduction of a record stream into dashboard panels."""

    def __init__(self, max_runs: int = 3, max_towers: int = 12) -> None:
        self.max_runs = max_runs
        self.max_towers = max_towers
        self.records = 0
        self.last_t: Dict[Any, float] = {}
        self.runs_seen: List[Any] = []  # insertion order
        self.link_rates: Dict[Tuple[Any, str], float] = {}
        self.queues: Dict[Tuple[Any, str], Deque[Tuple[float, int]]] = \
            defaultdict(lambda: deque(maxlen=WAVE_SAMPLES))
        self.states: Dict[Tuple[Any, Any], Deque[Tuple[float, str]]] = \
            defaultdict(lambda: deque(maxlen=WAVE_SAMPLES))
        self.losses: Dict[Tuple[Any, Any], Deque[float]] = \
            defaultdict(lambda: deque(maxlen=WAVE_SAMPLES))
        self.sched = {"dispatched": 0, "outcomes": 0, "retries": 0,
                      "timeouts": 0, "worker_deaths": 0}
        self.sched_specs: Set[int] = set()
        self.sched_failed = 0
        self.fluid_meta: Optional[Dict[str, Any]] = None
        self.fluid_jfi: Optional[float] = None
        self.towers: Dict[Any, Dict[str, Any]] = {}
        self.tower_waves: Dict[Any, Deque[Tuple[float, float]]] = \
            defaultdict(lambda: deque(maxlen=WAVE_SAMPLES))
        self.dropped: Dict[str, float] = {}
        self.complete = False
        self.ended_runs: Set[Any] = set()

    # -- ingestion ------------------------------------------------------
    def ingest(self, rec: Dict[str, Any]) -> None:
        self.records += 1
        kind = rec.get("kind")
        run = rec.get("run")
        t = rec.get("t", 0.0)
        if kind == QUEUE_SAMPLE:
            self._saw_run(run, t)
            self.queues[(run, rec.get("link", "?"))].append(
                (t, rec.get("len", 0)))
        elif kind == CC_STATE:
            self._saw_run(run, t)
            self.states[(run, rec.get("flow"))].append(
                (t, rec.get("state", "?")))
        elif kind in (CC_LOSS, CC_LOSS_RUNS):
            self._saw_run(run, t)
            self.losses[(run, rec.get("flow"))].append(t)
        elif kind == RUN_START:
            self._saw_run(run, t)
            for name, meta in (rec.get("links") or {}).items():
                rate = meta.get("rate") if isinstance(meta, dict) else None
                if rate:
                    self.link_rates[(run, name)] = rate
        elif kind == RUN_END:
            self._saw_run(run, t)
            self.ended_runs.add(run)
            if run is None:
                self.complete = True
        elif kind == METRICS:
            snap = rec.get("metrics")
            if isinstance(snap, dict):
                self._fold_dropped(snap)
            if rec.get("scope") == "batch":
                self.complete = True
        elif kind == SCHED_DISPATCH:
            self.sched["dispatched"] += 1
            spec = rec.get("spec")
            if isinstance(spec, int):
                self.sched_specs.add(spec)
        elif kind == SCHED_OUTCOME:
            self.sched["outcomes"] += 1
            if rec.get("ok") is False:
                self.sched_failed += 1
        elif kind == SCHED_RETRY:
            self.sched["retries"] += 1
        elif kind == SCHED_TIMEOUT:
            self.sched["timeouts"] += 1
        elif kind == SCHED_WORKER_DEATH:
            self.sched["worker_deaths"] += 1
        elif kind == FLUID_RUN:
            self._saw_run(run, t)
            self.fluid_meta = {k: rec.get(k)
                               for k in ("duration", "dt", "flows",
                                         "towers", "handovers")}
        elif kind == FLUID_TOWER:
            self._saw_run(run, t)
            tower = rec.get("tower")
            self.towers[tower] = rec
            self.tower_waves[tower].append((t, rec.get("tbuff", 0.0)))
        elif kind == FLUID_END:
            self._saw_run(run, t)
            self.fluid_jfi = rec.get("jfi")
            self.complete = True

    def ingest_all(self, records: List[Dict[str, Any]]) -> int:
        for rec in records:
            self.ingest(rec)
        return len(records)

    def _saw_run(self, run: Any, t: float) -> None:
        if run not in self.last_t or t > self.last_t[run]:
            self.last_t[run] = t
        if run not in self.runs_seen:
            self.runs_seen.append(run)

    def _fold_dropped(self, snap: Dict[str, Any]) -> None:
        for key, value in snap.items():
            at = key.find(DROPPED_PREFIX)
            if at < 0 or not isinstance(value, (int, float)):
                continue
            kind = key[at + len(DROPPED_PREFIX):]
            self.dropped[kind] = self.dropped.get(kind, 0) + value

    # -- rendering ------------------------------------------------------
    def render(self, width: int = 100, height: int = 6) -> str:
        # The plot helpers pull in numpy via analyze; import at render
        # time so following a trace stays import-light until drawn.
        import numpy as np

        from repro.obs.analyze import (
            PACKET_BYTES,
            _column_values,
            _mark_lane,
            _state_lane,
            _waveform_canvas,
        )

        out: List[str] = []
        if self.sched_specs or self.sched["outcomes"]:
            total = (max(self.sched_specs) + 1) if self.sched_specs else 0
            done = self.sched["outcomes"]
            bar_w = max(10, width - 40)
            frac = min(1.0, done / total) if total else 0.0
            bar = "#" * int(frac * bar_w)
            line = (f"sched [{bar:<{bar_w}}] {done}/{total or '?'} done")
            extras = [f"{k} {v}" for k, v in
                      (("retries", self.sched["retries"]),
                       ("timeouts", self.sched["timeouts"]),
                       ("deaths", self.sched["worker_deaths"]),
                       ("failed", self.sched_failed)) if v]
            if extras:
                line += "  (" + ", ".join(extras) + ")"
            out.append(line)

        # Most recently active runs win the limited panel space.
        active = sorted(self.runs_seen,
                        key=lambda r: self.last_t.get(r, 0.0),
                        reverse=True)[:self.max_runs]
        shown = [r for r in self.runs_seen if r in set(active)]

        legend: Dict[str, str] = {}
        states = sorted({s for curve in self.states.values()
                         for _, s in curve})
        for s in states:
            ch = s[0].upper()
            while ch in legend.values():
                ch = chr(ord(ch) + 1)
            legend[s] = ch

        for run in shown:
            run_links = sorted(link for r, link in self.queues if r == run)
            run_flows = sorted(
                {f for r, f in self.states if r == run} |
                {f for r, f in self.losses if r == run},
                key=str)
            spans: List[float] = []
            for link in run_links:
                q = self.queues[(run, link)]
                if q:
                    spans.extend((q[0][0], q[-1][0]))
            for flow in run_flows:
                curve = self.states.get((run, flow))
                if curve:
                    spans.extend((curve[0][0], curve[-1][0]))
            if not spans:
                continue
            t0, t1 = min(spans), max(spans)
            label = "-" if run is None else str(run)
            out.append(f"run {label}  [{t0:.2f}s .. {t1:.2f}s]")
            for link in run_links:
                q = self.queues[(run, link)]
                times = np.asarray([s[0] for s in q])
                lens = np.asarray([s[1] for s in q], dtype=float)
                rate = self.link_rates.get((run, link))
                if rate:
                    values = lens * (PACKET_BYTES / rate) * 1000.0
                    unit = "ms"
                else:
                    values = lens
                    unit = "pkts"
                cols = _column_values(times, values, t0, t1, width)
                vmax = max(cols) if cols else 0.0
                out.append(f"  {link}: buffering delay, "
                           f"now {cols[-1] if cols else 0.0:.1f} {unit}, "
                           f"peak {vmax:.1f} {unit}")
                for r, row in enumerate(
                        _waveform_canvas(cols, vmax, height)):
                    ylabel = (f"{vmax * (height - r) / height:7.1f} "
                              if vmax else "        ")
                    out.append(ylabel + "|" + row)
                out.append("        +" + "-" * width)
            for flow in run_flows:
                curve = self.states.get((run, flow))
                if curve:
                    out.append(
                        f"  state  |"
                        f"{_state_lane(list(curve), legend, t0, t1, width)}"
                        f"  flow {flow}")
                marks = self.losses.get((run, flow))
                if marks:
                    out.append(
                        f"  loss   |{_mark_lane(list(marks), t0, t1, width)}"
                        f"  flow {flow} ({len(marks)} loss events)")
        if legend:
            out.append("legend: " + "  ".join(
                f"{ch}={s}" for s, ch in sorted(legend.items())))
        hidden = len(self.runs_seen) - len(shown)
        if hidden > 0:
            out.append(f"(+ {hidden} more runs not shown)")

        if self.towers:
            out.extend(self._render_fluid(width))
        if self.dropped:
            total = int(sum(self.dropped.values()))
            parts = ", ".join(f"{k}={int(v)}"
                              for k, v in sorted(self.dropped.items()))
            out.append(f"sampling: {total} dropped ({parts})")
        return "\n".join(out) if out else "(no renderable events yet)"

    def _render_fluid(self, width: int) -> List[str]:
        from repro.obs.analyze import _EIGHTHS

        out: List[str] = []
        head = "fluid towers"
        if self.fluid_meta:
            head += (f": {self.fluid_meta.get('flows')} flows / "
                     f"{self.fluid_meta.get('towers')} towers")
        if self.fluid_jfi is not None:
            head += f"  (done, JFI {self.fluid_jfi:.3f})"
        out.append(head)
        towers = sorted(self.towers, key=str)
        spark_w = max(10, width - 52)
        vmax = max((rec.get("tbuff", 0.0) or 0.0
                    for rec in self.towers.values()), default=0.0)
        for tower in towers[:self.max_towers]:
            rec = self.towers[tower]
            wave = self.tower_waves[tower]
            tail = list(wave)[-spark_w:]
            peak = max((v for _, v in tail), default=0.0) or vmax or 1.0
            spark = "".join(
                _EIGHTHS[min(8, int((v / peak) * 8 + 0.999))] if v > 0
                else _EIGHTHS[0]
                for _, v in tail)
            cap = rec.get("capacity") or 0.0
            out.append(
                f"  tower {tower!s:>4}  tbuff {1000 * (rec.get('tbuff') or 0):7.1f}ms"
                f"  cap {cap * 8 / 1e6:7.2f}Mbit/s"
                f"  flows {rec.get('flows', '?'):>4}  |{spark}|")
        if len(towers) > self.max_towers:
            out.append(f"  ... {len(towers) - self.max_towers} more towers")
        return out


def watch(path: Optional[str] = None, interval: float = 1.0,
          frames: Optional[int] = None,
          width: int = 100, height: int = 6, once: bool = False,
          out: Optional[TextIO] = None, clear: bool = True,
          idle_exit: int = 3, connect: Optional[str] = None) -> str:
    """Follow a trace and render the live dashboard until it completes.

    The source is either a trace file (``path``, tailed through
    :class:`TraceFollower`) or a run serving its trace over TCP
    (``connect="host:port"``, via :class:`StreamFollower`); exactly one
    must be given.  ``once`` drains whatever is available and renders a
    single frame (the CI smoke mode).  Otherwise the dashboard
    refreshes every ``interval`` seconds and exits on its own once the
    trace reports completion — or the server hangs up — and
    ``idle_exit`` consecutive polls saw no new records (or after
    ``frames`` refreshes, if given).  Returns the final rendered frame.
    """
    if (path is None) == (connect is None):
        raise ValueError("watch() needs exactly one of path or connect")
    stream = out if out is not None else sys.stdout
    follower = StreamFollower(connect) if connect is not None \
        else TraceFollower(path)  # type: ignore[arg-type]
    source = connect if connect is not None else path
    state = DashboardState()
    frame = ""
    drawn = 0
    idle = 0
    while True:
        fresh = state.ingest_all(follower.poll())
        idle = idle + 1 if fresh == 0 else 0
        gone = getattr(follower, "closed", False)
        status = (f"watch {source}  records {state.records}"
                  f"  runs {len(state.runs_seen)}"
                  f"{'  [complete]' if state.complete else ''}"
                  f"{'  [disconnected]' if gone else ''}")
        frame = status + "\n" + state.render(width=width, height=height)
        if once:
            if fresh:
                continue  # keep draining until the tail is quiet
            stream.write(frame + "\n")
            stream.flush()
            return frame
        if clear:
            stream.write("\x1b[2J\x1b[H")
        stream.write(frame + "\n")
        stream.flush()
        drawn += 1
        if frames is not None and drawn >= frames:
            return frame
        if (state.complete or gone) and idle >= idle_exit:
            return frame
        time.sleep(interval)
