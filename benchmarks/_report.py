"""Shared reporting for the per-figure/table benchmarks.

Each benchmark regenerates one paper artifact and emits its rows both to
stdout and to ``benchmarks/results/<name>.txt`` so the reproduction is
inspectable after the run.  EXPERIMENTS.md records the expected shapes.
"""

from __future__ import annotations

import os
import pathlib
from typing import Iterable

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

#: Simulated seconds per flow in the heavier benchmarks.  Override with
#: REPRO_BENCH_DURATION for quicker smoke runs or longer, smoother ones.
DURATION = float(os.environ.get("REPRO_BENCH_DURATION", "30"))

#: Warm-up excluded from measurements.
MEASURE_START = float(os.environ.get("REPRO_BENCH_WARMUP", "4"))

#: Worker processes for the batch-capable benchmarks (1 = serial,
#: 0 = all cores).  Results are identical at any job count.
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def emit(name: str, lines: Iterable[str]) -> str:
    """Print a result table and persist it under benchmarks/results/."""
    text = "\n".join(lines)
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner, flush=True)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    return text


def emit_flow_csv(name: str, results) -> None:
    """Also write the machine-readable CSV for a flow-results table."""
    from repro.report.export import flow_results_to_csv

    RESULTS_DIR.mkdir(exist_ok=True)
    flow_results_to_csv(results, RESULTS_DIR / f"{name}.csv")


def emit_frontier_csv(name: str, points) -> None:
    from repro.report.export import frontier_to_csv

    RESULTS_DIR.mkdir(exist_ok=True)
    frontier_to_csv(points, RESULTS_DIR / f"{name}.csv")


def flow_row(name: str, result) -> str:
    """One Figure-7-style row: algorithm, throughput, delay stats."""
    return (
        f"{name:10s} tput={result.throughput_kbps:8.1f} KB/s "
        f"mean={result.delay.mean_ms:8.1f} ms "
        f"p95={result.delay.p95_ms:8.1f} ms "
        f"drops={result.bottleneck_drops:6d} "
        f"rtx={result.retransmissions:6d} rto={result.rto_count:3d}"
    )
