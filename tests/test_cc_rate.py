"""Unit tests for the rate-based baseline algorithms (BBR, PCC,
PROTEUS, RRE)."""

import pytest

from repro.tcp.congestion import Bbr, Pcc, Proteus, Rre
from repro.tcp.congestion.bbr import (
    DRAIN_GAIN,
    PROBE_GAINS,
    STARTUP_GAIN,
)
from repro.tcp.congestion.pcc import delay_sensitive_utility

from tests.helpers import AckFeeder, FakeHost


class TestBbr:
    def _warm(self, n=200, dt=0.005, per_ack=2):
        cc = Bbr()
        feeder = AckFeeder(cc, FakeHost(srtt=0.05, min_rtt=0.04))
        feeder.run(n, dt=dt, newly_acked=per_ack, inflight=50)
        return cc, feeder

    def test_starts_in_startup_with_high_gain(self):
        cc = Bbr()
        feeder = AckFeeder(cc, FakeHost())
        assert cc.mode == "startup"
        feeder.run(5, dt=0.005)
        assert cc.pacing_gain == pytest.approx(STARTUP_GAIN)

    def test_bandwidth_filter_tracks_delivery_rate(self):
        cc, feeder = self._warm()
        # 2 segments / 5 ms = 400 segments/s = 600 kB/s.
        assert cc._bandwidth() == pytest.approx(600_000.0, rel=0.05)

    def test_exits_startup_when_bandwidth_plateaus(self):
        cc, feeder = self._warm(n=400)
        assert cc.mode in ("drain", "probe_bw")

    def test_drain_uses_inverse_gain(self):
        cc, feeder = self._warm(n=400)
        if cc.mode == "drain":
            assert cc.pacing_gain == pytest.approx(DRAIN_GAIN)

    def test_reaches_probe_bw_and_cycles(self):
        cc, feeder = self._warm(n=300)
        # Let inflight fall so DRAIN can exit.
        feeder.run(300, dt=0.005, newly_acked=2, inflight=5)
        assert cc.mode == "probe_bw"
        assert cc.pacing_gain in PROBE_GAINS

    def test_pacing_rate_is_gain_times_bandwidth(self):
        cc, feeder = self._warm(n=300)
        feeder.run(300, dt=0.005, newly_acked=2, inflight=5)
        bw = cc._bandwidth()
        assert cc.pacing_rate == pytest.approx(cc.pacing_gain * bw, rel=0.05)

    def test_probe_rtt_entered_after_min_rtt_expiry(self):
        cc, feeder = self._warm(n=300)
        feeder.run(300, dt=0.005, newly_acked=2, inflight=5)
        assert cc.mode == "probe_bw"
        # 11 simulated seconds with RTT never dipping below the old min.
        feeder.run(2300, dt=0.005, newly_acked=2, inflight=5, rtt=0.06)
        assert cc.mode in ("probe_rtt", "probe_bw")

    def test_inflight_cap_zeroes_pacing(self):
        cc, feeder = self._warm(n=300)
        feeder.host.inflight = 10_000
        cc.on_tick(feeder.host.now)
        assert cc.pacing_rate == 0.0

    def test_ignores_loss_events(self):
        cc, feeder = self._warm(n=100)
        rate = cc.pacing_rate
        sample = feeder.ack(newly_lost=5, in_recovery=True)
        cc.on_congestion(sample)
        assert cc.pacing_rate == rate

    def test_rto_restarts(self):
        cc, feeder = self._warm(n=400)
        cc.on_rto()
        assert cc.mode == "startup"

    def test_metadata(self):
        cc = Bbr()
        assert cc.is_rate_based
        assert cc.congestion_trigger == "NA"


class TestPccUtility:
    def test_increasing_in_throughput(self):
        low = delay_sensitive_utility(1e5, 0.0, 0.0, 0.0)
        high = delay_sensitive_utility(1e6, 0.0, 0.0, 0.0)
        assert high > low

    def test_loss_above_5pct_collapses_utility(self):
        clean = delay_sensitive_utility(1e6, 0.0, 0.0, 0.0)
        lossy = delay_sensitive_utility(1e6, 0.20, 0.0, 0.0)
        assert lossy < 0.2 * clean

    def test_positive_rtt_gradient_penalised(self):
        flat = delay_sensitive_utility(1e6, 0.0, 0.0, 0.0)
        rising = delay_sensitive_utility(1e6, 0.0, 1.0, 0.0)
        assert rising < 0.5 * flat

    def test_standing_queue_penalised(self):
        empty = delay_sensitive_utility(1e6, 0.0, 0.0, 0.0)
        queued = delay_sensitive_utility(1e6, 0.0, 0.0, 5.0)
        assert queued < 0.1 * empty


class TestPccControl:
    def test_starting_phase_doubles(self):
        cc = Pcc()
        host = FakeHost(srtt=0.05, min_rtt=0.04)
        feeder = AckFeeder(cc, host)
        feeder.ack(dt=0.001)
        r0 = cc.pacing_rate
        # Drive ticks past several monitor intervals with good delivery.
        t = host.now
        for step in range(3000):
            t += 0.001
            host.now = t
            cc.on_tick(t)
            feeder.ack(dt=0.0, newly_acked=3, rtt=0.04)
        assert cc.pacing_rate > r0

    def test_rto_backs_off(self):
        cc = Pcc()
        feeder = AckFeeder(cc, FakeHost())
        feeder.ack()
        cc._base_rate = 1e6
        cc.on_rto()
        assert cc._base_rate == pytest.approx(2.5e5)
        assert cc.phase == "starting"

    def test_metadata(self):
        cc = Pcc()
        assert cc.is_rate_based
        assert cc.congestion_trigger == "Utility Function"


class TestProteus:
    def test_ramp_doubles_while_deliveries_keep_up(self):
        cc = Proteus()
        feeder = AckFeeder(cc, FakeHost())
        r0 = cc.pacing_rate
        # Deliveries always track the pacing rate: the ramp must climb.
        for _ in range(8):
            per_ack = max(1, round(cc.pacing_rate * 0.01 / 1500))
            feeder.run(10, dt=0.01, newly_acked=per_ack)
        assert cc.pacing_rate > 10 * r0
        assert cc._ramping

    def test_ramp_stops_when_capacity_found(self):
        cc = Proteus()
        feeder = AckFeeder(cc, FakeHost())
        cap_packets = 10  # 150 kB/s ceiling regardless of pacing
        for _ in range(20):
            feeder.run(cap_packets, dt=0.1 / cap_packets)
        assert not cc._ramping

    def test_forecast_is_conservative_quantile(self):
        cc = Proteus()
        feeder = AckFeeder(cc, FakeHost())
        cc._ramping = False
        for rate_packets in [10, 12, 9, 11, 10, 10, 11, 9, 10, 12]:
            feeder.run(rate_packets, dt=0.1 / rate_packets)
        # ~10 pkts / 100 ms = 150 kB/s; forecast = 1.3 * ~25th pct.
        assert cc.pacing_rate == pytest.approx(1.3 * 150_000 * 0.95, rel=0.15)

    def test_inflight_cap(self):
        cc = Proteus()
        feeder = AckFeeder(cc, FakeHost())
        cc._ramping = False
        feeder.run(40, dt=0.01)
        feeder.host.inflight = 100_000
        cc.on_tick(feeder.host.now)
        assert cc.pacing_rate == 0.0

    def test_metadata(self):
        cc = Proteus()
        assert cc.is_rate_based
        assert cc.congestion_trigger == "Rate Forecast"


class TestRre:
    def _warm(self):
        cc = Rre()
        feeder = AckFeeder(cc, FakeHost(srtt=0.05, min_rtt=0.04))
        feeder.run(50, dt=0.005, newly_acked=2)
        return cc, feeder

    def test_bootstrap_burst(self):
        cc = Rre()
        AckFeeder(cc, FakeHost())
        assert cc.take_burst() == 10

    def test_fills_below_band(self):
        cc, feeder = self._warm()
        feeder.run(10, dt=0.005, newly_acked=2, queue_delay=0.0)
        assert cc.pacing_rate == pytest.approx(1.4 * cc.rate_estimator.rate, rel=1e-6)

    def test_matches_rate_inside_band(self):
        cc, feeder = self._warm()
        feeder.run(30, dt=0.005, newly_acked=2, queue_delay=0.120)
        assert cc.pacing_rate == pytest.approx(cc.rate_estimator.rate, rel=1e-6)

    def test_drains_above_band(self):
        cc, feeder = self._warm()
        feeder.run(30, dt=0.005, newly_acked=2, queue_delay=0.300)
        assert cc.pacing_rate == pytest.approx(0.7 * cc.rate_estimator.rate, rel=1e-6)

    def test_rto_resets(self):
        cc, feeder = self._warm()
        cc.take_burst()
        cc.on_rto()
        assert cc.pacing_rate == 0.0
        assert cc.take_burst() == 10

    def test_metadata(self):
        cc = Rre()
        assert cc.is_rate_based
        assert cc.congestion_trigger == "Buffer Delay"
