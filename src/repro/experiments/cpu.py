"""Control-computation cost measurement (Table 4 substitute).

The paper measures sender CPU utilisation on three physical CPUs.  In
simulation the analogous quantity is the wall-clock time each
congestion-control module spends inside its control callbacks per unit
of simulated transfer; the relative ordering (forecast/utility-based
algorithms ≫ simple control loops) is what Table 4 demonstrates.

:func:`instrument` wraps a congestion-control instance's event hooks in
``perf_counter`` timers, accumulating into ``cc.control_seconds`` — the
instance keeps its class (so the sender's window/rate dispatch is
untouched).
"""

from __future__ import annotations

import time
from typing import Callable

from repro.tcp.congestion.base import CongestionControl

#: The event hooks that constitute "control computation".
_HOOKS = (
    "on_connection_start",
    "on_ack",
    "on_congestion",
    "on_recovery_exit",
    "on_rto",
    "on_packet_sent",
    "on_tick",
)


def instrument(cc: CongestionControl) -> CongestionControl:
    """Wrap ``cc``'s hooks with timers; returns the same instance.

    After a run, ``cc.control_seconds`` holds the cumulative wall time
    spent in control code and ``cc.control_calls`` the invocation count.
    """
    cc.control_seconds = 0.0  # type: ignore[attr-defined]
    cc.control_calls = 0  # type: ignore[attr-defined]
    for name in _HOOKS:
        original = getattr(cc, name, None)
        if original is None:
            continue
        setattr(cc, name, _timed(cc, original))
    return cc


def _timed(cc: CongestionControl, fn: Callable) -> Callable:
    def wrapper(*args, **kwargs):
        start = time.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            cc.control_seconds += time.perf_counter() - start  # type: ignore[attr-defined]
            cc.control_calls += 1  # type: ignore[attr-defined]

    return wrapper


def instrumented_factory(factory: Callable[[], CongestionControl]):
    """Wrap a factory so every produced instance is instrumented."""

    def build() -> CongestionControl:
        return instrument(factory())

    return build
