"""Figures 1-3: the buffer-delay sawtooth in both regimes.

Regenerates the idealised waveforms with the fluid model and checks them
against the closed forms of §3: buffer-full oscillation between
D_min = T/2 and D_max = 3T/2 (Figure 1 / 3(e)), the periodically-emptied
waveform (Figure 2 / 3(f)), and the period-vs-threshold-placement sweep
(Figures 3(a)-(c))."""

import pytest

from repro.core.fluid import simulate_sawtooth
from repro.core.model import Regime, derive_parameters

from _report import emit

RTT = 0.040
RHO = 1_500_000.0


def _run_all():
    rows = []

    # Figure 1: buffer-full case (PR(H)-style target).
    params = derive_parameters(0.080, RTT)
    full = simulate_sawtooth(
        RHO, RTT, params.threshold, params.kf, params.kd,
        duration=30.0, initial_tbuff=0.04,
    )
    rows.append(
        ("fig1 buffer-full", params, full)
    )

    # Figure 2: buffer-emptied case (PR(L)-style target).
    params_e = derive_parameters(0.020, RTT)
    emptied = simulate_sawtooth(
        RHO, RTT, params_e.threshold, params_e.kf, params_e.kd,
        duration=30.0,
    )
    rows.append(("fig2 buffer-emptied", params_e, emptied))
    return rows


def test_fig1_3_waveforms(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [
        f"{'case':22s} {'regime':16s} {'Dmax ms':>8s} {'pred':>6s} "
        f"{'Dmin ms':>8s} {'pred':>6s} {'avg ms':>7s} {'tgt':>5s} {'U':>6s} {'pred':>6s}"
    ]
    for label, params, result in rows:
        lines.append(
            f"{label:22s} {params.regime.value:16s} "
            f"{result.dmax * 1000:8.1f} {params.predicted_dmax * 1000:6.1f} "
            f"{result.dmin * 1000:8.1f} {params.predicted_dmin * 1000:6.1f} "
            f"{result.avg_tbuff * 1000:7.1f} {params.target_tbuff * 1000:5.1f} "
            f"{result.utilization:6.3f} {params.utilization:6.3f}"
        )
    emit("fig1_3_waveforms", lines)

    (label_f, params_f, full), (label_e, params_e, emptied) = rows
    assert params_f.regime is Regime.BUFFER_FULL
    assert full.utilization > 0.99
    assert full.dmax == pytest.approx(params_f.predicted_dmax, rel=0.05)
    assert full.avg_tbuff == pytest.approx(params_f.target_tbuff, rel=0.05)

    assert params_e.regime is Regime.BUFFER_EMPTIED
    assert emptied.empty_fraction > 0.02
    assert emptied.dmin == pytest.approx(0.0, abs=1e-3)
    assert emptied.avg_tbuff == pytest.approx(params_e.target_tbuff, rel=0.35)
