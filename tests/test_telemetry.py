"""Tests for queue sampling and sawtooth extraction."""

import numpy as np
import pytest

from repro.metrics.telemetry import QueueSampler, sawtooth_summary
from repro.sim.engine import Simulator
from repro.sim.packet import make_data_packet
from repro.sim.queues import DropTailQueue


class TestQueueSampler:
    def test_samples_at_interval(self):
        sim = Simulator()
        queue = DropTailQueue(capacity=100)
        sampler = QueueSampler(sim, queue, interval=0.1)
        sim.schedule_at(0.25, lambda: queue.push(make_data_packet(0, 0, 0.25), 0.25))
        sim.run(until=0.55)
        times, lengths = sampler.as_arrays()
        assert list(times) == pytest.approx([0.0, 0.1, 0.2, 0.3, 0.4, 0.5])
        assert list(lengths) == [0, 0, 0, 1, 1, 1]

    def test_start_offset(self):
        sim = Simulator()
        queue = DropTailQueue(capacity=10)
        sampler = QueueSampler(sim, queue, interval=0.1, start=1.0)
        sim.run(until=1.25)
        times, _ = sampler.as_arrays()
        assert times[0] == pytest.approx(1.0)

    def test_stop(self):
        sim = Simulator()
        queue = DropTailQueue(capacity=10)
        sampler = QueueSampler(sim, queue, interval=0.1)
        sim.run(until=0.35)
        sampler.stop()
        n = len(sampler.times)
        sim.run(until=1.0)
        assert len(sampler.times) == n

    def test_buffer_delay_conversion(self):
        sim = Simulator()
        queue = DropTailQueue(capacity=10)
        sampler = QueueSampler(sim, queue, interval=0.1)
        for i in range(3):
            queue.push(make_data_packet(0, i, 0.0), 0.0)
        sim.run(until=0.05)
        delays = sampler.buffer_delays(service_rate=150_000.0)
        assert delays[0] == pytest.approx(3 * 1500 / 150_000.0)

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            QueueSampler(Simulator(), DropTailQueue(10), interval=0.0)


class TestSawtoothSummary:
    def _triangle(self, dmin, dmax, period, duration, dt=0.001):
        t = np.arange(0.0, duration, dt)
        phase = (t % period) / period
        rising = phase < 0.5
        d = np.where(
            rising,
            dmin + (dmax - dmin) * phase * 2,
            dmax - (dmax - dmin) * (phase - 0.5) * 2,
        )
        return t, d

    def test_recovers_triangle_geometry(self):
        t, d = self._triangle(dmin=0.02, dmax=0.06, period=0.5, duration=10.0)
        summary = sawtooth_summary(t, d)
        assert summary.dmax == pytest.approx(0.06, rel=0.05)
        assert summary.dmin == pytest.approx(0.02, rel=0.10)
        assert summary.average == pytest.approx(0.04, rel=0.05)
        assert summary.period == pytest.approx(0.5, rel=0.05)
        assert summary.n_cycles >= 10

    def test_empty_fraction(self):
        t = np.linspace(0, 10, 1000)
        d = np.where(t % 2 < 1, 0.0, 0.05)
        summary = sawtooth_summary(t, d, discard=0.0, smooth_window=1)
        assert summary.empty_fraction == pytest.approx(0.5, abs=0.05)

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            sawtooth_summary(np.arange(5.0), np.arange(5.0))

    def test_flat_series_degenerates_gracefully(self):
        t = np.linspace(0, 10, 500)
        d = np.full_like(t, 0.03)
        summary = sawtooth_summary(t, d)
        assert summary.dmax == pytest.approx(0.03)
        assert summary.dmin == pytest.approx(0.03)


class TestSawtoothEdges:
    def test_single_peak_has_nan_period(self):
        # One prominent peak: geometry is reported but the period (a
        # peak-to-peak statistic) is undefined.
        t = np.linspace(0, 10, 200)
        d = np.exp(-((t - 7.0) ** 2)) * 0.05
        summary = sawtooth_summary(t, d, discard=0.0)
        assert summary.n_cycles <= 1
        assert np.isnan(summary.period)
        assert summary.dmax == pytest.approx(0.05, rel=0.05)

    def test_mismatched_series_rejected(self):
        with pytest.raises(ValueError):
            sawtooth_summary(np.arange(20.0), np.arange(19.0))


class TestQueueSamplerTelemetry:
    def test_start_offset_with_tracer_emits_events(self, tmp_path):
        import json

        import repro.obs as obs

        sim = Simulator()
        queue = DropTailQueue(capacity=10)
        path = tmp_path / "q.jsonl"
        tracer = obs.Tracer(obs.JsonlSink(path))
        sampler = QueueSampler(
            sim, queue, interval=0.1, start=0.5, name="bottleneck",
            tracer=tracer,
        )
        sim.run(until=0.85)
        tracer.close()
        with open(path, encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh]
        samples = [r for r in records if r["kind"] == obs.QUEUE_SAMPLE]
        assert len(samples) == len(sampler.times) == 4
        assert samples[0]["t"] == pytest.approx(0.5)
        assert all(r["link"] == "bottleneck" for r in samples)

    def test_no_tracer_no_events(self):
        # Without an ambient tracer the sampler only records in memory.
        sim = Simulator()
        sampler = QueueSampler(sim, DropTailQueue(capacity=10), interval=0.1)
        sim.run(until=0.35)
        assert sampler._tracer is None
        assert len(sampler.times) == 4
