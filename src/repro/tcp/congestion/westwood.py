"""TCP Westwood+ (Mascolo et al. 2001): bandwidth-estimate backoff.

Westwood grows its window like Reno but, on loss, sets the slow-start
threshold from an end-to-end bandwidth estimate (``BWE × RTT_min``)
instead of blindly halving — designed for lossy wireless links.  On
buffer-overflow-dominated cellular paths it behaves close to Reno with a
gentler backoff, landing in the high-delay cluster of the paper's
Figure 7.
"""

from __future__ import annotations

from repro.tcp.congestion.base import AckSample, WindowCongestionControl
from repro.util.windows import Ewma


class Westwood(WindowCongestionControl):
    """Westwood+ with an EWMA ACK-rate bandwidth estimator."""

    name = "Westwood"
    sending_regulation = "cwnd-based"
    congestion_trigger = "Packet Loss"

    MIN_CWND = 2.0
    #: Low-pass gain of the bandwidth filter (Westwood+ samples once per
    #: RTT; we sample per-ACK with a correspondingly smaller gain).
    BW_ALPHA = 0.05

    def __init__(self) -> None:
        super().__init__()
        self._bw = Ewma(self.BW_ALPHA)  # segments / second
        self._last_ack_time: float = 0.0
        self._min_rtt = float("inf")

    def on_ack(self, sample: AckSample) -> None:
        if sample.rtt is not None and sample.rtt > 0:
            self._min_rtt = min(self._min_rtt, sample.rtt)
        if sample.newly_acked > 0:
            if self._last_ack_time > 0.0:
                dt = sample.now - self._last_ack_time
                if dt > 0:
                    self._bw.update(sample.newly_acked / dt)
            self._last_ack_time = sample.now

        if sample.newly_acked <= 0 or sample.in_recovery:
            return
        if self.in_slow_start:
            self.cwnd += sample.newly_acked
            if self.cwnd > self.ssthresh:
                self.cwnd = self.ssthresh
        else:
            self.cwnd += sample.newly_acked / self.cwnd

    def _bandwidth_window(self) -> float:
        """BWE × RTT_min in segments, the post-loss operating point."""
        bw = self._bw.value
        if bw is None or self._min_rtt == float("inf"):
            return max(self.MIN_CWND, self.cwnd * 0.5)
        return max(self.MIN_CWND, bw * self._min_rtt)

    def on_congestion(self, sample: AckSample) -> None:
        self.ssthresh = self._bandwidth_window()
        self.cwnd = min(self.cwnd, self.ssthresh)

    def on_recovery_exit(self, sample: AckSample) -> None:
        self.cwnd = max(self.MIN_CWND, self.ssthresh)

    def on_rto(self) -> None:
        self.ssthresh = self._bandwidth_window()
        self.cwnd = self.LOSS_WINDOW
