"""Figure 11: validation on the held-out LTE trace family.

The paper validates Cellsim against real LTE runs; our analogue checks
that the algorithm ordering established on the Table-2 traces carries
over to an independently generated trace family (different seeds and
moments) — i.e. the findings are not artefacts of one trace.
"""

from repro.experiments.algorithms import run_shootout
from repro.traces.presets import lte_validation_trace

from _report import DURATION, JOBS, MEASURE_START, emit, flow_row


def _run():
    down = lte_validation_trace(duration=60.0)
    up = lte_validation_trace(duration=60.0, direction="uplink")
    return run_shootout(
        down, up, duration=DURATION, measure_start=MEASURE_START, n_jobs=JOBS,
    )


def test_fig11_lte_validation(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [flow_row(name, r) for name, r in results.items()]
    emit("fig11_lte", lines)

    pr_l, pr_h = results["PR(L)"], results["PR(H)"]
    cubic, bbr, sprout = results["CUBIC"], results["BBR"], results["Sprout"]

    # Same qualitative ordering as Figure 7 on an unseen trace family.
    assert pr_l.delay.mean < pr_h.delay.mean
    assert pr_l.throughput < pr_h.throughput
    assert cubic.delay.mean > 3 * pr_h.delay.mean
    assert pr_h.throughput > 0.6 * cubic.throughput
    assert sprout.throughput < pr_h.throughput
    assert bbr.delay.mean < 0.5 * cubic.delay.mean
