"""Differential test: interval-run scoreboard vs a naive per-seq model.

The run-based :class:`~repro.tcp.scoreboard.SenderScoreboard` replaced
a per-segment dict + retransmission heap and is required to be
*bit-identical* to it.  This harness runs a naive per-seq reference
implementation of the same state machine in lockstep with the interval
one inside a real :class:`~repro.tcp.sender.TcpSender` over randomized
seeded loss / reorder / blackout schedules, asserting after every
scoreboard operation that

* every mutator returned exactly the same value from both boards;
* the full per-seq state dump is identical;
* the run structure verifies (``check()``);
* the sender's incremental pipe equals the scoreboard reconstruction
  at every ACK.
"""

import random

import pytest

from repro.sim.engine import Simulator
from repro.tcp.congestion.base import (
    RateCongestionControl,
    WindowCongestionControl,
)
from repro.tcp.receiver import TcpReceiver
from repro.tcp.scoreboard import (
    CANCELLED,
    LOST,
    RTX,
    SACKED,
    SenderScoreboard,
)
from repro.tcp.sender import TcpSender


class ReferenceBoard:
    """The old per-segment state machine, one dict entry per sequence.

    Deliberately naive — O(segments) everywhere — so it cannot share a
    bug with the interval implementation.
    """

    def __init__(self):
        self.state = {}  # seq -> SACKED | LOST | RTX | CANCELLED

    # -- queries -------------------------------------------------------
    @property
    def clean(self):
        return not self.state

    @property
    def in_loss_recovery(self):
        return any(t != SACKED for t in self.state.values())

    @property
    def has_pending(self):
        return any(t == LOST for t in self.state.values())

    def next_pending(self, una):
        pend = [s for s, t in self.state.items() if t == LOST and s >= una]
        return min(pend) if pend else None

    def expected_pipe(self, una, next_seq):
        covered = sum(1 for s in self.state if una <= s < next_seq)
        rtx = sum(
            1 for s, t in self.state.items()
            if t == RTX and una <= s < next_seq
        )
        return (next_seq - una) - covered + rtx

    def to_dict(self, una, next_seq):
        return {s: t for s, t in self.state.items() if una <= s < next_seq}

    # -- transitions ---------------------------------------------------
    def sack_range(self, start, end):
        newly = drop = cancelled = 0
        for seq in range(start, end):
            t = self.state.get(seq)
            if t is None or t == RTX:
                self.state[seq] = SACKED
                newly += 1
                drop += 1
            elif t == LOST:
                self.state[seq] = CANCELLED
                newly += 1
                cancelled += 1
        return newly, drop, cancelled

    def mark_lost(self, start, end):
        marked = []
        for seq in range(start, end):
            if self.state.get(seq) is None:
                self.state[seq] = LOST
                marked.append(seq)
        return len(marked), _as_runs(marked)

    def ack_to(self, una, ack):
        covered = rtx = 0
        for seq in [s for s in self.state if s < ack]:
            t = self.state.pop(seq)
            covered += 1
            if t == RTX:
                rtx += 1
        return (ack - una) - covered + rtx

    def mark_rtx_sent(self, seq):
        if self.state.get(seq) == LOST:
            self.state[seq] = RTX

    def take_pending(self, una, limit):
        first = self.next_pending(una)
        if first is None:
            return None
        # Claim the contiguous pending run from its head, up to limit.
        seq = first
        while seq < first + limit and self.state.get(seq) == LOST:
            self.state[seq] = RTX
            seq += 1
        return (first, seq)

    def rto_requeue(self, una, next_seq):
        newly = 0
        for seq in range(una, next_seq):
            t = self.state.get(seq)
            if t is None or t == RTX:
                self.state[seq] = LOST
                newly += 1
        return newly


def _as_runs(seqs):
    """Merge a sorted seq list into (start, end, None) change runs."""
    runs = []
    for s in seqs:
        if runs and runs[-1][1] == s:
            runs[-1] = (runs[-1][0], s + 1, None)
        else:
            runs.append((s, s + 1, None))
    return [tuple(r) for r in runs]


class MirrorBoard:
    """Delegates every operation to both boards and asserts agreement."""

    def __init__(self):
        self.real = SenderScoreboard()
        self.ref = ReferenceBoard()
        self.hi = 0  # one past the highest sequence ever touched
        self.ops = 0

    def _sync(self):
        self.ops += 1
        self.real.check()
        assert self.real.to_dict(0, self.hi) == self.ref.to_dict(0, self.hi)

    def _touch(self, *bounds):
        for b in bounds:
            if b > self.hi:
                self.hi = b

    # -- queries (compared, no state change) ---------------------------
    @property
    def clean(self):
        a, b = self.real.clean, self.ref.clean
        assert a == b
        return a

    @property
    def in_loss_recovery(self):
        a, b = self.real.in_loss_recovery, self.ref.in_loss_recovery
        assert a == b
        return a

    @property
    def has_pending(self):
        a, b = self.real.has_pending, self.ref.has_pending
        assert a == b
        return a

    def next_pending(self, una):
        a, b = self.real.next_pending(una), self.ref.next_pending(una)
        assert a == b
        return a

    def expected_pipe(self, una, next_seq):
        a = self.real.expected_pipe(una, next_seq)
        b = self.ref.expected_pipe(una, next_seq)
        assert a == b
        return a

    def check(self):
        self.real.check()

    def to_dict(self, una, next_seq):
        return self.real.to_dict(una, next_seq)

    # -- transitions ---------------------------------------------------
    def sack_range(self, start, end):
        self._touch(end)
        a, b = self.real.sack_range(start, end), self.ref.sack_range(start, end)
        assert a == b, f"sack_range({start},{end}): {a} != {b}"
        self._sync()
        return a

    def mark_lost(self, start, end):
        self._touch(end)
        a, b = self.real.mark_lost(start, end), self.ref.mark_lost(start, end)
        assert a == b, f"mark_lost({start},{end}): {a} != {b}"
        self._sync()
        return a

    def ack_to(self, una, ack):
        a, b = self.real.ack_to(una, ack), self.ref.ack_to(una, ack)
        assert a == b, f"ack_to({una},{ack}): {a} != {b}"
        self._sync()
        return a

    def mark_rtx_sent(self, seq):
        self.real.mark_rtx_sent(seq)
        self.ref.mark_rtx_sent(seq)
        self._sync()

    def take_pending(self, una, limit):
        a = self.real.take_pending(una, limit)
        b = self.ref.take_pending(una, limit)
        assert a == b, f"take_pending({una},{limit}): {a} != {b}"
        self._sync()
        return a

    def rto_requeue(self, una, next_seq):
        a = self.real.rto_requeue(una, next_seq)
        b = self.ref.rto_requeue(una, next_seq)
        assert a == b, f"rto_requeue({una},{next_seq}): {a} != {b}"
        self._sync()
        return a


class _Window(WindowCongestionControl):
    name = "fixed"

    def __init__(self, cwnd):
        super().__init__()
        self.cwnd = cwnd
        self.ssthresh = float("inf")


class _Rate(RateCongestionControl):
    name = "fixed-rate"

    def __init__(self, rate):
        super().__init__()
        self.pacing_rate = rate


class _ChaosWire:
    """Seeded loss + reorder + blackout schedule."""

    def __init__(self, sim, seed, drop_p, jitter, dark_period, dark_len):
        self.sim = sim
        self.rng = random.Random(seed)
        self.drop_p = drop_p
        self.jitter = jitter
        self.dark_period = dark_period
        self.dark_len = dark_len
        self.receiver = None
        self.sender = None

    def _dark(self):
        if not self.dark_period:
            return False
        return (self.sim.now % self.dark_period) > (
            self.dark_period - self.dark_len
        )

    def send_data(self, pkt):
        if self._dark():
            return
        if not pkt.retransmit and self.rng.random() < self.drop_p:
            return
        delay = 0.02 + self.rng.random() * self.jitter
        self.sim.schedule(delay, lambda p=pkt: self.receiver.receive(p))

    def send_ack(self, pkt):
        if self._dark():
            return
        self.sim.schedule(0.02, lambda p=pkt: self.sender.on_ack_packet(p))


SCHEDULES = [
    # (seed, drop_p, jitter, dark_period, dark_len)
    pytest.param((1, 0.05, 0.0, 0.0, 0.0), id="random-loss"),
    pytest.param((2, 0.02, 0.015, 0.0, 0.0), id="reorder-spurious"),
    pytest.param((3, 0.0, 0.0, 1.0, 0.3), id="blackout-rto"),
    pytest.param((4, 0.08, 0.01, 1.5, 0.2), id="loss-reorder-blackout"),
    pytest.param((5, 0.3, 0.02, 0.8, 0.4), id="pathological"),
]


@pytest.mark.parametrize("schedule", SCHEDULES)
def test_interval_board_matches_reference(schedule):
    seed, drop_p, jitter, dark_period, dark_len = schedule
    sim = Simulator()
    wire = _ChaosWire(sim, seed, drop_p, jitter, dark_period, dark_len)
    wire.receiver = TcpReceiver(
        sim, 0, send_ack=wire.send_ack, ts_granularity=0.0
    )
    sender = TcpSender(sim, 0, _Window(40), send_packet=wire.send_data)
    wire.sender = sender
    mirror = MirrorBoard()
    sender.scoreboard = mirror

    pipe_checks = [0]
    inner = sender.on_ack_packet

    def checked_ack(pkt):
        inner(pkt)
        # The incremental pipe must equal the reconstruction (which the
        # mirror itself asserts across both boards) at every ACK.
        assert sender._pipe == sender.debug_expected_pipe()
        pipe_checks[0] += 1

    sender.on_ack_packet = checked_ack
    sender.start()
    sim.run(until=4.0)

    assert pipe_checks[0] > 50, "schedule produced too few ACKs to matter"
    assert mirror.ops > 100, "schedule never exercised the scoreboard"
    if dark_period:
        assert sender.rto_count >= 1, "blackout schedule produced no RTO"
    if jitter and drop_p:
        assert sender.lost_total > 0


def test_spurious_cancellation_differential():
    """Reorder-heavy *paced* schedule must exercise CANCELLED.

    A window-based sender refills retransmissions inside the same ACK
    processing that marked them, so LOST never lingers; a rate-paced
    sender queues marks until the next pacing tick, leaving a window
    where a late-arriving original is SACKed and cancels the mark.
    """
    sim = Simulator()
    wire = _ChaosWire(sim, 7, 0.1, 0.1, 0.0, 0.0)
    wire.receiver = TcpReceiver(
        sim, 0, send_ack=wire.send_ack, ts_granularity=0.0
    )
    sender = TcpSender(sim, 0, _Rate(1_500_000.0), send_packet=wire.send_data)
    wire.sender = sender
    mirror = MirrorBoard()
    sender.scoreboard = mirror
    sender.start()
    sim.run(until=8.0)
    assert sender.spurious_marks > 0, (
        "jitter schedule produced no spurious marks; the CANCELLED "
        "path went untested"
    )
    assert mirror.ops > 100
