"""RRE (Leong et al., ICNP 2013): receive-rate-based congestion control.

RRE is the authors' earlier system and PropRate's direct ancestor: it
eliminates ACK clocking by pacing at the sender-side estimated receive
rate, using relative one-way delay to keep the bottleneck buffer within
a fixed occupancy band.  Unlike PropRate it targets *throughput*: the
band is wide and high, so the buffer never empties, and there is no
tunable latency target and no negative-feedback loop (paper §2: "RRE
... is designed to achieve high throughput instead of low latency").

Control law: below the band send at γ_f·ρ, above it send at γ_d·ρ,
inside it match ρ.
"""

from __future__ import annotations

from repro.core.estimators import BufferDelayEstimator, ReceiveRateEstimator
from repro.tcp.congestion.base import AckSample, RateCongestionControl

#: Buffer-delay occupancy band (seconds): throughput-oriented.
BAND_LOW = 0.060
BAND_HIGH = 0.200

#: Rate multipliers outside the band.
GAMMA_FILL = 1.4
GAMMA_DRAIN = 0.7

#: Bootstrap probe burst.
PROBE_BURST = 10


class Rre(RateCongestionControl):
    """Receive-rate estimation congestion control (throughput-oriented)."""

    name = "RRE"
    sending_regulation = "Rate-based"
    congestion_trigger = "Buffer Delay"
    # on_tick is an in-flight cap that can only zero the pacing rate.
    idle_tick_safe = True

    def __init__(self) -> None:
        super().__init__()
        self.rate_estimator = ReceiveRateEstimator()
        self.delay_estimator = BufferDelayEstimator()
        self._burst_size = PROBE_BURST
        self._burst_target = PROBE_BURST

    def on_connection_start(self) -> None:
        self.pacing_rate = 0.0
        self.round_mode = "up"
        self.request_burst(self._burst_size)

    def on_ack(self, sample: AckSample) -> None:
        host = self.host
        assert host is not None
        self.rate_estimator.on_ack(
            sample.receiver_ts, sample.delivered_total * host.packet_bytes
        )
        if sample.one_way_delay is not None:
            self.delay_estimator.on_ack(sample.now, sample.one_way_delay)

        rho = self.rate_estimator.rate
        if rho is None:
            if sample.delivered_total >= self._burst_target:
                self._burst_size = min(1024, self._burst_size * 2)
                self._burst_target = sample.delivered_total + self._burst_size
                self.request_burst(self._burst_size)
            return

        tbuff = self.delay_estimator.tbuff or 0.0
        if tbuff < BAND_LOW:
            self.pacing_rate = GAMMA_FILL * rho
            self.round_mode = "up"
        elif tbuff > BAND_HIGH:
            self.pacing_rate = GAMMA_DRAIN * rho
            self.round_mode = "down"
        else:
            self.pacing_rate = rho
            self.round_mode = "up"

    def on_rto(self) -> None:
        self.pacing_rate = 0.0
        self.rate_estimator.reset()
        self._burst_size = PROBE_BURST
        self.request_burst(self._burst_size)

    def on_tick(self, now: float) -> None:
        """Safety cap on in-flight data, as in the kernel implementation.

        Scaled by the smoothed RTT so a congested uplink (delayed ACKs,
        the scenario RRE was designed for) does not strangle the flow.
        """
        host = self.host
        rho = self.rate_estimator.rate
        if host is None or rho is None:
            return
        rtt = host.min_rtt if host.min_rtt != float("inf") else 0.1
        if host.srtt is not None:
            rtt = max(rtt, host.srtt)
        cap = max(40, int((rtt + 2.0 * BAND_HIGH) * rho / host.packet_bytes))
        if host.inflight >= cap:
            self.pacing_rate = 0.0
