"""Tests for the adaptive-target extension (paper §6 future work)."""

import pytest

from repro.core.adaptive import (
    AdaptivePropRate,
    EPISODE_MEMORY,
    LOSS_EPISODES_TO_SHRINK,
    RECOVERY_QUIET_TIME,
    RECOVERY_STEP,
    SHRINK_FACTOR,
    TargetAdjuster,
    retarget,
)
from repro.core.proprate import PropRate
from repro.experiments.runner import FlowSpec, cellular_path_config, run_experiment
from repro.traces.generator import constant_rate_trace

from tests.helpers import AckFeeder, FakeHost


def _adaptive(target=0.080, **kwargs):
    cc = AdaptivePropRate(target_buffer_delay=target, **kwargs)
    feeder = AckFeeder(cc, FakeHost(srtt=0.05, min_rtt=0.04))
    feeder.run(30, dt=0.004)  # establish rate estimate / params
    return cc, feeder


class TestTargetShrinking:
    def test_single_loss_episode_does_not_shrink(self):
        cc, feeder = _adaptive()
        sample = feeder.ack(newly_lost=1)
        cc.on_congestion(sample)
        assert cc.target_buffer_delay == pytest.approx(0.080)

    def test_consecutive_episodes_shrink_target(self):
        cc, feeder = _adaptive()
        for _ in range(LOSS_EPISODES_TO_SHRINK):
            sample = feeder.ack(dt=0.1, newly_lost=1)
            cc.on_congestion(sample)
        assert cc.target_buffer_delay == pytest.approx(0.080 * SHRINK_FACTOR)
        assert cc.target_adjustments == 1

    def test_distant_episodes_do_not_accumulate(self):
        cc, feeder = _adaptive()
        sample = feeder.ack(newly_lost=1)
        cc.on_congestion(sample)
        feeder.run(100, dt=0.05)  # > EPISODE_MEMORY apart
        sample = feeder.ack(newly_lost=1)
        cc.on_congestion(sample)
        assert cc.target_buffer_delay == pytest.approx(0.080)

    def test_rto_shrinks_immediately(self):
        cc, feeder = _adaptive()
        cc.on_rto()
        assert cc.target_buffer_delay == pytest.approx(0.080 * SHRINK_FACTOR)

    def test_floor_respected(self):
        cc, feeder = _adaptive(min_target=0.020)
        for _ in range(50):
            cc.on_rto()
        assert cc.target_buffer_delay >= 0.020

    def test_feedback_loop_recentred(self):
        cc, feeder = _adaptive()
        cc.on_rto()
        assert cc.feedback.target == cc.target_buffer_delay
        assert cc.feedback.min_threshold <= cc.feedback.threshold <= cc.feedback.max_threshold


class TestTargetRecovery:
    def test_recovers_toward_configured_after_quiet_period(self):
        cc, feeder = _adaptive()
        cc.on_rto()
        shrunk = cc.target_buffer_delay
        # A long loss-free stretch (> RECOVERY_QUIET_TIME) of ACKs.
        feeder.run(300, dt=0.05)
        assert cc.target_buffer_delay > shrunk

    def test_never_exceeds_configured_target(self):
        cc, feeder = _adaptive()
        feeder.run(500, dt=0.05)
        assert cc.target_buffer_delay <= cc.configured_target + 1e-12


class TestTargetAdjusterEdges:
    """Boundary semantics of the pure decision core — the same rule the
    env policy and the fluid bank replay, so the edges are pinned here
    once."""

    def test_episodes_exactly_memory_apart_are_consecutive(self):
        # The memory boundary is inclusive: a second episode exactly
        # EPISODE_MEMORY after the first still extends the streak.
        adj = TargetAdjuster(0.080, 0.005)
        assert adj.on_loss(1.0, 0.080) is None
        out = adj.on_loss(1.0 + EPISODE_MEMORY, 0.080)
        assert out == pytest.approx(0.080 * SHRINK_FACTOR)

    def test_episodes_just_past_memory_restart_streak(self):
        adj = TargetAdjuster(0.080, 0.005)
        assert adj.on_loss(1.0, 0.080) is None
        assert adj.on_loss(1.0 + EPISODE_MEMORY + 1e-9, 0.080) is None

    def test_shrink_resets_streak(self):
        adj = TargetAdjuster(0.080, 0.005)
        assert adj.on_loss(1.0, 0.080) is None
        assert adj.on_loss(2.0, 0.080) is not None
        # The trigger consumed the streak: the next episode starts a new
        # count of one, not an immediate second shrink.
        assert adj.on_loss(3.0, 0.080 * SHRINK_FACTOR) is None

    def test_recovery_ceiling_is_configured_target(self):
        adj = TargetAdjuster(0.080, 0.005)
        adj.on_loss(1.0, 0.080)
        target = adj.on_loss(2.0, 0.080)
        now = 2.0
        for _ in range(50):
            now += RECOVERY_QUIET_TIME
            out = adj.on_quiet(now, target)
            if out is not None:
                target = out
        assert target == pytest.approx(0.080)
        # At the ceiling, quiet time proposes nothing further.
        assert adj.on_quiet(now + RECOVERY_QUIET_TIME, target) is None

    def test_recovery_rate_limited_per_quiet_interval(self):
        adj = TargetAdjuster(0.080, 0.005)
        adj.on_loss(1.0, 0.080)
        target = adj.on_loss(2.0, 0.080)
        now = 2.0 + RECOVERY_QUIET_TIME
        stepped = adj.on_quiet(now, target)
        assert stepped == pytest.approx(target + RECOVERY_STEP)
        # A beat later (same quiet interval) → no second step.
        assert adj.on_quiet(now + 0.1, stepped) is None

    def test_min_target_floor_on_loss_and_rto(self):
        adj = TargetAdjuster(0.080, 0.050)
        target = 0.080
        now = 0.0
        for _ in range(10):
            now += 1.0
            out = adj.on_loss(now, target)
            if out is not None:
                target = out
        assert target == pytest.approx(0.050)
        assert adj.on_rto(target) == pytest.approx(0.050)

    def test_ctor_validation(self):
        with pytest.raises(ValueError, match="min_target"):
            TargetAdjuster(0.040, 0.0)
        with pytest.raises(ValueError, match="min_target"):
            TargetAdjuster(0.040, 0.080)


class TestRetarget:
    def test_dead_band_is_a_noop(self):
        cc = PropRate(0.040)
        threshold = cc.feedback.threshold
        assert retarget(cc, 0.040 + 1e-12) is False
        assert cc.target_buffer_delay == 0.040
        assert cc.feedback.threshold == threshold

    def test_recentres_feedback_band(self):
        cc = PropRate(0.040)
        assert retarget(cc, 0.100) is True
        assert cc.target_buffer_delay == pytest.approx(0.100)
        assert cc.feedback.target == pytest.approx(0.100)
        assert cc.feedback.min_threshold == pytest.approx(0.050)
        assert cc.feedback.max_threshold == pytest.approx(0.150)
        assert (cc.feedback.min_threshold <= cc.feedback.threshold
                <= cc.feedback.max_threshold)


class TestValidation:
    def test_rejects_bad_min_target(self):
        with pytest.raises(ValueError):
            AdaptivePropRate(0.040, min_target=0.0)
        with pytest.raises(ValueError):
            AdaptivePropRate(0.040, min_target=0.080)

    def test_metadata(self):
        cc = AdaptivePropRate()
        assert cc.is_rate_based
        assert cc.name == "PropRate-A"


class TestShallowBufferBehaviour:
    """The §6 motivation: on a shallow buffer the adaptive variant sheds
    its losses by de-tuning, where fixed PR(80 ms) keeps overflowing."""

    def test_adaptive_loses_less_than_fixed(self):
        trace = constant_rate_trace(1.5e6, 25.0)
        config = cellular_path_config(trace, buffer_packets=40)

        fixed = run_experiment(
            config, [FlowSpec(cc_factory=lambda: PropRate(0.080))],
            duration=15.0, measure_start=3.0,
        )[0]
        adaptive = run_experiment(
            config, [FlowSpec(cc_factory=lambda: AdaptivePropRate(0.080))],
            duration=15.0, measure_start=3.0,
        )[0]

        assert adaptive.bottleneck_drops < 0.2 * max(1, fixed.bottleneck_drops)
        assert adaptive.sender.cc.target_buffer_delay < 0.080
        # It still moves data (at a lower rate: a de-tuned target on a
        # shallow buffer trades throughput for the ~20x loss reduction).
        assert adaptive.throughput > 0.3 * fixed.throughput
        assert adaptive.delay.mean < fixed.delay.mean
