"""External-policy congestion-control adapters.

These adapters let a policy that lives *outside* the ACK path — a
hand-written controller, the :mod:`repro.env` step/observe/act loop, or
eventually a learned model — drive the sender through exactly the same
code path native algorithms use.  Two variants mirror the sender's two
regulation mechanisms (paper Figure 5):

* :class:`PolicyDriven` — rate-regulated: the policy sets a pacing rate
  (and may request probe bursts), or wraps a native *rate-based*
  algorithm as its ``inner`` brain;
* :class:`WindowPolicyDriven` — cwnd-regulated: the policy sets a
  congestion window, or wraps a native *cwnd-based* algorithm.

With an ``inner`` algorithm attached, every sender hook is forwarded to
it and its control outputs (``pacing_rate``/``round_mode``/burst
requests, or ``cwnd``) are mirrored onto the adapter after each hook
returns — before the sender reads them.  The adapter is then a
transparent shim: a run driven through it is bit-identical to the
native run (the ``check_determinism.py --env`` gate).  External actions
(:meth:`set_rate`, :meth:`set_gains`, :meth:`set_cwnd`) layer on top of
or replace the inner outputs.

Both adapters also count forwarded congestion events and timeouts
(:attr:`congestion_events`, :attr:`rto_events`) so epoch-granularity
policies can detect loss episodes between observations without hooking
the ACK path themselves.
"""

from __future__ import annotations

from typing import Optional

from repro.tcp.congestion.base import (
    AckSample,
    CongestionControl,
    RateCongestionControl,
    WindowCongestionControl,
)

__all__ = ["PolicyDriven", "WindowPolicyDriven", "policy_adapter"]


class PolicyDriven(RateCongestionControl):
    """Rate-based adapter: an external policy (or wrapped native
    algorithm) owns the pacing rate."""

    name = "PolicyDriven"
    congestion_trigger = "External policy"

    def __init__(self, inner: Optional[CongestionControl] = None) -> None:
        super().__init__()
        if inner is not None and not isinstance(inner, RateCongestionControl):
            raise TypeError(
                "PolicyDriven wraps rate-based algorithms; "
                "use WindowPolicyDriven for cwnd-based ones"
            )
        self.inner: Optional[RateCongestionControl] = inner
        self._rate_override: Optional[float] = None
        self._kf_override: Optional[float] = None
        self._kd_override: Optional[float] = None
        #: Fast-retransmit episodes / timeouts forwarded so far, and the
        #: host clock of the most recent of each (for epoch policies).
        self.congestion_events = 0
        self.rto_events = 0
        self.last_congestion_at: Optional[float] = None
        self.last_rto_at: Optional[float] = None

    # -- sender introspection -------------------------------------------
    @property
    def idle_tick_safe(self) -> bool:  # type: ignore[override]
        # Reproduce the sender's native tick-passivity decision for the
        # wrapped algorithm: an inner that never overrides ``on_tick``
        # is passive regardless of its own flag.  Without an inner the
        # adapter's tick does nothing, so suspension is always safe.
        inner = self.inner
        if inner is None:
            return True
        return (
            type(inner).on_tick is RateCongestionControl.on_tick
            or inner.idle_tick_safe
        )

    # -- external actions -----------------------------------------------
    def set_rate(self, rate: Optional[float]) -> None:
        """Pin the pacing rate (bytes/s); ``None`` returns control to
        the inner algorithm (or to zero without one)."""
        if rate is not None and rate < 0:
            raise ValueError("pacing rate must be non-negative")
        self._rate_override = rate
        self._sync()
        self._wake_host()

    def set_gains(self, kf: Optional[float] = None,
                  kd: Optional[float] = None) -> None:
        """Override the wrapped PropRate's fill/drain gains.

        The overrides rescale the inner algorithm's pacing output in
        whichever state the respective gain governs (Fill for ``k_f``;
        Drain and Monitor for ``k_d``), leaving the state machine and
        threshold feedback untouched.  ``None`` clears an override.
        No-op for inners without PropRate's ``params``/``state``.
        """
        if (kf is not None and kf <= 0) or (kd is not None and kd <= 0):
            raise ValueError("gain overrides must be positive")
        self._kf_override = kf
        self._kd_override = kd
        self._sync()
        self._wake_host()

    def request_probe(self, packets: int) -> None:
        """External probe burst (the policy face of ``request_burst``)."""
        self.request_burst(packets)
        self._wake_host()

    def _wake_host(self) -> None:
        # A suspended sender resumes only on ACK or RTO; an external
        # action is neither, so it must wake the pacing tick itself
        # (phase-exact — see TcpSender.wake).
        wake = getattr(self.host, "wake", None)
        if wake is not None:
            wake()

    # -- inner mirroring ------------------------------------------------
    def _gain_scale(self, inner: RateCongestionControl) -> float:
        if self._kf_override is None and self._kd_override is None:
            return 1.0
        params = getattr(inner, "params", None)
        state = getattr(inner, "state", None)
        if params is None or state is None:
            return 1.0
        value = getattr(state, "value", state)
        if value == "fill" and self._kf_override is not None and params.kf > 0:
            return self._kf_override / params.kf
        if (
            value in ("drain", "monitor")
            and self._kd_override is not None
            and params.kd > 0
        ):
            return self._kd_override / params.kd
        return 1.0

    def _sync(self) -> None:
        inner = self.inner
        if inner is None:
            if self._rate_override is not None:
                self.pacing_rate = self._rate_override
            return
        self._pending_burst += inner.take_burst()
        self.round_mode = inner.round_mode
        if self._rate_override is not None:
            self.pacing_rate = self._rate_override
        else:
            self.pacing_rate = inner.pacing_rate * self._gain_scale(inner)

    # -- forwarded hooks ------------------------------------------------
    def bind(self, host) -> None:
        super().bind(host)
        if self.inner is not None:
            self.inner.bind(host)

    def on_connection_start(self) -> None:
        if self.inner is not None:
            self.inner.on_connection_start()
        self._sync()

    def on_ack(self, sample: AckSample) -> None:
        if self.inner is not None:
            self.inner.on_ack(sample)
        self._sync()

    def on_congestion(self, sample: AckSample) -> None:
        self.congestion_events += 1
        self.last_congestion_at = sample.now
        if self.inner is not None:
            self.inner.on_congestion(sample)
        self._sync()

    def on_recovery_exit(self, sample: AckSample) -> None:
        if self.inner is not None:
            self.inner.on_recovery_exit(sample)
        self._sync()

    def on_rto(self) -> None:
        self.rto_events += 1
        if self.host is not None:
            self.last_rto_at = self.host.now
        if self.inner is not None:
            self.inner.on_rto()
        self._sync()

    def on_packet_sent(self, seq: int, now: float, retransmit: bool) -> None:
        if self.inner is not None:
            self.inner.on_packet_sent(seq, now, retransmit)
            self._sync()

    def on_tick(self, now: float) -> None:
        if self.inner is not None:
            self.inner.on_tick(now)
            self._sync()

    def telemetry_close(self, now: float) -> None:
        close = getattr(self.inner, "telemetry_close", None)
        if close is not None:
            close(now)


class WindowPolicyDriven(WindowCongestionControl):
    """cwnd-based adapter: an external policy (or wrapped native
    algorithm) owns the congestion window."""

    name = "WindowPolicyDriven"
    congestion_trigger = "External policy"

    def __init__(self, inner: Optional[CongestionControl] = None) -> None:
        super().__init__()
        if inner is not None and not isinstance(inner, WindowCongestionControl):
            raise TypeError(
                "WindowPolicyDriven wraps cwnd-based algorithms; "
                "use PolicyDriven for rate-based ones"
            )
        self.inner: Optional[WindowCongestionControl] = inner
        self._cwnd_override: Optional[float] = None
        self.congestion_events = 0
        self.rto_events = 0
        self.last_congestion_at: Optional[float] = None
        self.last_rto_at: Optional[float] = None
        self._sync()

    # -- external actions -----------------------------------------------
    def set_cwnd(self, cwnd: Optional[float]) -> None:
        """Pin the congestion window (segments); ``None`` returns
        control to the inner algorithm."""
        if cwnd is not None and cwnd < 1.0:
            raise ValueError("cwnd must be >= 1 segment")
        self._cwnd_override = cwnd
        self._sync()

    # -- inner mirroring ------------------------------------------------
    def _sync(self) -> None:
        if self._cwnd_override is not None:
            self.cwnd = self._cwnd_override
        elif self.inner is not None:
            self.cwnd = self.inner.cwnd
            self.ssthresh = self.inner.ssthresh

    # -- forwarded hooks ------------------------------------------------
    def bind(self, host) -> None:
        super().bind(host)
        if self.inner is not None:
            self.inner.bind(host)

    def on_connection_start(self) -> None:
        if self.inner is not None:
            self.inner.on_connection_start()
        self._sync()

    def on_ack(self, sample: AckSample) -> None:
        if self.inner is not None:
            self.inner.on_ack(sample)
        self._sync()

    def on_congestion(self, sample: AckSample) -> None:
        self.congestion_events += 1
        self.last_congestion_at = sample.now
        if self.inner is not None:
            self.inner.on_congestion(sample)
        self._sync()

    def on_recovery_exit(self, sample: AckSample) -> None:
        if self.inner is not None:
            self.inner.on_recovery_exit(sample)
        self._sync()

    def on_rto(self) -> None:
        self.rto_events += 1
        if self.host is not None:
            self.last_rto_at = self.host.now
        if self.inner is not None:
            self.inner.on_rto()
        self._sync()

    def on_packet_sent(self, seq: int, now: float, retransmit: bool) -> None:
        if self.inner is not None:
            self.inner.on_packet_sent(seq, now, retransmit)
            self._sync()

    def telemetry_close(self, now: float) -> None:
        close = getattr(self.inner, "telemetry_close", None)
        if close is not None:
            close(now)


def policy_adapter(inner: Optional[CongestionControl] = None):
    """The adapter matching ``inner``'s regulation mechanism.

    Rate-based inners (and ``None``) get :class:`PolicyDriven`,
    cwnd-based inners :class:`WindowPolicyDriven`.
    """
    if inner is None or isinstance(inner, RateCongestionControl):
        return PolicyDriven(inner)
    if isinstance(inner, WindowCongestionControl):
        return WindowPolicyDriven(inner)
    raise TypeError(
        f"cannot adapt {type(inner).__name__}: neither rate- nor "
        "cwnd-based"
    )
