"""Link models: trace-driven cellular links and constant-rate wired links.

:class:`CellularLink` is the Cellsim substrate: it replays a
:class:`~repro.traces.trace.Trace` of delivery opportunities through a
finite queue.  Each opportunity can carry up to 1500 bytes; several small
packets (e.g. ACKs) may share one opportunity, and an opportunity that
finds the queue empty is wasted — exactly the semantics of the emulator
used in the paper.

:class:`WiredLink` is a conventional store-and-forward link with a fixed
service rate, used for the Figure-13 inter-continental experiments.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, List, Optional

from repro.obs import LINK_HANDOVER, LINK_OUTAGE, LINK_RECOVER, current_tracer
from repro.sim.engine import Event, Simulator
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue
from repro.traces.trace import OPPORTUNITY_BYTES, Trace

DeliverCallback = Callable[[Packet], None]

#: A service gap at least this long with packets queued is reported as a
#: ``link.outage`` telemetry event (normal inter-opportunity gaps on the
#: paper's traces are milliseconds).
OUTAGE_GAP = 0.100


class Link:
    """Common interface: ``enqueue`` a packet, ``on_deliver`` fires later."""

    def enqueue(self, packet: Packet) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


class CellularLink(Link):
    """A trace-driven bottleneck: finite queue drained by trace opportunities.

    Parameters
    ----------
    sim:
        The event loop.
    trace:
        Delivery-opportunity schedule; replayed cyclically when ``loop``.
    queue:
        The bottleneck buffer (drop-tail by default, CoDel for the AQM
        discussion experiment).
    prop_delay:
        Fixed one-way propagation delay applied after service.
    on_deliver:
        Called with each packet when it exits the link.
    """

    def __init__(
        self,
        sim: Simulator,
        trace: Trace,
        queue: DropTailQueue,
        prop_delay: float = 0.020,
        on_deliver: Optional[DeliverCallback] = None,
        loop: bool = True,
        name: str = "cell",
    ) -> None:
        if len(trace) == 0:
            raise ValueError("trace has no delivery opportunities")
        self.sim = sim
        self.trace = trace
        self.queue = queue
        self._prop_delay = prop_delay
        self.on_deliver = on_deliver
        self.loop = loop
        self.name = name
        self._tracer = current_tracer()
        self._outage_open = False
        self._times = trace.opportunity_times
        # Plain-float copy: scalar indexing and bisect on a Python list
        # beat numpy scalar extraction on this per-packet path.
        self._times_list: List[float] = trace.opportunity_times.tolist()
        self._period = trace.duration
        self._cycle = 0  # how many whole trace periods have elapsed
        self._index = 0  # next opportunity index within the current cycle
        self._service_event: Optional[Event] = None
        self.delivered_packets = 0
        self.delivered_bytes = 0
        self.wasted_opportunities = 0

    @property
    def prop_delay(self) -> float:
        return self._prop_delay

    @prop_delay.setter
    def prop_delay(self, value: float) -> None:
        """Mid-run changes model a handover / signal-path shift; traced."""
        old = self._prop_delay
        self._prop_delay = value
        tr = self._tracer
        if tr is not None and value != old:
            tr.emit(LINK_HANDOVER, self.sim.now, link=self.name,
                    prop_delay=value, delta=value - old)

    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> bool:
        """Offer a packet to the bottleneck buffer.

        Returns False if the buffer dropped it.
        """
        accepted = self.queue.push(packet, self.sim.now)
        if accepted and self._service_event is None:
            self._arm_service()
        return accepted

    # ------------------------------------------------------------------
    def _next_opportunity_time(self) -> float:
        """Absolute time of the next unused delivery opportunity >= now.

        Fast-forwards over opportunities that elapsed while the queue was
        empty (they are wasted by definition; we count them lazily).
        """
        now = self.sim.now
        times = self._times_list
        size = len(times)
        while True:
            base = self._cycle * self._period
            local = now - base
            idx = self._index
            # Busy-link fast path: the pending opportunity is still ahead.
            if idx < size and times[idx] >= local:
                return base + times[idx]
            # Jump the index to the first opportunity at/after now.
            idx = bisect_left(times, local, idx)
            if idx > self._index:
                self.wasted_opportunities += idx - self._index
                self._index = idx
            if idx < size:
                return base + times[idx]
            if not self.loop:
                return float("inf")
            self._cycle += 1  # end of cycle: roll over
            self._index = 0

    def _arm_service(self) -> None:
        t = self._next_opportunity_time()
        tr = self._tracer
        if tr is not None and not self._outage_open:
            gap = t - self.sim.now
            if gap >= OUTAGE_GAP:
                self._outage_open = True
                tr.emit(LINK_OUTAGE, self.sim.now, link=self.name,
                        gap=(gap if t != float("inf") else None),
                        queued=len(self.queue))
        if t == float("inf"):
            self._service_event = None
            return
        self._service_event = self.sim.schedule_at(t, self._serve)

    def _serve(self) -> None:
        """Consume one delivery opportunity: up to 1500 bytes of packets."""
        self._service_event = None
        if self._outage_open:
            self._outage_open = False
            tr = self._tracer
            if tr is not None:
                tr.emit(LINK_RECOVER, self.sim.now, link=self.name,
                        queued=len(self.queue))
        self._index += 1
        budget = OPPORTUNITY_BYTES
        served_any = False
        while True:
            head = self.queue.peek()
            if head is None or head.size > budget:
                break
            packet = self.queue.pop(self.sim.now)
            if packet is None:
                break
            budget -= packet.size
            served_any = True
            self.delivered_packets += 1
            self.delivered_bytes += packet.size
            self._deliver_later(packet)
        if not served_any:
            # CoDel may drop everything it dequeues; a truly empty queue
            # simply wastes the opportunity.
            self.wasted_opportunities += 1
        if len(self.queue) > 0:
            self._arm_service()

    def _deliver_later(self, packet: Packet) -> None:
        if self.on_deliver is None:
            return
        callback = self.on_deliver
        self.sim.schedule(self._prop_delay, lambda p=packet: callback(p))

    # ------------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        return len(self.queue)


class WiredLink(Link):
    """A fixed-rate store-and-forward link with a finite drop-tail buffer."""

    def __init__(
        self,
        sim: Simulator,
        rate: float,
        queue: DropTailQueue,
        prop_delay: float = 0.010,
        on_deliver: Optional[DeliverCallback] = None,
        name: str = "wired",
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.rate = rate
        self.queue = queue
        self.prop_delay = prop_delay
        self.on_deliver = on_deliver
        self.name = name
        self._busy = False
        self.delivered_packets = 0
        self.delivered_bytes = 0
        #: Bytes of the packet currently in service (the auditor's byte
        #: conservation check needs it: a popped-but-undelivered packet
        #: is neither queued nor delivered).
        self._in_service_bytes = 0

    def enqueue(self, packet: Packet) -> bool:
        accepted = self.queue.push(packet, self.sim.now)
        if accepted and not self._busy:
            self._start_service()
        return accepted

    def _start_service(self) -> None:
        packet = self.queue.pop(self.sim.now)
        if packet is None:
            self._busy = False
            return
        self._busy = True
        self._in_service_bytes = packet.size
        service_time = packet.size / self.rate
        self.sim.schedule(service_time, lambda p=packet: self._finish(p))

    def _finish(self, packet: Packet) -> None:
        self._in_service_bytes = 0
        self.delivered_packets += 1
        self.delivered_bytes += packet.size
        if self.on_deliver is not None:
            callback = self.on_deliver
            self.sim.schedule(self.prop_delay, lambda p=packet: callback(p))
        if len(self.queue) > 0:
            self._start_service()
        else:
            self._busy = False

    @property
    def queue_length(self) -> int:
        return len(self.queue)
