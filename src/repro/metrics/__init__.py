"""Measurement: per-packet delay records and summary statistics.

The paper's headline metric pair is total average throughput vs the mean
and 95th-percentile one-way packet delay (the Sprout evaluation metric,
§5.1).  :class:`~repro.metrics.collector.DeliveryCollector` records every
unique segment's delivery at the receiver; :mod:`repro.metrics.stats`
reduces the records to the numbers the figures plot.
"""

from repro.metrics.collector import DeliveryCollector, DeliveryRecord
from repro.metrics.stats import (
    DelaySummary,
    delay_summary,
    jain_fairness,
    throughput_timeseries,
)

__all__ = [
    "DelaySummary",
    "DeliveryCollector",
    "DeliveryRecord",
    "delay_summary",
    "jain_fairness",
    "throughput_timeseries",
]
