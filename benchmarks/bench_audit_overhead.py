"""CPU overhead of the repro.debug invariant auditor.

Runs the Table-4 workload (the full Figure-7 algorithm line-up over the
ISP-A stationary trace) with auditing off and on and compares process
CPU time.  The auditor must stay an always-affordable switch: the
acceptance bound is <=15% on this workload, asserted loosely here
(<50%) because shared CI boxes are noisy.

Methodology notes, learned the hard way on a single-core box: wall
clock is hopeless under background load, so the measurement uses
``time.process_time``; repeats are interleaved (off/on/off/on...) so
drift hits both arms equally; the reported figure is the min-of-repeats
ratio, which discards GC and scheduler outliers.
"""

import time

from repro.experiments.algorithms import paper_algorithms
from repro.experiments.runner import run_single_flow
from repro.traces.presets import isp_trace

from _report import emit

DURATION = 10.0
REPEATS = 3


def _run_lineup(down, up, audit):
    start = time.process_time()
    for factory in paper_algorithms().values():
        run_single_flow(
            factory, down, up,
            duration=DURATION, measure_start=2.0, audit=audit,
        )
    return time.process_time() - start


def _measure():
    down = isp_trace("A", "stationary", duration=60.0)
    up = isp_trace("A", "stationary", duration=60.0, direction="uplink")
    plain, audited = [], []
    for _ in range(REPEATS):
        plain.append(_run_lineup(down, up, audit=False))
        audited.append(_run_lineup(down, up, audit=True))
    return plain, audited


def test_audit_overhead(benchmark):
    plain, audited = benchmark.pedantic(_measure, rounds=1, iterations=1)
    base, with_audit = min(plain), min(audited)
    ratio = with_audit / base
    lines = [
        f"{'mode':10s} {'min s':>8s} {'all repeats (s)':>30s}",
        f"{'plain':10s} {base:8.2f} {'  '.join(f'{t:.2f}' for t in plain):>30s}",
        f"{'audited':10s} {with_audit:8.2f} "
        f"{'  '.join(f'{t:.2f}' for t in audited):>30s}",
        f"overhead: {(ratio - 1) * 100:+.1f}% (min-of-{REPEATS} process time, "
        f"full line-up x {DURATION:.0f} sim-s)",
    ]
    emit("audit_overhead", lines)
    assert ratio < 1.5, f"auditor overhead {ratio:.2f}x exceeds the loose bound"
