"""Figure 14: downstream performance under a saturated uplink.

A concurrent upstream CUBIC flow fills the uplink buffer, delaying the
downstream flow's ACKs.  cwnd-based downloads stall — their ACK clock
dries up — while one-way-delay-driven rate-based senders (PropRate, RRE)
keep the downlink busy.  BBR also does well (its pacing is not
ACK-clocked either).
"""

from repro.experiments.algorithms import paper_algorithms
from repro.experiments.scenarios import uplink_congestion
from repro.traces.presets import isp_trace

from _report import DURATION, MEASURE_START, emit, flow_row


def _run():
    down = isp_trace("A", "stationary", duration=60.0)
    up = isp_trace("A", "stationary", duration=60.0, direction="uplink")
    results = {}
    for name, factory in paper_algorithms().items():
        flows = uplink_congestion(
            factory, down, up, duration=DURATION, measure_start=MEASURE_START,
            name=name,
        )
        results[name] = flows[name]
    return results


def test_fig14_congested_uplink(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [flow_row(name, r) for name, r in results.items()]
    emit("fig14_uplink", lines)

    pr_h, rre = results["PR(H)"], results["RRE"]
    cubic = results["CUBIC"]

    # Rate-based senders keep the downlink utilised despite ACK delays;
    # this is the problem RRE was built for and PropRate inherits.  The
    # ACK-clocked flows collapse by orders of magnitude (their delay
    # statistics are then meaningless — they barely deliver packets).
    best = max(r.throughput for r in results.values())
    assert pr_h.throughput > 0.4 * best
    assert rre.throughput > 0.4 * best
    assert pr_h.throughput > 10 * cubic.throughput
    # The one-way data path stays at a healthy delay for PropRate.
    assert pr_h.delay.mean < 0.150
