"""JSONL trace sink with size-based rotation.

Records are written one JSON object per line.  When the live file
exceeds ``rotate_bytes`` it is renamed to ``<path>.1``, ``<path>.2``,
... (ascending = chronological) and a fresh file is opened at the
original path, so a bounded tail is always at the expected location
while nothing is lost.  ``iter_trace_files`` returns the rotated
series in write order for readers.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.obs.events import FORMAT, META

#: Default rotation threshold; generous for simulation traces (a 40 s
#: single-flow run emits a few MB at the default sampling interval).
ROTATE_BYTES = 64 * 1024 * 1024


def encode(record: Dict[str, Any]) -> str:
    """One-line compact JSON; non-JSON values degrade to ``repr``."""
    return json.dumps(record, separators=(",", ":"), default=repr)


class JsonlSink:
    """Append-only JSONL writer with rotation."""

    def __init__(self, path: Union[str, Path], rotate_bytes: int = ROTATE_BYTES,
                 header: bool = True) -> None:
        self.path = str(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self.rotate_bytes = rotate_bytes
        self.rotations = 0
        self._written = 0
        self._closed = False
        self._fh = open(self.path, "w", encoding="utf-8")
        if header:
            self.write({"t": 0.0, "kind": META, "format": FORMAT,
                        "pid": os.getpid()})

    def write(self, record: Dict[str, Any]) -> None:
        self.write_line(encode(record))

    def write_line(self, line: str) -> None:
        """Append one already-encoded JSON line (the batch-merge path)."""
        self._fh.write(line)
        self._fh.write("\n")
        self._written += len(line) + 1
        if self.rotate_bytes and self._written >= self.rotate_bytes:
            self._rotate()

    def _rotate(self) -> None:
        self._fh.close()
        self.rotations += 1
        os.replace(self.path, f"{self.path}.{self.rotations}")
        self._fh = open(self.path, "w", encoding="utf-8")
        self._written = 0

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._fh.close()


def iter_trace_files(path: Union[str, Path]) -> List[str]:
    """All files of a possibly-rotated trace, oldest first.

    Only pure-numeric suffixes count as rotations (``x.jsonl.1``);
    worker part files (``x.jsonl.part0003.jsonl``) are unrelated.
    """
    path = str(path)
    rotated = []
    parent = os.path.dirname(path) or "."
    base = os.path.basename(path)
    if os.path.isdir(parent):
        for name in os.listdir(parent):
            if name.startswith(base + "."):
                suffix = name[len(base) + 1:]
                if suffix.isdigit():
                    rotated.append((int(suffix), os.path.join(parent, name)))
    files = [p for _, p in sorted(rotated)]
    if os.path.exists(path):
        files.append(path)
    return files
