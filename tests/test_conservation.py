"""Flow-conservation property tests across the whole substrate.

Invariants that must hold for ANY workload: every packet offered to a
link is eventually delivered, still queued, in flight on the propagation
leg, or counted as dropped — never duplicated, never vanished.
"""

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator
from repro.sim.link import CellularLink, WiredLink
from repro.sim.packet import make_data_packet
from repro.sim.queues import DropTailQueue
from repro.traces.generator import constant_rate_trace


@st.composite
def _offered_load(draw):
    """(arrival times, capacity pkt/s, queue capacity)."""
    n = draw(st.integers(min_value=1, max_value=120))
    arrivals = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=4.0),
                min_size=n, max_size=n,
            )
        )
    )
    capacity = draw(st.sampled_from([20, 100, 400]))
    qcap = draw(st.sampled_from([2, 10, 1000]))
    return arrivals, capacity, qcap


class TestCellularConservation:
    @given(_offered_load())
    @settings(max_examples=60, deadline=None)
    def test_every_packet_accounted_for(self, load):
        arrivals, capacity_pps, qcap = load
        sim = Simulator()
        trace = constant_rate_trace(capacity_pps * 1500.0, 10.0)
        delivered = []
        queue = DropTailQueue(capacity=qcap)
        link = CellularLink(
            sim, trace, queue, prop_delay=0.01,
            on_deliver=lambda p: delivered.append(p.uid),
        )
        offered = []
        for i, t in enumerate(arrivals):
            pkt = make_data_packet(flow_id=0, seq=i, now=t)
            offered.append(pkt.uid)
            sim.schedule_at(t, lambda p=pkt: link.enqueue(p))
        sim.run(until=30.0)

        assert len(delivered) == len(set(delivered)), "duplicated packet"
        assert len(delivered) + queue.drops == len(offered)
        assert link.delivered_packets == len(delivered)

    @given(_offered_load())
    @settings(max_examples=40, deadline=None)
    def test_fifo_order_preserved(self, load):
        arrivals, capacity_pps, qcap = load
        sim = Simulator()
        trace = constant_rate_trace(capacity_pps * 1500.0, 10.0)
        delivered = []
        link = CellularLink(
            sim, trace, DropTailQueue(capacity=qcap), prop_delay=0.0,
            on_deliver=lambda p: delivered.append(p.seq),
        )
        for i, t in enumerate(arrivals):
            sim.schedule_at(
                t, lambda i=i, t=t: link.enqueue(make_data_packet(0, i, t))
            )
        sim.run(until=30.0)
        assert delivered == sorted(delivered)


class TestWiredConservation:
    @given(_offered_load())
    @settings(max_examples=40, deadline=None)
    def test_every_packet_accounted_for(self, load):
        arrivals, capacity_pps, qcap = load
        sim = Simulator()
        delivered = []
        queue = DropTailQueue(capacity=qcap)
        link = WiredLink(
            sim, rate=capacity_pps * 1500.0, queue=queue, prop_delay=0.005,
            on_deliver=lambda p: delivered.append(p.uid),
        )
        offered = 0
        for i, t in enumerate(arrivals):
            offered += 1
            sim.schedule_at(
                t, lambda i=i, t=t: link.enqueue(make_data_packet(0, i, t))
            )
        sim.run(until=60.0)
        assert len(delivered) + queue.drops == offered


class TestEndToEndConservation:
    @given(st.integers(min_value=1, max_value=40),
           st.sampled_from([5, 50, 2000]))
    @settings(max_examples=30, deadline=None)
    def test_transfer_accounting(self, total, buffer_packets):
        """Across a full TCP transfer: receiver-unique segments equals
        the backlog; sender transmissions equal deliveries + drops."""
        from repro.experiments.runner import (
            FlowSpec, cellular_path_config, run_experiment,
        )
        from repro.tcp.congestion import NewReno

        trace = constant_rate_trace(300_000.0, 60.0)
        config = cellular_path_config(trace, buffer_packets=buffer_packets)
        result = run_experiment(
            config,
            [FlowSpec(cc_factory=NewReno, total_segments=total,
                      measure_start=0.0)],
            duration=50.0,
            measure_start=0.0,
        )[0]
        sender = result.sender
        assert sender.complete
        assert sender.snd_una == total
        collector = result.collector
        assert len(collector) == total  # unique segments delivered once
        assert (
            sender.segments_sent
            == len(collector) + collector.duplicates + result.bottleneck_drops
        )
