"""Tests for the analytical model (paper §3, Eqs. 1-8)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model import (
    DEFAULT_LMAX_HEADROOM,
    KD_MAX,
    KD_MIN,
    KF_MAX,
    KF_MIN,
    Regime,
    average_buffer_delay,
    crossover_buffer_delay,
    derive_parameters,
    emptied_regime_utilization,
    max_buffer_delay,
    params_for_threshold,
    utilization,
)

RTT = 0.040


class TestEquation1:
    def test_full_utilisation_when_never_empty(self):
        assert utilization(tf=1.0, td=1.0, te=0.0) == 1.0

    def test_partial_utilisation(self):
        assert utilization(tf=1.0, td=1.0, te=2.0) == pytest.approx(0.5)

    def test_rejects_negative_durations(self):
        with pytest.raises(ValueError):
            utilization(-1.0, 1.0, 0.0)

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            utilization(0.0, 0.0, 0.0)


class TestEquation2:
    def test_buffer_full_average(self):
        avg = average_buffer_delay(0.06, 0.02, 1.0, Regime.BUFFER_FULL)
        assert avg == pytest.approx(0.04)

    def test_buffer_emptied_average(self):
        avg = average_buffer_delay(0.06, 0.0, 0.5, Regime.BUFFER_EMPTIED)
        assert avg == pytest.approx(0.015)


class TestEquations4to6:
    def test_crossover_is_half_headroom(self):
        assert crossover_buffer_delay(0.12, RTT) == pytest.approx(0.04)

    def test_crossover_rejects_lmax_below_rtt(self):
        with pytest.raises(ValueError):
            crossover_buffer_delay(0.03, RTT)

    def test_emptied_utilisation_fourth_root(self):
        # U = (2T / (Lmax - RTT))^(1/4)
        u = emptied_regime_utilization(0.02, RTT + 0.08, RTT)
        assert u == pytest.approx(0.5 ** 0.25)

    def test_emptied_utilisation_clipped_at_one(self):
        assert emptied_regime_utilization(0.2, RTT + 0.08, RTT) == 1.0

    def test_dmax_cubic_in_utilisation(self):
        # Eq. 4: Dmax = U^3 (Lmax - RTT)
        assert max_buffer_delay(0.5, RTT + 0.08, RTT) == pytest.approx(0.01)
        assert max_buffer_delay(1.0, RTT + 0.08, RTT) == pytest.approx(0.08)

    def test_dmax_rejects_bad_utilisation(self):
        with pytest.raises(ValueError):
            max_buffer_delay(1.5, 0.12, RTT)


class TestEquation7BufferFull:
    def test_paper_pr_h_configuration(self):
        """PR(H): t̄=80 ms with the default L_max is the buffer-full regime."""
        params = derive_parameters(0.080, RTT)
        assert params.regime is Regime.BUFFER_FULL
        assert params.utilization == 1.0
        # Eq. 7 with T = 80 ms, RTT = 40 ms:
        assert params.kf == pytest.approx((1.5 * 0.08 + RTT) / (0.08 + RTT))
        assert params.kd == pytest.approx((0.5 * 0.08 + RTT) / (0.08 + RTT))

    def test_waveform_geometry(self):
        """Figure 3(e): Dmax - Dmin = t̄ and Dmin = t̄/2."""
        params = derive_parameters(0.080, RTT)
        assert params.predicted_dmax - params.predicted_dmin == pytest.approx(0.08)
        assert params.predicted_dmin == pytest.approx(0.04)
        assert params.predicted_avg_tbuff == pytest.approx(0.08)

    def test_kf_above_one_kd_below_one(self):
        params = derive_parameters(0.080, RTT)
        assert params.kf > 1.0
        assert params.kd < 1.0


class TestEquation8BufferEmptied:
    def test_paper_pr_l_configuration(self):
        """PR(L): t̄=20 ms is the buffer-emptied regime (U < 1)."""
        params = derive_parameters(0.020, RTT)
        assert params.regime is Regime.BUFFER_EMPTIED
        assert params.utilization == pytest.approx(0.5 ** 0.25, rel=1e-6)
        assert params.predicted_dmin == 0.0

    def test_hand_computed_values(self):
        """Worked example: T=20ms, RTT=40ms, Lmax=120ms."""
        params = derive_parameters(0.020, RTT, lmax=0.120)
        u = (2 * 0.02 / 0.08) ** 0.25
        kf = ((2.0 / u) * 0.02 + RTT) / (0.02 + RTT)
        assert params.kf == pytest.approx(kf)
        assert params.predicted_dmax == pytest.approx(u ** 3 * 0.08)
        assert 0.0 < params.kd < 1.0

    def test_average_tbuff_half_u4_headroom(self):
        """Eq. 5: t̄ = U^4 (Lmax - RTT) / 2."""
        params = derive_parameters(0.020, RTT)
        predicted = 0.5 * params.utilization ** 4 * (params.lmax - RTT)
        assert params.predicted_avg_tbuff == pytest.approx(predicted)

    def test_crossover_target_is_buffer_full(self):
        """PR(M) at exactly the crossover operates in the full regime."""
        params = derive_parameters(0.040, RTT)
        assert params.regime is Regime.BUFFER_FULL


class TestDeriveParameters:
    def test_default_lmax_headroom(self):
        params = derive_parameters(0.040, RTT)
        assert params.lmax == pytest.approx(RTT + DEFAULT_LMAX_HEADROOM)

    def test_target_capped_at_headroom(self):
        params = derive_parameters(0.500, RTT, lmax=RTT + 0.08)
        assert params.target_tbuff <= 0.08 + 1e-12

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            derive_parameters(0.0, RTT)
        with pytest.raises(ValueError):
            derive_parameters(0.02, 0.0)
        with pytest.raises(ValueError):
            derive_parameters(0.02, RTT, lmax=RTT)

    def test_params_for_threshold_keeps_target_regime(self):
        params = params_for_threshold(0.010, RTT, 0.080, RTT + 0.08)
        assert params.regime is Regime.BUFFER_FULL  # regime from target
        params = params_for_threshold(0.030, RTT, 0.020, RTT + 0.08)
        assert params.regime is Regime.BUFFER_EMPTIED

    @given(
        target=st.floats(min_value=0.002, max_value=0.3),
        rtt=st.floats(min_value=0.005, max_value=0.5),
        headroom=st.floats(min_value=0.01, max_value=0.5),
    )
    @settings(max_examples=300, deadline=None)
    def test_parameters_always_sane(self, target, rtt, headroom):
        params = derive_parameters(target, rtt, lmax=rtt + headroom)
        assert KF_MIN <= params.kf <= KF_MAX
        assert KD_MIN <= params.kd <= KD_MAX
        assert params.kf > 1.0 > params.kd
        assert 0.0 < params.utilization <= 1.0
        assert params.predicted_dmax >= params.predicted_dmin >= 0.0
        assert not math.isnan(params.predicted_avg_tbuff)
