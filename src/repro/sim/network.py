"""Duplex path wiring: hosts on either side of a bottleneck pair.

The evaluation topology is the Cellsim one: a sender-side host, a forward
(downlink) bottleneck, a receiver, and a reverse (uplink) bottleneck for
the ACK stream.  Several flows may share the same path; packets are
demultiplexed to their endpoints by ``flow_id``.

Both directions may independently be trace-driven cellular links or
constant-rate wired links, which covers every scenario in the paper:

* Figures 7–11: cellular downlink + cellular uplink.
* Figure 13: wired both ways with per-region RTTs.
* Figure 14: cellular downlink with a CUBIC upload saturating the uplink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.sim.engine import Simulator
from repro.sim.link import CellularLink, Link, WiredLink
from repro.sim.packet import Packet, PacketBatch
from repro.sim.queues import CoDelQueue, DropTailQueue, DEFAULT_BUFFER_PACKETS
from repro.traces.trace import Trace

Sink = Callable[[Packet], None]
BatchSink = Callable[[PacketBatch], None]


@dataclass
class LinkConfig:
    """One direction of a path.

    Exactly one of ``trace`` (cellular) or ``rate`` (wired, bytes/s) must
    be set.  ``prop_delay`` is the one-way propagation delay of this
    direction; the paper's emulation uses 20 ms per direction.
    """

    trace: Optional[Trace] = None
    rate: Optional[float] = None
    prop_delay: float = 0.020
    buffer_packets: int = DEFAULT_BUFFER_PACKETS
    aqm: str = "droptail"  # or "codel"
    codel_target: float = 0.005
    codel_interval: float = 0.100

    def validate(self) -> None:
        if (self.trace is None) == (self.rate is None):
            raise ValueError("set exactly one of trace or rate")
        if self.aqm not in ("droptail", "codel"):
            raise ValueError(f"unknown AQM {self.aqm!r}")


@dataclass
class PathConfig:
    """Both directions of a duplex path."""

    downlink: LinkConfig = field(default_factory=LinkConfig)
    uplink: LinkConfig = field(default_factory=LinkConfig)


class DuplexPath:
    """A shared bidirectional bottleneck pair with per-flow demux.

    Hosts register per-flow sinks with :meth:`attach_flow`, then inject
    packets with :meth:`send_forward` (data direction) and
    :meth:`send_reverse` (ACK direction).  Drops are counted per flow.
    """

    def __init__(self, sim: Simulator, config: PathConfig) -> None:
        self.sim = sim
        self.config = config
        config.downlink.validate()
        config.uplink.validate()
        self._forward_sinks: Dict[int, Sink] = {}
        self._reverse_sinks: Dict[int, Sink] = {}
        self._forward_batch_sinks: Dict[int, BatchSink] = {}
        self._reverse_batch_sinks: Dict[int, BatchSink] = {}
        self.forward_drops: Dict[int, int] = {}
        self.reverse_drops: Dict[int, int] = {}
        self.forward_link = self._build_link(
            config.downlink, self._deliver_forward, "downlink"
        )
        self.reverse_link = self._build_link(
            config.uplink, self._deliver_reverse, "uplink"
        )
        if isinstance(self.forward_link, CellularLink):
            self.forward_link.on_deliver_batch = self._deliver_forward_batch
            # Any loop-back from a forward delivery into the forward
            # queue crosses the reverse direction first (DESIGN.md §9),
            # so the reverse link's propagation delay bounds the cascade.
            self.forward_link.cascade_partner = self.reverse_link
        if isinstance(self.reverse_link, CellularLink):
            self.reverse_link.on_deliver_batch = self._deliver_reverse_batch
            self.reverse_link.cascade_partner = self.forward_link

    # ------------------------------------------------------------------
    def _build_link(self, cfg: LinkConfig, deliver: Sink, name: str) -> Link:
        def on_drop(packet: Packet, _name: str = name) -> None:
            drops = (
                self.forward_drops if _name == "downlink" else self.reverse_drops
            )
            drops[packet.flow_id] = drops.get(packet.flow_id, 0) + 1

        if cfg.aqm == "codel":
            queue: DropTailQueue = CoDelQueue(
                capacity=cfg.buffer_packets,
                target=cfg.codel_target,
                interval=cfg.codel_interval,
                on_drop=on_drop,
            )
        else:
            queue = DropTailQueue(capacity=cfg.buffer_packets, on_drop=on_drop)

        if cfg.trace is not None:
            return CellularLink(
                self.sim,
                cfg.trace,
                queue,
                prop_delay=cfg.prop_delay,
                on_deliver=deliver,
                name=name,
            )
        assert cfg.rate is not None
        return WiredLink(
            self.sim,
            cfg.rate,
            queue,
            prop_delay=cfg.prop_delay,
            on_deliver=deliver,
            name=name,
        )

    # ------------------------------------------------------------------
    def attach_flow(
        self,
        flow_id: int,
        forward_sink: Sink,
        reverse_sink: Sink,
        forward_batch_sink: Optional[BatchSink] = None,
        reverse_batch_sink: Optional[BatchSink] = None,
    ) -> None:
        """Register the endpoints of one flow.

        ``forward_sink`` receives packets that traversed the downlink
        (the receiver); ``reverse_sink`` receives packets that traversed
        the uplink (the sender, consuming ACKs).  The optional batch
        sinks receive a whole same-instant :class:`PacketBatch` at once
        on the delivery fast path; endpoints without one get per-packet
        calls either way.
        """
        if flow_id in self._forward_sinks:
            raise ValueError(f"flow {flow_id} already attached")
        self._forward_sinks[flow_id] = forward_sink
        self._reverse_sinks[flow_id] = reverse_sink
        if forward_batch_sink is not None:
            self._forward_batch_sinks[flow_id] = forward_batch_sink
        if reverse_batch_sink is not None:
            self._reverse_batch_sinks[flow_id] = reverse_batch_sink
        self.forward_drops.setdefault(flow_id, 0)
        self.reverse_drops.setdefault(flow_id, 0)

    def send_forward(self, packet: Packet) -> bool:
        """Inject a packet in the data direction; False if dropped."""
        return self.forward_link.enqueue(packet)

    def send_reverse(self, packet: Packet) -> bool:
        """Inject a packet in the ACK direction; False if dropped."""
        return self.reverse_link.enqueue(packet)

    def _deliver_forward(self, packet: Packet) -> None:
        sink = self._forward_sinks.get(packet.flow_id)
        if sink is not None:
            sink(packet)

    def _deliver_reverse(self, packet: Packet) -> None:
        sink = self._reverse_sinks.get(packet.flow_id)
        if sink is not None:
            sink(packet)

    def _deliver_forward_batch(self, batch: PacketBatch) -> None:
        self._demux_batch(batch, self._forward_sinks, self._forward_batch_sinks)

    def _deliver_reverse_batch(self, batch: PacketBatch) -> None:
        self._demux_batch(batch, self._reverse_sinks, self._reverse_batch_sinks)

    def _demux_batch(
        self,
        batch: PacketBatch,
        sinks: Dict[int, Sink],
        batch_sinks: Dict[int, BatchSink],
    ) -> None:
        """Split a delivery batch into per-flow contiguous runs.

        Delivery order within the batch is the queue order, so one pass
        over the packets preserves per-flow ordering exactly as the
        scalar per-packet demux would.
        """
        pkts = batch.packets
        n = len(pkts)
        i = 0
        while i < n:
            fid = pkts[i].flow_id
            j = i + 1
            while j < n and pkts[j].flow_id == fid:
                j += 1
            bsink = batch_sinks.get(fid)
            if bsink is not None and j - i > 1:
                bsink(batch if i == 0 and j == n else batch.slice(i, j))
            else:
                sink = sinks.get(fid)
                if sink is not None:
                    for k in range(i, j):
                        sink(pkts[k])
            i = j

    # ------------------------------------------------------------------
    @property
    def min_rtt(self) -> float:
        """Propagation-only round-trip time of the path."""
        return self.config.downlink.prop_delay + self.config.uplink.prop_delay
