"""TCP bulk-data sender with pluggable congestion control.

Implements both packet-regulation mechanisms compared in the paper's
Figure 5:

* the **cwnd-based** mechanism — ACK-clocked, transmitting whenever the
  SACK-aware pipe estimate is below the algorithm's window (RFC 6675
  style), with fast retransmit on three duplicate ACKs and RFC 6298
  retransmission timeouts;
* the **rate-based** mechanism the paper adds to the kernel — a 1 ms
  pacing tick converts the algorithm's rate into whole packets, rounding
  up in Buffer Fill and down in Buffer Drain/Monitor, carrying the exact
  byte deficit across ticks, and serving algorithm-requested probe bursts
  (paper §4.3).  Retransmissions share the paced stream ("simply ignoring
  the cwnd and continue transmitting at the specified rate").

Loss handling is SACK-scoreboard based: a segment is marked lost once
three SACKed segments lie above it, and a retransmission timeout marks
everything outstanding lost and returns the algorithm to Slow Start.
The scoreboard itself (:mod:`repro.tcp.scoreboard`) stores per-segment
state as disjoint interval runs, so every recovery operation here —
SACK folds, loss marks, cumulative-ACK accounting, RTO requeues — is
O(loss runs) per ACK rather than O(window segments).
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Optional

from repro.obs import (
    CC_LOSS,
    CC_LOSS_RUNS,
    CC_RECOVERY,
    CC_RTO,
    current_profiler,
    current_tracer,
)
from repro.sim.engine import Event, Simulator
from repro.sim.packet import (
    DATA_PACKET_BYTES,
    MSS,
    Packet,
    PacketBatch,
    make_data_packet,
)
from repro.tcp.application import Application, BulkApplication
from repro.tcp.congestion.base import (
    AckSample,
    CongestionControl,
    RateCongestionControl,
    WindowCongestionControl,
)
from repro.tcp.rto import RtoEstimator
from repro.tcp.scoreboard import SenderScoreboard

#: Duplicate-ACK / SACK reordering threshold (RFC 6675 DupThresh).
DUPTHRESH = 3

#: Pacing tick interval — the kernel-tick analogue of paper §4.3.
DEFAULT_TICK = 0.001

#: Safety cap on packets released by a single pacing tick.
MAX_TICK_PACKETS = 500

PacketSink = Callable[[Packet], None]


class TcpSender:
    """One flow's sending endpoint with an infinite (or finite) backlog.

    Parameters
    ----------
    sim:
        Event loop.
    flow_id:
        Flow identifier stamped on outgoing segments.
    cc:
        The congestion-control module (window- or rate-based).
    send_packet:
        Callable injecting a data packet into the forward path.
    total_segments:
        Backlog size; None means an iperf-style unbounded transfer.
        Shorthand for ``application=BulkApplication(total_segments)``.
    application:
        A :class:`~repro.tcp.application.Application` supplying data
        over time (CBR/on-off sources make the transport app-limited).
        Overrides ``total_segments`` when given.
    tick:
        Pacing-tick interval for rate-based algorithms.
    on_complete:
        Called once when a finite transfer is fully acknowledged.
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        cc: CongestionControl,
        send_packet: PacketSink,
        total_segments: Optional[int] = None,
        application: Optional[Application] = None,
        tick: float = DEFAULT_TICK,
        on_complete: Optional[Callable[[], None]] = None,
        packet_bytes: int = DATA_PACKET_BYTES,
    ) -> None:
        self.sim = sim
        self.flow_id = flow_id
        self.cc = cc
        self.send_packet = send_packet
        self.application = (
            application
            if application is not None
            else BulkApplication(total_segments)
        )
        self.total_segments = self.application.total()
        self.tick = tick
        self.on_complete = on_complete
        self._packet_bytes = packet_bytes

        # Sequence state (segment indices).  Per-segment recovery state
        # lives in the run-based scoreboard; the sender keeps only the
        # aggregate counters it derives from scoreboard transitions.
        self.snd_una = 0
        self.next_seq = 0
        self.scoreboard = SenderScoreboard()
        #: SACK blocks known fully folded into the scoreboard.  A block
        #: once fully folded is a no-op forever (SACKED/CANCELLED tags
        #: never revert and the cumulative-ACK clip only grows), so
        #: membership lets repeated blocks skip the scoreboard entirely.
        #: Bounded: cleared wholesale when it reaches 64 entries.
        self._sack_noop: set = set()
        self._highest_sacked = 0
        self._pipe = 0
        self._loss_ptr = 0  # every seq below is acked, SACKed or marked lost
        self._dupacks = 0
        self._recovery_point: Optional[int] = None
        self._window_based = isinstance(cc, WindowCongestionControl)

        # Estimators and timers.
        self.rto_estimator = RtoEstimator()
        self._rto_event: Optional[Event] = None
        self._rto_deadline = 0.0
        self._app_poll_event: Optional[Event] = None
        self._tick_event: Optional[Event] = None
        self._tick_passive = False  # on_tick unobservable while idle
        self._tick_next = 0.0       # next tick time while suspended
        self._budget = 0.0  # paced byte budget (may dip negative: deficit)

        # Counters.
        self.delivered_total = 0
        self.lost_total = 0
        self.segments_sent = 0
        self.retransmissions = 0
        self.rto_count = 0
        self.acks_received = 0
        #: Loss marks cancelled by a later SACK (the retransmission
        #: would have been spurious; it was suppressed in time).
        self.spurious_marks = 0
        self.started = False
        self.complete = False

        # Telemetry: ambient tracer captured at construction; the ACK
        # hot path pays one None check when tracing is off.  Per-ACK
        # processing cost is sampled 1-in-64 to bound the probe cost.
        self._tracer = current_tracer()
        self._ack_cost = (
            self._tracer.metrics.histogram(
                f"flow{flow_id}.timing.ack_cost_us")
            if self._tracer is not None else None
        )
        # Profiling: shadow the ACK entry points with timed wrappers so
        # the whole ACK/scoreboard path is attributed to one phase.
        # The runner passes these *bound attributes* to attach_flow
        # after construction, so shadowing here covers every call; with
        # profiling off the plain methods stay untouched.
        prof = current_profiler()
        if prof is not None:
            self.on_ack_packet = prof.wrap(  # type: ignore[method-assign]
                "ack.scoreboard", self.on_ack_packet)
            self.on_ack_batch = prof.wrap(  # type: ignore[method-assign]
                "ack.scoreboard", self.on_ack_batch)

    # ------------------------------------------------------------------
    # HostView protocol (what the CC module may observe)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def mss(self) -> int:
        return MSS

    @property
    def packet_bytes(self) -> int:
        return self._packet_bytes

    @property
    def srtt(self) -> Optional[float]:
        return self.rto_estimator.srtt

    @property
    def min_rtt(self) -> float:
        return self.rto_estimator.min_rtt

    @property
    def inflight(self) -> int:
        return self._pipe

    @property
    def in_recovery(self) -> bool:
        return self._recovery_point is not None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin transmitting (call once; may be scheduled)."""
        if self.started:
            raise RuntimeError("sender already started")
        self.started = True
        self.cc.bind(self)
        self.cc.on_connection_start()
        if self.cc.is_rate_based:
            cc = self.cc
            self._tick_passive = (
                type(cc).on_tick is RateCongestionControl.on_tick
                or cc.idle_tick_safe
            )
            self._tick_event = self.sim.schedule(0.0, self._tick_fire)
        else:
            self._fill_window()

    def stop(self) -> None:
        """Halt all activity (end of an experiment)."""
        self.complete = True
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None
        if self._app_poll_event is not None:
            self._app_poll_event.cancel()
            self._app_poll_event = None

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def _has_new_data(self) -> bool:
        produced = self.application.produced(self.sim.now)
        if produced is not None and self.next_seq >= produced:
            return False
        return self.total_segments is None or self.next_seq < self.total_segments

    def _send_one(self) -> bool:
        """Transmit one segment: retransmissions first, then new data."""
        return self._send_many(1) > 0

    def _send_many(self, budget: int) -> int:
        """Transmit up to ``budget`` segments; returns how many left.

        Retransmissions go first (lowest sequence first), claimed from
        the scoreboard a whole pending run at a time, then new data.
        The per-packet transmit sequence is identical to calling
        ``_send_one`` ``budget`` times — only the scoreboard bookkeeping
        is batched.
        """
        sent = 0
        board = self.scoreboard
        while sent < budget:
            run = board.take_pending(self.snd_una, budget - sent)
            if run is None:
                break
            for seq in range(run[0], run[1]):
                self._transmit(seq, retransmit=True)
            sent += run[1] - run[0]
        if sent < budget and self._has_new_data():
            # Batch the new-data budget: the application/backlog limits
            # are constant within this call, so computing the count once
            # transmits exactly the segments the per-packet loop would.
            n = budget - sent
            produced = self.application.produced(self.sim.now)
            if produced is not None and produced - self.next_seq < n:
                n = produced - self.next_seq
            if self.total_segments is not None \
                    and self.total_segments - self.next_seq < n:
                n = self.total_segments - self.next_seq
            for _ in range(n):
                seq = self.next_seq
                self.next_seq = seq + 1
                self._transmit(seq, retransmit=False)
            sent += n
        return sent

    def _transmit(self, seq: int, retransmit: bool) -> None:
        packet = make_data_packet(
            flow_id=self.flow_id,
            seq=seq,
            now=self.sim.now,
            retransmit=retransmit,
            size=self._packet_bytes,
        )
        self._pipe += 1
        self.segments_sent += 1
        if retransmit:
            self.retransmissions += 1
        self.cc.on_packet_sent(seq, self.sim.now, retransmit)
        if self._rto_event is None:
            self._arm_rto()
        self.send_packet(packet)

    def _fill_window(self) -> None:
        """cwnd-based dispatch: send while the pipe is below the window."""
        cc = self.cc
        if not isinstance(cc, WindowCongestionControl):
            return
        limit = int(cc.cwnd)
        if self._pipe < limit:
            # Each transmit adds exactly one to the pipe, so a single
            # batched call with the remaining budget is equivalent to
            # the old send-one-while-below-limit loop.
            self._send_many(limit - self._pipe)
        # An app-limited, ACK-clocked sender can stall entirely: with
        # nothing in flight there are no ACKs to clock out data the
        # application produces later.  Poll for new production.
        if (
            self._pipe == 0
            and not self.complete
            and not self.scoreboard.has_pending
            and not self._has_new_data()
            and self.application.produced(self.sim.now) is not None
            and (
                self.total_segments is None
                or self.next_seq < self.total_segments
            )
        ):
            if self._app_poll_event is None:
                self._app_poll_event = self.sim.schedule(0.01, self._app_poll)

    def _app_poll(self) -> None:
        self._app_poll_event = None
        if not self.complete:
            self._fill_window()

    def _tick_fire(self) -> None:
        """Pacing-tick heartbeat: re-arm (reusing the fired heap entry),
        then run one tick.  Re-arming *before* the tick preserves event
        ordering: the next tick's seq precedes anything this tick
        schedules at the same instant."""
        event = self._tick_event
        if event is None:
            return
        self._tick_event = self.sim.reschedule(event, self.tick)
        self._on_tick()

    def _suspend_tick_if_idle(self, cc: RateCongestionControl) -> None:
        """Park the pacing tick while ticks are provably no-ops.

        Requires an ``idle_tick_safe`` (or non-overridden) ``on_tick``,
        zero pacing rate, no pending probe burst, and a byte budget too
        small to release a packet under the current rounding mode.  Under
        those conditions only an ACK or an RTO can change the sender's
        state, and both resume the tick on its exact phase — so the
        simulation is bit-identical with or without the suspension.
        """
        if (
            self._tick_passive
            and cc.pacing_rate <= 0.0
            and cc.pending_burst == 0
            and (
                self._budget <= 1e-9
                if cc.round_mode == "up"
                else self._budget < self._packet_bytes
            )
        ):
            event = self._tick_event
            if event is not None:
                self._tick_next = event[0]
                event.cancel()
                self._tick_event = None

    def wake(self) -> None:
        """Resume a suspended pacing tick after an out-of-band control
        change.

        ACKs and RTOs — the two native resume points — cover every way
        a *native* algorithm can raise its rate from idle.  An external
        policy (:mod:`repro.tcp.congestion.policy`) can do it between
        ACKs, so its actions call here; the phase-exact reschedule in
        :meth:`_resume_tick` keeps the run bit-identical to one where
        the tick never suspended.
        """
        self._resume_tick()

    def _resume_tick(self) -> None:
        """Reschedule a suspended pacing tick at its next phase point.

        The float chain ``t += tick`` reproduces exactly the times the
        periodic re-arm would have produced had the tick kept firing.
        """
        if self._tick_event is not None or not self.cc.is_rate_based:
            return
        if self.complete or not self.started:
            return
        t = self._tick_next
        tick = self.tick
        now = self.sim.now
        while t < now:
            t += tick
        self._tick_event = self.sim.schedule_at(t, self._tick_fire)

    def _on_tick(self) -> None:
        """Rate-based dispatch: one pacing tick (paper §4.3)."""
        if self.complete:
            return
        cc = self.cc
        assert isinstance(cc, RateCongestionControl)
        cc.on_tick(self.sim.now)

        burst = cc.take_burst()
        sent_burst = self._send_many(burst)
        if sent_burst < burst:
            # Application-limited: keep the remaining probe credits for
            # later ticks instead of silently discarding them (a CBR
            # source may not have produced the data yet).
            cc.request_burst(burst - sent_burst)

        rate = max(0.0, cc.pacing_rate)
        self._budget += rate * self.tick
        count = int(self._budget // self._packet_bytes)
        remainder = self._budget - count * self._packet_bytes
        if cc.round_mode == "up" and remainder > 1e-9:
            count += 1
        count = min(count, MAX_TICK_PACKETS)
        sent = self._send_many(count)
        self._budget -= sent * self._packet_bytes
        if sent < count:
            # Application-limited: do not accumulate credit.
            self._budget = min(self._budget, float(self._packet_bytes))
        self._suspend_tick_if_idle(cc)

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def on_ack_batch(self, batch: PacketBatch) -> None:
        """Consume a same-instant ACK batch from the delivery fast path.

        ACK processing is inherently sequential (each ACK advances
        recovery state the next one depends on), so this is a plain
        loop over :meth:`on_ack_packet` — the win is upstream, where
        the batch replaced per-packet delivery events.
        """
        on_ack = self.on_ack_packet
        for packet in batch.packets:
            on_ack(packet)

    def on_ack_packet(self, packet: Packet) -> None:
        """Handle an ACK arriving from the reverse path."""
        if self.complete or not self.started:
            return
        if self._tick_event is None and self.cc.is_rate_based:
            self._resume_tick()
        cost = self._ack_cost
        t0 = (
            perf_counter()
            if cost is not None and (self.acks_received & 63) == 0
            else None
        )
        self.acks_received += 1
        now = self.sim.now
        ack = packet.ack

        newly_acked = max(0, ack - self.snd_una)
        newly_sacked = self._process_sacks(packet, cumulative_ack=ack)

        recovery_exited = False
        if newly_acked:
            board = self.scoreboard
            if board.clean:
                # Loss-free fast path: every acked segment is a plain
                # in-flight transmission.
                pipe = self._pipe - newly_acked
            else:
                # One bulk transition clears the runs below ``ack`` and
                # yields the pipe decrement (in-flight + rtx in flight).
                pipe = self._pipe - board.ack_to(self.snd_una, ack)
            self._pipe = pipe if pipe > 0 else 0
            self.snd_una = ack
            self._loss_ptr = max(self._loss_ptr, ack)
            self._dupacks = 0
            if (
                self._recovery_point is not None
                and self.snd_una >= self._recovery_point
            ):
                self._recovery_point = None
                recovery_exited = True
            self._rearm_rto()

        is_dupack = newly_acked == 0 and ack == self.snd_una
        if is_dupack:
            self._dupacks += 1

        # Delivered accounting (paper §4.2): SACK gives exact counts; a
        # bare duplicate ACK is assumed to signal one delivered MSS.
        increment = newly_acked + newly_sacked
        if increment == 0 and is_dupack:
            increment = 1
        self.delivered_total += increment

        # Loss detection.
        newly_lost = self._mark_losses()
        if self._dupacks >= DUPTHRESH and self._loss_ptr <= self.snd_una:
            # When _loss_ptr has passed snd_una the head is already
            # SACKed or marked (that is the pointer's invariant), so the
            # probe below could never mark anything — skip it.
            newly_lost += self._mark_lost_range(self.snd_una, self.snd_una + 1)

        # RTT / one-way-delay samples from the timestamp echo.
        rtt = None
        if newly_acked and packet.tsecr >= 0:
            rtt = now - packet.tsecr
            if rtt > 0:
                self.rto_estimator.on_rtt_sample(rtt)
        one_way = packet.tsval - packet.tsecr if packet.tsecr >= 0 else None

        sample = AckSample(
            now=now,
            ack=ack,
            newly_acked=newly_acked,
            newly_sacked=newly_sacked,
            delivered_total=self.delivered_total,
            rtt=rtt,
            one_way_delay=one_way,
            receiver_ts=packet.tsval,
            inflight=self._pipe,
            is_dupack=is_dupack,
            in_recovery=self.in_recovery,
            lost_total=self.lost_total,
        )

        tr = self._tracer
        if newly_lost and self._recovery_point is None:
            self._recovery_point = self.next_seq
            if tr is not None:
                tr.emit(CC_LOSS, now, flow=self.flow_id, lost=newly_lost,
                        lost_total=self.lost_total, una=self.snd_una,
                        recovery_point=self.next_seq)
            self.cc.on_congestion(sample)
        if recovery_exited:
            if tr is not None:
                tr.emit(CC_RECOVERY, now, flow=self.flow_id,
                        una=self.snd_una,
                        retransmissions=self.retransmissions)
            self.cc.on_recovery_exit(sample)
        self.cc.on_ack(sample)

        if self.total_segments is not None and self.snd_una >= self.total_segments:
            self._finish()
            if t0 is not None:
                cost.observe((perf_counter() - t0) * 1e6)
            return
        if self._window_based:
            self._fill_window()
        if t0 is not None:
            cost.observe((perf_counter() - t0) * 1e6)

    def _process_sacks(self, packet: Packet, cumulative_ack: int) -> int:
        """Fold SACK blocks into the scoreboard; returns newly SACKed count.

        SACK options repeat the older blocks on every ACK (robustness
        against ACK loss); ``_sack_noop`` remembers blocks already fully
        folded so the repeats skip the scoreboard outright.
        """
        newly = 0
        board = self.scoreboard
        memo = self._sack_noop
        for block in packet.sacks:
            key = (block.start, block.end)  # tuple: C-level hash
            if key in memo:
                continue
            start = max(block.start, cumulative_ack)
            if block.end > start:
                covered, pipe_drop, cancelled = board.sack_range(
                    start, block.end
                )
                if covered:
                    newly += covered
                    if pipe_drop:
                        pipe = self._pipe - pipe_drop
                        self._pipe = pipe if pipe > 0 else 0
                    if cancelled:
                        # Marked lost but actually delivered: the pending
                        # retransmissions are cancelled before leaving;
                        # their pipe contribution was removed at marking.
                        self.spurious_marks += cancelled
                if block.end > self._highest_sacked:
                    self._highest_sacked = block.end
            if len(memo) >= 64:
                memo.clear()
            memo.add(key)
        return newly

    # ------------------------------------------------------------------
    # Loss detection and recovery
    # ------------------------------------------------------------------
    def _mark_lost_range(self, start: int, end: int) -> int:
        """Mark the markable segments of ``[start, end)`` lost.

        Marked segments leave the pipe immediately (their retransmission
        re-enters it when sent).  Returns the newly marked count.
        """
        end = min(end, self.next_seq)
        start = max(start, self.snd_una)
        if end <= start:
            return 0
        newly, runs = self.scoreboard.mark_lost(start, end)
        if not newly:
            return 0
        pipe = self._pipe - newly
        self._pipe = pipe if pipe > 0 else 0
        self.lost_total += newly
        tr = self._tracer
        if tr is not None:
            tr.emit(CC_LOSS_RUNS, self.sim.now, flow=self.flow_id,
                    runs=[[s, e] for s, e, _ in runs], lost=newly,
                    una=self.snd_una)
        return newly

    def _mark_losses(self) -> int:
        """RFC 6675-style: a segment with >= DupThresh SACKed segments
        above it is lost.  Approximated by the highest SACKed edge.

        The scan window ``[_loss_ptr, threshold)`` is folded into the
        scoreboard as one bulk transition — O(loss runs), not O(window).
        """
        threshold = self._highest_sacked - (DUPTHRESH - 1)
        if threshold <= self._loss_ptr:
            return 0
        newly = self._mark_lost_range(
            max(self._loss_ptr, self.snd_una), threshold
        )
        self._loss_ptr = threshold
        return newly

    # ------------------------------------------------------------------
    # RTO
    # ------------------------------------------------------------------
    def _arm_rto(self) -> None:
        """Set the RTO deadline, scheduling a timer event only if needed.

        The deadline moves on every cumulative ACK, but the heap entry is
        reused lazily: an event that fires before the current deadline
        just re-schedules itself (no flow state is touched), so steady
        ACK processing allocates no timer events.
        """
        deadline = self.sim.now + self.rto_estimator.rto
        self._rto_deadline = deadline
        event = self._rto_event
        if event is None:
            self._rto_event = self.sim.schedule_at(deadline, self._rto_fire)
        elif event[0] > deadline:
            # The RTO shrank below the queued fire time; a late timer
            # would miss the real timeout, so replace the entry.
            event.cancel()
            self._rto_event = self.sim.schedule_at(deadline, self._rto_fire)

    def _rearm_rto(self) -> None:
        if self.snd_una < self.next_seq:
            self._arm_rto()
        elif self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _rto_fire(self) -> None:
        self._rto_event = None
        if self.complete:
            return
        if self.sim.now < self._rto_deadline:
            # Stale wakeup: the deadline moved while this entry was queued.
            self._rto_event = self.sim.schedule_at(
                self._rto_deadline, self._rto_fire
            )
            return
        self._on_rto()

    def _on_rto(self) -> None:
        """Retransmission timeout: collapse and return to Slow Start."""
        self._rto_event = None
        if self.complete or self.snd_una >= self.next_seq:
            return
        self.rto_count += 1
        tr = self._tracer
        if tr is not None:
            tr.emit(CC_RTO, self.sim.now, flow=self.flow_id,
                    rto_count=self.rto_count, una=self.snd_una,
                    next=self.next_seq, rto=self.rto_estimator.rto)
        if self._tick_event is None and self.cc.is_rate_based:
            self._resume_tick()
        self.rto_estimator.on_timeout()
        # One bulk transition requeues the whole outstanding window:
        # in-flight and retransmitted segments become pending again
        # (newly counted lost); SACKed data and existing marks persist.
        self.lost_total += self.scoreboard.rto_requeue(
            self.snd_una, self.next_seq
        )
        self._pipe = 0
        self._loss_ptr = self.next_seq
        # RTO recovery is Slow Start, not fast recovery: leaving the
        # recovery flag set would freeze window growth until every
        # pre-timeout segment is re-acknowledged.
        self._recovery_point = None
        self._dupacks = 0
        self._budget = 0.0
        self.cc.on_rto()
        self._send_one()  # retransmit the head immediately (arms the RTO)
        if self._rto_event is None:
            self._arm_rto()
        self._fill_window()

    # ------------------------------------------------------------------
    def debug_expected_pipe(self) -> int:
        """Recompute the in-flight estimate from the scoreboard (audit aid).

        The incremental ``_pipe`` counter must always equal this O(runs)
        reconstruction: one transmission outstanding for every unacked
        segment that is neither SACKed nor marked lost, plus one for every
        retransmission in flight.  This walks the scoreboard runs
        independently of the counter, so it remains a meaningful check.
        """
        return self.scoreboard.expected_pipe(self.snd_una, self.next_seq)

    # ------------------------------------------------------------------
    def _finish(self) -> None:
        self.stop()
        if self.on_complete is not None:
            self.on_complete()
