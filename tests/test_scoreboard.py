"""Unit tests for the interval-run SACK scoreboards.

The differential harness (``test_scoreboard_diff.py``) checks the
sender scoreboard against a per-seq reference under a live sender;
these tests pin the individual transition semantics — including the
corners a simulation may not reach every run.
"""

import pytest

from repro.tcp.scoreboard import (
    CANCELLED,
    LOST,
    RTX,
    SACKED,
    ReceiverScoreboard,
    SenderScoreboard,
)


class TestSenderTransitions:
    def test_new_board_is_clean(self):
        b = SenderScoreboard()
        assert b.clean
        assert not b.in_loss_recovery
        assert not b.has_pending
        assert b.next_pending(0) is None
        assert b.expected_pipe(10, 30) == 20  # everything in flight

    def test_sack_inflight(self):
        b = SenderScoreboard()
        assert b.sack_range(5, 8) == (3, 3, 0)  # newly, pipe_drop, cancelled
        assert b.is_sacked(6)
        assert b.state(6) == SACKED
        assert not b.clean
        assert not b.in_loss_recovery  # SACKed-only is not recovery
        assert b.expected_pipe(0, 10) == 7

    def test_sack_is_idempotent(self):
        b = SenderScoreboard()
        b.sack_range(5, 8)
        assert b.sack_range(5, 8) == (0, 0, 0)
        assert b.sack_range(6, 7) == (0, 0, 0)

    def test_mark_lost_skips_sacked(self):
        b = SenderScoreboard()
        b.sack_range(5, 7)
        newly, runs = b.mark_lost(3, 9)
        assert newly == 4
        assert [(s, e) for s, e, _ in runs] == [(3, 5), (7, 9)]
        assert b.in_loss_recovery and b.has_pending
        assert b.next_pending(0) == 3
        # Lost segments are off the pipe; SACKed too.
        assert b.expected_pipe(0, 10) == 10 - 2 - 4

    def test_sack_cancels_pending_mark(self):
        b = SenderScoreboard()
        b.mark_lost(4, 6)
        newly, pipe_drop, cancelled = b.sack_range(4, 6)
        assert (newly, pipe_drop, cancelled) == (2, 0, 2)
        assert b.state(4) == CANCELLED
        assert not b.has_pending  # nothing to retransmit any more
        assert b.in_loss_recovery  # but the episode is still open
        # Cancelled stays off the pipe and is never re-markable.
        assert b.mark_lost(4, 6) == (0, [])
        assert b.expected_pipe(0, 10) == 8

    def test_sack_of_rtx_drops_pipe(self):
        b = SenderScoreboard()
        b.mark_lost(4, 5)
        b.mark_rtx_sent(4)
        assert b.state(4) == RTX
        assert b.expected_pipe(0, 10) == 10  # rtx back on the pipe
        assert b.sack_range(4, 5) == (1, 1, 0)
        assert b.state(4) == SACKED

    def test_take_pending_claims_run_head(self):
        b = SenderScoreboard()
        b.mark_lost(3, 9)
        assert b.take_pending(0, 2) == (3, 5)
        assert b.state(3) == RTX and b.state(4) == RTX and b.state(5) == LOST
        assert b.take_pending(0, 10) == (5, 9)
        assert b.take_pending(0, 10) is None

    def test_take_pending_respects_una(self):
        b = SenderScoreboard()
        b.mark_lost(3, 5)
        b.mark_lost(8, 9)
        assert b.take_pending(6, 5) == (8, 9)

    def test_ack_clears_below_and_returns_pipe_drop(self):
        b = SenderScoreboard()
        b.sack_range(5, 7)
        b.mark_lost(2, 4)
        b.mark_rtx_sent(2)
        # Window [0, 8): acked through 8.  Pipe decrement is the
        # in-flight segments (0,1,4,7) plus the rtx for 2; the LOST
        # segment 3 already left the pipe when it was marked.
        assert b.ack_to(0, 8) == 4 + 1
        assert b.clean

    def test_ack_partial(self):
        b = SenderScoreboard()
        b.sack_range(5, 7)
        assert b.ack_to(0, 5) == 5
        assert not b.clean  # SACKed run still above the ACK
        assert b.ack_to(5, 7) == 0  # both segments already off the pipe

    def test_rto_requeues_inflight_and_rtx(self):
        b = SenderScoreboard()
        b.sack_range(5, 7)
        b.mark_lost(2, 4)
        b.mark_rtx_sent(2)
        newly = b.rto_requeue(0, 10)
        # Newly lost: the in-flight segments (0,1,4,7,8,9) plus the
        # requeued rtx at 2; the existing mark at 3 is not re-counted.
        assert newly == 7
        assert b.state(2) == LOST and b.state(3) == LOST
        assert b.state(5) == SACKED  # SACKed data survives an RTO
        assert b.next_pending(0) == 0

    def test_expected_pipe_matches_manual_count(self):
        b = SenderScoreboard()
        b.sack_range(10, 14)
        b.mark_lost(4, 8)
        b.mark_rtx_sent(4)
        b.mark_rtx_sent(5)
        covered = 4 + 4          # sacked + tagged loss region
        rtx = 2
        assert b.expected_pipe(0, 20) == 20 - covered + rtx

    def test_to_dict(self):
        b = SenderScoreboard()
        b.sack_range(5, 7)
        b.mark_lost(2, 3)
        assert b.to_dict(0, 10) == {2: LOST, 5: SACKED, 6: SACKED}
        assert b.to_dict(6, 10) == {6: SACKED}

    def test_check_passes_on_valid_board(self):
        b = SenderScoreboard()
        b.sack_range(5, 7)
        b.mark_lost(2, 3)
        b.check()


class TestReceiverScoreboard:
    def test_add_and_membership(self):
        r = ReceiverScoreboard()
        assert not r
        assert r.add(5)
        assert not r.add(5)  # duplicate
        assert r.add(6)
        assert 5 in r and 7 not in r
        assert len(r) == 2
        assert r.intervals == [(5, 7)]
        assert r.min == 5

    def test_remove_below(self):
        r = ReceiverScoreboard()
        for s in (3, 4, 8):
            r.add(s)
        assert r.remove_below(5) == 2
        assert r.intervals == [(8, 9)]

    def test_first_gap_at_or_after(self):
        r = ReceiverScoreboard()
        for s in (4, 5, 7):
            r.add(s)
        assert r.first_gap_at_or_after(4) == 6
        assert r.first_gap_at_or_after(6) == 6
        assert r.first_gap_at_or_after(7) == 8

    def test_interval_containing(self):
        r = ReceiverScoreboard()
        for s in (4, 5, 8):
            r.add(s)
        assert r.interval_containing(5) == (4, 6)
        assert r.interval_containing(8) == (8, 9)
        assert r.interval_containing(6) is None

    def test_tail_intervals_descending(self):
        r = ReceiverScoreboard()
        for s in (2, 5, 6, 9):
            r.add(s)
        assert r.tail_intervals(2) == [(9, 10), (5, 7)]
        assert r.tail_intervals(10) == [(9, 10), (5, 7), (2, 3)]

    def test_contains_range(self):
        r = ReceiverScoreboard()
        for s in (4, 5, 6):
            r.add(s)
        assert r.contains_range(4, 7)
        assert r.contains_range(5, 6)
        assert r.contains_range(5, 5)
        assert not r.contains_range(3, 5)
        assert not r.contains_range(6, 8)

    def test_check(self):
        r = ReceiverScoreboard()
        r.add(3)
        r.check()


class TestScoreboardCornerCases:
    def test_empty_ranges_are_noops(self):
        b = SenderScoreboard()
        assert b.sack_range(5, 5) == (0, 0, 0)
        assert b.mark_lost(5, 5) == (0, [])
        assert b.rto_requeue(5, 5) == 0
        assert b.clean

    def test_mark_rtx_sent_only_affects_lost(self):
        b = SenderScoreboard()
        b.sack_range(4, 5)
        b.mark_rtx_sent(4)  # SACKed: no transition
        assert b.state(4) == SACKED
        b.mark_rtx_sent(9)  # untagged: no transition
        assert b.state(9) is None

    def test_runs_property_for_telemetry(self):
        b = SenderScoreboard()
        b.mark_lost(2, 4)
        b.sack_range(4, 6)
        assert b.runs == [(2, 4, LOST), (4, 6, SACKED)]

    def test_segments_tile_window(self):
        b = SenderScoreboard()
        b.sack_range(4, 6)
        assert list(b.segments(2, 8)) == [
            (2, 4, None), (4, 6, SACKED), (6, 8, None),
        ]


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
