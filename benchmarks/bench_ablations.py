"""Ablations of PropRate's design choices (DESIGN.md §5 extensions).

Each test isolates one decision the paper argues for and compares it
against its alternative on the same traces:

* **Bandwidth filter** (§2): EWMA (PropRate) vs windowed-max (BBR) — the
  max filter over-estimates on volatile links and inflates the delay
  tail.
* **Probe burst size** (§4): 10 packets vs smaller/larger bursts — tiny
  bursts struggle to straddle two receiver timestamp ticks (slower rate
  acquisition), huge bursts add queueing.
* **Timestamp granularity** (§4.2): sender-side estimation quality as
  the receiver clock coarsens from 1 ms to 100 ms.
* **Delayed ACKs**: a stock receiver option PropRate must survive, since
  it only modifies the sender.
* **Adaptive target** (§6 future work): fixed PR(80 ms) vs
  :class:`~repro.core.adaptive.AdaptivePropRate` on a shallow buffer.
"""

from repro.core.adaptive import AdaptivePropRate
from repro.core.proprate import PropRate
from repro.experiments.runner import (
    FlowSpec,
    cellular_path_config,
    run_experiment,
    run_single_flow,
)
from repro.traces.presets import isp_trace

from _report import MEASURE_START, emit, flow_row

DURATION = 20.0


def _traces(mode="mobile"):
    return (
        isp_trace("A", mode, duration=60.0),
        isp_trace("A", mode, duration=60.0, direction="uplink"),
    )


def test_ablation_bandwidth_filter(benchmark):
    down, up = _traces()

    def _run():
        return {
            bf: run_single_flow(
                lambda b=bf: PropRate(0.040, bandwidth_filter=b),
                down, up, duration=DURATION, measure_start=MEASURE_START,
            )
            for bf in ("ewma", "max")
        }

    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        "abl_bandwidth_filter",
        [flow_row(bf, r) for bf, r in results.items()],
    )
    # The max filter is more aggressive: its delay tail must not be
    # *better* than the EWMA's, and its mean delay sits at or above.
    assert results["max"].delay.p95 >= 0.9 * results["ewma"].delay.p95
    # Both still function (the ablation is about the trade-off, not
    # breakage).
    assert results["max"].throughput > 0.5 * results["ewma"].throughput


def test_ablation_probe_burst(benchmark):
    down, up = _traces()

    def _run():
        return {
            burst: run_single_flow(
                lambda b=burst: PropRate(0.040, probe_burst=b),
                down, up, duration=DURATION, measure_start=MEASURE_START,
            )
            for burst in (2, 10, 50)
        }

    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        "abl_probe_burst",
        [flow_row(f"burst={b}", r) for b, r in results.items()],
    )
    # All burst sizes converge to a working flow on a deep buffer.
    for r in results.values():
        assert r.throughput > 300_000.0
    # The paper's choice is not dominated: within 25% of the best.
    best = max(r.throughput for r in results.values())
    assert results[10].throughput > 0.75 * best


def test_ablation_timestamp_granularity(benchmark):
    down, up = _traces()

    def _run():
        return {
            gran: run_single_flow(
                lambda: PropRate(0.040),
                down, up, duration=DURATION, measure_start=MEASURE_START,
                ts_granularity=gran,
            )
            for gran in (0.001, 0.010, 0.100)
        }

    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        "abl_ts_granularity",
        [flow_row(f"ts={g * 1000:.0f}ms", r) for g, r in results.items()],
    )
    # Finer receiver clocks can only help; 10 ms (the default on mobile
    # devices) must remain close to the 1 ms ideal.
    fine, default = results[0.001], results[0.010]
    assert default.throughput > 0.6 * fine.throughput
    # Even a 100 ms clock must not collapse the flow entirely.
    assert results[0.100].throughput > 100_000.0


def test_ablation_delayed_ack(benchmark):
    down, up = _traces()
    config = cellular_path_config(down, up)

    def _run():
        out = {}
        for label, delack in (("per-packet", False), ("delayed", True)):
            out[label] = run_experiment(
                config,
                [FlowSpec(cc_factory=lambda: PropRate(0.040), delayed_ack=delack)],
                duration=DURATION, measure_start=MEASURE_START,
            )[0]
        return out

    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("abl_delayed_ack", [flow_row(k, r) for k, r in results.items()])
    # Sender-side estimation survives a coarser ACK stream.
    assert results["delayed"].throughput > 0.6 * results["per-packet"].throughput


def test_ablation_adaptive_target_shallow_buffer(benchmark):
    down, _ = _traces("stationary")
    config = cellular_path_config(down, buffer_packets=40)

    def _run():
        out = {}
        for label, factory in (
            ("fixed PR(80ms)", lambda: PropRate(0.080)),
            ("adaptive", lambda: AdaptivePropRate(0.080)),
        ):
            out[label] = run_experiment(
                config, [FlowSpec(cc_factory=factory)],
                duration=DURATION, measure_start=MEASURE_START,
            )[0]
        return out

    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        "abl_adaptive_target",
        [flow_row(k, r) for k, r in results.items()],
    )
    fixed, adaptive = results["fixed PR(80ms)"], results["adaptive"]
    # The §6 extension: loss-driven target shrinking sheds the overflow
    # (orders of magnitude fewer drops) and lowers the delay; the price
    # is throughput on a volatile link whose shallow buffer drops even
    # for modest targets.
    assert adaptive.bottleneck_drops < 0.1 * max(1, fixed.bottleneck_drops)
    assert adaptive.delay.mean < fixed.delay.mean * 1.1
    assert adaptive.throughput > 0.25 * fixed.throughput
